#!/usr/bin/env python
"""Gray-Scott with asynchronous checkpoints through the Data Stager.

Shows the paper's Fig.-7 mechanism in miniature: the simulation grid
lives in shared vectors under the Read/Write-Local coherence policy;
every step a checkpoint is written to a file-backed vector that the
Data Stager persists in the *background*, overlapping checkpoint I/O
with the next compute step. At the end we verify the checkpoint files
on disk against a single-process reference simulation.

Run:  python examples/grayscott_checkpoint.py
"""

import os
import tempfile

import numpy as np

from repro.apps.grayscott import GSParams, gs_reference, mm_gray_scott
from repro.cluster import SimCluster
from repro.core.config import MegaMmapConfig
from repro.storage.tiers import DRAM, MB, NVME, scaled

L = 32
STEPS = 4


def main():
    workdir = tempfile.mkdtemp(prefix="megammap-gs-")
    cluster = SimCluster(
        n_nodes=4, procs_per_node=2, pfs_servers=2,
        tiers=(scaled(DRAM, 8 * MB), scaled(NVME, 64 * MB)),
        config=MegaMmapConfig(page_size=32 * 1024),
    )
    prefix = f"posix://{workdir}/ckpt"
    result = cluster.run(mm_gray_scott, L, STEPS,
                         1,                # plotgap: checkpoint every step
                         512 * 1024,       # pcache bound per process
                         GSParams(), prefix)
    cluster.shutdown()

    u_sum, v_sum = result.values[0]
    print(f"L={L}, {STEPS} steps on {cluster.spec.nprocs} processes")
    print(f"final checksums: U={u_sum:.3f}  V={v_sum:.3f}")
    print(f"simulated runtime: {result.runtime * 1e3:.1f} ms")

    # Verify every checkpoint against the reference simulation.
    for step in range(1, STEPS + 1):
        u_ref, v_ref = gs_reference(L, step)
        path = os.path.join(workdir, f"ckpt_{step}.u")
        got = np.fromfile(path, dtype=np.float64).reshape(L, L, L)
        err = float(np.abs(got - u_ref).max())
        print(f"checkpoint step {step}: {path}  max|err|={err:.2e}")
        assert err < 1e-12
    print("all checkpoints bit-exact against the reference  [OK]")


if __name__ == "__main__":
    main()
