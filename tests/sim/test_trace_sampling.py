"""Tail-based trace sampling: head decisions per trace, tail
promotion of slow/error/alert spans, exact percentiles despite
dropped span objects."""

import pytest

from repro.sim import Monitor, Simulator
from repro.sim.rand import py_rng
from repro.sim.trace import Span, Tracer, TraceSampler


def _tracer(head_rate=0.1, seed=0, **kw):
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    tracer.sampler = TraceSampler(py_rng(seed, "trace-sample"),
                                  head_rate, **kw)
    return sim, tracer


def _burst(sim, tracer, n, category="pcache", dur=0.001):
    def work():
        for _ in range(n):
            with tracer.span("op", category, node=0):
                yield sim.timeout(dur)
    sim.run(until=sim.process(work(), name="w"))


def test_head_rate_validated():
    with pytest.raises(ValueError):
        TraceSampler(py_rng(0, "t"), 0.0)
    with pytest.raises(ValueError):
        TraceSampler(py_rng(0, "t"), 1.5)


def test_head_sampling_drops_most_spans_keeps_stats():
    sim, tracer = _tracer(head_rate=0.1)
    _burst(sim, tracer, 1000)
    kept = len(tracer.spans)
    assert kept < 300                      # ~100 expected at 10%
    assert tracer.sampler.sampled_out == 1000 - kept
    # Percentiles come from _durations, which saw every span.
    summary = tracer.latency_summary()
    assert summary["trace.pcache.count"] == 1000.0
    assert summary["trace.sampled_out"] == float(1000 - kept)


def test_sampling_deterministic_per_seed():
    def kept_ids(seed):
        sim, tracer = _tracer(head_rate=0.2, seed=seed)
        _burst(sim, tracer, 200)
        return [s.span_id for s in tracer.spans]
    assert kept_ids(3) == kept_ids(3)
    assert kept_ids(3) != kept_ids(4)


def test_children_inherit_head_decision():
    sim, tracer = _tracer(head_rate=0.5)

    def work():
        for _ in range(50):
            with tracer.span("parent", "pcache", node=0):
                yield sim.timeout(0.001)
                with tracer.span("child", "net", node=0):
                    yield sim.timeout(0.001)

    sim.run(until=sim.process(work(), name="w"))
    by_id = {s.span_id: s for s in tracer.spans}
    kept_children = [s for s in tracer.spans if s.name == "child"]
    kept_parents = [s for s in tracer.spans if s.name == "parent"]
    # Traces are kept or dropped whole: every kept child's parent is
    # kept and vice versa.
    assert len(kept_children) == len(kept_parents)
    for child in kept_children:
        assert child.parent_id in by_id


def test_always_keep_categories_survive():
    sim, tracer = _tracer(head_rate=0.01, seed=1)

    def work():
        for _ in range(20):
            with tracer.span("op", "pcache", node=0):
                yield sim.timeout(0.001)
        with tracer.span("repair", "chaos", node=0):
            yield sim.timeout(0.001)
        tracer.record("anom", "anomaly", -1, sim.now, sim.now)

    sim.run(until=sim.process(work(), name="w"))
    cats = [s.category for s in tracer.spans]
    assert "chaos" in cats and "anomaly" in cats
    assert tracer.sampler.tail_promoted >= 2


def test_error_attr_promotes():
    sim, tracer = _tracer(head_rate=0.01, seed=1)

    def work():
        for _ in range(20):
            with tracer.span("op", "pcache", node=0):
                yield sim.timeout(0.001)
        with tracer.span("op", "pcache", node=0, error=True):
            yield sim.timeout(0.001)

    sim.run(until=sim.process(work(), name="w"))
    assert any(s.attrs.get("error") for s in tracer.spans)


def test_slow_span_promotes_with_ancestors():
    sim, tracer = _tracer(head_rate=0.01, seed=1)
    tracer.sampler.thresholds["net"] = 0.01   # as the obs tick would

    def work():
        # Fast traces: dropped at 1% head rate.
        for _ in range(30):
            with tracer.span("parent", "pcache", node=0):
                with tracer.span("xfer", "net", node=0):
                    yield sim.timeout(0.001)
        # One slow transfer: promoted along with its open parent.
        with tracer.span("parent", "pcache", node=0):
            with tracer.span("xfer", "net", node=0):
                yield sim.timeout(0.5)

    sim.run(until=sim.process(work(), name="w"))
    slow = [s for s in tracer.spans
            if s.name == "xfer" and s.duration > 0.01]
    assert len(slow) == 1
    parents = [s for s in tracer.spans
               if s.span_id == slow[0].parent_id]
    assert parents and parents[0].name == "parent"


def test_refresh_thresholds_from_store():
    from repro.obs.live import WindowedStore
    sim = Simulator()
    mon = Monitor(sim)
    tracer = Tracer(sim, enabled=True)
    mon.tracer = tracer
    tracer.sampler = TraceSampler(py_rng(0, "trace-sample"), 0.5,
                                  slow_factor=4.0)
    store = WindowedStore(mon, tracer=tracer, window=1.0, retention=8)
    for _ in range(20):
        tracer.record("op", "pcache", 0, 0.0, 0.01)
    sim._now = 1.0
    store.tick(1.0)
    tracer.sampler.refresh_thresholds(store)
    assert tracer.sampler.thresholds["pcache"] == pytest.approx(0.04)


def test_alert_window_keeps_all_traces():
    sim, tracer = _tracer(head_rate=0.01, seed=1)

    class _Obs:
        def alert_active(self):
            return True

    tracer.sampler.obs = _Obs()
    _burst(sim, tracer, 50)
    assert len(tracer.spans) == 50   # everything kept while firing


def test_no_sampler_keeps_everything():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)

    def work():
        for _ in range(100):
            with tracer.span("op", "pcache", node=0):
                yield sim.timeout(0.001)

    sim.run(until=sim.process(work(), name="w"))
    assert len(tracer.spans) == 100
    assert "trace.sampled_out" not in tracer.latency_summary()


def test_reset_clears_sampler_counters():
    sim, tracer = _tracer(head_rate=0.1)
    _burst(sim, tracer, 100)
    assert tracer.sampler.sampled_out > 0
    tracer.reset()
    assert tracer.sampler.sampled_out == 0
    assert tracer.sampler.tail_promoted == 0
