"""On-disk container formats used by the Data Stager.

Stand-ins for the I/O libraries the paper's stager integrates with
(HDF5 1.14, parquet, POSIX): real, from-scratch binary formats with the
same *structural* character — ``hdf5sim`` is a group-addressed chunked
container, ``parquetsim`` is columnar with row groups and a footer
index, ``posix`` is a raw byte file.
"""

from repro.storage.formats.posix import PosixBackend
from repro.storage.formats.hdf5sim import Hdf5SimBackend
from repro.storage.formats.parquetsim import ParquetSimBackend

__all__ = ["Hdf5SimBackend", "ParquetSimBackend", "PosixBackend"]
