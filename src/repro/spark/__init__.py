"""Mini-Spark: the Cloud analytics baseline (Apache Spark stand-in).

The paper compares MegaMmap against Apache Spark 3.4.1 MLlib (fault
tolerance disabled). This package reproduces the *behavioural*
properties the evaluation attributes to Spark:

* per-stage partition materialization with cached parents — the source
  of the observed 3–4× DRAM amplification;
* TCP on the slow 10 Gb/s network plus JVM/serialization compute
  overhead ("its use of the slower TCP protocol and Java Runtime");
* driver-coordinated stages with tree aggregation;
* MLlib-style KMeans‖ and RandomForest on RDDs.

Executor memory is reserved on the node DRAM devices, so Spark runs
are subject to the same OOM rules as everything else.
"""

from repro.spark.core import RDD, SparkSim
from repro.spark.mllib import mllib_kmeans, mllib_random_forest

__all__ = ["RDD", "SparkSim", "mllib_kmeans", "mllib_random_forest"]
