"""Fig. 8: lowering DRAM consumption with intelligent tiering.

Paper setup (IV-B4, scaled): fixed datasets, all four MegaMmap apps,
sweeping the per-node DRAM capacity downward; overflow fits in NVMe.
The x-axis is expressed as a *fraction of the per-node working set*
(the paper sweeps 4-32 GB against 32 GB/node datasets). Expected shape
per panel: runtime stays close to the full-DRAM runtime until DRAM has
been cut substantially (paper: KMeans 2.6x less, DBSCAN/RF 2x,
Gray-Scott 1.6x at <10% loss), then degrades (paper: up to ~2.5x) as
synchronous faults and NVMe spills take over.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.datagen import POINT3D, write_gadget_like, \
    write_parquet_points
from repro.apps.dbscan import mm_dbscan
from repro.apps.grayscott import mm_gray_scott
from repro.apps.kmeans import mm_kmeans
from repro.apps.rf import mm_random_forest
from repro.apps.rf.common import FEATURE6
from benchmarks.common import emit_result, print_table, testbed, \
    write_csv

N_NODES = 4
#: Per-node DRAM as a fraction of the app's per-node working set.
FRACTIONS = [4.0, 2.0, 1.0, 0.5]
NVME_MB = 256

KMEANS_N = 200_000
DBSCAN_N = 12_000
RF_N = 40_000
GS_L = 64


def _apps(tmp_path):
    km_path = tmp_path / "km.parquet"
    write_parquet_points(str(km_path), KMEANS_N, 8, seed=1)
    db_path = tmp_path / "db.parquet"
    write_parquet_points(str(db_path), DBSCAN_N, 8, seed=2)
    rf_snap = tmp_path / "rf.h5"
    labels = write_gadget_like(str(rf_snap), RF_N, 8, seed=3)
    rf_labels = tmp_path / "rf.labels"
    (labels + 1).astype(np.int32).tofile(rf_labels)

    def kmeans(cluster, pcache):
        return cluster.run(mm_kmeans, f"parquet://{km_path}", 8, 4, 0,
                           pcache)

    def dbscan(cluster, pcache):
        return cluster.run(mm_dbscan, f"parquet://{db_path}", 8.0, 16,
                           0, pcache)

    def rf(cluster, pcache):
        return cluster.run(mm_random_forest,
                           f"hdf5://{rf_snap}:parttype0",
                           f"posix://{rf_labels}", 1, 10, 4, 0, pcache)

    def grayscott(cluster, pcache):
        return cluster.run(mm_gray_scott, GS_L, 3, 1, pcache)

    # (name, runner, per-node working set bytes)
    return [
        ("KMeans", kmeans, KMEANS_N * POINT3D.itemsize / N_NODES),
        ("DBSCAN", dbscan, DBSCAN_N * POINT3D.itemsize / N_NODES),
        ("RF", rf, RF_N * FEATURE6.itemsize / N_NODES),
        # Two fields x two parities of the grid, plus checkpoint flow.
        ("Gray-Scott", grayscott, 4 * GS_L ** 3 * 8 / N_NODES),
    ]


def run_mem_scaling(tmp_path):
    rows = []
    for app, runner, ws in _apps(tmp_path):
        for frac in FRACTIONS:
            dram = max(256 * 1024, int(frac * ws))
            cluster = testbed(n_nodes=N_NODES, nvme_mb=NVME_MB,
                              dram_mb=max(1, dram // 2 ** 20))
            # Set the DRAM cap precisely (testbed rounds to MB).
            for dmsh in cluster.dmshs:
                dmsh.tiers[0].spec = dmsh.tiers[0].spec.with_capacity(
                    dram)
            pcache = max(2 * cluster.spec.config.page_size, dram // 4)
            res = runner(cluster, pcache)
            rows.append(dict(
                app=app, dram_frac=frac,
                dram_mb=round(dram / 2 ** 20, 2),
                runtime_s=round(res.runtime, 4),
                peak_dram_mb=round(res.peak_dram_node / 2 ** 20, 2),
                nvme_mb=round(sum(
                    d.tier("nvme").bytes_written
                    for d in cluster.dmshs) / 2 ** 20, 2)))
    return rows


@pytest.mark.benchmark(group="fig8")
def test_fig8_mem_scaling(benchmark, tmp_path):
    rows = benchmark.pedantic(run_mem_scaling, args=(tmp_path,),
                              rounds=1, iterations=1)
    print_table("Fig. 8 — DRAM scaling (4 nodes; DRAM as a fraction "
                "of the per-node working set)", rows)
    write_csv("fig8_mem_scaling", rows)
    by_app = {}
    for r in rows:
        by_app.setdefault(r["app"], {})[r["dram_frac"]] = r
    for app, sweep in by_app.items():
        base = sweep[max(FRACTIONS)]["runtime_s"]
        # DRAM cut in half relative to the working set: performance
        # stays competitive (paper: within 10% at 2-2.6x reduction; we
        # allow 40% at this scale's larger fixed-overhead share).
        assert sweep[2.0]["runtime_s"] < 1.4 * base, app
        # Starving DRAM never *helps*: the curve is flat-then-rising.
        assert sweep[min(FRACTIONS)]["runtime_s"] > 0.85 * base, app
        # The cap really constrains the node's memory.
        assert sweep[min(FRACTIONS)]["peak_dram_mb"] \
            <= sweep[max(FRACTIONS)]["peak_dram_mb"] + 0.01, app
        emit_result("fig8", f"{app.lower()}.slowdown_half_dram",
                    sweep[0.5]["runtime_s"] / max(base, 1e-9), "x",
                    dict(n_nodes=N_NODES, dram_frac=0.5))
    # Under the smallest caps the overflow really lands on NVMe for
    # the data-heavy apps.
    smallest = min(FRACTIONS)
    assert by_app["Gray-Scott"][smallest]["nvme_mb"] > 0
    assert by_app["KMeans"][smallest]["nvme_mb"] > 0