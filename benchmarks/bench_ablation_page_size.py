"""Ablation: configurable page size (paper III-C).

"Fixed page sizes are restrictive, and can result in I/O amplification
if the page size is too large or poor access patterns if the page size
is too small." Sweep the page size for a streaming scan: tiny pages
pay per-request latencies; huge pages pay amplification on the
element-sparse access pattern.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MM_READ_ONLY, MM_WRITE_ONLY, SeqTx, StrideTx
from benchmarks.common import emit_result, print_table, testbed, \
    write_csv

N = 512 * 1024  # float64 elements = 4 MB


def _scan_app(page_size):
    def app(ctx):
        vec = yield from ctx.mm.vector("v", dtype=np.float64, size=N,
                                       page_size=page_size)
        vec.bound_memory(max(4 * page_size, 256 * 1024))
        vec.pgas(ctx.rank, ctx.nprocs)
        tx = yield from vec.tx_begin(SeqTx(vec.local_off(),
                                           vec.local_size(),
                                           MM_WRITE_ONLY))
        while True:
            chunk = yield from vec.next_chunk()
            if chunk is None:
                break
            chunk.data[:] = 1.0
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        yield from ctx.barrier()
        # Sparse strided read: touches one element per 512 — partial
        # paging keeps small pages efficient; big pages amplify.
        tx = yield from vec.tx_begin(
            StrideTx(vec.local_off(), vec.local_size() // 512, 512,
                     MM_READ_ONLY))
        total = 0.0
        for i in range(vec.local_size() // 512):
            v = yield from vec.get(vec.local_off() + i * 512)
            total += float(v)
        yield from vec.tx_end()
        return total

    return app


def run_page_sweep():
    rows = []
    for page_kb in (4, 16, 64, 256, 1024):
        cluster = testbed(n_nodes=2)
        res = cluster.run(_scan_app(page_kb * 1024))
        net = res.stats["net.bytes_moved"]
        rows.append(dict(page_kb=page_kb,
                         runtime_s=round(res.runtime, 4),
                         net_mb=round(net / 2 ** 20, 2),
                         faults=int(res.stats.get("pcache.faults", 0))))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_page_size(benchmark):
    rows = benchmark.pedantic(run_page_sweep, rounds=1, iterations=1)
    print_table("Ablation — page size sweep", rows)
    write_csv("ablation_page_size", rows)
    t = {r["page_kb"]: r["runtime_s"] for r in rows}
    # Tiny pages lose to mid-size pages (per-request latency).
    assert t[4] > t[64]
    # The extremes never beat the best mid-size page.
    best = min(t.values())
    assert best == min(t[16], t[64], t[256])
    best_kb = min(t, key=t.get)
    emit_result("ablation_page_size", "page_size.best_kb", best_kb,
                "KB", dict(n_nodes=2, elements=N))
    emit_result("ablation_page_size", "page_size.tiny_vs_best",
                t[4] / best, "x", dict(n_nodes=2, elements=N))
