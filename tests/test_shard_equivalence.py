"""Sharded-vs-single equivalence: the acceptance gate for sharding.

A rack-decomposed topology (``ClusterSpec.racks > 1``) always runs one
simulator per rack; ``shards=N`` only chooses how many OS processes
those simulators are spread over. The window-sync protocol injects
cross-rack messages in canonical ``(time, src_rack, seq)`` order at
every barrier, so the *entire* run — simulated timestamps, per-node
RNG draws, monitor counters, application values — must be bit-for-bit
identical at every shard count.
"""

import numpy as np
import pytest

from repro.apps.datagen import write_parquet_points
from repro.apps.grayscott import mm_gray_scott
from repro.apps.kmeans import mm_kmeans
from repro.cluster import ClusterSpec, ShardedCluster, SimCluster
from repro.core.errors import ShardBoundaryError
from repro.net.fabric import Network
from repro.sim import Simulator

PPN = 2  # procs per node throughout


def _spec(n_nodes, racks, **kw):
    return ClusterSpec(n_nodes=n_nodes, procs_per_node=PPN,
                       racks=racks, **kw)


def _eq(a, b):
    if isinstance(a, (tuple, list)):
        return len(a) == len(b) and all(_eq(x, y)
                                        for x, y in zip(a, b))
    if isinstance(a, np.ndarray):
        return np.array_equal(a, b)
    return a == b


def _assert_identical(a, b):
    """Two RunResults are bit-for-bit the same."""
    assert a.runtime == b.runtime
    assert a.peak_dram_node == b.peak_dram_node
    assert a.peak_dram_total == b.peak_dram_total
    assert len(a.values) == len(b.values)
    for va, vb in zip(a.values, b.values):
        assert _eq(va, vb), (va, vb)
    assert a.stats == b.stats


@pytest.fixture(scope="module")
def kmeans_url(tmp_path_factory):
    path = tmp_path_factory.mktemp("shard") / "pts.parquet"
    write_parquet_points(str(path), 6_000, 4, seed=11)
    return f"parquet://{path}"


def test_kmeans_bit_for_bit_at_2_and_4_shards(kmeans_url):
    runs = [ShardedCluster(_spec(4, racks=4)).run(
                mm_kmeans, kmeans_url, 4, 2, shards=s)
            for s in (1, 2, 4)]
    _assert_identical(runs[0], runs[1])
    _assert_identical(runs[0], runs[2])
    # The run crossed racks (boundary traffic actually happened).
    assert runs[0].stats.get("net.boundary_exports", 0) > 0


def test_grayscott_bit_for_bit_and_physics(kmeans_url):
    L, steps = 16, 2
    seq = ShardedCluster(_spec(4, racks=2)).run(
        mm_gray_scott, L, steps, shards=1)
    par = ShardedCluster(_spec(4, racks=2)).run(
        mm_gray_scott, L, steps, shards=2)
    _assert_identical(seq, par)
    # The rack decomposition changes the transport of ghost planes
    # (MPI halo instead of DSM reads) but not the physics: checksums
    # equal the plain single-simulator run's.
    ref = SimCluster(ClusterSpec(n_nodes=4, procs_per_node=PPN)).run(
        mm_gray_scott, L, steps)
    assert seq.values[0] == pytest.approx(ref.values[0], rel=1e-12)


def _rng_draw_app(ctx, n):
    """Record per-rank RNG draws with cross-rack chatter in between."""
    draws = []
    for i in range(n):
        draws.append(float(ctx.rng.random()))
        yield from ctx.compute_seconds(1e-4)
        if i == n // 2:
            yield from ctx.barrier()
    total = yield from ctx.comm.allreduce(draws[-1],
                                          op=lambda a, b: a + b)
    return draws, total


def test_seed_preservation_across_shard_counts():
    """Same per-node RNG draw sequences and identical merged
    Monitor.summary() counters at shards=1/2/4 — no wall-clock or PID
    leakage into simulated state."""
    runs = [ShardedCluster(_spec(4, racks=4, seed=5)).run(
                _rng_draw_app, 8, shards=s)
            for s in (1, 2, 4)]
    base = runs[0]
    for other in runs[1:]:
        for (draws_a, tot_a), (draws_b, tot_b) in zip(base.values,
                                                      other.values):
            assert draws_a == draws_b
            assert tot_a == tot_b
        assert base.stats == other.stats
        assert base.runtime == other.runtime
    # Kernel counters merged by sum are part of the equality above;
    # sanity-check they are populated at all.
    assert base.stats["kernel.fast_events"] > 0


def test_single_rack_spec_unchanged(kmeans_url):
    """racks=1 through ShardedCluster matches the plain SimCluster
    bit-for-bit (the sharded machinery adds nothing when unused)."""
    plain = SimCluster(ClusterSpec(n_nodes=2, procs_per_node=PPN)).run(
        mm_kmeans, kmeans_url, 4, 2)
    sharded = ShardedCluster(_spec(2, racks=1)).run(
        mm_kmeans, kmeans_url, 4, 2, shards=1)
    assert plain.runtime == sharded.runtime
    assert plain.stats == sharded.stats


def test_racks_require_sharded_cluster():
    with pytest.raises(ValueError, match="ShardedCluster"):
        SimCluster(ClusterSpec(n_nodes=4, racks=2))
    with pytest.raises(ValueError, match="partition"):
        ClusterSpec(n_nodes=4, racks=3).rack_size


def test_chaos_rejected_on_boundary_path():
    """Chaos perturbs wire latency, which would undercut the window
    lookahead bound — the export path refuses to run under it."""
    sim = Simulator()
    net = Network(sim, 4, rack_size=2)
    net.chaos = object()
    gen = net.transfer_export(0, 2, 64, lambda t: None)
    with pytest.raises(RuntimeError, match="chaos"):
        next(gen)


def test_runtime_rejects_foreign_task():
    """An inactive (remote-rack mirror) runtime must never accept
    work — rack-scoped placement should make this unreachable."""
    from repro.cluster import RackHandle

    handle = RackHandle(_spec(4, racks=2), rack_id=0,
                        app=_rng_draw_app, args=(1,))
    system = handle.cluster.system
    assert [rt.active for rt in system.runtimes] == [True, True,
                                                     False, False]
    with pytest.raises(ShardBoundaryError):
        system.runtimes[3].submit(object())
