"""Two applications sharing one deployment (paper §V, Multi-Tenancy).

The paper runs one application per DSM and defers contention
mediation; the substrate nevertheless must isolate *namespaces*
correctly when two jobs share the runtime — distinct vectors never
alias, and capacity pressure from one tenant spills its own pages
without corrupting the other's data.
"""

import numpy as np
import pytest

from repro.core import MM_READ_ONLY, MM_WRITE_ONLY, SeqTx
from tests.core.conftest import build_system, run_procs

N = 256 * 1024  # 1 MB of int32 per tenant


def _tenant(system, rank, node, key, value):
    client = system.client(rank=rank, node=node)

    def app():
        vec = yield from client.vector(key, dtype=np.int32, size=N)
        vec.bound_memory(4 * 4096)
        yield from vec.tx_begin(SeqTx(0, N, MM_WRITE_ONLY))
        yield from vec.write_range(
            0, np.full(N, value, dtype=np.int32))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        yield from vec.tx_begin(SeqTx(0, N, MM_READ_ONLY))
        out = yield from vec.read_range(0, N)
        yield from vec.tx_end()
        return np.unique(out).tolist()

    return app


def test_tenants_never_alias_each_others_vectors():
    sim, system = build_system(n_nodes=2, dram_mb=1, nvme_mb=32)
    a = _tenant(system, 0, 0, "tenant-a:data", 111)
    b = _tenant(system, 1, 1, "tenant-b:data", 222)
    res_a, res_b = run_procs(sim, a(), b())
    assert res_a == [111]
    assert res_b == [222]


def test_capacity_pressure_from_one_tenant_spills_not_corrupts():
    # DRAM is tiny; both tenants' data must overflow to NVMe and stay
    # bit-exact.
    sim, system = build_system(n_nodes=2, dram_mb=1, nvme_mb=64)
    apps = [_tenant(system, r, r % 2, f"t{r}", 1000 + r)()
            for r in range(4)]
    results = run_procs(sim, *apps)
    assert results == [[1000], [1001], [1002], [1003]]
    nvme = sum(d.tier("nvme").used for d in system.dmshs)
    assert nvme > 0
