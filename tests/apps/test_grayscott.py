"""Gray-Scott: stencil unit tests + distributed correctness + I/O."""

import numpy as np
import pytest

from repro.apps.grayscott import (
    GSParams,
    HermesIo,
    gs_reference,
    init_fields,
    init_slab,
    mm_gray_scott,
    mpi_gray_scott,
)
from repro.cluster import OutOfMemoryError
from repro.storage.tiers import MB
from tests.apps.conftest import make_cluster

L = 24
STEPS = 3


def test_init_slab_matches_full_grid():
    u, v = init_fields(L)
    us, vs = init_slab(L, 5, 7)
    assert np.array_equal(us, u[5:12])
    assert np.array_equal(vs, v[5:12])


def test_reference_conserves_reasonable_ranges():
    u, v = gs_reference(16, 5)
    assert np.isfinite(u).all() and np.isfinite(v).all()
    assert (u >= 0).all()
    assert u.max() <= 1.0 + 1e-9


def test_reference_evolves():
    u0, v0 = init_fields(16)
    u, v = gs_reference(16, 5)
    assert not np.array_equal(u, u0)


def test_mpi_gray_scott_matches_reference():
    cluster = make_cluster()
    res = cluster.run(mpi_gray_scott, L, STEPS, 0, None, GSParams(),
                      "/gs/ckpt", True)
    u_ref, v_ref = gs_reference(L, STEPS)
    got_u = np.concatenate([u for u, _ in res.values], axis=0)
    got_v = np.concatenate([v for _, v in res.values], axis=0)
    assert np.allclose(got_u, u_ref, atol=1e-12)
    assert np.allclose(got_v, v_ref, atol=1e-12)


def test_mm_gray_scott_matches_reference():
    cluster = make_cluster(page_size=16 * 1024)
    res = cluster.run(mm_gray_scott, L, STEPS, 0, 128 * 1024,
                      GSParams(), None, True)
    u_ref, v_ref = gs_reference(L, STEPS)
    got_u = np.concatenate([u for u, _ in res.values], axis=0)
    got_v = np.concatenate([v for _, v in res.values], axis=0)
    assert np.allclose(got_u, u_ref, atol=1e-12)
    assert np.allclose(got_v, v_ref, atol=1e-12)


def test_mm_and_mpi_checksums_agree():
    c1 = make_cluster()
    mpi_res = c1.run(mpi_gray_scott, L, STEPS)
    c2 = make_cluster(page_size=16 * 1024)
    mm_res = c2.run(mm_gray_scott, L, STEPS, 0, 128 * 1024)
    mpi_sum = mpi_res.values[0]
    mm_sum = mm_res.values[0]
    assert mpi_sum == pytest.approx(mm_sum, rel=1e-12)


def test_mpi_checkpoints_land_on_pfs():
    cluster = make_cluster()
    cluster.run(mpi_gray_scott, 16, 2, 1, cluster.pfs, GSParams(),
                "/gs/ckpt")
    assert cluster.pfs.exists("/gs/ckpt_1.u")
    assert cluster.pfs.exists("/gs/ckpt_2.v")
    assert cluster.pfs.size("/gs/ckpt_1.u") == 16 ** 3 * 8


def test_mpi_checkpoint_content_is_the_grid():
    cluster = make_cluster()
    cluster.run(mpi_gray_scott, 16, 2, 2, cluster.pfs, GSParams(),
                "/gs/ckpt")
    u_ref, _ = gs_reference(16, 2)
    raw = bytes(cluster.pfs._file("/gs/ckpt_2.u"))
    got = np.frombuffer(raw, dtype=np.float64).reshape(16, 16, 16)
    assert np.allclose(got, u_ref, atol=1e-12)


def test_hermes_io_buffers_then_drains():
    cluster = make_cluster()
    io = HermesIo(cluster)

    def app(ctx):
        if ctx.rank == 0:
            yield from io.write(ctx.node, "/x", 0, b"payload")
            yield from io.flush()
            data = yield from io.read(ctx.node, "/x", 0, 7)
            return data
        yield ctx.sim.timeout(0)

    res = cluster.run(app)
    assert res.values[0] == b"payload"
    assert cluster.pfs.exists("/x")


def test_hermes_io_is_faster_than_direct_pfs():
    """The Fig. 6 ordering: buffered checkpoints beat synchronous PFS
    writes because compute overlaps the drain."""
    c1 = make_cluster()
    t_pfs = c1.run(mpi_gray_scott, 16, 4, 1, c1.pfs).runtime
    c2 = make_cluster()
    t_hermes = c2.run(mpi_gray_scott, 16, 4, 1, HermesIo(c2)).runtime
    assert t_hermes < t_pfs


def test_mm_checkpoints_persist_via_stager(tmp_path):
    cluster = make_cluster(page_size=16 * 1024)
    prefix = f"posix://{tmp_path}/gs"
    cluster.run(mm_gray_scott, 16, 2, 1, 128 * 1024, GSParams(), prefix)
    cluster.shutdown()
    u_ref, v_ref = gs_reference(16, 2)
    got = np.fromfile(tmp_path / "gs_2.u", dtype=np.float64)
    assert np.allclose(got.reshape(16, 16, 16), u_ref, atol=1e-12)


def test_mpi_gray_scott_ooms_when_grid_exceeds_dram():
    """Fig. 6: the MPI version crashes past the DRAM boundary."""
    cluster = make_cluster(dram_mb=1)
    with pytest.raises(OutOfMemoryError):
        cluster.run(mpi_gray_scott, 48, 1)  # 48^3*8*4 bytes / 4 procs


def test_mm_gray_scott_survives_where_mpi_ooms():
    """Fig. 6: MegaMmap keeps running by spilling to NVMe."""
    cluster = make_cluster(dram_mb=1, nvme_mb=64, page_size=16 * 1024)
    res = cluster.run(mm_gray_scott, 48, 1, 0, 64 * 1024)
    assert not res.oom
    nvme_used = sum(d.tier("nvme").used for d in cluster.dmshs)
    assert nvme_used > 0
