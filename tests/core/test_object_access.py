"""Property suite for the object-granular access path.

Seeded (stdlib ``random``) interleavings of object- and page-path
reads and writes run against a naive numpy shadow array; every read —
``read_range``, ``read_object``, and vectored ``read_objects`` — must
agree with the shadow byte for byte. Each rank drives its own disjoint
shard, so read-your-writes (dirty pcache frames, in-flight installs,
write-through patches) fully determines the expected bytes while both
ranks still hammer the owner nodes concurrently.

Also pinned here: objects straddling page boundaries, concurrent-rank
object writers meeting at a barrier (fresh readers then see every
acked write), and the ``object_threshold_bytes`` gate routing
requests to the right path.
"""

import random

import numpy as np
import pytest

from benchmarks.common import testbed

PAGE = 4096          # small pages -> plenty of straddling objects
SHARD_PAGES = 8
SHARD = SHARD_PAGES * PAGE


def _pattern(rnd: random.Random, n: int) -> np.ndarray:
    # A cheap deterministic pattern: one random byte + ramp, mod 251.
    base = rnd.randrange(251)
    return ((np.arange(n) + base) % 251).astype(np.uint8)


def _interleave(ctx, seed, n_ops, threshold):
    """Random op mix over this rank's shard, mirrored on a shadow."""
    rnd = random.Random(seed + ctx.rank)
    size = ctx.nprocs * SHARD
    vec = yield from ctx.mm.vector("prop:objects", dtype=np.uint8,
                                   size=size)
    vec.bound_memory(4 * PAGE)      # force eviction churn
    lo = ctx.rank * SHARD
    shadow = np.zeros(SHARD, dtype=np.uint8)
    bad = 0
    for _ in range(n_ops):
        op = rnd.choice(("wr_range", "wr_obj", "rd_range", "rd_obj",
                         "rd_objs", "rd_objs"))
        off = rnd.randrange(SHARD - 1)
        n = rnd.randint(1, min(3 * threshold, SHARD - off))
        if op == "wr_range":
            data = _pattern(rnd, n)
            yield from vec.write_range(lo + off, data)
            shadow[off:off + n] = data
        elif op == "wr_obj":
            data = _pattern(rnd, n)
            yield from vec.write_object(lo + off, data)
            shadow[off:off + n] = data
        elif op == "rd_range":
            out = yield from vec.read_range(lo + off, n)
            bad += int(not np.array_equal(out, shadow[off:off + n]))
        elif op == "rd_obj":
            out = yield from vec.read_object(lo + off, n)
            bad += int(not np.array_equal(out, shadow[off:off + n]))
        else:
            reqs = []
            for _r in range(rnd.randint(1, 4)):
                roff = rnd.randrange(SHARD - 1)
                rn = rnd.randint(1, min(2 * threshold, SHARD - roff))
                reqs.append((roff, rn))
            outs = yield from vec.read_objects(
                [(lo + o, c) for o, c in reqs])
            for (roff, rn), out in zip(reqs, outs):
                bad += int(not np.array_equal(
                    out, shadow[roff:roff + rn]))
    # Final sweep: the whole shard through both paths.
    whole_page = yield from vec.read_range(lo, SHARD)
    whole_obj = yield from vec.read_objects(
        [(lo + p * PAGE, PAGE) for p in range(SHARD_PAGES)])
    bad += int(not np.array_equal(whole_page, shadow))
    bad += int(not np.array_equal(np.concatenate(whole_obj), shadow))
    return bad


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_random_interleavings_agree_with_shadow(seed):
    threshold = 256
    c = testbed(n_nodes=2, procs_per_node=2, page_size=PAGE,
                object_threshold_bytes=threshold, seed=seed)
    res = c.run(_interleave, 1000 * seed, 60, threshold)
    assert res.values == [0, 0, 0, 0], res.values
    # The mix really exercised both paths.
    assert res.stats.get("object.reads", 0) > 0
    assert res.stats.get("object.writes", 0) > 0
    assert res.stats.get("pcache.faults", 0) > 0


def test_straddling_object_crosses_page_boundary():
    def app(ctx):
        vec = yield from ctx.mm.vector("prop:straddle",
                                       dtype=np.uint8, size=4 * PAGE)
        if ctx.rank == 0:
            data = ((np.arange(128) + 5) % 251).astype(np.uint8)
            yield from vec.write_object(PAGE - 64, data)
        yield from ctx.barrier()
        out = yield from vec.read_object(PAGE - 64, 128)
        lo = yield from vec.read_range(PAGE - 64, 64)
        hi = yield from vec.read_range(PAGE, 64)
        return (out.tolist(), np.concatenate([lo, hi]).tolist())

    c = testbed(n_nodes=2, procs_per_node=1, page_size=PAGE,
                object_threshold_bytes=4096)
    want = (((np.arange(128) + 5) % 251).astype(np.uint8)).tolist()
    for obj, pages in c.run(app).values:
        assert obj == want        # object read spans both pages
        assert pages == want      # page path sees the same bytes
    # The write really split into two per-page OBJ_WRITE tasks.
    assert c.monitor.counter("object.remote_tasks") >= 2


def test_concurrent_rank_writers_at_a_barrier():
    """Every rank object-writes its own slots, then reads the whole
    table after a barrier. Readers never cached other shards before
    the barrier, so every fetch is fresh and must observe every acked
    write-through — byte-identical between the two read paths."""
    def app(ctx):
        size = ctx.nprocs * 512
        vec = yield from ctx.mm.vector("prop:writers",
                                       dtype=np.uint8, size=size)
        # Straddle-prone slots: each rank's slots start mid-page.
        data = ((np.arange(512) * (ctx.rank + 3)) % 251) \
            .astype(np.uint8)
        yield from vec.write_object(ctx.rank * 512, data)
        yield from ctx.barrier()
        via_obj = yield from vec.read_objects(
            [(r * 512, 512) for r in range(ctx.nprocs)])
        via_page = yield from vec.read_range(0, size)
        return (np.concatenate(via_obj).tolist(), via_page.tolist())

    c = testbed(n_nodes=2, procs_per_node=2, page_size=PAGE,
                object_threshold_bytes=1024)
    want = np.concatenate([
        ((np.arange(512) * (r + 3)) % 251).astype(np.uint8)
        for r in range(4)]).tolist()
    for via_obj, via_page in c.run(app).values:
        assert via_obj == want
        assert via_page == want


def test_threshold_gates_path_selection():
    """Requests at or under the threshold take the object path (the
    ``object.*`` counters move); larger ones fall back to the page
    path (``pcache.faults`` move) — and both return correct bytes."""
    def app(ctx):
        vec = yield from ctx.mm.vector("prop:gate", dtype=np.uint8,
                                       size=4 * PAGE)
        small = yield from vec.read_object(10, 128)     # gated
        large = yield from vec.read_object(0, 129)      # falls back
        yield from vec.write_object(0, np.full(128, 3, np.uint8))
        yield from vec.write_object(0, np.full(129, 4, np.uint8))
        out = yield from vec.read_range(0, 129)
        return (int(small.sum()), int(large.sum()), out.tolist())

    c = testbed(n_nodes=1, procs_per_node=1, page_size=PAGE,
                object_threshold_bytes=128)
    (small_sum, large_sum, out), = c.run(app).values
    assert small_sum == 0 and large_sum == 0    # zero-filled table
    assert out == [4] * 129
    # Exactly one gated read and one gated write were counted.
    assert c.monitor.counter("object.reads") == 1
    assert c.monitor.counter("object.writes") == 1
    assert c.monitor.counter("pcache.faults") > 0


def test_threshold_zero_disables_object_counters():
    """With the gate closed, the object API is the page API: no
    ``object.*`` stats, no OBJ_* tasks."""
    def app(ctx):
        vec = yield from ctx.mm.vector("prop:off", dtype=np.uint8,
                                       size=PAGE)
        yield from vec.write_object(0, np.arange(64, dtype=np.uint8))
        out = yield from vec.read_object(0, 64)
        outs = yield from vec.read_objects([(0, 32), (32, 32)])
        return (out.tolist(),
                np.concatenate(outs).tolist())

    c = testbed(n_nodes=1, procs_per_node=1, page_size=PAGE,
                object_threshold_bytes=0)
    res = c.run(app)
    (out, outs), = res.values
    assert out == list(range(64)) and outs == list(range(64))
    assert not [k for k in res.stats if k.startswith("object.")], \
        res.stats
