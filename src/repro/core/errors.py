"""Exception hierarchy for the MegaMmap core."""


class MegaMmapError(RuntimeError):
    """Base class for all MegaMmap errors."""


class VectorError(MegaMmapError):
    """Misuse of a shared vector (bad range, dtype mismatch, ...)."""


class TransactionError(MegaMmapError):
    """Misuse of the transactional memory API (nested tx, access
    outside the declared region, write under a read-only intent)."""


class RuntimeShutdownError(MegaMmapError):
    """Operation submitted to a runtime that has been shut down."""


class QuotaExceededError(MegaMmapError):
    """A tenant exceeded a hard quota, or a job's minimum quota cannot
    be admitted against the cluster's capacity."""


class ShardBoundaryError(MegaMmapError):
    """A rack-local component was asked to touch state owned by
    another rack's simulator (sharded execution invariant violated)."""
