"""Recovery-time benchmark: RTO vs WAL log size and snapshot cadence.

A two-node durable deployment writes a volatile vector and commits it
at flush barriers, then every holder node crashes and restarts. The
restart replays each node's write-ahead intent log (the
``wal-recover*`` process spawned by ``restore_node``) and the measured
simulated wall time of that replay is the recovery-time objective.

Two sweeps, matching the knobs the durability subsystem exposes:

* **Log size** — more barrier-committed pages mean a bigger log to
  scan and more blobs to re-register; RTO must grow monotonically.
* **Snapshot cadence** (``wal_snapshot_every``) — folding the log into
  a snapshot every N barriers drops superseded record versions and
  per-barrier commit markers, so an aggressive cadence must shrink
  both the durable log footprint and the RTO relative to a
  never-snapshot log under the same write history.

Every data point verifies the recovered bytes first (a fast recovery
that restores garbage is not a recovery), then lands in the perf
trajectory via ``emit_result``; the ``recovery.pages_per_sec`` record
is gated by ``benchmarks/perf_floor.json`` in CI (higher is better —
simulated pages restored per simulated second, so the value is
deterministic and noise-free).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MM_READ_ONLY, MM_WRITE_ONLY, SeqTx
from repro.sim import AllOf
from benchmarks.common import emit_result, print_table, testbed, \
    write_csv

PAGE = 64 * 1024
VEC = "recbench"
NEVER = 10 ** 6  # a cadence no run reaches: the log never folds


def _expected(n_pages: int, rounds: int) -> np.ndarray:
    half = n_pages * PAGE // 2
    return np.concatenate([
        ((np.arange(half) + rank + 7 * (rounds - 1)) % 251)
        .astype(np.uint8) for rank in range(2)])


def _writer(ctx, n_pages, rounds):
    """Each rank writes its half and flushes ``rounds`` times; every
    flush is a transaction barrier that commits the WAL."""
    half = n_pages * PAGE // 2
    vec = yield from ctx.mm.vector(VEC, dtype=np.uint8,
                                   size=n_pages * PAGE)
    lo = ctx.rank * half
    for r in range(rounds):
        data = ((np.arange(half) + ctx.rank + 7 * r) % 251) \
            .astype(np.uint8)
        yield from vec.tx_begin(SeqTx(lo, half, MM_WRITE_ONLY))
        yield from vec.write_range(lo, data)
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        yield from ctx.barrier()


def _read_all(system, n_bytes):
    client = system.client(0, 0)
    vec = yield from client.vector(VEC, dtype=np.uint8)
    yield from vec.tx_begin(SeqTx(0, n_bytes, MM_READ_ONLY))
    out = yield from vec.read_range(0, n_bytes)
    yield from vec.tx_end()
    return out


def _run_point(n_pages: int, cadence: int, rounds: int) -> dict:
    c = testbed(n_nodes=2, procs_per_node=1, pmem_mb=64,
                pcache=(n_pages + 4) * PAGE,
                durability=True, wal_snapshot_every=cadence)
    c.run(_writer, n_pages, rounds)
    system, sim = c.system, c.sim
    holders = sorted({i.node
                      for i in system.hermes.mdm.list_bucket(VEC)})
    assert holders, "the write phase left no pages behind"
    log_bytes = sum(w.durable_bytes for w in system.durability.wals)
    for n in holders:
        system.reliability.fail_node(n)
    # Crash + restart: restore_node spawns the WAL replay; the joined
    # wall time of all per-node recoveries is the RTO.
    t0 = sim.now
    procs = [system.reliability.restore_node(n) for n in holders]
    stats = sim.run(until=AllOf(sim, [p for p in procs if p]))
    rto = sim.now - t0
    restored = sum(s["restored"] for s in stats)
    assert restored > 0, stats
    assert all(s["bad_crc"] == 0 for s in stats), stats
    # Recovered bytes must be the last barrier-committed image.
    verify = sim.process(_read_all(system, n_pages * PAGE),
                         name="verify")
    out = sim.run(until=verify)
    assert np.array_equal(out, _expected(n_pages, rounds))
    return dict(pages=n_pages, barriers=rounds,
                cadence=("never" if cadence == NEVER else cadence),
                log_kb=round(log_bytes / 1024, 1),
                rto_ms=round(rto * 1e3, 3),
                restored=restored,
                pages_per_sec=round(restored / rto, 1))


def run_recovery():
    # Sweep 1: log size (one barrier, growing committed page count).
    size_rows = [_run_point(n, NEVER, rounds=1)
                 for n in (8, 16, 32, 64)]
    # Sweep 2: snapshot cadence under the same 8-barrier rewrite
    # history of 32 pages — only the fold policy differs.
    cadence_rows = [_run_point(32, cad, rounds=8)
                    for cad in (1, 4, NEVER)]
    return size_rows, cadence_rows


run_recovery.__test__ = False


@pytest.mark.benchmark(group="recovery")
def test_recovery_rto(benchmark):
    size_rows, cadence_rows = benchmark.pedantic(
        run_recovery, rounds=1, iterations=1)
    print_table("RTO vs log size (1 barrier, never-fold log)",
                size_rows)
    print_table("RTO vs snapshot cadence (32 pages x 8 barriers)",
                cadence_rows)
    write_csv("recovery", size_rows + cadence_rows)
    # More committed state -> strictly more recovery work.
    rtos = [r["rto_ms"] for r in size_rows]
    assert rtos == sorted(rtos) and rtos[0] < rtos[-1], size_rows
    # Folding beats an append-only log: the cadence-1 run keeps only
    # the live image, the never-fold run drags every superseded
    # version and commit marker through recovery.
    by_cad = {r["cadence"]: r for r in cadence_rows}
    assert by_cad[1]["log_kb"] < by_cad["never"]["log_kb"], \
        cadence_rows
    assert by_cad[1]["rto_ms"] <= by_cad["never"]["rto_ms"], \
        cadence_rows
    for r in size_rows:
        emit_result("recovery", "recovery.rto_s",
                    r["rto_ms"] / 1e3, "s",
                    dict(pages=r["pages"], barriers=r["barriers"],
                         cadence=str(r["cadence"]),
                         log_kb=r["log_kb"]))
    for r in cadence_rows:
        emit_result("recovery", "recovery.rto_vs_cadence_s",
                    r["rto_ms"] / 1e3, "s",
                    dict(pages=r["pages"], barriers=r["barriers"],
                         cadence=str(r["cadence"]),
                         log_kb=r["log_kb"]))
    # The CI floor metric: restore throughput of the largest log-size
    # point (deterministic simulated time, not host wall-clock).
    big = size_rows[-1]
    emit_result("recovery", "recovery.pages_per_sec",
                big["pages_per_sec"], "pages/s",
                dict(pages=big["pages"], barriers=big["barriers"],
                     cadence=str(big["cadence"]),
                     log_kb=big["log_kb"]))
