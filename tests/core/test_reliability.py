"""Tests for the §V extensions: replication, node failure, integrity."""

import numpy as np
import pytest

from repro.core import MM_READ_ONLY, MM_WRITE_ONLY, SeqTx
from repro.core.reliability import NodeFailedError, corrupt_page
from tests.core.conftest import build_system, run_procs

N = 4096  # int32 elements


def _write(system, client, key="v", value_fn=None):
    data = np.arange(N, dtype=np.int32) if value_fn is None \
        else value_fn()

    def app():
        vec = yield from client.vector(key, dtype=np.int32, size=N)
        yield from vec.tx_begin(SeqTx(0, N, MM_WRITE_ONLY))
        yield from vec.write_range(0, data)
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        # Let async durability replication (and the repair loop,
        # which tops up replicas absorbed by organizer moves) land.
        yield system.sim.timeout(0.5)

    return app, data


def _read(client, key="v"):
    def app():
        vec = yield from client.vector(key, dtype=np.int32)
        yield from vec.tx_begin(SeqTx(0, N, MM_READ_ONLY))
        out = yield from vec.read_range(0, N)
        yield from vec.tx_end()
        return out

    return app


def test_replication_places_durability_copies():
    sim, system = build_system(n_nodes=3, replication_factor=2)
    client = system.client(rank=0, node=0)
    app, _ = _write(system, client)
    run_procs(sim, app())
    infos = list(system.hermes.mdm.list_bucket("v"))
    assert infos
    for info in infos:
        assert len(info.replicas) >= 1
        assert all(node != info.node for node, _ in info.replicas)
    assert system.monitor.counter("reliability.replicas") > 0


def test_no_replication_by_default():
    sim, system = build_system(n_nodes=3)
    client = system.client(rank=0, node=0)
    app, _ = _write(system, client)
    run_procs(sim, app())
    assert system.monitor.counter("reliability.replicas") == 0


def test_read_survives_node_failure_with_replication():
    sim, system = build_system(n_nodes=3, replication_factor=2)
    c0 = system.client(rank=0, node=0)
    app, data = _write(system, c0)
    run_procs(sim, app())
    # Crash every node holding a primary copy of some page.
    victim = next(iter(system.hermes.mdm.list_bucket("v"))).node
    lost = system.reliability.fail_node(victim)
    assert lost > 0
    reader_node = (victim + 1) % 3
    out, = run_procs(sim, _read(system.client(1, reader_node))())
    assert np.array_equal(out, data)
    assert system.monitor.counter("reliability.promotions") > 0


def test_volatile_data_lost_without_replication():
    sim, system = build_system(n_nodes=2)
    c0 = system.client(rank=0, node=0)
    app, _ = _write(system, c0)
    run_procs(sim, app())
    # Fail every node that holds pages of the volatile vector.
    nodes = {i.node for i in system.hermes.mdm.list_bucket("v")}
    for n in nodes:
        system.reliability.fail_node(n)
    survivor = next(n for n in range(2) if n not in nodes) \
        if len(nodes) < 2 else 0
    with pytest.raises(NodeFailedError):
        run_procs(sim, _read(system.client(1, survivor))())


def test_nonvolatile_data_restaged_from_backend_after_failure(tmp_path):
    sim, system = build_system(n_nodes=2)
    c0 = system.client(rank=0, node=0)
    url = f"posix://{tmp_path}/d.bin"
    data = np.arange(N, dtype=np.int32)

    def writer():
        vec = yield from c0.vector(url, dtype=np.int32, size=N)
        yield from vec.tx_begin(SeqTx(0, N, MM_WRITE_ONLY))
        yield from vec.write_range(0, data)
        yield from vec.tx_end()
        yield from vec.persist()

    run_procs(sim, writer())
    nodes = {i.node for i in system.hermes.mdm.list_bucket(url)}
    for n in nodes:
        system.reliability.fail_node(n)
    # Reads recover by re-staging from the real backing file.
    reader_node = 0 if 0 not in nodes else 1
    if reader_node in nodes:
        reader_node = 0  # both failed: restage targets client_node
    out, = run_procs(sim, _read(system.client(1, reader_node), url)())
    assert np.array_equal(out, data)
    assert system.monitor.counter("reliability.restages") > 0


def test_corruption_detected_and_recovered_from_replica():
    sim, system = build_system(n_nodes=3, replication_factor=2,
                               integrity_checks=True)
    c0 = system.client(rank=0, node=0)
    app, data = _write(system, c0)
    run_procs(sim, app())
    assert corrupt_page(system, "v", 0, byte_offset=5)
    # Read from the corrupted primary's own node, so the fetch cannot
    # be served by a clean replica elsewhere.
    primary = system.hermes.mdm.peek("v", 0).node

    def reread():
        client = system.client(1, primary)
        vec = yield from client.vector("v", dtype=np.int32)
        # Fresh client: its pcache is cold, so the read really hits
        # the (corrupted) scache page.
        yield from vec.tx_begin(SeqTx(0, N, MM_READ_ONLY))
        out = yield from vec.read_range(0, N)
        yield from vec.tx_end()
        return out

    out, = run_procs(sim, reread())
    assert np.array_equal(out, data)
    assert system.monitor.counter("reliability.corruptions") > 0


def test_corruption_recovered_from_backend(tmp_path):
    sim, system = build_system(n_nodes=2, integrity_checks=True)
    c0 = system.client(rank=0, node=0)
    url = f"posix://{tmp_path}/c.bin"
    data = np.arange(N, dtype=np.int32)

    def writer():
        vec = yield from c0.vector(url, dtype=np.int32, size=N)
        yield from vec.tx_begin(SeqTx(0, N, MM_WRITE_ONLY))
        yield from vec.write_range(0, data)
        yield from vec.tx_end()
        yield from vec.persist()

    run_procs(sim, writer())
    assert corrupt_page(system, url, 1, byte_offset=9)
    out, = run_procs(sim, _read(system.client(1, 1), url)())
    assert np.array_equal(out, data)


def test_corrupt_page_missing_blob_is_noop():
    sim, system = build_system()
    assert corrupt_page(system, "nothing", 0) is False


def test_recover_page_restages_when_every_replica_node_failed(
        tmp_path):
    """All copies of a persisted page die (primary *and* replica
    node): recover_page must fall through replica failover to a
    backend re-stage — the fault path the chaos campaign exercises
    with crash faults on replicated nonvolatile vectors."""
    sim, system = build_system(n_nodes=3, replication_factor=2)
    c0 = system.client(rank=0, node=0)
    url = f"posix://{tmp_path}/r.bin"
    data = np.arange(N, dtype=np.int32)

    def writer():
        vec = yield from c0.vector(url, dtype=np.int32, size=N)
        yield from vec.tx_begin(SeqTx(0, N, MM_WRITE_ONLY))
        yield from vec.write_range(0, data)
        yield from vec.tx_end()
        yield from vec.persist()
        yield system.sim.timeout(0.5)  # let replication land

    run_procs(sim, writer())
    info = system.hermes.mdm.peek(url, 0)
    assert info.replicas, "replication should have landed"
    holders = {info.node} | {n for n, _ in info.replicas}
    assert len(holders) >= 2
    for n in holders:
        system.reliability.fail_node(n)
    survivor = next(n for n in range(3) if n not in holders)
    out, = run_procs(sim, _read(system.client(1, survivor), url)())
    assert np.array_equal(out, data)
    assert system.monitor.counter("reliability.restages") > 0
    restaged = system.monitor.metrics.counter(
        "reliability_repairs", reason="backend_restage")
    assert restaged.value > 0


def test_ensure_pages_restages_dead_extent_in_one_round(tmp_path):
    """Batched stage-in over an extent whose placements died: the old
    batch path kept the dead metadata entries and handed back a
    partially-restaged extent (callers then tripped over each page one
    by one). ensure_pages must rebuild the dead pages alongside the
    missing ones with the extent's single backend read."""
    sim, system = build_system(n_nodes=2)
    c0 = system.client(rank=0, node=0)
    url = f"posix://{tmp_path}/e.bin"
    data = np.arange(2 * N, dtype=np.int32)  # 8 pages of 4 KiB

    def writer():
        vec = yield from c0.vector(url, dtype=np.int32, size=2 * N)
        yield from vec.tx_begin(SeqTx(0, 2 * N, MM_WRITE_ONLY))
        yield from vec.write_range(0, data)
        yield from vec.tx_end()
        yield from vec.persist()

    run_procs(sim, writer())
    shared = system.vectors[url]
    pages = list(range(shared.n_pages))
    for n in {i.node for i in system.hermes.mdm.list_bucket(url)}:
        system.reliability.fail_node(n)
    dead = [p for p in pages
            if system.hermes.mdm.peek(url, p).node < 0]
    assert dead, "fail_node should leave dead entries"

    def probe():
        ex = system.runtimes[0].executor
        return (yield from ex.ensure_pages(shared, pages, 0))

    infos, = run_procs(sim, probe())
    assert set(infos) == set(pages)
    for p in pages:
        assert infos[p] is not None, f"page {p} left unresolved"
        assert infos[p].node >= 0, f"page {p} still dead"
    assert system.monitor.counter("reliability.extent_restages") > 0
    out, = run_procs(sim, _read(system.client(1, 1), url)())
    assert np.array_equal(out[:N], data[:N])


def test_fail_node_mid_batch_without_replication_restages(tmp_path):
    """fail_node landing mid-batch on an unreplicated persisted
    vector: the batched read loses its source with no replica to
    promote and must restage from the backend — the partially-restaged
    extent hole this PR closes."""
    sim, system = build_system(n_nodes=2)
    c0 = system.client(rank=0, node=0)
    url = f"posix://{tmp_path}/m.bin"
    data = np.arange(2 * N, dtype=np.int32)

    def writer():
        vec = yield from c0.vector(url, dtype=np.int32, size=2 * N)
        yield from vec.tx_begin(SeqTx(0, 2 * N, MM_WRITE_ONLY))
        yield from vec.write_range(0, data)
        yield from vec.tx_end()
        yield from vec.persist()

    run_procs(sim, writer())
    victim = system.hermes.mdm.peek(url, 1).node
    reader_node = 1 - victim
    base = system.monitor.counter("hermes.gets")

    def reader():
        client = system.client(1, reader_node)
        vec = yield from client.vector(url, dtype=np.int32)
        yield from vec.tx_begin(SeqTx(0, 2 * N, MM_READ_ONLY))
        out = yield from vec.read_range(0, 2 * N)
        yield from vec.tx_end()
        return out

    def saboteur():
        # Wait for the vectored fetch to start, then crash the
        # primary while its pages are still in flight.
        while system.monitor.counter("hermes.gets") <= base:
            yield sim.timeout(1e-7)
        system.reliability.fail_node(victim)
        return system.sim.now

    out, when = run_procs(sim, reader(), saboteur())
    assert when > 0.0
    assert np.array_equal(out, data)
    assert system.monitor.counter("reliability.restages") > 0 \
        or system.monitor.counter("reliability.extent_restages") > 0


def test_node_failure_during_inflight_batched_read():
    """fail_node racing an in-flight batched read: the vectored fetch
    loses its source mid-batch and must fail over to a replica (the
    crash race the chaos engine originally flushed out)."""
    sim, system = build_system(n_nodes=3, replication_factor=2)
    c0 = system.client(rank=0, node=0)
    app, data = _write(system, c0)
    run_procs(sim, app())
    victim = system.hermes.mdm.peek("v", 0).node
    reader_node = (victim + 1) % 3
    base = system.monitor.counter("hermes.gets")

    def saboteur():
        # Wait for the batch to start fetching, then crash the
        # primary while its pages are still in flight.
        while system.monitor.counter("hermes.gets") <= base:
            yield sim.timeout(1e-7)
        system.reliability.fail_node(victim)
        return system.sim.now

    out, when = run_procs(
        sim, _read(system.client(1, reader_node))(), saboteur())
    assert when > 0.0  # the crash really happened mid-run
    assert np.array_equal(out, data)
    assert system.monitor.counter("reliability.promotions") > 0
