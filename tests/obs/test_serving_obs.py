"""Observability surfaces of the serving benchmark: the golden schema
of the ``BENCH_serving.json`` perf-trajectory records, the serving
entries in the CI floor file, and a ``repro report`` smoke over a
traced object-path serving run (the critical-path report must see the
``object`` and ``serving`` span categories)."""

import json
import math
import os

from repro.__main__ import main

REPO = os.path.join(os.path.dirname(__file__), "..", "..")

SERVING_MINI = """
name: serving-report-mini
cluster:
  n_nodes: 2
  procs_per_node: 2
  dram_mb: 16
  nvme_mb: 64
  object_threshold_bytes: 4096
app:
  kind: mm_serving
  n_keys: 4096
  obj_bytes: 64
  queries: 24
  lookups: 8
  zipf_s: 1.2
  write_frac: 0.05
  qps: 5000
  api: object
"""

# Every emit_result record carries exactly this shape (plus an
# optional critical_path breakdown); downstream tooling — the floor
# gate, trajectory diffs — parses on faith, so the committed file is
# the golden copy.
RECORD_KEYS = {"name", "metric", "value", "unit", "sim_config"}
SERVING_METRICS = {"serving.qps", "serving.page_qps",
                   "serving.p99_ms", "serving.object_speedup"}


def test_bench_serving_records_golden_schema():
    path = os.path.join(REPO, "benchmarks", "results",
                        "BENCH_serving.json")
    records = json.load(open(path, encoding="utf-8"))
    assert isinstance(records, list) and records
    for rec in records:
        assert RECORD_KEYS <= set(rec), rec
        assert rec["name"] == "serving"
        assert isinstance(rec["value"], float)
        assert math.isfinite(rec["value"]) and rec["value"] > 0
        assert isinstance(rec["sim_config"], dict)
    by_metric = {r["metric"]: r for r in records}
    assert SERVING_METRICS <= set(by_metric)
    assert by_metric["serving.qps"]["unit"] == "q/s"
    assert by_metric["serving.object_speedup"]["unit"] == "x"
    # The headline cell is pinned in the record's sim_config.
    head = by_metric["serving.object_speedup"]["sim_config"]
    assert head["obj_bytes"] == 64 and head["zipf_s"] == 1.2
    # The committed trajectory itself satisfies the acceptance bound.
    assert by_metric["serving.object_speedup"]["value"] >= 1.5


def test_repo_floor_file_gates_serving():
    path = os.path.join(REPO, "benchmarks", "perf_floor.json")
    doc = json.load(open(path, encoding="utf-8"))
    assert doc["floors"]["serving.object_speedup"] == 1.5
    assert doc["floors"]["serving.qps"] > 0


def test_cli_report_on_traced_serving_run(tmp_path, capsys):
    """``repro trace`` + ``repro report --json`` over the mini serving
    pipeline: the analysis is well-formed and the object access path
    actually shows up on the span graph."""
    path = tmp_path / "serving.yaml"
    path.write_text(SERVING_MINI)
    rc = main(["trace", str(path), "--workdir", str(tmp_path)])
    assert rc == 0
    capsys.readouterr()

    out_path = tmp_path / "rep.json"
    rc = main(["report", str(tmp_path / "trace.json"), "--json",
               "--out", str(out_path)])
    assert rc == 0
    printed = json.loads(capsys.readouterr().out)
    saved = json.loads(out_path.read_text())
    assert printed == saved
    cp = saved["critical_path"]
    assert math.isfinite(cp["total"]) and cp["total"] > 0
    # The object RPCs and the per-query serving spans are both on the
    # graph the report analyzed.
    categories = set(cp["by_category"])
    assert "object" in categories, categories
    assert "serving" in categories, categories
