"""Fig. 7: tiering study — DMSH compositions for persistent Gray-Scott.

Paper setup (IV-B3, scaled): Gray-Scott with the grid exceeding DRAM,
checkpointed every step (plotgap=1), on four storage compositions
(per node, paper GB -> our MB/4 to keep the grid:DRAM ratio):

    48D-48H | 48D-16N-32S | 48D-32N-16S | 48D-48N

Expected shape: performance improves monotonically as HDD capacity is
replaced with SSD/NVMe — ~1.5x for 16N-32S over the HDD baseline, a
further gain for 32N-16S, up to ~1.8x for all-NVMe — while financial
cost rises with tier quality ("performance is related closely to
cost").
"""

from __future__ import annotations

import pytest

from repro.apps.grayscott import mm_gray_scott
from repro.storage.tiers import GB
from benchmarks.common import emit_result, print_table, testbed, \
    write_csv

N_NODES = 4
DRAM_MB = 6
L = 96          # ~7 MB/node of live state + 3.4 MB/node of checkpoint
STEPS = 6       # per step: the flow through the tiers exceeds flash
PLOTGAP = 1

#: (label, nvme_mb, ssd_mb, hdd_mb) per node — paper's compositions
#: scaled /4 to match the 12 MB DRAM.
COMPOSITIONS = [
    ("48D-48H", 0, 0, 12),
    ("48D-16N-32S", 4, 8, 0),
    ("48D-32N-16S", 8, 4, 0),
    ("48D-48N", 12, 0, 0),
]

PAGE = 256 * 1024
PCACHE = 1024 * 1024


def run_tiering():
    rows = []
    for label, nvme, ssd, hdd in COMPOSITIONS:
        cluster = testbed(n_nodes=N_NODES, dram_mb=DRAM_MB,
                          nvme_mb=nvme, ssd_mb=ssd, hdd_mb=hdd,
                          page_size=PAGE, pcache=PCACHE)
        res = cluster.run(mm_gray_scott, L, STEPS, PLOTGAP, PCACHE)
        rows.append(dict(
            composition=label,
            tiers=cluster.describe_tiers(),
            runtime_s=round(res.runtime, 4),
            cost_dollars=round(cluster.hardware_cost(), 6),
            peak_dram_mb=round(res.peak_dram_total / 2 ** 20, 2)))
    return rows


@pytest.mark.benchmark(group="fig7")
def test_fig7_tiering(benchmark):
    rows = benchmark.pedantic(run_tiering, rounds=1, iterations=1)
    print_table("Fig. 7 — tiering study (write-intensive Gray-Scott)",
                rows)
    write_csv("fig7_tiering", rows)
    t = {r["composition"]: r["runtime_s"] for r in rows}
    cost = {r["composition"]: r["cost_dollars"] for r in rows}
    # Shape claims of Fig. 7:
    # HDD-only is the slowest composition.
    assert t["48D-48H"] == max(t.values())
    # Adding flash improves performance...
    assert t["48D-16N-32S"] < t["48D-48H"]
    # ...more NVMe improves it further...
    assert t["48D-32N-16S"] <= t["48D-16N-32S"] * 1.02
    # ...and all-NVMe is the fastest overall (paper: 1.8x vs HDD).
    assert t["48D-48N"] == min(t.values())
    assert t["48D-48H"] / t["48D-48N"] > 1.2
    # Performance is related closely to cost: the cost ordering of the
    # all-flash compositions follows the performance ordering.
    assert cost["48D-48N"] > cost["48D-32N-16S"] > cost["48D-16N-32S"] \
        > cost["48D-48H"]
    emit_result("fig7", "tiering.nvme_vs_hdd_speedup",
                t["48D-48H"] / t["48D-48N"], "x",
                dict(n_nodes=N_NODES, L=L, steps=STEPS))
