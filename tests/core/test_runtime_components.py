"""Unit tests for runtime scheduling, organizer, stager, MDM cache."""

import numpy as np
import pytest

from repro.core import MM_READ_ONLY, MM_WRITE_ONLY, SeqTx
from repro.core.memtask import MemoryTask, TaskKind
from tests.core.conftest import build_system, run_procs


# -- runtime scheduling -------------------------------------------------------

def test_same_page_tasks_serialize_in_order(dsm):
    """Writes then a read to one page must execute in submission
    order even across task sizes (read-after-write)."""
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.uint8, size=4096)
        # Large write (whole page), then tiny write, then read.
        t1 = MemoryTask(kind=TaskKind.WRITE, vector_name="v", page_idx=0,
                        client_node=0, fragments=[(0, b"\xaa" * 4096)])
        t2 = MemoryTask(kind=TaskKind.WRITE, vector_name="v", page_idx=0,
                        client_node=0, fragments=[(0, b"\xbb")])
        t3 = MemoryTask(kind=TaskKind.READ, vector_name="v", page_idx=0,
                        client_node=0, region=(0, 2))
        yield from client.submit(t1, wait=False)
        yield from client.submit(t2, wait=False)
        out = yield from client.submit(t3, wait=True)
        return out

    (out,) = run_procs(sim, app())
    assert out == b"\xbb\xaa"


def test_dynamic_core_scaling_grows_under_load():
    # 64 KB pages so the writes exceed the 16 KB low-latency split and
    # land on the dynamically scaled high-latency core pool; a short
    # controller period so the backlog is observed while it exists.
    sim, system = build_system(page_size=64 * 1024,
                               organizer_period=1e-5)
    client = system.client(rank=0, node=0)
    rt = system.runtimes[0]
    cfg = system.config
    assert rt.high_cores.capacity == cfg.workers_min

    def app():
        vec = yield from client.vector("v", dtype=np.uint8,
                                       size=64 * 65536)
        # Swamp the runtime with large writes.
        for p in range(64):
            t = MemoryTask(kind=TaskKind.WRITE, vector_name="v",
                           page_idx=p, client_node=0,
                           fragments=[(0, b"\0" * 65536)])
            yield from client.submit(t, wait=False)
        yield from client.drain()
        return rt.high_cores.capacity

    run_procs(sim, app())
    assert system.monitor.counter("rt0.scale_up") > 0


def test_scaling_controller_shrinks_on_sustained_low_backlog():
    """Regression: the controller only shrank the high-latency pool
    when the backlog was *exactly zero*, so any trickle of tasks
    pinned it at ``workers_max`` forever. It must shrink after
    ``scale_down_periods`` consecutive low-backlog (< capacity)
    observations — and a burst in between must reset the streak."""
    sim, system = build_system(scale_down_periods=3)
    rt = system.runtimes[0]
    cfg = system.config

    # Grow to the max under heavy backlog.
    while rt.high_cores.capacity < cfg.workers_max:
        rt._scale_tick(backlog=2 * rt.high_cores.capacity + 1)
    assert rt.high_cores.capacity == cfg.workers_max
    assert system.monitor.counter("rt0.scale_up") > 0

    # A nonzero trickle (backlog 1 < capacity) for N periods shrinks.
    for _ in range(cfg.scale_down_periods - 1):
        rt._scale_tick(backlog=1)
    assert rt.high_cores.capacity == cfg.workers_max  # not yet
    rt._scale_tick(backlog=1)
    assert rt.high_cores.capacity == cfg.workers_max - 1
    assert system.monitor.counter("rt0.scale_down") == 1

    # A medium burst (capacity <= backlog <= 2*capacity) resets the
    # streak without growing.
    rt._scale_tick(backlog=1)
    rt._scale_tick(backlog=1)
    rt._scale_tick(backlog=rt.high_cores.capacity + 1)
    rt._scale_tick(backlog=1)
    rt._scale_tick(backlog=1)
    assert rt.high_cores.capacity == cfg.workers_max - 1  # streak reset
    rt._scale_tick(backlog=1)
    assert rt.high_cores.capacity == cfg.workers_max - 2

    # Sustained idleness bottoms out at workers_min, never below.
    for _ in range(10 * cfg.scale_down_periods):
        rt._scale_tick(backlog=0)
    assert rt.high_cores.capacity == cfg.workers_min


def test_failed_task_propagates_to_waiter(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.uint8, size=4096)
        bad = MemoryTask(kind=TaskKind.WRITE, vector_name="v",
                         page_idx=0, client_node=0,
                         fragments=[(4000, b"\0" * 1000)])  # overflow
        try:
            yield from client.submit(bad, wait=True)
        except Exception as exc:
            return type(exc).__name__

    (name,) = run_procs(sim, app())
    assert name == "MegaMmapError"


# -- organizer ----------------------------------------------------------------

def test_organizer_demotes_zero_scored_pages():
    sim, system = build_system(dram_mb=4, nvme_mb=16)
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.uint8, size=8192)
        yield from vec.tx_begin(SeqTx(0, 8192, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.ones(8192, dtype=np.uint8))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        # Wait out the score window first: the tx itself scored these
        # pages hot, and the organizer max-merges within the window.
        yield sim.timeout(2 * system.config.score_window)
        yield from client.submit_scores(vec.shared,
                                        [(0, 0.0, 0), (1, 0.0, 0)])
        yield from client.drain()
        yield sim.timeout(1.0)
        infos = [system.hermes.mdm.peek("v", p) for p in (0, 1)]
        return [i.tier for i in infos]

    (tiers,) = run_procs(sim, app())
    assert all(t in ("nvme", "hdd") for t in tiers)


def test_organizer_score_window_takes_max(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.uint8, size=4096)
        system.organizer.ingest(vec.shared, [(0, 0.2, 0)])
        system.organizer.ingest(vec.shared, [(0, 0.9, 1)])
        system.organizer.ingest(vec.shared, [(0, 0.4, 0)])
        pend = system.organizer._pending[("v", 0)]
        yield sim.timeout(0)
        return pend.score, pend.node_hint

    (out,) = run_procs(sim, app())
    assert out == (0.9, 1)


def test_organizer_disabled_ablation():
    sim, system = build_system(organizer_enabled=False)
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.uint8, size=4096)
        yield from vec.tx_begin(SeqTx(0, 4096, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.ones(4096, dtype=np.uint8))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        yield from client.submit_scores(vec.shared, [(0, 0.0, 0)])
        yield from client.drain()
        yield sim.timeout(1.0)
        return system.hermes.mdm.peek("v", 0).tier

    (tier,) = run_procs(sim, app())
    assert tier == "dram"  # never demoted
    assert system.monitor.counter("organizer.moves") == 0


# -- stager ---------------------------------------------------------------------

def test_background_flusher_persists_without_explicit_sync(tmp_path):
    sim, system = build_system(flush_period=0.01)
    client = system.client(rank=0, node=0)
    url = f"posix://{tmp_path}/bg.bin"
    data = np.arange(2048, dtype=np.float32)

    def app():
        vec = yield from client.vector(url, dtype=np.float32, size=2048)
        yield from vec.tx_begin(SeqTx(0, 2048, MM_WRITE_ONLY))
        yield from vec.write_range(0, data)
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        # No persist() call: the active flusher should stage out dirty
        # pages during "computation".
        yield sim.timeout(2.0)
        return len(vec.shared.dirty_pages)

    (dirty,) = run_procs(sim, app())
    assert dirty == 0
    on_disk = np.fromfile(tmp_path / "bg.bin", dtype=np.float32)
    assert np.array_equal(on_disk[:2048], data)


def test_stage_out_zeroes_page_score(tmp_path):
    sim, system = build_system()
    client = system.client(rank=0, node=0)
    url = f"posix://{tmp_path}/s.bin"

    def app():
        vec = yield from client.vector(url, dtype=np.uint8, size=4096)
        yield from vec.tx_begin(SeqTx(0, 4096, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.ones(4096, dtype=np.uint8))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        yield from system.stager.stage_out(vec.shared, 0, 0)
        return system.hermes.mdm.peek(url, 0).score

    (score,) = run_procs(sim, app())
    assert score == 0.0


def test_stage_in_extent_reads_whole_extent_once(tmp_path):
    sim, system = build_system(stage_extent=8 * 4096)
    data = np.arange(16 * 1024, dtype=np.uint8)  # 4 pages of 4096
    path = tmp_path / "in.bin"
    path.write_bytes(data.tobytes())
    client = system.client(rank=0, node=0)
    url = f"posix://{path}"

    def app():
        vec = yield from client.vector(url, dtype=np.uint8)
        yield from vec.tx_begin(SeqTx(0, 4096, MM_READ_ONLY))
        yield from vec.read_range(0, 1)  # fault page 0
        yield from vec.tx_end()
        # All 4 pages of the extent got materialized by one fault.
        return [system.hermes.mdm.peek(url, p) is not None
                for p in range(4)]

    (present,) = run_procs(sim, app())
    assert all(present)
    assert system.monitor.counter("stager.bytes_in") == 16 * 1024


# -- MDM cache -----------------------------------------------------------------

def test_mdm_cache_hits_skip_rpcs(dsm):
    sim, system = dsm
    mdm = system.hermes.mdm
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.uint8, size=4096)
        yield from vec.tx_begin(SeqTx(0, 4096, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.ones(4096, dtype=np.uint8))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        before = mdm.rpcs
        for _ in range(5):
            yield from system.hermes.get(0, "v", 0)
        return mdm.rpcs - before

    (extra,) = run_procs(sim, app())
    assert extra == 0
    assert mdm.cache_hits >= 5


def test_mdm_cache_invalidated_on_delete(dsm):
    sim, system = dsm

    def app():
        yield from system.hermes.put(0, "b", "k", b"x" * 10)
        yield from system.hermes.get(0, "b", "k")
        yield from system.hermes.delete(0, "b", "k")
        info = yield from system.hermes.mdm.try_get(0, "b", "k")
        return info

    (info,) = run_procs(sim, app())
    assert info is None
