"""Vectorized Gray-Scott stencil kernels (Pearson 1993).

The model: two chemicals U and V on a periodic 3-D grid,

    du/dt = Du ∇²u - u v² + F (1 - u)
    dv/dt = Dv ∇²v + u v² - (F + k) v

advanced with forward Euler and a 7-point Laplacian. Parameters
default to the adiosvm gray-scott tutorial values the paper's
implementation derives from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class GSParams:
    Du: float = 0.2
    Dv: float = 0.1
    F: float = 0.01
    k: float = 0.05
    dt: float = 1.0
    noise: float = 0.0


def init_fields(L: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Initial condition: U=1 everywhere, a perturbed V block in the
    center (deterministic, so each slab can be cut out locally)."""
    u = np.ones((L, L, L), dtype=np.float64)
    v = np.zeros((L, L, L), dtype=np.float64)
    lo, hi = L // 3, max(L // 3 + 1, 2 * L // 3)
    u[lo:hi, lo:hi, lo:hi] = 0.25
    v[lo:hi, lo:hi, lo:hi] = 0.33
    return u, v


def init_slab(L: int, z0: int, nz: int,
              seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """The z-planes [z0, z0+nz) of :func:`init_fields`, computed
    directly (no full-grid temporary on any rank)."""
    u = np.ones((nz, L, L), dtype=np.float64)
    v = np.zeros((nz, L, L), dtype=np.float64)
    lo, hi = L // 3, max(L // 3 + 1, 2 * L // 3)
    zlo, zhi = max(lo, z0), min(hi, z0 + nz)
    if zlo < zhi:
        u[zlo - z0:zhi - z0, lo:hi, lo:hi] = 0.25
        v[zlo - z0:zhi - z0, lo:hi, lo:hi] = 0.33
    return u, v


def _laplacian_padded(a: np.ndarray) -> np.ndarray:
    """7-point Laplacian of the interior of a z-padded array.

    ``a`` has one ghost plane on each z side (axis 0) and is periodic
    in x/y (axes 1, 2) via roll.
    """
    interior = a[1:-1]
    lap = (a[2:] + a[:-2]
           + np.roll(interior, 1, axis=1) + np.roll(interior, -1, axis=1)
           + np.roll(interior, 1, axis=2) + np.roll(interior, -1, axis=2)
           - 6.0 * interior)
    return lap


def gs_step_slab(u: np.ndarray, v: np.ndarray,
                 u_lo: np.ndarray, u_hi: np.ndarray,
                 v_lo: np.ndarray, v_hi: np.ndarray,
                 params: GSParams) -> Tuple[np.ndarray, np.ndarray]:
    """Advance one z-slab one step given its ghost planes.

    ``u_lo`` is the plane below slab plane 0 (periodic neighbor),
    ``u_hi`` the plane above the last.
    """
    up = np.concatenate([u_lo[None], u, u_hi[None]], axis=0)
    vp = np.concatenate([v_lo[None], v, v_hi[None]], axis=0)
    lap_u = _laplacian_padded(up)
    lap_v = _laplacian_padded(vp)
    uvv = u * v * v
    du = params.Du * lap_u - uvv + params.F * (1.0 - u)
    dv = params.Dv * lap_v + uvv - (params.F + params.k) * v
    return u + params.dt * du, v + params.dt * dv


def gs_reference(L: int, steps: int, params: GSParams = GSParams(),
                 seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Single-process whole-grid reference (verification oracle)."""
    u, v = init_fields(L, seed)
    for _ in range(steps):
        u, v = gs_step_slab(u, v, u[-1], u[0], v[-1], v[0], params)
    return u, v
