"""MPI DBSCAN's explicit staged write-back (run coalescing to PFS)."""

import numpy as np
import pytest

from repro.apps.datagen import write_parquet_points
from repro.apps.dbscan import mpi_dbscan, reference_dbscan
from repro.apps.datagen import as_xyz, generate_points
from repro.apps.kmeans.common import match_accuracy
from tests.apps.conftest import make_cluster


def test_mpi_dbscan_writes_assignment_file(tmp_path):
    path = tmp_path / "pts.parquet"
    truth = write_parquet_points(str(path), 2000, 4, seed=17)
    cluster = make_cluster()
    cluster.run(mpi_dbscan, f"parquet://{path}", 2.5, 8, 0,
                "/out/assign.bin")
    assert cluster.pfs.exists("/out/assign.bin")
    raw = bytes(cluster.pfs._file("/out/assign.bin"))
    labels = np.frombuffer(raw, dtype=np.int64)
    assert len(labels) == 2000
    assert match_accuracy(labels, truth) > 0.85
    # Agrees with the single-process oracle up to label renaming.
    pts, _ = generate_points(2000, 4, seed=17)
    ref = reference_dbscan(as_xyz(pts), 2.5, 8)
    assert match_accuracy(labels, ref) > 0.95
