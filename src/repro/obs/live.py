"""Streaming windowed observability: the live rollup store and ticker.

:mod:`repro.obs.report` answers *where the time went* after a run;
this module answers *what is happening right now*, cheaply enough to
leave on for production-shaped runs. A sim-time ticker closes one
fixed window per ``obs_window`` seconds; at each tick the
:class:`WindowedStore` scrapes the monitor's flat counters/gauges, the
:class:`~repro.sim.monitor.MetricsRegistry`'s labeled series, and the
tracer's per-category durations into per-window rollups
(sum/count/min/max + a bounded :class:`QuantileSketch`) kept in a ring
of ``obs_retention`` windows — O(1) memory regardless of run length.

Scrape-at-tick is the load-bearing design decision: nothing hooks the
hot paths, the ticker is a plain timeout-yielding process that only
*reads* simulated state, and the sampler/detector/SLO consumers all
run off the same scrape. Observability-on runs therefore produce
bit-identical application results to observability-off runs (the
kernel-equivalence suite pins this).

Consumers:

* :mod:`repro.obs.slo` evaluates burn-rate alerts against windowed
  bad-fractions each tick;
* :mod:`repro.obs.anomaly` detectors score windowed series each tick;
* the tracer's tail sampler refreshes its per-category slowness
  thresholds from the windowed duration quantiles each tick;
* ``repro top`` renders the store directly.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, \
    Optional, Tuple

from repro.sim.monitor import Monitor, _labelset

__all__ = ["QuantileSketch", "WindowStats", "WindowedStore", "LiveObs"]

LabelSet = Tuple[Tuple[str, str], ...]


def _labels_key(labels) -> LabelSet:
    """Normalize dict / kwarg / tuple label specs to the registry's
    sorted-tuple form."""
    if not labels:
        return ()
    if isinstance(labels, dict):
        return _labelset(labels)
    return tuple(sorted((str(k), str(v)) for k, v in labels))


class QuantileSketch:
    """Bounded, deterministic, mergeable quantile summary.

    A KLL-style multi-level compactor with deterministic survivor
    selection: level ``i`` buffers values that each stand for ``2**i``
    original observations; when a level's buffer exceeds ``capacity``
    it is sorted and every other value (parity alternating per
    compaction — deterministic, no randomness) is promoted to level
    ``i + 1``, discarding the rest. Memory is O(``capacity`` x
    log(n)); any rank is off by at most a small fraction of ``n``.
    Identical insertion sequences produce identical sketches, so
    sketch-derived alerts are reproducible run-to-run. ``count`` and
    ``total`` are tracked exactly regardless of compaction.
    """

    __slots__ = ("levels", "count", "total", "capacity", "_parity")

    CAPACITY = 64

    def __init__(self, capacity: Optional[int] = None):
        #: ``levels[i]`` holds values of implicit weight ``2**i``.
        self.levels: List[List[float]] = [[]]
        self.count = 0.0
        self.total = 0.0
        self.capacity = self.CAPACITY if capacity is None \
            else int(capacity)
        self._parity = 0

    @property
    def size(self) -> int:
        """Stored values across all levels (the memory bound)."""
        return sum(len(lvl) for lvl in self.levels)

    def add(self, value: float) -> None:
        self.count += 1.0
        self.total += value
        self.levels[0].append(value)
        if len(self.levels[0]) > self.capacity:
            self._compact()

    def add_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.add(v)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` in level-wise (weights line up exactly)."""
        for i, lvl in enumerate(other.levels):
            while i >= len(self.levels):
                self.levels.append([])
            self.levels[i].extend(lvl)
        self.count += other.count
        self.total += other.total
        self._compact()
        return self

    def _compact(self) -> None:
        i = 0
        while i < len(self.levels):
            if len(self.levels[i]) > self.capacity:
                buf = sorted(self.levels[i])
                if i + 1 == len(self.levels):
                    self.levels.append([])
                self._parity ^= 1
                self.levels[i + 1].extend(buf[self._parity::2])
                self.levels[i] = []
            i += 1

    def _weighted(self) -> List[Tuple[float, float]]:
        out: List[Tuple[float, float]] = []
        for i, lvl in enumerate(self.levels):
            w = float(1 << i)
            out.extend((v, w) for v in lvl)
        return out

    def quantile(self, q: float) -> float:
        """Weighted nearest-rank quantile, ``q`` in [0, 100]."""
        entries = sorted(self._weighted())
        if not entries:
            return 0.0
        # Rank against the retained weight (survivor parity makes it
        # differ from ``count`` by at most one value per compaction).
        weight = sum(w for _v, w in entries)
        target = q / 100.0 * weight
        cum = 0.0
        for value, w in entries:
            cum += w
            if cum >= target:
                return value
        return entries[-1][0]

    def frac_above(self, threshold: float) -> float:
        """Fraction of observations strictly above ``threshold``."""
        entries = self._weighted()
        weight = sum(w for _v, w in entries)
        if not weight:
            return 0.0
        above = sum(w for v, w in entries if v > threshold)
        return above / weight


class WindowStats:
    """Rollup of the observations that landed in one window."""

    __slots__ = ("t0", "t1", "count", "total", "vmin", "vmax", "sketch")

    def __init__(self, t0: float, t1: float,
                 values: Optional[Iterable[float]] = None):
        self.t0 = t0
        self.t1 = t1
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self.sketch = QuantileSketch()
        if values is not None:
            for v in values:
                self.observe(v)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        self.sketch.add(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class WindowedStore:
    """Fixed-interval rollup rings over every live metric source.

    Keys are ``(name, labelset)`` like the registry's; the monitor's
    flat counters/gauges appear with an empty labelset, and tracer
    categories appear as ``("trace.<category>", ())``. Three ring
    families:

    * **counters** — ``(t0, t1, delta)`` per window, appended only for
      nonzero deltas (queries treat missing windows as zero);
    * **gauges** — ``(t0, t1, value)`` point-sampled at each tick;
    * **histograms** — ``(t0, t1, WindowStats)`` over the observations
      (histogram ``observe`` calls, span durations) that landed in the
      window.

    Every ring is a ``deque(maxlen=retention)``; per-source cursors
    (last counter value, observation counts consumed) make each tick
    O(live series), not O(history).
    """

    def __init__(self, monitor: Monitor, tracer=None,
                 window: float = 0.01, retention: int = 120):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if retention < 2:
            raise ValueError(f"retention must be >= 2, got {retention}")
        self.monitor = monitor
        self.tracer = tracer if tracer is not None else monitor.tracer
        self.window = window
        self.retention = retention
        self.counters: Dict[Tuple[str, LabelSet],
                            Deque[Tuple[float, float, float]]] = {}
        self.gauges: Dict[Tuple[str, LabelSet],
                          Deque[Tuple[float, float, float]]] = {}
        self.histograms: Dict[Tuple[str, LabelSet],
                              Deque[Tuple[float, float, WindowStats]]] = {}
        self._last_counter: Dict[Tuple[str, LabelSet], float] = {}
        self._last_obs: Dict[Tuple[str, LabelSet], int] = {}
        self.last_tick = monitor.sim.now
        self.ticks = 0

    # -- scraping ----------------------------------------------------------
    def _ring(self, rings, key):
        ring = rings.get(key)
        if ring is None:
            ring = rings[key] = deque(maxlen=self.retention)
        return ring

    def tick(self, now: float) -> None:
        """Close the window ``[last_tick, now)``."""
        t0 = self.last_tick
        if now <= t0:
            return
        self._scrape_counters(t0, now)
        self._scrape_gauges(t0, now)
        self._scrape_histograms(t0, now)
        self.last_tick = now
        self.ticks += 1

    def _scrape_counters(self, t0: float, t1: float) -> None:
        last = self._last_counter
        for name, value in self.monitor.counters.items():
            key = (name, ())
            delta = value - last.get(key, 0.0)
            if delta:
                last[key] = value
                self._ring(self.counters, key).append((t0, t1, delta))
        for (name, ls), c in self.monitor.metrics.counters.items():
            key = (name, ls)
            delta = c.value - last.get(key, 0.0)
            if delta:
                last[key] = c.value
                self._ring(self.counters, key).append((t0, t1, delta))

    def _scrape_gauges(self, t0: float, t1: float) -> None:
        for name, g in self.monitor.gauges.items():
            self._ring(self.gauges, (name, ())).append(
                (t0, t1, g.value))
        for (name, ls), g in self.monitor.metrics.gauges.items():
            self._ring(self.gauges, (name, ls)).append(
                (t0, t1, g.value))

    def _scrape_histograms(self, t0: float, t1: float) -> None:
        consumed = self._last_obs
        for (name, ls), h in self.monitor.metrics.histograms.items():
            key = (name, ls)
            seen = consumed.get(key, 0)
            obs = h.observations
            if len(obs) > seen:
                consumed[key] = len(obs)
                self._ring(self.histograms, key).append(
                    (t0, t1, WindowStats(t0, t1, obs[seen:])))
        tracer = self.tracer
        if tracer is None or not getattr(tracer, "enabled", False):
            return
        for cat, durs in tracer._durations.items():
            if "[" in cat:       # tenant-split series duplicate the base
                continue
            key = (f"trace.{cat}", ())
            seen = consumed.get(key, 0)
            if len(durs) > seen:
                consumed[key] = len(durs)
                self._ring(self.histograms, key).append(
                    (t0, t1, WindowStats(t0, t1, durs[seen:])))

    # -- queries -----------------------------------------------------------
    def _windows(self, rings, name, labels, window_s, now):
        ring = rings.get((name, _labels_key(labels)))
        if not ring:
            return []
        if window_s is None:
            return list(ring)
        cutoff = (self.last_tick if now is None else now) - window_s
        return [entry for entry in ring if entry[1] > cutoff]

    def delta(self, name: str, labels=(), window_s: Optional[float] = None,
              now: Optional[float] = None) -> float:
        """Total counter increase over the trailing ``window_s``."""
        return sum(d for _t0, _t1, d in
                   self._windows(self.counters, name, labels,
                                 window_s, now))

    def rate(self, name: str, labels=(), window_s: Optional[float] = None,
             now: Optional[float] = None) -> float:
        """Counter increase per second over the trailing window."""
        if window_s is None:
            window_s = self.window * self.retention
        d = self.delta(name, labels, window_s, now)
        return d / window_s if window_s > 0 else 0.0

    def gauge_last(self, name: str, labels=()) -> Optional[float]:
        ring = self.gauges.get((name, _labels_key(labels)))
        return ring[-1][2] if ring else None

    def gauge_series(self, name: str, labels=(),
                     window_s: Optional[float] = None
                     ) -> List[Tuple[float, float]]:
        """``(t1, value)`` samples over the trailing window."""
        return [(t1, v) for _t0, t1, v in
                self._windows(self.gauges, name, labels, window_s, None)]

    def window_stats(self, name: str, labels=(),
                     window_s: Optional[float] = None,
                     now: Optional[float] = None
                     ) -> Optional[WindowStats]:
        """Merged rollup of every histogram window in the trailing
        ``window_s`` (None when no observations landed)."""
        entries = self._windows(self.histograms, name, labels,
                                window_s, now)
        if not entries:
            return None
        merged = WindowStats(entries[0][0], entries[-1][1])
        for _t0, _t1, stats in entries:
            merged.count += stats.count
            merged.total += stats.total
            merged.vmin = min(merged.vmin, stats.vmin)
            merged.vmax = max(merged.vmax, stats.vmax)
            merged.sketch.merge(stats.sketch)
        return merged

    def quantile(self, name: str, q: float, labels=(),
                 window_s: Optional[float] = None) -> float:
        stats = self.window_stats(name, labels, window_s)
        return stats.sketch.quantile(q) if stats is not None else 0.0

    def frac_above(self, name: str, threshold: float, labels=(),
                   window_s: Optional[float] = None
                   ) -> Tuple[float, float]:
        """``(fraction_above, observation_count)`` over the trailing
        window — the SLO monitor's bad-fraction primitive."""
        stats = self.window_stats(name, labels, window_s)
        if stats is None or not stats.count:
            return 0.0, 0.0
        return stats.sketch.frac_above(threshold), float(stats.count)

    def keys(self) -> Dict[str, List[Tuple[str, LabelSet]]]:
        """Live series keys by family (for ``repro top``)."""
        return {"counters": sorted(self.counters),
                "gauges": sorted(self.gauges),
                "histograms": sorted(self.histograms)}


class LiveObs:
    """The always-on observability plane of one simulated deployment.

    Owns the :class:`WindowedStore` and the sim-time ticker process;
    optional attachments (SLO monitor, anomaly detectors, the trace
    sampler, ``repro top``'s renderer) all evaluate once per tick, in
    a fixed order:

    1. scrape the window into the store;
    2. refresh the tail sampler's per-category slowness thresholds;
    3. evaluate SLO burn rates (may fire/resolve alerts);
    4. run anomaly detectors (append structured events);
    5. invoke registered ``on_tick(obs, now)`` callbacks.

    The ticker never mutates simulated state, so installing it leaves
    application results bit-identical.
    """

    def __init__(self, sim, monitor: Monitor, tracer=None,
                 window: float = 0.01, retention: int = 120):
        self.sim = sim
        self.monitor = monitor
        self.store = WindowedStore(monitor, tracer=tracer,
                                   window=window, retention=retention)
        self.slo = None
        self.detectors: List[Any] = []
        self.on_tick: List[Callable[["LiveObs", float], None]] = []
        #: Structured anomaly events, oldest first:
        #: ``{"t", "detector", "metric", "value", "zscore",
        #: "direction"}``.
        self.events: List[Dict[str, Any]] = []
        self.ticks = 0
        self._proc = None

    @classmethod
    def attach(cls, cluster, window: Optional[float] = None,
               retention: Optional[int] = None) -> "LiveObs":
        """Build from a :class:`~repro.cluster.SimCluster` (knobs
        default from its config) and install the ticker."""
        cfg = cluster.spec.config
        obs = cls(cluster.sim, cluster.monitor, tracer=cluster.tracer,
                  window=cfg.obs_window if window is None else window,
                  retention=(cfg.obs_retention if retention is None
                             else retention))
        return obs.install(cluster.system)

    def install(self, system=None) -> "LiveObs":
        """Spawn the ticker; expose self as ``system.obs`` so runtime
        components (ReallocLoop, chaos hooks) can consume events."""
        if system is not None:
            system.obs = self
        sampler = getattr(self.store.tracer, "sampler", None) \
            if self.store.tracer is not None else None
        if sampler is not None:
            sampler.obs = self
        if self._proc is None:
            self._proc = self.sim.process(self._run(), name="obs")
        return self

    def _run(self):
        while True:
            yield self.sim.timeout(self.store.window)
            self.tick()

    def tick(self) -> None:
        now = self.sim.now
        self.store.tick(now)
        self.ticks += 1
        tracer = self.store.tracer
        sampler = getattr(tracer, "sampler", None) if tracer else None
        if sampler is not None:
            sampler.refresh_thresholds(self.store)
        if self.slo is not None:
            self.slo.evaluate(now)
        for det in self.detectors:
            self.events.extend(det.tick(self.store, now))
        for cb in self.on_tick:
            cb(self, now)

    # -- consumption -------------------------------------------------------
    def events_since(self, t: float,
                     detector: Optional[str] = None
                     ) -> List[Dict[str, Any]]:
        """Anomaly events at or after simulated time ``t``."""
        return [e for e in self.events
                if e["t"] >= t and (detector is None
                                    or e["detector"] == detector)]

    def alert_active(self) -> bool:
        """Whether any attached SLO alert is currently firing (the
        tail sampler keeps every span inside firing windows)."""
        return self.slo is not None and bool(self.slo.firing)
