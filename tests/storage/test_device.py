"""Unit tests for the Device model and DMSH."""

import numpy as np
import pytest

from repro.sim import Monitor, Simulator
from repro.storage import (
    DMSH,
    DRAM,
    HDD,
    NVME,
    SATA_SSD,
    Device,
    DeviceFullError,
    DeviceSpec,
)
from repro.storage.tiers import GB, MB, dollars


def run(sim, gen):
    return sim.run(until=sim.process(gen))


def test_put_get_roundtrip_bit_exact():
    sim = Simulator()
    dev = Device(sim, NVME.with_capacity(MB), "d0")
    data = np.arange(100, dtype=np.float64)

    def proc():
        yield from dev.put("k", data)
        raw = yield from dev.get("k")
        return np.frombuffer(raw, dtype=np.float64)

    out = run(sim, proc())
    assert np.array_equal(out, data)


def test_put_charges_latency_plus_bandwidth_time():
    sim = Simulator()
    spec = DeviceSpec("x", capacity=MB, read_bw=100.0, write_bw=50.0,
                      latency=1.0)
    dev = Device(sim, spec, "d0")

    def proc():
        yield from dev.put("k", b"\0" * 100)

    run(sim, proc())
    assert sim.now == pytest.approx(1.0 + 100 / 50.0)


def test_read_write_bandwidths_differ():
    sim = Simulator()
    spec = DeviceSpec("x", capacity=MB, read_bw=100.0, write_bw=50.0,
                      latency=0.0)
    dev = Device(sim, spec, "d0")

    def proc():
        yield from dev.put("k", b"\0" * 100)
        t_write = sim.now
        yield from dev.get("k")
        return t_write, sim.now - t_write

    t_write, t_read = run(sim, proc())
    assert t_write == pytest.approx(2.0)
    assert t_read == pytest.approx(1.0)


def test_capacity_enforced():
    sim = Simulator()
    dev = Device(sim, NVME.with_capacity(100), "d0")

    def proc():
        yield from dev.put("k", b"\0" * 101)

    with pytest.raises(DeviceFullError):
        run(sim, proc())


def test_replace_blob_accounts_delta():
    sim = Simulator()
    dev = Device(sim, NVME.with_capacity(100), "d0")

    def proc():
        yield from dev.put("k", b"\0" * 80)
        yield from dev.put("k", b"\0" * 60)  # shrink: must fit
        return dev.used

    assert run(sim, proc()) == 60


def test_delete_frees_capacity():
    sim = Simulator()
    dev = Device(sim, NVME.with_capacity(100), "d0")

    def proc():
        yield from dev.put("k", b"\0" * 80)
        freed = dev.delete("k")
        return freed, dev.used, "k" in dev

    assert run(sim, proc()) == (80, 0, False)


def test_get_range_partial_read():
    sim = Simulator()
    dev = Device(sim, NVME.with_capacity(MB), "d0")

    def proc():
        yield from dev.put("k", bytes(range(100)))
        part = yield from dev.get_range("k", 10, 5)
        return part

    assert run(sim, proc()) == bytes([10, 11, 12, 13, 14])


def test_get_range_out_of_bounds():
    sim = Simulator()
    dev = Device(sim, NVME.with_capacity(MB), "d0")

    def proc():
        yield from dev.put("k", b"\0" * 10)
        yield from dev.get_range("k", 8, 5)

    with pytest.raises(IndexError):
        run(sim, proc())


def test_put_range_partial_overwrite():
    sim = Simulator()
    dev = Device(sim, NVME.with_capacity(MB), "d0")

    def proc():
        yield from dev.put("k", b"\0" * 10)
        yield from dev.put_range("k", 3, b"\xff\xff")
        return dev.peek("k")

    assert run(sim, proc()) == b"\0\0\0\xff\xff\0\0\0\0\0"


def test_device_serializes_concurrent_transfers():
    sim = Simulator()
    spec = DeviceSpec("x", capacity=MB, read_bw=100.0, write_bw=100.0,
                      latency=0.0)
    dev = Device(sim, spec, "d0")

    def writer(key):
        yield from dev.put(key, b"\0" * 100)

    sim.process(writer("a"))
    sim.process(writer("b"))
    sim.run()
    assert sim.now == pytest.approx(2.0)  # serialized, not parallel


def test_wear_counter_tracks_bytes_written():
    sim = Simulator()
    dev = Device(sim, NVME.with_capacity(MB), "d0")

    def proc():
        yield from dev.put("a", b"\0" * 100)
        yield from dev.put("a", b"\0" * 100)

    run(sim, proc())
    assert dev.bytes_written == 200


def test_monitor_integration():
    sim = Simulator()
    mon = Monitor(sim)
    dev = Device(sim, NVME.with_capacity(MB), "d0", monitor=mon)

    def proc():
        yield from dev.put("a", b"\0" * 64)

    run(sim, proc())
    assert mon.counter("d0.bytes_write") == 64
    assert mon.peak("d0.used") == 64


def test_perf_scores_are_ordered():
    assert DRAM.perf_score() > NVME.perf_score() > SATA_SSD.perf_score() \
        > HDD.perf_score()
    assert DRAM.perf_score() == 1.0


def test_hdd_is_6_to_10x_slower_than_ssd():
    ratio = SATA_SSD.read_bw / HDD.read_bw
    assert 6 <= ratio <= 10


def test_dollars_matches_paper_costs():
    assert dollars(HDD, GB) == pytest.approx(0.02)
    assert dollars(SATA_SSD, GB) == pytest.approx(0.04)
    assert dollars(NVME, GB) == pytest.approx(0.08)


def test_dmsh_orders_fastest_first():
    sim = Simulator()
    dmsh = DMSH(sim, [HDD, DRAM, NVME])  # deliberately shuffled
    kinds = [d.spec.kind for d in dmsh]
    assert kinds == ["dram", "nvme", "hdd"]


def test_dmsh_rejects_duplicate_tiers():
    sim = Simulator()
    with pytest.raises(ValueError):
        DMSH(sim, [DRAM, DRAM])


def test_dmsh_fastest_with_room_skips_full_tier():
    sim = Simulator()
    dmsh = DMSH(sim, [DRAM.with_capacity(10), NVME.with_capacity(100)])

    def proc():
        yield from dmsh.tier("dram").put("x", b"\0" * 10)
        return dmsh.fastest_with_room(5)

    dev = run(sim, proc())
    assert dev.spec.kind == "nvme"


def test_dmsh_tier_for_score_maps_extremes():
    sim = Simulator()
    dmsh = DMSH(sim, [DRAM.with_capacity(MB), NVME.with_capacity(MB),
                      HDD.with_capacity(MB)])
    assert dmsh.tier_for_score(1.0, 10).spec.kind == "dram"
    assert dmsh.tier_for_score(0.0, 10).spec.kind == "hdd"


def test_dmsh_describe_label():
    sim = Simulator()
    dmsh = DMSH(sim, [DRAM.with_capacity(48 * MB),
                      NVME.with_capacity(16 * MB),
                      SATA_SSD.with_capacity(32 * MB)])
    assert dmsh.describe() == "48D-16N-32S"


def test_dmsh_hardware_cost_composition():
    sim = Simulator()
    dmsh = DMSH(sim, [NVME.with_capacity(GB), HDD.with_capacity(GB)])
    assert dmsh.hardware_cost() == pytest.approx(0.08 + 0.02)


def test_dmsh_slower_than_walks_down():
    sim = Simulator()
    dmsh = DMSH(sim, [DRAM, NVME, HDD])
    assert dmsh.slower_than(dmsh.tier("dram")).spec.kind == "nvme"
    assert dmsh.slower_than(dmsh.tier("hdd")) is None
