"""Typed messages and tag-matched mailboxes.

:class:`Mailbox` implements MPI-style matching: a receive for
``(source, tag)`` matches the oldest message whose source and tag are
equal or wildcarded. The `repro.mpi` Comm keeps one mailbox per rank.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional, Tuple

from repro.sim import Event, Simulator

#: Wildcards, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
ANY_SOURCE = -1
ANY_TAG = -1

#: Wire size of a request envelope (task metadata without payload).
ENVELOPE = 128
#: Per-item header inside a vectored (batched) envelope: page index,
#: region bounds, fragment table — far smaller than a full envelope.
ITEM_HEADER = 32
#: Extra wire bytes per retransmission attempt: the NACK/timeout probe
#: and the repeated envelope (the payload itself is re-sent in full and
#: accounted separately by the fabric's drop model).
RETRY_HEADER = 64


def retry_nbytes(nbytes: int, attempts: int) -> int:
    """Total wire bytes for a transfer that needed ``attempts`` sends.

    One clean send costs ``nbytes``; every extra attempt re-pays the
    payload plus a :data:`RETRY_HEADER` for the loss signal. Used by
    the chaos engine's drop-with-retry fault to keep ``net.bytes``
    accounting honest under injected loss.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    return nbytes + (attempts - 1) * (nbytes + RETRY_HEADER)


def batched_nbytes(payload_sizes, envelope: int = ENVELOPE,
                   header: int = ITEM_HEADER) -> int:
    """Wire size of one vectored request carrying several operations.

    A batch pays one ``envelope`` plus a small ``header`` per item
    (instead of a full envelope per item), then the item payloads
    back-to-back — the framing MegaMmap's batched task submission and
    UMap-style multi-page fill/evict RPCs use.
    """
    total = envelope
    for size in payload_sizes:
        total += header + size
    return total


@dataclass(slots=True)
class Message:
    """One in-flight message."""

    src: int
    dst: int
    tag: int
    payload: Any
    nbytes: int


def payload_nbytes(payload: Any) -> int:
    """Estimate the wire size of a payload.

    NumPy arrays report exactly; other Python objects get a small
    envelope estimate (the simulation never pickles — payloads are
    passed by reference and, for arrays, copied at the API boundary).
    """
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (list, tuple)):
        return 64 + sum(payload_nbytes(p) for p in payload)
    if isinstance(payload, dict):
        return 64 + sum(payload_nbytes(k) + payload_nbytes(v)
                        for k, v in payload.items())
    return 64


class Mailbox:
    """Per-rank queue with (source, tag) matching semantics."""

    __slots__ = ("sim", "_messages", "_waiters")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._messages: Deque[Message] = deque()
        self._waiters: List[Tuple[int, int, Event]] = []

    def deliver(self, msg: Message) -> None:
        """Called by the transport when a message arrives."""
        for i, (src, tag, evt) in enumerate(self._waiters):
            if _matches(msg, src, tag):
                del self._waiters[i]
                evt.succeed(msg)
                return
        self._messages.append(msg)

    def receive(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Event:
        """Event yielding the first matching :class:`Message`."""
        evt = Event(self.sim)
        for i, msg in enumerate(self._messages):
            if _matches(msg, source, tag):
                del self._messages[i]
                evt.succeed(msg)
                return evt
        self._waiters.append((source, tag, evt))
        return evt

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Message]:
        """Peek without removing (``MPI_Probe``-like)."""
        for msg in self._messages:
            if _matches(msg, source, tag):
                return msg
        return None

    @property
    def pending(self) -> int:
        return len(self._messages)


def _matches(msg: Message, source: int, tag: int) -> bool:
    return ((source == ANY_SOURCE or msg.src == source)
            and (tag == ANY_TAG or msg.tag == tag))
