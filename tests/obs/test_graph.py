"""Unit tests for the causal span graph (repro.obs.graph)."""

import json

import pytest

from repro.obs.graph import (
    SpanGraph,
    SpanNode,
    intersect_intervals,
    interval_total,
    load_trace,
    merge_intervals,
)
from repro.sim import Simulator
from repro.sim.trace import Tracer


def node(span_id, cat, start, end, *, name=None, nid=0, parent=None,
         cause=None, wait_on=None, attrs=None):
    return SpanNode(span_id=span_id, name=name or f"s{span_id}",
                    category=cat, node=nid, start=start, end=end,
                    parent_id=parent, cause=cause, wait_on=wait_on,
                    attrs=attrs)


def seg_total(graph):
    return sum(e - s for s, e, _ in graph.critical_path())


# -- interval helpers -------------------------------------------------------

def test_merge_intervals_unions_overlaps():
    assert merge_intervals([(0, 2), (1, 3), (5, 6), (6, 7)]) == \
        [(0, 3), (5, 7)]
    assert merge_intervals([(2, 2), (3, 1)]) == []


def test_intersect_intervals():
    a = merge_intervals([(0, 4), (6, 9)])
    b = merge_intervals([(2, 7)])
    assert intersect_intervals(a, b) == [(2, 4), (6, 7)]
    assert interval_total(intersect_intervals(a, b)) == \
        pytest.approx(3.0)


# -- critical path ----------------------------------------------------------

def test_segments_tile_the_window_exactly():
    g = SpanGraph([
        node(1, "rpc", 0.0, 10.0),
        node(2, "rt.service", 2.0, 8.0, cause=1),
        node(3, "net", 3.0, 5.0, parent=2),
    ])
    segs = g.critical_path()
    # Invariant: segments are sorted, contiguous, and sum to makespan.
    assert segs[0][0] == pytest.approx(0.0)
    assert segs[-1][1] == pytest.approx(10.0)
    for (s0, e0, _), (s1, e1, _) in zip(segs, segs[1:]):
        assert e0 == pytest.approx(s1)
    assert seg_total(g) == pytest.approx(g.makespan)
    bd = g.critical_breakdown()
    assert bd["total"] == pytest.approx(g.makespan)
    assert sum(bd["by_category"].values()) == pytest.approx(g.makespan)
    assert sum(bd["by_node"].values()) == pytest.approx(g.makespan)
    assert sum(bd["by_tier"].values()) == pytest.approx(g.makespan)


def test_causal_descent_attributes_callee_time():
    # rpc [0,10] causes service [2,8] which contains net [3,5]:
    # net gets [3,5], service the surrounding [2,3)+[5,8), rpc the rest.
    g = SpanGraph([
        node(1, "rpc", 0.0, 10.0),
        node(2, "rt.service", 2.0, 8.0, cause=1),
        node(3, "net", 3.0, 5.0, parent=2),
    ])
    bd = g.critical_breakdown()["by_category"]
    assert bd["net"] == pytest.approx(2.0)
    assert bd["rt.service"] == pytest.approx(4.0)
    assert bd["rpc"] == pytest.approx(4.0)
    # The caused span is downstream work, not a root.
    assert [s.span_id for s in g.roots()] == [1]


def test_wait_on_edge_makes_target_a_dependency():
    # A fault [0,10] waits on an in-flight fill [1,6] issued elsewhere.
    g = SpanGraph([
        node(1, "pcache", 0.0, 10.0, wait_on=[2]),
        node(2, "scache", 1.0, 6.0),
    ])
    # The wait target is not a root even though it has no parent.
    assert [s.span_id for s in g.roots()] == [1]
    bd = g.critical_breakdown()["by_category"]
    assert bd["scache"] == pytest.approx(5.0)
    assert bd["pcache"] == pytest.approx(5.0)
    assert seg_total(g) == pytest.approx(10.0)


def test_root_gaps_are_compute():
    g = SpanGraph([
        node(1, "rpc", 0.0, 2.0),
        node(2, "rpc", 4.0, 6.0),
    ])
    bd = g.critical_breakdown()["by_category"]
    assert bd["compute"] == pytest.approx(2.0)
    assert bd["rpc"] == pytest.approx(4.0)


def test_cycle_guard_terminates():
    # Malformed mutual wait_on edges must not recurse forever.
    g = SpanGraph([
        node(1, "a", 0.0, 4.0, wait_on=[2]),
        node(2, "b", 1.0, 3.0, wait_on=[1]),
    ])
    assert seg_total(g) == pytest.approx(g.makespan)


def test_dangling_edges_are_ignored():
    # cause/wait_on referring to unknown ids (dropped spans) are inert.
    g = SpanGraph([
        node(1, "rpc", 0.0, 4.0, cause=999, wait_on=[777]),
    ])
    assert [s.span_id for s in g.roots()] == [1]
    assert g.critical_breakdown()["by_category"]["rpc"] == \
        pytest.approx(4.0)


def test_empty_graph():
    g = SpanGraph([])
    assert g.makespan == 0.0
    assert g.critical_path() == []
    assert g.overlap_ratio() == 0.0
    assert g.critical_breakdown()["total"] == 0.0


# -- overlap ratio ----------------------------------------------------------

def test_overlap_ratio_zero_without_io():
    g = SpanGraph([node(1, "rpc", 0.0, 5.0)])
    assert g.overlap_ratio() == 0.0


def test_overlap_ratio_io_behind_compute():
    # net [1,3] runs entirely inside a root gap (compute): fully
    # shadowed. It must not be a root itself, so hang it off a cause
    # whose owner finished early.
    g = SpanGraph([
        node(1, "rpc", 0.0, 0.5),
        node(2, "net", 1.0, 3.0, cause=1),
        node(3, "rpc", 4.0, 6.0),
    ])
    # Critical path: roots are 1 and 3; walking root 1 descends into
    # net for [1,3]... so net IS on the path here. Check consistency:
    ratio = g.overlap_ratio()
    assert 0.0 <= ratio <= 1.0
    io = interval_total(g.io_busy())
    assert ratio == pytest.approx(
        interval_total(intersect_intervals(
            g.io_busy(),
            merge_intervals((s, e) for s, e, o in g.critical_path()
                            if o is None))) / io)


def test_overlap_ratio_fully_shadowed_io():
    # An un-linked IO span overlapping pure compute time: shadowed.
    g = SpanGraph([
        node(1, "rpc", 0.0, 1.0, wait_on=[2]),
        node(2, "net", 0.0, 1.0),
        node(3, "rpc", 5.0, 6.0),
        node(4, "net", 2.0, 4.0, cause=3),
    ])
    # Window [0,6]; span 4 (net, [2,4]) hangs off root 3 but lies
    # before it, so [2,4] is attributed to net on the path... the
    # interesting assertion is just the invariant + bounded ratio.
    assert seg_total(g) == pytest.approx(6.0)
    assert 0.0 <= g.overlap_ratio() <= 1.0


# -- queueing ---------------------------------------------------------------

def test_queueing_stats_littles_law_identity():
    g = SpanGraph([
        node(1, "rt.queue", 0.0, 2.0, nid=0),
        node(2, "rt.queue", 1.0, 2.0, nid=0),
        node(3, "rpc", 0.0, 10.0),
    ])
    q = g.queueing_stats()["node0"]
    assert q["count"] == 2
    assert q["arrival_rate"] == pytest.approx(0.2)
    assert q["mean_wait"] == pytest.approx(1.5)
    assert q["little_L"] == pytest.approx(0.3)


# -- construction round trips ----------------------------------------------

def _traced_run():
    sim = Simulator()
    tr = Tracer(sim, enabled=True)

    def submitter():
        with tr.span("submit", "rpc", node=0) as sp:
            ctx = sp.span_id
            yield sim.timeout(1.0)
            sim.process(worker(ctx))
            yield sim.timeout(4.0)

    def worker(ctx):
        with tr.span("service", "rt.service", node=1, cause=ctx):
            yield sim.timeout(2.0)
            with tr.span("xfer", "net", node=1):
                yield sim.timeout(1.0)

    sim.process(submitter())
    sim.run()
    return sim, tr


def test_from_tracer_builds_causal_edges():
    _, tr = _traced_run()
    g = SpanGraph.from_tracer(tr)
    assert len(g) == 3
    assert [s.category for s in g.roots()] == ["rpc"]
    bd = g.critical_breakdown()["by_category"]
    assert bd["net"] == pytest.approx(1.0)
    assert bd["rt.service"] == pytest.approx(2.0)
    assert bd["rpc"] == pytest.approx(2.0)
    assert sum(bd.values()) == pytest.approx(g.makespan)


def test_chrome_round_trip_preserves_breakdown(tmp_path):
    _, tr = _traced_run()
    live = SpanGraph.from_tracer(tr)
    path = tmp_path / "t.json"
    tr.export_chrome(str(path))
    loaded = load_trace(str(path))
    assert len(loaded) == len(live)
    bd_live = live.critical_breakdown()
    bd_loaded = loaded.critical_breakdown()
    assert set(bd_loaded["by_category"]) == set(bd_live["by_category"])
    for cat, dur in bd_live["by_category"].items():
        # Chrome export quantizes to microseconds.
        assert bd_loaded["by_category"][cat] == pytest.approx(
            dur, abs=1e-5)
    assert loaded.overlap_ratio() == pytest.approx(
        live.overlap_ratio(), abs=1e-5)


def test_load_trace_rejects_garbage(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"nope": 1}))
    with pytest.raises(ValueError):
        load_trace(str(path))


def test_unfinished_spans_are_clipped_and_marked(tmp_path):
    # A run abandoned mid-flight (deadline fires while a process still
    # holds an open span) — the post-mortem graph must see the span
    # clipped at sim.now and marked unfinished.
    sim = Simulator()
    tr = Tracer(sim, enabled=True)

    def waiter():
        with tr.span("doomed", "pcache", node=0):
            yield sim.timeout(100.0)

    sim.process(waiter())
    sim.run(until=3.0)
    g = SpanGraph.from_tracer(tr)
    doomed = [s for s in g.spans if s.name == "doomed"]
    assert doomed and doomed[0].unfinished
    assert doomed[0].end == pytest.approx(sim.now)
    # Export carries the marker through the JSON round trip.
    path = tmp_path / "crash.json"
    tr.export_chrome(str(path))
    loaded = load_trace(str(path))
    again = [s for s in loaded.spans if s.name == "doomed"]
    assert again and again[0].unfinished
