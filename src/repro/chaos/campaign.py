"""Seeded chaos campaigns: run N cases, shrink failures, replay.

A *case* is one pipeline execution with a :class:`ChaosPlan` installed
and the coherence checker recording at the client boundary. A
*campaign* is a sweep of cases over consecutive seeds against one
pipeline. When a case fails (coherence violation, conservation breach,
or an app-level error under injection), the ddmin shrinker re-runs the
same seed on fault-subset projections of its plan until the repro is
1-minimal, and the offending plan is written to a replay file.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.chaos.checker import CoherenceChecker, HistoryRecorder
from repro.chaos.inject import ChaosInjector
from repro.chaos.plan import FAULT_KINDS, ChaosPlan
from repro.pipeline import run_pipeline


@dataclass
class CaseResult:
    """Outcome of one seeded chaos case."""

    seed: int
    plan: Optional[ChaosPlan] = None
    violations: List[dict] = field(default_factory=list)
    conservation: List[str] = field(default_factory=list)
    error: Optional[str] = None
    trace_hash: str = ""
    events: int = 0
    checked_reads: int = 0
    faults_applied: int = 0
    faults_skipped: int = 0
    runtime_s: float = 0.0
    #: One row per applied fault when the case ran with ``obs=True``:
    #: ``{"kind", "t_fault", "t_detect", "detection_s", "signal"}``
    #: (``t_detect``/``detection_s``/``signal`` None if nothing fired).
    detections: List[dict] = field(default_factory=list)
    obs_anomalies: int = 0
    obs_alerts: int = 0

    @property
    def ok(self) -> bool:
        return (not self.violations and not self.conservation
                and self.error is None)

    @property
    def detected(self) -> int:
        return sum(1 for d in self.detections
                   if d["detection_s"] is not None)

    def summary(self) -> str:
        n = len(self.plan.faults) if self.plan is not None else 0
        status = "ok" if self.ok else "FAIL"
        parts = [f"seed {self.seed}: {status}",
                 f"{self.faults_applied}/{n} faults applied",
                 f"{self.checked_reads} reads checked",
                 f"trace {self.trace_hash[:12]}"]
        if self.detections:
            parts.append(f"{self.detected}/{len(self.detections)} "
                         f"faults detected")
        if self.violations:
            parts.append(f"{len(self.violations)} violations")
        if self.conservation:
            parts.append(f"{len(self.conservation)} conservation")
        if self.error:
            parts.append(self.error)
        return "; ".join(parts)


def _attach_case_obs(cluster, slos, obs_window: Optional[float],
                     threshold: float, warmup: int):
    """Install the live observability plane on a chaos case's cluster.

    The stock detector bank (backlog spike, WAL growth, realloc
    thrash) is the pipeline-shaped subset — chaos cases have no
    tenants — plus, when the cluster traces, a detector on the
    windowed p99 of network spans: partitions, delay/drop jitter and
    stalls all surface there first.
    """
    from repro.obs import LiveObs
    from repro.obs.anomaly import (EwmaMadDetector, attach_detectors,
                                   standard_detectors)
    live = LiveObs.attach(cluster, window=obs_window)
    if slos:
        from repro.obs.slo import SLOMonitor
        SLOMonitor(live, list(slos))
    n_nodes = len(cluster.system.dmshs)
    dets = standard_detectors(n_nodes=n_nodes, threshold=threshold,
                              warmup=warmup)
    tracer = cluster.tracer
    if tracer is not None and tracer.enabled:
        def net_p99(store, _now):
            stats = store.window_stats("trace.net", (), store.window)
            if stats is None or not stats.count:
                return None
            return stats.sketch.quantile(0.99)
        dets.append(EwmaMadDetector(
            "net_p99", "trace.net", net_p99, threshold=threshold,
            warmup=warmup, direction="up"))
    attach_detectors(live, dets)
    return live


def _detection_rows(live, injector) -> List[dict]:
    """First obs signal (anomaly event or SLO alert fire) at or after
    each applied fault's onset → per-fault detection latency."""
    signals = [(e["t"], f"anomaly:{e['detector']}")
               for e in live.events]
    if live.slo is not None:
        signals += [(a.fired_at, f"alert:{a.slo}")
                    for a in live.slo.history]
    signals.sort()
    rows = []
    for kind, t, _desc in injector.applied:
        if kind == "restart":
            continue
        hit = next(((ts, sig) for ts, sig in signals if ts >= t), None)
        rows.append({
            "kind": kind, "t_fault": t,
            "t_detect": hit[0] if hit else None,
            "detection_s": (hit[0] - t) if hit else None,
            "signal": hit[1] if hit else None,
        })
    return rows


def run_case(pipeline: str, seed: int, *, horizon: float,
             kinds: Sequence[str] = FAULT_KINDS,
             intensity: float = 1.0, perturb: bool = False,
             workdir: Optional[str] = None, raw_check: bool = True,
             plan: Optional[ChaosPlan] = None,
             max_violations: int = 200, obs: bool = False,
             slos: Optional[Sequence] = None,
             obs_window: Optional[float] = None,
             obs_threshold: float = 4.0,
             obs_warmup: int = 8) -> CaseResult:
    """Run one pipeline under one seeded (or explicit) fault plan.

    ``pipeline`` is YAML text or a path, as for ``run_pipeline``. When
    ``plan`` is given it is used verbatim (replay / shrink subsets);
    otherwise :meth:`ChaosPlan.build` draws one from ``seed`` once the
    cluster exists (the node count comes from the cluster spec).
    ``raw_check=False`` weakens the checker to the stale-read-tolerant
    stub — only useful to *demonstrate* that the full checker catches
    mutations the stub misses.

    ``obs=True`` attaches the live observability plane (detectors and
    any ``slos``) and fills :attr:`CaseResult.detections` with the
    per-fault detection latency — the time from each applied fault's
    onset to the first anomaly event or SLO alert fire at or after it
    — also observed into the ``alert.detection_s{kind=}`` histogram on
    the case's own monitor. ``obs_window`` overrides the obs tick
    (default ``horizon / 256``: chaos horizons are tiny next to the
    cluster's operator-scale ``obs_window``, and detectors need tens
    of windows of baseline before the first fault lands); detection
    latency is quantized to it.
    """
    if obs and obs_window is None:
        obs_window = horizon / 256.0
    state: Dict[str, object] = {}

    def hook(cluster, variant):
        system = cluster.system
        p = plan if plan is not None else ChaosPlan.build(
            seed, n_nodes=len(system.dmshs), horizon=horizon,
            kinds=kinds, intensity=intensity, perturb=perturb)
        # Durable deployments are held to the stricter clause: no
        # crash excuse for barrier-committed bytes.
        checker = CoherenceChecker(raw_check=raw_check,
                                   durability=system.durability.enabled,
                                   max_violations=max_violations)
        recorder = HistoryRecorder(system, checker)
        system.history = recorder
        injector = ChaosInjector(system, p, recorder).install()
        state.update(system=system, plan=p, checker=checker,
                     recorder=recorder, injector=injector)
        if obs:
            state["obs"] = _attach_case_obs(
                cluster, slos, obs_window, obs_threshold, obs_warmup)

    res = CaseResult(seed=seed)
    rows: List[dict] = []
    try:
        rows = run_pipeline(pipeline, workdir=workdir,
                            on_cluster=hook)
    except Exception as exc:  # app aborted under injection
        res.error = f"{type(exc).__name__}: {exc}"
    if "system" in state:
        checker: CoherenceChecker = state["checker"]  # type: ignore
        checker.finalize(state["system"])
        injector: ChaosInjector = state["injector"]  # type: ignore
        recorder: HistoryRecorder = state["recorder"]  # type: ignore
        res.plan = state["plan"]  # type: ignore
        res.violations = [dict(v) for v in checker.violations]
        res.conservation = list(injector.conservation_problems)
        res.trace_hash = recorder.trace_hash()
        res.events = recorder.events
        res.checked_reads = checker.checked_reads
        res.faults_applied = sum(1 for k, _t, _f in injector.applied
                                 if k != "restart")
        res.faults_skipped = len(injector.skipped)
        if "obs" in state:
            live = state["obs"]  # type: ignore[assignment]
            system = state["system"]
            res.obs_anomalies = len(live.events)  # type: ignore
            res.obs_alerts = len(live.slo.history) \
                if live.slo is not None else 0  # type: ignore
            res.detections = _detection_rows(live, injector)
            metrics = system.monitor.metrics  # type: ignore
            for d in res.detections:
                if d["detection_s"] is not None:
                    metrics.histogram(
                        "alert.detection_s",
                        kind=d["kind"]).observe(d["detection_s"])
    if rows:
        res.runtime_s = max(float(r.get("runtime_s", 0.0))
                            for r in rows)
    return res


def measure_horizon(pipeline: str, workdir: Optional[str] = None,
                    margin: float = 1.0) -> float:
    """Fault-free probe run; returns the simulated makespan × margin.

    The fault window is a fraction of the horizon, so the probe's own
    makespan (margin 1.0) already keeps every fault inside the run
    even though injection slows the faulted runs down.
    """
    rows = run_pipeline(pipeline, workdir=workdir)
    runtime = max(float(r.get("runtime_s", 0.0)) for r in rows)
    if runtime <= 0.0:
        raise ValueError("probe run reported a non-positive runtime")
    return runtime * margin


def run_campaign(pipeline: str, seeds: Sequence[int], *,
                 kinds: Sequence[str] = FAULT_KINDS,
                 intensity: float = 1.0, perturb: bool = False,
                 horizon: Optional[float] = None,
                 workdir: Optional[str] = None,
                 raw_check: bool = True,
                 log: Optional[Callable[[str], None]] = None,
                 obs: bool = False,
                 slos: Optional[Sequence] = None,
                 obs_window: Optional[float] = None,
                 obs_threshold: float = 4.0,
                 obs_warmup: int = 8) -> List[CaseResult]:
    """Run one case per seed; returns every :class:`CaseResult`.

    When ``horizon`` is ``None`` a fault-free probe run measures it
    first. The campaign does not stop at the first failure — every
    seed runs, so one flaky fault schedule cannot mask another.
    ``obs=True`` runs every case with the observability plane attached
    (see :func:`run_case`); aggregate with :func:`detection_stats`.
    """
    if horizon is None:
        horizon = measure_horizon(pipeline, workdir=workdir)
        if log is not None:
            log(f"probe: horizon {horizon:.6f} s (simulated)")
    results = []
    for seed in seeds:
        res = run_case(pipeline, seed, horizon=horizon, kinds=kinds,
                       intensity=intensity, perturb=perturb,
                       workdir=workdir, raw_check=raw_check, obs=obs,
                       slos=slos, obs_window=obs_window,
                       obs_threshold=obs_threshold,
                       obs_warmup=obs_warmup)
        results.append(res)
        if log is not None:
            log(res.summary())
    return results


def detection_stats(results: Sequence[CaseResult]) -> Dict[str, dict]:
    """Per-fault-kind detection rollup over a campaign.

    Returns ``{kind: {"faults", "detected", "mean_s", "max_s"}}``
    (latency stats over the detected subset; None when none were).
    """
    out: Dict[str, dict] = {}
    for res in results:
        for d in res.detections:
            row = out.setdefault(d["kind"], {"faults": 0,
                                             "detected": 0,
                                             "latencies": []})
            row["faults"] += 1
            if d["detection_s"] is not None:
                row["detected"] += 1
                row["latencies"].append(d["detection_s"])
    for row in out.values():
        lat = row.pop("latencies")
        row["mean_s"] = sum(lat) / len(lat) if lat else None
        row["max_s"] = max(lat) if lat else None
    return out


def shrink_faults(predicate: Callable[[Sequence[int]], bool],
                  n_faults: int) -> List[int]:
    """ddmin over fault indices: smallest subset that still fails.

    ``predicate(indices)`` must return True when the projection of the
    plan onto ``indices`` still reproduces the failure. Returns a
    1-minimal index list (removing any single remaining chunk makes
    the failure vanish). The full set is assumed failing; if it is
    not, it is returned unchanged.
    """
    current = list(range(n_faults))
    if len(current) < 2 or not predicate(current):
        return current
    granularity = 2
    while len(current) >= 2:
        size = max(1, len(current) // granularity)
        chunks = [current[i:i + size]
                  for i in range(0, len(current), size)]
        reduced = False
        for c in chunks:  # try each chunk alone first
            if len(c) < len(current) and predicate(c):
                current, granularity, reduced = list(c), 2, True
                break
        if not reduced:  # then each complement
            for i in range(len(chunks)):
                rest = [x for j, c in enumerate(chunks) if j != i
                        for x in c]
                if len(rest) < len(current) and predicate(rest):
                    current = rest
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current


def shrink_case(pipeline: str, result: CaseResult, *,
                workdir: Optional[str] = None,
                raw_check: bool = True,
                log: Optional[Callable[[str], None]] = None
                ) -> Tuple[ChaosPlan, List[int]]:
    """Shrink a failing case's plan to a minimal failing sub-plan."""
    plan = result.plan
    if plan is None:
        raise ValueError("cannot shrink a case that never built a plan")

    def failing(indices: Sequence[int]) -> bool:
        sub = run_case(pipeline, result.seed, horizon=plan.horizon,
                       plan=plan.subset(indices), workdir=workdir,
                       raw_check=raw_check)
        if log is not None:
            log(f"  shrink probe {sorted(indices)}: "
                f"{'still failing' if not sub.ok else 'passes'}")
        return not sub.ok

    keep = shrink_faults(failing, len(plan.faults))
    return plan.subset(keep), keep


def write_replay(path: str, result: CaseResult,
                 minimal: Optional[ChaosPlan] = None) -> None:
    """Persist the failing plan (plus shrunk plan) as a replay file."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    doc = result.plan.to_dict() if result.plan is not None else {}
    if minimal is not None:
        doc["minimal_faults"] = minimal.to_dict()["faults"]
    doc["violations"] = result.violations[:20]
    doc["conservation"] = result.conservation[:20]
    doc["error"] = result.error
    doc["trace_hash"] = result.trace_hash
    import json
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
