"""Unit tests for the striped PFS and the Assise-like client-NVM FS."""

import pytest

from repro.net import LinkSpec, Network
from repro.sim import Simulator
from repro.storage.assise import AssiseFS
from repro.storage.device import DeviceSpec
from repro.storage.pfs import ParallelFS, PfsError

FAST_DEV = DeviceSpec("hdd", capacity=10 ** 9, read_bw=100.0, write_bw=100.0,
                      latency=0.0, cost_per_gb=0.02)


def make_pfs(n_servers=2, stripe=100, link_bw=1e12):
    sim = Simulator()
    # Nodes: 0..1 clients, then servers.
    net = Network(sim, 2 + n_servers,
                  intra=LinkSpec(bandwidth=link_bw, latency=0.0))
    pfs = ParallelFS(sim, net, server_nodes=list(range(2, 2 + n_servers)),
                     server_spec=FAST_DEV, stripe_size=stripe)
    return sim, net, pfs


def run(sim, gen):
    return sim.run(until=sim.process(gen))


def test_pfs_write_read_roundtrip():
    sim, _, pfs = make_pfs()
    data = bytes(range(250))

    def proc():
        yield from pfs.write(0, "/f", 0, data)
        out = yield from pfs.read(0, "/f", 0, 250)
        return out

    assert run(sim, proc()) == data


def test_pfs_striping_parallelizes_across_servers():
    # 200 bytes over 2 servers at 100 B/s: parallel stripes -> ~1s,
    # serial would be 2s.
    sim, _, pfs = make_pfs(n_servers=2, stripe=100)

    def proc():
        yield from pfs.write(0, "/f", 0, b"\0" * 200)

    run(sim, proc())
    assert sim.now == pytest.approx(1.0, rel=0.05)


def test_pfs_single_server_serializes():
    sim, _, pfs = make_pfs(n_servers=1, stripe=100)

    def proc():
        yield from pfs.write(0, "/f", 0, b"\0" * 200)

    run(sim, proc())
    assert sim.now == pytest.approx(2.0, rel=0.05)


def test_pfs_sparse_write_zero_fills():
    sim, _, pfs = make_pfs()

    def proc():
        yield from pfs.write(0, "/f", 10, b"xy")
        out = yield from pfs.read(0, "/f", 0, 12)
        return out

    assert run(sim, proc()) == b"\0" * 10 + b"xy"


def test_pfs_read_missing_file_rejected():
    sim, _, pfs = make_pfs()

    def proc():
        yield from pfs.read(0, "/nope", 0, 1)

    with pytest.raises(PfsError):
        run(sim, proc())


def test_pfs_read_out_of_range_rejected():
    sim, _, pfs = make_pfs()

    def proc():
        yield from pfs.write(0, "/f", 0, b"abc")
        yield from pfs.read(0, "/f", 2, 5)

    with pytest.raises(PfsError):
        run(sim, proc())


def test_pfs_overwrite_and_size():
    sim, _, pfs = make_pfs()

    def proc():
        yield from pfs.write(0, "/f", 0, b"aaaa")
        yield from pfs.write(0, "/f", 2, b"bb")
        return pfs.size("/f")

    assert run(sim, proc()) == 4
    assert bytes(pfs._file("/f")) == b"aabb"


def test_pfs_delete_and_paths():
    sim, _, pfs = make_pfs()

    def proc():
        yield from pfs.write(0, "/a", 0, b"x")
        yield from pfs.write(0, "/b", 0, b"y")
        pfs.delete("/a")
        return pfs.paths()

    assert run(sim, proc()) == ["/b"]


def test_pfs_accounting():
    sim, _, pfs = make_pfs()

    def proc():
        yield from pfs.write(0, "/f", 0, b"\0" * 300)
        yield from pfs.read(0, "/f", 0, 100)

    run(sim, proc())
    assert pfs.bytes_written == 300
    assert pfs.bytes_read == 100


# -- Assise stand-in ------------------------------------------------------------

NVM_DEV = DeviceSpec("nvme", capacity=1000, read_bw=1000.0, write_bw=1000.0,
                     latency=0.0, cost_per_gb=0.08)


def make_assise():
    sim, net, pfs = make_pfs(n_servers=2, stripe=100)
    fs = AssiseFS(sim, pfs, client_nodes=[0, 1], nvm_spec=NVM_DEV)
    return sim, pfs, fs


def test_assise_write_is_locally_fast_then_flushes():
    sim, pfs, fs = make_assise()

    def proc():
        yield from fs.write(0, "/f", 0, b"\0" * 100)
        t_local = sim.now
        yield from fs.drain(0)
        return t_local

    t_local = run(sim, proc())
    # Local NVM write (0.1s) + synchronous chain replication to the
    # peer's NVM (0.1s); the 1s PFS write drains asynchronously.
    assert t_local == pytest.approx(0.2, rel=0.05)
    assert pfs.size("/f") == 100


def test_assise_without_replication_is_local_only():
    sim, net, pfs = make_pfs(n_servers=2, stripe=100)
    fs = AssiseFS(sim, pfs, client_nodes=[0, 1], nvm_spec=NVM_DEV,
                  replicate=False)

    def proc():
        yield from fs.write(0, "/f", 0, b"\0" * 100)
        return sim.now

    assert run(sim, proc()) == pytest.approx(0.1, rel=0.05)


def test_assise_read_your_writes():
    sim, pfs, fs = make_assise()

    def proc():
        yield from fs.write(0, "/f", 0, b"hello world!")
        out = yield from fs.read(0, "/f", 6, 5)
        return out

    assert run(sim, proc()) == b"world"


def test_assise_cache_hit_avoids_pfs_read():
    sim, pfs, fs = make_assise()

    def proc():
        yield from fs.write(0, "/f", 0, b"\0" * 100)
        yield from fs.drain(0)
        before = pfs.bytes_read
        yield from fs.read(0, "/f", 0, 100)  # extent is cached
        return pfs.bytes_read - before

    assert run(sim, proc()) == 0


def test_assise_remote_node_misses_cache():
    sim, pfs, fs = make_assise()

    def proc():
        yield from fs.write(0, "/f", 0, b"\0" * 100)
        yield from fs.drain(0)
        before = pfs.bytes_read
        yield from fs.read(1, "/f", 0, 100)  # other node: cold cache
        return pfs.bytes_read - before

    assert run(sim, proc()) == 100


def test_assise_cache_eviction_when_full():
    sim, pfs, fs = make_assise()

    def proc():
        # NVM capacity is 1000; write 3 x 400-byte extents.
        for i in range(3):
            yield from fs.write(0, f"/f{i}", 0, bytes([i]) * 400)
        yield from fs.drain(0)
        return fs.caches[0].used

    used = run(sim, proc())
    assert used <= 1000
