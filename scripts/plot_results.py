#!/usr/bin/env python
"""ASCII plots from benchmarks/results/*.csv (no plotting deps).

    python scripts/plot_results.py            # every figure found
    python scripts/plot_results.py fig6       # one figure

Renders each figure's series as horizontal bar charts, grouped the way
the paper's panels group them — a quick visual check that the shapes
match before reading EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import json
import os
import sys
from collections import defaultdict

RESULTS = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks", "results")
WIDTH = 46


def bars(rows, label_fn, value_fn, title):
    print(f"\n## {title}")
    items = [(label_fn(r), value_fn(r)) for r in rows]
    items = [(l, v) for l, v in items if v is not None]
    if not items:
        print("(no data)")
        return
    top = max(v for _, v in items) or 1.0
    wl = max(len(l) for l, _ in items)
    for label, value in items:
        bar = "#" * max(1, int(WIDTH * value / top))
        print(f"  {label.ljust(wl)} |{bar} {value:g}")


def _f(row, key):
    v = row.get(key, "")
    try:
        return float(v)
    except (TypeError, ValueError):
        return None


def plot_fig5(rows):
    by_app = defaultdict(list)
    for r in rows:
        by_app[r["app"]].append(r)
    for app, app_rows in by_app.items():
        bars(app_rows,
             lambda r: f"{r['nodes']}n {'MM':>5}",
             lambda r: _f(r, "mm_s"),
             f"Fig.5 {app} — MegaMmap (s)")
        bars(app_rows,
             lambda r: f"{r['nodes']}n {r['baseline']:>5}",
             lambda r: _f(r, "baseline_s"),
             f"Fig.5 {app} — baseline (s)")


def plot_fig6(rows):
    by_l = defaultdict(list)
    for r in rows:
        by_l[r["L"]].append(r)
    for L, l_rows in sorted(by_l.items(), key=lambda kv: int(kv[0])):
        bars(l_rows,
             lambda r: f"{r['system']}{' [OOM]' if r['crashed'] == 'True' else ''}",
             lambda r: _f(r, "runtime_s"),
             f"Fig.6 L={L} ({l_rows[0]['dataset_mb']} MB)")


def plot_fig7(rows):
    bars(rows, lambda r: r["composition"],
         lambda r: _f(r, "runtime_s"), "Fig.7 runtime (s)")
    bars(rows, lambda r: r["composition"],
         lambda r: _f(r, "cost_dollars"), "Fig.7 hardware cost ($)")


def plot_fig8(rows):
    by_app = defaultdict(list)
    for r in rows:
        by_app[r["app"]].append(r)
    for app, app_rows in by_app.items():
        bars(app_rows, lambda r: f"DRAM x{r['dram_frac']}",
             lambda r: _f(r, "runtime_s"), f"Fig.8 {app} (s)")


def plot_fig4(rows):
    bars(rows, lambda r: f"{r['app']} MegaMmap",
         lambda r: _f(r, "megammap_loc"), "Fig.4 LOC — MegaMmap")
    bars(rows, lambda r: f"{r['app']} original",
         lambda r: _f(r, "original_loc"), "Fig.4 LOC — original")


#: Fill characters for stacked critical-path segments, assigned to
#: categories in descending-duration order.
_STACK_CHARS = "#=+*:%@o."


def plot_breakdowns(want=None) -> bool:
    """Stacked per-category critical-path bars from BENCH_*.json.

    Only records carrying a ``critical_path`` field (written by traced
    benchmark runs) are plotted; old records without it are skipped, so
    this renders nothing — gracefully — on pre-breakdown trajectories.
    Returns True if anything was plotted.
    """
    plotted = False
    for name in sorted(os.listdir(RESULTS)):
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        stem = name[len("BENCH_"):-len(".json")]
        if want and want not in stem and want not in name:
            continue
        try:
            with open(os.path.join(RESULTS, name),
                      encoding="utf-8") as fh:
                records = json.load(fh)
        except (OSError, ValueError):
            continue
        if not isinstance(records, list):
            continue
        # Latest record per metric wins (the file is append-only).
        latest = {}
        for rec in records:
            if isinstance(rec, dict) and rec.get("critical_path"):
                latest[rec.get("metric", "?")] = rec
        if not latest:
            continue
        print(f"\n## Critical-path breakdown — {stem}")
        for metric, rec in sorted(latest.items()):
            cp = rec["critical_path"]
            cats = sorted((cp.get("by_category") or {}).items(),
                          key=lambda kv: -kv[1])
            total = cp.get("total") or sum(d for _, d in cats) or 1.0
            bar, legend = [], []
            for i, (cat, dur) in enumerate(cats):
                ch = _STACK_CHARS[i % len(_STACK_CHARS)]
                bar.append(ch * max(1, int(WIDTH * dur / total))
                           if dur > 0 else "")
                legend.append(f"{ch}={cat} {dur / total * 100:.0f}%")
            overlap = cp.get("overlap_ratio")
            extra = f"  overlap={overlap * 100:.0f}%" \
                if overlap is not None else ""
            print(f"  {metric}")
            print(f"    |{''.join(bar)}| total={total:.4g}s{extra}")
            print(f"    {'  '.join(legend)}")
            plotted = True
    return plotted


PLOTTERS = {
    "fig4_loc": plot_fig4,
    "fig5_weak_scaling": plot_fig5,
    "fig6_resolution": plot_fig6,
    "fig7_tiering": plot_fig7,
    "fig8_mem_scaling": plot_fig8,
}


def main(argv) -> int:
    want = argv[1] if len(argv) > 1 else None
    if not os.path.isdir(RESULTS):
        print(f"no results directory at {RESULTS}; run the benchmarks "
              f"first", file=sys.stderr)
        return 1
    found = False
    for name in sorted(os.listdir(RESULTS)):
        stem = name[:-4]
        if not name.endswith(".csv"):
            continue
        if want and want not in stem:
            continue
        with open(os.path.join(RESULTS, name), encoding="utf-8") as fh:
            rows = list(csv.DictReader(fh))
        plotter = PLOTTERS.get(stem)
        print(f"\n=== {stem} ===")
        if plotter:
            plotter(rows)
        else:
            # Generic: first column labels, runtime-ish column values.
            value_key = next((k for k in rows[0]
                              if "runtime" in k or k.endswith("_s")),
                             None) if rows else None
            if value_key:
                label_key = list(rows[0])[0]
                bars(rows, lambda r: str(r[label_key]),
                     lambda r: _f(r, value_key), stem)
        found = True
    if plot_breakdowns(want):
        found = True
    if not found:
        print("no matching results", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
