"""Causal span graph + critical-path engine.

Builds a dependency graph over recorded spans and computes the
end-to-end critical path of a run (the CRISP/Jaeger-style backward
walk). Edges come from three sources:

* **hierarchy** — a span's children (same-process nesting, recorded by
  the tracer as ``parent_id``);
* **cause** — explicit cross-process edges: a span whose ``cause``
  attr names span ``S`` is downstream work *of* ``S`` (rpc submit ->
  runtime queue/service, prefetch issue -> fill);
* **wait_on** — a span whose ``wait_on`` attr lists span ids blocked
  on those spans (a fault waiting for an in-flight prefetch install),
  so they are dependencies of the waiter.

The walk attributes every instant of the run window to exactly one
span: starting from a virtual root spanning ``[t0, t1]``, it descends
into the latest-ending dependency covering the current time, charges
the gaps between dependencies to the current span, and charges root
gaps (no span anywhere on the causal frontier) to **compute** — the
application thinking between memory operations. By construction the
attributed durations sum exactly to the makespan.

The **overlap ratio** is |IO-busy time ∩ compute-attributed critical
path| / |IO-busy time|: the fraction of I/O that ran shadowed behind
application compute instead of stalling it — the paper's central
overlap claim as a single number.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["IO_CATEGORIES", "SpanNode", "SpanGraph", "load_trace",
           "merge_intervals", "intersect_intervals", "interval_total"]

#: Categories whose spans count as I/O busy time for the overlap
#: ratio: device/network/storage work plus the runtime service that
#: drives it (but not the client-visible rpc/pcache wrappers, which
#: *contain* compute-side waiting).
IO_CATEGORIES = frozenset({
    "net", "scache", "scache.batch", "stager", "hermes", "rt.service",
})


class SpanNode:
    """One span in the analysis graph (loaded from a tracer or a
    Chrome-trace JSON file)."""

    __slots__ = ("span_id", "name", "category", "node", "start", "end",
                 "parent_id", "cause", "wait_on", "track", "attrs",
                 "unfinished")

    def __init__(self, span_id: int, name: str, category: str,
                 node: int, start: float, end: float,
                 parent_id: Optional[int] = None,
                 cause: Optional[int] = None,
                 wait_on: Optional[List[int]] = None,
                 track: str = "", attrs: Optional[Dict] = None,
                 unfinished: bool = False):
        self.span_id = span_id
        self.name = name
        self.category = category
        self.node = node
        self.start = start
        self.end = max(end, start)
        self.parent_id = parent_id
        self.cause = cause
        self.wait_on = wait_on or []
        self.track = track
        self.attrs = attrs or {}
        self.unfinished = unfinished

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def tier(self) -> str:
        """Storage tier this span touched, when its attrs say so."""
        for key in ("tier", "dst_tier", "src_tier"):
            v = self.attrs.get(key)
            if v:
                return str(v)
        return "-"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SpanNode #{self.span_id} {self.category}:{self.name} "
                f"[{self.start:.6f}, {self.end:.6f})>")


# -- interval helpers --------------------------------------------------------

def merge_intervals(intervals: Iterable[Tuple[float, float]]
                    ) -> List[Tuple[float, float]]:
    """Union of possibly-overlapping [start, end) intervals."""
    out: List[Tuple[float, float]] = []
    for s, e in sorted(intervals):
        if e <= s:
            continue
        if out and s <= out[-1][1]:
            if e > out[-1][1]:
                out[-1] = (out[-1][0], e)
        else:
            out.append((s, e))
    return out


def intersect_intervals(a: List[Tuple[float, float]],
                        b: List[Tuple[float, float]]
                        ) -> List[Tuple[float, float]]:
    """Intersection of two *merged* (sorted, disjoint) interval lists."""
    out: List[Tuple[float, float]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            out.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def interval_total(intervals: Iterable[Tuple[float, float]]) -> float:
    return sum(e - s for s, e in intervals)


# -- graph -------------------------------------------------------------------

class SpanGraph:
    """Dependency graph over a run's spans, with the critical-path
    walk and derived statistics."""

    def __init__(self, spans: List[SpanNode]):
        self.spans = sorted(spans, key=lambda s: (s.start, s.end))
        self.by_id: Dict[int, SpanNode] = {
            s.span_id: s for s in self.spans}
        self._deps: Dict[int, List[SpanNode]] = {}
        wait_targets = set()
        for s in self.spans:
            if s.parent_id is not None and s.parent_id in self.by_id:
                self._deps.setdefault(s.parent_id, []).append(s)
            if s.cause is not None and s.cause in self.by_id:
                self._deps.setdefault(s.cause, []).append(s)
            for w in s.wait_on:
                target = self.by_id.get(w)
                if target is not None:
                    self._deps.setdefault(s.span_id, []).append(target)
                    wait_targets.add(w)
        # Dedupe dep lists, preserving order.
        for key, deps in self._deps.items():
            seen: set = set()
            uniq = []
            for d in deps:
                if d.span_id not in seen:
                    seen.add(d.span_id)
                    uniq.append(d)
            self._deps[key] = uniq
        self._roots = [
            s for s in self.spans
            if (s.parent_id is None or s.parent_id not in self.by_id)
            and (s.cause is None or s.cause not in self.by_id)
            and s.span_id not in wait_targets]

    def __len__(self) -> int:
        return len(self.spans)

    @property
    def window(self) -> Tuple[float, float]:
        """[earliest span start, latest span end] — the run makespan."""
        if not self.spans:
            return (0.0, 0.0)
        return (min(s.start for s in self.spans),
                max(s.end for s in self.spans))

    @property
    def makespan(self) -> float:
        t0, t1 = self.window
        return t1 - t0

    def deps(self, span: SpanNode) -> List[SpanNode]:
        return self._deps.get(span.span_id, [])

    def roots(self) -> List[SpanNode]:
        """Top-level spans: no hierarchy parent, no causal parent, and
        not the target of any ``wait_on`` edge."""
        return self._roots

    # -- critical path -----------------------------------------------------
    def critical_path(self) -> List[Tuple[float, float,
                                          Optional[SpanNode]]]:
        """Attribute every instant of the run window to one span.

        Returns ``[(start, end, span_or_None), ...]`` segments; the
        ``None`` owner is the virtual root — time when nothing on the
        causal frontier was running, i.e. application **compute**.
        Segment durations sum exactly to the makespan.
        """
        t0, t1 = self.window
        segments: List[Tuple[float, float, Optional[SpanNode]]] = []
        if t1 <= t0:
            return segments
        on_path: set = set()

        def walk(deps: List[SpanNode], lo: float, hi: float,
                 owner: Optional[SpanNode]) -> None:
            t = hi
            for dep in sorted(deps, key=lambda d: d.end, reverse=True):
                if t <= lo:
                    break
                if dep.span_id in on_path:
                    continue  # causal cycle (malformed edge): skip
                d_end = min(dep.end, t)
                d_start = max(dep.start, lo)
                if d_end <= lo or d_start >= d_end:
                    continue
                if d_end < t:
                    # Gap after this dep belongs to the current owner.
                    segments.append((d_end, t, owner))
                on_path.add(dep.span_id)
                walk(self.deps(dep), d_start, d_end, dep)
                on_path.discard(dep.span_id)
                t = d_start
            if t > lo:
                segments.append((lo, t, owner))

        walk(self.roots(), t0, t1, None)
        segments.sort(key=lambda seg: seg[0])
        return segments

    def critical_breakdown(self) -> Dict[str, Any]:
        """Critical-path length attributed per category / node / tier.

        The virtual-root share appears as category ``compute`` (node
        ``-``, tier ``-``). Values sum to ``total`` (== makespan) by
        construction.
        """
        by_category: Dict[str, float] = {}
        by_node: Dict[str, float] = {}
        by_tier: Dict[str, float] = {}
        total = 0.0
        for s, e, owner in self.critical_path():
            d = e - s
            total += d
            cat = owner.category if owner is not None else "compute"
            node = str(owner.node) if owner is not None \
                and owner.node >= 0 else "-"
            tier = owner.tier if owner is not None else "-"
            by_category[cat] = by_category.get(cat, 0.0) + d
            by_node[node] = by_node.get(node, 0.0) + d
            by_tier[tier] = by_tier.get(tier, 0.0) + d
        return {"total": total, "by_category": by_category,
                "by_node": by_node, "by_tier": by_tier}

    # -- overlap ratio -----------------------------------------------------
    def io_busy(self) -> List[Tuple[float, float]]:
        """Merged wall-intervals during which any I/O-category span
        was in flight."""
        return merge_intervals(
            (s.start, s.end) for s in self.spans
            if s.category in IO_CATEGORIES)

    def overlap_ratio(self) -> float:
        """Fraction of I/O-busy time shadowed by critical-path
        compute: 1.0 means every I/O second ran behind application
        compute (perfect overlap), 0.0 means every I/O second stalled
        the critical path. Returns 0.0 when the run did no I/O.
        """
        io = self.io_busy()
        io_total = interval_total(io)
        if io_total <= 0:
            return 0.0
        compute = merge_intervals(
            (s, e) for s, e, owner in self.critical_path()
            if owner is None)
        shadowed = interval_total(intersect_intervals(io, compute))
        return shadowed / io_total

    # -- queueing ----------------------------------------------------------
    def queueing_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-node runtime-queue statistics from the ``rt.queue``
        wait spans, with the Little's-law quantities: arrival rate
        ``lambda = count / T``, mean wait ``W``, and the implied
        time-average queue length ``L = lambda * W``.
        """
        t0, t1 = self.window
        horizon = max(t1 - t0, 1e-30)
        waits: Dict[str, List[float]] = {}
        for s in self.spans:
            if s.category != "rt.queue":
                continue
            key = f"node{s.node}" if s.node >= 0 else "node?"
            waits.setdefault(key, []).append(s.duration)
        out: Dict[str, Dict[str, float]] = {}
        for key, durs in sorted(waits.items()):
            lam = len(durs) / horizon
            w = sum(durs) / len(durs)
            out[key] = {"count": float(len(durs)),
                        "arrival_rate": lam,
                        "mean_wait": w,
                        "little_L": lam * w}
        return out

    # -- misc --------------------------------------------------------------
    def top_spans(self, k: int = 10) -> List[SpanNode]:
        return sorted(self.spans, key=lambda s: s.duration,
                      reverse=True)[:k]

    def categories(self) -> List[str]:
        return sorted({s.category for s in self.spans})

    # -- construction ------------------------------------------------------
    @classmethod
    def from_tracer(cls, tracer) -> "SpanGraph":
        """Build a graph from a live :class:`~repro.sim.trace.Tracer`
        (closed spans plus open spans clipped at the current simulated
        time, matching the crash-safe export)."""
        now = tracer.sim.now if tracer.sim is not None else 0.0
        nodes = []
        open_ids = set()
        for span in tracer.open_spans():
            open_ids.add(span.span_id)
            nodes.append(_from_span(span, end=max(now, span.start),
                                    unfinished=True))
        for span in tracer.spans:
            if span.span_id not in open_ids:
                nodes.append(_from_span(span, end=span.end))
        return cls(nodes)

    @classmethod
    def from_chrome_events(cls, events: List[Dict[str, Any]]
                           ) -> "SpanGraph":
        """Build a graph from Chrome Trace Event Format dicts (the
        tracer's export; timestamps are µs)."""
        nodes = []
        fallback_id = -1
        for ev in events:
            if ev.get("ph") != "X":
                continue
            args = ev.get("args") or {}
            span_id = args.get("id")
            if span_id is None:
                span_id = fallback_id
                fallback_id -= 1
            wait_on = args.get("wait_on") or []
            if not isinstance(wait_on, list):
                wait_on = [wait_on]
            start = float(ev.get("ts", 0.0)) / 1e6
            dur = float(ev.get("dur", 0.0)) / 1e6
            nodes.append(SpanNode(
                span_id=int(span_id),
                name=str(ev.get("name", "")),
                category=str(ev.get("cat", "")),
                node=int(ev.get("pid", -1)),
                start=start, end=start + dur,
                parent_id=args.get("parent"),
                cause=args.get("cause"),
                wait_on=[int(w) for w in wait_on],
                attrs=args,
                unfinished=bool(args.get("unfinished", False))))
        return cls(nodes)


def _from_span(span, end: float, unfinished: bool = False) -> SpanNode:
    attrs = span.attrs
    wait_on = attrs.get("wait_on") or []
    if not isinstance(wait_on, list):
        wait_on = [wait_on]
    return SpanNode(
        span_id=span.span_id, name=span.name, category=span.category,
        node=span.node, start=span.start, end=end,
        parent_id=span.parent_id, cause=attrs.get("cause"),
        wait_on=list(wait_on), track=span.track, attrs=attrs,
        unfinished=unfinished)


def load_trace(path: str) -> SpanGraph:
    """Load a Chrome-trace JSON file (the ``repro trace`` /
    ``export_chrome`` output) into a :class:`SpanGraph`."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", doc) if isinstance(doc, dict) \
        else doc
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace document")
    return SpanGraph.from_chrome_events(events)
