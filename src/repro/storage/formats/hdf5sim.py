"""A group-addressed chunked container format (``hdf5://`` scheme).

Structural stand-in for HDF5: one file holds many named *groups*, each
a contiguous dataset region with dtype metadata. Layout::

    [magic "HD5S"][u64 index_offset][data regions ...][JSON index]

The JSON index maps group name -> {offset, nbytes, dtype}. Growing a
group relocates it to the end of the file (like HDF5's free-space
reuse, simplified: old space is left as a hole until compaction).
The vector key ``hdf5:///path/df.h5:mygroup`` addresses one group.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Dict, Optional

import numpy as np

from repro.storage.backend import Backend, BackendError, ParsedUrl

MAGIC = b"HD5S"
HEADER = struct.Struct("<4sQ")  # magic, index offset
DEFAULT_GROUP = "data"


class Hdf5SimBackend(Backend):
    """One group of an hdf5sim container presented as a flat image."""

    def __init__(self, url: ParsedUrl, dtype: Optional[np.dtype] = None,
                 create: bool = False):
        super().__init__(url)
        self.path = url.path
        self.group = url.params or DEFAULT_GROUP
        self.dtype = np.dtype(dtype) if dtype is not None else None
        if not os.path.exists(self.path):
            if not create:
                raise BackendError(f"no such file: {self.path}")
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(self.path, "wb") as fh:
                fh.write(HEADER.pack(MAGIC, HEADER.size))
                fh.write(json.dumps({}).encode())
        self._index = self._load_index()
        if create and self.group not in self._index:
            self._create_group()

    # -- container plumbing ----------------------------------------------
    def _load_index(self) -> Dict[str, dict]:
        with open(self.path, "rb") as fh:
            head = fh.read(HEADER.size)
            if len(head) < HEADER.size:
                raise BackendError(f"truncated hdf5sim file: {self.path}")
            magic, idx_off = HEADER.unpack(head)
            if magic != MAGIC:
                raise BackendError(
                    f"{self.path} is not an hdf5sim container "
                    f"(magic {magic!r})")
            fh.seek(idx_off)
            raw = fh.read()
        try:
            return json.loads(raw.decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise BackendError(f"corrupt index in {self.path}: {exc}") from exc

    def _save_index(self, fh, index: Dict[str, dict]) -> None:
        fh.seek(0, os.SEEK_END)
        idx_off = fh.tell()
        fh.write(json.dumps(index).encode())
        fh.truncate()
        fh.seek(0)
        fh.write(HEADER.pack(MAGIC, idx_off))
        self._index = index

    def _create_group(self) -> None:
        with open(self.path, "r+b") as fh:
            index = self._load_index()
            _, idx_off = self._read_header(fh)
            entry = {"offset": idx_off, "nbytes": 0,
                     "dtype": self.dtype.str if self.dtype else "|u1"}
            index[self.group] = entry
            fh.seek(idx_off)
            fh.truncate()
            self._save_index(fh, index)

    @staticmethod
    def _read_header(fh):
        fh.seek(0)
        return HEADER.unpack(fh.read(HEADER.size))

    @property
    def _entry(self) -> dict:
        try:
            return self._index[self.group]
        except KeyError:
            raise BackendError(
                f"no group {self.group!r} in {self.path}; "
                f"have {sorted(self._index)}") from None

    # -- group management (used by datagen and the stager) ----------------
    def groups(self) -> list[str]:
        return sorted(self._index)

    def group_dtype(self) -> np.dtype:
        return np.dtype(self._entry["dtype"])

    def write_group(self, name: str, array: np.ndarray) -> None:
        """Create/replace a whole group from a NumPy array."""
        raw = array.tobytes()
        with open(self.path, "r+b") as fh:
            index = self._load_index()
            fh.seek(0, os.SEEK_END)
            # Index currently sits at the tail; overwrite it with data.
            _, idx_off = self._read_header(fh)
            fh.seek(idx_off)
            fh.truncate()
            offset = fh.tell()
            fh.write(raw)
            index[name] = {"offset": offset, "nbytes": len(raw),
                           "dtype": array.dtype.str}
            self._save_index(fh, index)

    def read_group(self, name: str) -> np.ndarray:
        entry = self._index.get(name)
        if entry is None:
            raise BackendError(f"no group {name!r} in {self.path}")
        with open(self.path, "rb") as fh:
            fh.seek(entry["offset"])
            raw = fh.read(entry["nbytes"])
        return np.frombuffer(raw, dtype=np.dtype(entry["dtype"])).copy()

    # -- flat image over this backend's group -----------------------------
    def size(self) -> int:
        return int(self._entry["nbytes"])

    def read_range(self, offset: int, nbytes: int) -> bytes:
        self._check_range(offset, nbytes)
        entry = self._entry
        with open(self.path, "rb") as fh:
            fh.seek(entry["offset"] + offset)
            data = fh.read(nbytes)
        if len(data) != nbytes:
            raise BackendError(f"short read from {self.path}")
        return data

    def write_range(self, offset: int, data: bytes) -> None:
        data = bytes(data)
        self._check_range(offset, len(data))
        entry = self._entry
        with open(self.path, "r+b") as fh:
            fh.seek(entry["offset"] + offset)
            fh.write(data)

    def ensure_size(self, nbytes: int) -> None:
        entry = self._entry
        if entry["nbytes"] >= nbytes:
            return
        # Relocate the group to the end of the file with the new size.
        with open(self.path, "r+b") as fh:
            index = self._load_index()
            entry = index[self.group]
            fh.seek(entry["offset"])
            old = fh.read(entry["nbytes"])
            _, idx_off = self._read_header(fh)
            is_last = entry["offset"] + entry["nbytes"] == idx_off
            if is_last:
                new_off = entry["offset"]
            else:
                new_off = idx_off
            fh.seek(new_off)
            fh.write(old)
            fh.write(b"\0" * (nbytes - len(old)))
            index[self.group] = {"offset": new_off, "nbytes": nbytes,
                                 "dtype": entry["dtype"]}
            self._save_index(fh, index)
