"""CLI: run pipeline workflow files against the simulated cluster.

    python -m repro pipelines/mm_kmeans_mega.yaml [--workdir DIR]

Mirrors the artifact's ``jarvis ppl run yaml /path/to/workflow.yaml``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from repro.pipeline import run_pipeline


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a MegaMmap workflow pipeline (Jarvis-style).")
    parser.add_argument("pipeline", help="path to a workflow YAML file")
    parser.add_argument("--workdir", default=None,
                        help="directory for datasets + stats_dict.csv "
                             "(default: a fresh temp directory)")
    args = parser.parse_args(argv)
    workdir = args.workdir or tempfile.mkdtemp(prefix="megammap-ppl-")
    rows = run_pipeline(args.pipeline, workdir=workdir)
    if not rows:
        print("pipeline produced no rows", file=sys.stderr)
        return 1
    cols = list(rows[0])
    print("  ".join(cols))
    for row in rows:
        print("  ".join(
            f"{row[c]:.4f}" if isinstance(row[c], float) else str(row[c])
            for c in cols))
    print(f"\nstats written to {workdir}/", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
