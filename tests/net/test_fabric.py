"""Unit tests for the network fabric and mailboxes."""

import pytest

from repro.net import LinkSpec, Mailbox, Message, Network
from repro.net.fabric import ETH_40G
from repro.net.message import ANY_SOURCE, ANY_TAG, payload_nbytes
from repro.sim import Simulator

import numpy as np


def test_transfer_time_is_latency_plus_bw():
    sim = Simulator()
    net = Network(sim, 2, intra=LinkSpec(bandwidth=100.0, latency=1.0))

    def proc():
        yield from net.transfer(0, 1, 200)

    sim.run(until=sim.process(proc()))
    assert sim.now == pytest.approx(1.0 + 2.0)


def test_same_node_transfer_uses_loopback():
    sim = Simulator()
    net = Network(sim, 2, intra=LinkSpec(bandwidth=1.0, latency=100.0),
                  loopback=LinkSpec(bandwidth=1e9, latency=0.0))

    def proc():
        yield from net.transfer(1, 1, 1000)

    sim.run(until=sim.process(proc()))
    assert sim.now < 1.0


def test_sender_nic_serializes_concurrent_sends():
    sim = Simulator()
    net = Network(sim, 3, intra=LinkSpec(bandwidth=100.0, latency=0.0))

    def send(dst):
        yield from net.transfer(0, dst, 100)

    sim.process(send(1))
    sim.process(send(2))
    sim.run()
    assert sim.now == pytest.approx(2.0)


def test_different_senders_do_not_contend():
    sim = Simulator()
    net = Network(sim, 4, intra=LinkSpec(bandwidth=100.0, latency=0.0))

    def send(src, dst):
        yield from net.transfer(src, dst, 100)

    sim.process(send(0, 1))
    sim.process(send(2, 3))
    sim.run()
    assert sim.now == pytest.approx(1.0)


def test_inter_rack_latency_is_higher():
    sim = Simulator()
    net = Network(sim, 4, rack_size=2)
    assert net.rack_of(1) == 0 and net.rack_of(2) == 1
    intra = net.transfer_time(0, 1, 1000)
    inter = net.transfer_time(0, 2, 1000)
    assert inter > intra


def test_unknown_node_rejected():
    sim = Simulator()
    net = Network(sim, 2)

    def proc():
        yield from net.transfer(0, 5, 10)

    with pytest.raises(ValueError):
        sim.run(until=sim.process(proc()))


def test_bytes_moved_accounting():
    sim = Simulator()
    net = Network(sim, 2)

    def proc():
        yield from net.transfer(0, 1, 123)

    sim.run(until=sim.process(proc()))
    assert net.bytes_moved == 123


def test_eth40g_preset_reasonable():
    # 5 GB/s: 1 GB takes ~0.2 s.
    assert ETH_40G.xfer_time(10 ** 9) == pytest.approx(0.2, rel=0.01)


def test_mailbox_tag_matching():
    sim = Simulator()
    box = Mailbox(sim)
    box.deliver(Message(src=1, dst=0, tag=7, payload="a", nbytes=1))
    box.deliver(Message(src=2, dst=0, tag=9, payload="b", nbytes=1))

    def proc():
        m9 = yield box.receive(tag=9)
        m7 = yield box.receive(tag=7)
        return m9.payload, m7.payload

    p = sim.process(proc())
    sim.run()
    assert p.value == ("b", "a")


def test_mailbox_source_matching_and_wildcards():
    sim = Simulator()
    box = Mailbox(sim)
    box.deliver(Message(src=3, dst=0, tag=1, payload="x", nbytes=1))

    def proc():
        m = yield box.receive(source=3, tag=ANY_TAG)
        return m.src

    p = sim.process(proc())
    sim.run()
    assert p.value == 3


def test_mailbox_waiter_woken_on_delivery():
    sim = Simulator()
    box = Mailbox(sim)

    def consumer():
        m = yield box.receive(source=ANY_SOURCE)
        return m.payload, sim.now

    def producer():
        yield sim.timeout(4.0)
        box.deliver(Message(src=0, dst=0, tag=0, payload="late", nbytes=4))

    c = sim.process(consumer())
    sim.process(producer())
    sim.run()
    assert c.value == ("late", 4.0)


def test_mailbox_fifo_among_matching():
    sim = Simulator()
    box = Mailbox(sim)
    box.deliver(Message(src=1, dst=0, tag=0, payload="first", nbytes=1))
    box.deliver(Message(src=1, dst=0, tag=0, payload="second", nbytes=1))

    def proc():
        a = yield box.receive()
        b = yield box.receive()
        return a.payload, b.payload

    p = sim.process(proc())
    sim.run()
    assert p.value == ("first", "second")


def test_mailbox_probe_does_not_consume():
    sim = Simulator()
    box = Mailbox(sim)
    box.deliver(Message(src=1, dst=0, tag=5, payload="p", nbytes=1))
    assert box.probe(tag=5).payload == "p"
    assert box.pending == 1


def test_payload_nbytes_numpy_exact():
    assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80


def test_payload_nbytes_containers():
    assert payload_nbytes(b"abc") == 3
    assert payload_nbytes([np.zeros(4, np.float32)]) == 64 + 16
    assert payload_nbytes({"k": b"xy"}) > 2
    assert payload_nbytes(object()) == 64
