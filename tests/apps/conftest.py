"""Shared fixtures for application tests: a small cluster + dataset."""

import numpy as np
import pytest

from repro.cluster import SimCluster
from repro.core.config import MegaMmapConfig
from repro.storage.tiers import DRAM, MB, NVME, SATA_SSD, scaled


def make_cluster(n_nodes=2, procs_per_node=2, dram_mb=16, nvme_mb=64,
                 page_size=64 * 1024, pcache=256 * 1024, pfs_servers=1,
                 pfs_spec=None, **cfg):
    return SimCluster(
        n_nodes=n_nodes, procs_per_node=procs_per_node,
        pfs_servers=pfs_servers,
        pfs_spec=pfs_spec or scaled(SATA_SSD, 4096 * MB),
        tiers=(scaled(DRAM, dram_mb * MB), scaled(NVME, nvme_mb * MB)),
        config=MegaMmapConfig(page_size=page_size, pcache_size=pcache,
                              **cfg),
    )
