"""Tests for the Jarvis-style pipeline runner and the CLI."""

import csv
import os

import numpy as np
import pytest

from repro.pipeline import (
    APP_REGISTRY,
    PipelineError,
    build_cluster,
    prepare_dataset,
    run_pipeline,
)

MINI_KMEANS = """
name: KMeans-Mini
cluster:
  n_nodes: 2
  procs_per_node: 2
  dram_mb: 16
  nvme_mb: 64
  page_size: 65536
dataset:
  kind: points
  n: 4000
  k: 4
  seed: 7
  path: pts.parquet
app:
  kind: mm_kmeans
  k: 4
  max_iter: 2
output: stats_dict.csv
"""


def test_run_pipeline_produces_stats_csv(tmp_path):
    rows = run_pipeline(MINI_KMEANS, workdir=str(tmp_path))
    assert len(rows) == 1
    row = rows[0]
    assert row["app"] == "KMeans-Mini"
    assert row["nprocs"] == 4
    assert row["runtime_s"] > 0
    assert not row["crashed"]
    out = tmp_path / "stats_dict.csv"
    assert out.exists()
    with open(out) as fh:
        parsed = list(csv.DictReader(fh))
    assert len(parsed) == 1
    assert float(parsed[0]["runtime_s"]) == pytest.approx(
        row["runtime_s"])


def test_pipeline_sweep_grid(tmp_path):
    spec = MINI_KMEANS + """
sweep:
  - key: cluster.dram_mb
    values:
      - 16
      - 8
"""
    rows = run_pipeline(spec, workdir=str(tmp_path))
    assert len(rows) == 2
    assert [r["cluster.dram_mb"] for r in rows] == [16, 8]
    # The DRAM cap really changed the deployment.
    assert rows[1]["peak_dram_node_mb"] <= 8.5


def test_pipeline_two_axis_sweep_is_cross_product(tmp_path):
    spec = MINI_KMEANS + """
sweep:
  - key: cluster.dram_mb
    values:
      - 16
      - 8
  - key: app.max_iter
    values:
      - 1
      - 2
"""
    rows = run_pipeline(spec, workdir=str(tmp_path))
    assert len(rows) == 4
    combos = {(r["cluster.dram_mb"], r["app.max_iter"]) for r in rows}
    assert combos == {(16, 1), (16, 2), (8, 1), (8, 2)}


def test_pipeline_from_file(tmp_path):
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    rows = run_pipeline(str(path), workdir=str(tmp_path))
    assert rows


def test_pipeline_gray_scott(tmp_path):
    spec = """
name: GS-Mini
cluster:
  n_nodes: 2
  procs_per_node: 2
  dram_mb: 16
  nvme_mb: 64
app:
  kind: mm_gray_scott
  L: 16
  steps: 2
"""
    rows = run_pipeline(spec, workdir=str(tmp_path))
    assert len(rows) == 1
    assert rows[0]["runtime_s"] > 0


def test_pipeline_unknown_app_rejected(tmp_path):
    with pytest.raises(PipelineError, match="unknown app"):
        run_pipeline("app:\n  kind: nope\n", workdir=str(tmp_path))


def test_pipeline_requires_app(tmp_path):
    with pytest.raises(PipelineError):
        run_pipeline("name: x\n", workdir=str(tmp_path))


def test_build_cluster_tiers_and_config():
    cluster = build_cluster({"n_nodes": 2, "dram_mb": 8, "nvme_mb": 16,
                             "ssd_mb": 32, "hdd_mb": 64,
                             "page_size": 4096})
    kinds = [d.spec.kind for d in cluster.dmshs[0]]
    assert kinds == ["dram", "nvme", "ssd", "hdd"]
    assert cluster.spec.config.page_size == 4096


def test_prepare_dataset_idempotent(tmp_path):
    section = {"kind": "points", "n": 100, "k": 2, "seed": 1,
               "path": "d.parquet"}
    prepare_dataset(section, str(tmp_path))
    first = (tmp_path / "d.parquet").read_bytes()
    prepare_dataset(section, str(tmp_path))
    assert (tmp_path / "d.parquet").read_bytes() == first


def test_prepare_dataset_gadget_writes_labels(tmp_path):
    prepare_dataset({"kind": "gadget", "n": 200, "k": 2,
                     "path": "snap.h5"}, str(tmp_path))
    assert (tmp_path / "snap.h5").exists()
    labels = np.fromfile(tmp_path / "snap.h5.labels", dtype=np.int32)
    assert len(labels) == 200


def test_registry_covers_all_eight_artifact_apps():
    # The AD appendix's 8 applications (2x KMeans, 2x DBSCAN, 2x RF,
    # 2x Gray-Scott).
    assert set(APP_REGISTRY) == {
        "mm_kmeans", "spark_kmeans", "mm_dbscan", "mpi_dbscan",
        "mm_random_forest", "spark_random_forest", "mm_gray_scott",
        "mpi_gray_scott"}


def test_cli_main(tmp_path, capsys):
    from repro.__main__ import main
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    rc = main([str(path), "--workdir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "runtime_s" in out
    assert "stats written" in out


def test_cli_run_subcommand(tmp_path, capsys):
    from repro.__main__ import main
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    rc = main(["run", str(path), "--workdir", str(tmp_path)])
    assert rc == 0
    assert "runtime_s" in capsys.readouterr().out


def test_cli_trace_subcommand_writes_chrome_json(tmp_path, capsys):
    import json
    from repro.__main__ import main
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    out = tmp_path / "t.json"
    rc = main(["trace", str(path), "--workdir", str(tmp_path),
               "--out", str(out)])
    assert rc == 0
    assert "trace written to" in capsys.readouterr().out
    with open(out, encoding="utf-8") as fh:
        doc = json.load(fh)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert xs, "traced run produced no spans"
    assert {"pcache", "rt.service"} <= {e["cat"] for e in xs}


def test_run_pipeline_trace_path_per_sweep_variant(tmp_path):
    spec = MINI_KMEANS + """
sweep:
  - key: app.max_iter
    values:
      - 1
      - 2
"""
    trace = tmp_path / "sweep.json"
    rows = run_pipeline(spec, workdir=str(tmp_path),
                        trace_path=str(trace))
    assert len(rows) == 2
    assert (tmp_path / "sweep.0.json").exists()
    assert (tmp_path / "sweep.1.json").exists()


def test_repo_pipelines_parse(tmp_path):
    """The shipped pipeline files must at least parse and reference
    known apps."""
    import glob
    from repro.core.config import load_yaml_subset
    root = os.path.join(os.path.dirname(__file__), os.pardir,
                        "pipelines")
    files = glob.glob(os.path.join(root, "*.yaml"))
    assert len(files) >= 3
    for f in files:
        spec = load_yaml_subset(open(f, encoding="utf-8").read())
        assert spec["app"]["kind"] in APP_REGISTRY, f
