"""Simulated cluster network fabric.

Models the paper's testbed interconnect: a compute rack and a storage
rack "interconnected by two isolated Ethernet networks (one of 40Gb/s
and the other 10Gb/s), with RoCE enabled". Transfers are charged
``latency + bytes/bandwidth`` and serialized per sending NIC, so
incast/fan-out contention emerges naturally.
"""

from repro.net.fabric import LinkSpec, Network
from repro.net.message import Mailbox, Message, batched_nbytes

__all__ = ["LinkSpec", "Mailbox", "Message", "Network",
           "batched_nbytes"]
