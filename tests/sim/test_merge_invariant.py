"""Property test: the kernel's pop order is the (time, priority, seq)
total order, whatever mix of microqueues, heap, and far-timer wheel
the events were routed through.

This is the invariant every fast path must preserve — and the one the
shard coordinator relies on at window boundaries: injecting boundary
messages with ``call_at`` in canonical order reproduces the
single-kernel schedule exactly.
"""

import random

import pytest

from repro.sim import Simulator
from repro.sim.engine import NORMAL, URGENT


def _random_schedule(sim, rng, budget):
    """Drive a randomized event storm; return (expected, fired).

    Every scheduled callback may schedule more events with random
    delays (zero → microqueues, short → heap, long → far wheel) and
    random priorities. ``expected`` records (time, priority, seq) in
    scheduling order — the kernel assigns its internal seq in the same
    order — and ``fired`` records execution order.
    """
    expected = []
    fired = []
    pending = set()
    state = {"seq": 0, "left": budget}

    def schedule(delay, priority):
        when = sim.now + delay
        seq = state["seq"]
        state["seq"] += 1
        label = (when, priority, seq)
        expected.append(label)
        pending.add(label)
        sim.call_at(when, lambda _evt, label=label: on_fire(label),
                    priority=priority)

    def on_fire(label):
        # The kernel invariant: every pop is the (time, priority, seq)
        # minimum of everything scheduled-and-unfired at that moment.
        assert label == min(pending), (label, min(pending))
        pending.discard(label)
        fired.append(label)
        for _ in range(rng.randrange(3)):
            if state["left"] <= 0:
                return
            state["left"] -= 1
            kind = rng.randrange(4)
            if kind == 0:
                delay = 0.0
            elif kind == 1:
                delay = rng.uniform(0.0, 5e-4)
            elif kind == 2:
                delay = rng.uniform(5e-4, 2e-3)
            else:
                delay = rng.uniform(2e-3, 5e-2)  # far-wheel territory
            schedule(delay, rng.choice((URGENT, NORMAL)))

    # A seed burst big enough to pass the wheel's adaptive-activation
    # threshold, with duplicate timestamps to stress the tiebreaks.
    times = [0.0, 1e-3, 1e-3, 2e-3] + \
        [rng.choice((5e-4, 1e-3, rng.uniform(0, 4e-2)))
         for _ in range(60)]
    for t in times:
        if state["left"] <= 0:
            break
        state["left"] -= 1
        schedule(t, rng.choice((URGENT, NORMAL)))
    sim.run()
    return expected, fired


@pytest.mark.parametrize("seed", range(8))
def test_pop_order_is_time_priority_seq_total_order(seed):
    rng = random.Random(seed)
    sim = Simulator()
    expected, fired = _random_schedule(sim, rng, budget=400)
    # Everything fired exactly once (the min-of-pending assertion
    # inside the storm checked the order at every single pop).
    assert len(fired) == len(expected)
    assert sorted(fired) == sorted(expected)


@pytest.mark.parametrize("seed", range(4))
def test_total_order_matches_slow_kernel(monkeypatch, seed):
    """The fast kernel (microqueues + cohorts + wheel) fires the exact
    sequence the plain-heap kernel fires."""
    runs = []
    for slow in ("0", "1"):
        monkeypatch.setenv("MEGAMMAP_SLOW_KERNEL", slow)
        sim = Simulator()
        assert sim._fast == (slow == "0")
        runs.append(_random_schedule(sim, random.Random(seed), 300))
    (_, fired_fast), (_, fired_slow) = runs
    assert fired_fast == fired_slow


def test_wheel_engaged_by_storm():
    """The randomized storm actually routes entries through the far
    wheel (guards against the property passing vacuously)."""
    sim = Simulator()
    _random_schedule(sim, random.Random(1), budget=400)
    if sim._fast:
        assert sim.wheel_events > 0
