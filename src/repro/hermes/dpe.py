"""Data placement engines: choose the tier for an incoming blob.

A policy names its *ideal* tier index; the Hermes core then handles
capacity: demote colder residents out of the ideal tier, else fall
deeper, else fail (paper III-D: "The organizer will first attempt to
place pages in the fastest tiers if there is available capacity. Pages
with lower scores in a tier will be prioritized for eviction to make
space for higher-scoring data").
"""

from __future__ import annotations

from repro.storage.dmsh import DMSH


class PlacementError(RuntimeError):
    """No tier can absorb the blob."""


class PlacementPolicy:
    """Strategy interface: the ideal tier index on ``dmsh``."""

    def ideal_index(self, dmsh: DMSH, nbytes: int, score: float = 1.0) -> int:
        raise NotImplementedError


class MinimizeIoTime(PlacementPolicy):
    """Hermes' default: always want the fastest tier."""

    def ideal_index(self, dmsh: DMSH, nbytes: int, score: float = 1.0) -> int:
        return 0


class ScoreAware(PlacementPolicy):
    """MegaMmap's organizer-facing policy: map the page score to a
    tier — score 1.0 is the fastest tier, score 0.0 the deepest."""

    def ideal_index(self, dmsh: DMSH, nbytes: int, score: float = 1.0) -> int:
        n = len(dmsh.tiers)
        return min(n - 1, int((1.0 - score) * n))


class RoundRobin(PlacementPolicy):
    """Spread blobs across tiers by turn (a capacity-balancing
    baseline used in ablations)."""

    def __init__(self):
        self._next = 0

    def ideal_index(self, dmsh: DMSH, nbytes: int, score: float = 1.0) -> int:
        idx = self._next % len(dmsh.tiers)
        self._next += 1
        return idx
