"""Blob metadata records."""

from __future__ import annotations

from dataclasses import dataclass, field


class BlobNotFound(KeyError):
    """Raised when a blob key has no metadata entry."""


@dataclass(slots=True)
class BlobInfo:
    """Where one blob lives and how hot it is.

    ``score`` is the organizer's current placement score in [0, 1]
    (paper III-D); ``node``/``tier`` locate the authoritative copy;
    ``replicas`` lists additional (node, tier) copies created under
    read-only replication.
    """

    bucket: str
    key: object
    node: int
    tier: str
    nbytes: int
    score: float = 1.0
    replicas: list = field(default_factory=list)

    @property
    def placements(self) -> list:
        """All (node, tier) pairs holding this blob, primary first."""
        return [(self.node, self.tier)] + list(self.replicas)
