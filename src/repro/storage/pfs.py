"""A striped parallel filesystem (OrangeFS stand-in).

Files are striped round-robin across server devices living on the
storage rack; client I/O charges network transfer to each server plus
the server device's transfer time, with stripes proceeding in parallel
(the source of PFS aggregate bandwidth). Content is functional: each
file is a real bytearray, so baselines can read back what they wrote.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.fabric import Network
from repro.sim import AllOf, Monitor, Simulator
from repro.storage.device import Device, DeviceSpec
from repro.storage.tiers import HDD, MB


class PfsError(RuntimeError):
    """Raised for bad paths/ranges on the parallel filesystem."""


class ParallelFS:
    """OrangeFS-like striped file service."""

    def __init__(self, sim: Simulator, network: Network,
                 server_nodes: List[int],
                 server_spec: DeviceSpec = HDD,
                 stripe_size: int = MB,
                 monitor: Optional[Monitor] = None):
        if not server_nodes:
            raise ValueError("PFS needs at least one server node")
        if stripe_size < 1:
            raise ValueError(f"stripe_size must be >= 1, got {stripe_size}")
        self.sim = sim
        self.network = network
        self.server_nodes = list(server_nodes)
        self.stripe_size = stripe_size
        self.devices = [
            Device(sim, server_spec, name=f"pfs{node}.{server_spec.kind}",
                   monitor=monitor)
            for node in server_nodes
        ]
        self._files: Dict[str, bytearray] = {}

    # -- namespace ----------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def create(self, path: str) -> None:
        self._files.setdefault(path, bytearray())

    def size(self, path: str) -> int:
        return len(self._file(path))

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def paths(self) -> List[str]:
        return sorted(self._files)

    def _file(self, path: str) -> bytearray:
        if path not in self._files:
            raise PfsError(f"no such PFS file: {path}")
        return self._files[path]

    def _server_of(self, stripe_idx: int) -> int:
        return stripe_idx % len(self.devices)

    # -- striped timed I/O ----------------------------------------------------
    def _stripe_op(self, client_node: int, stripe_idx: int, nbytes: int,
                   write: bool):
        srv = self._server_of(stripe_idx)
        if write:
            yield from self.network.transfer(
                client_node, self.server_nodes[srv], nbytes)
            yield from self.devices[srv].charge(nbytes, write=True)
        else:
            yield from self.devices[srv].charge(nbytes, write=False)
            yield from self.network.transfer(
                self.server_nodes[srv], client_node, nbytes)

    def _striped(self, client_node: int, offset: int, nbytes: int,
                 write: bool):
        """Run all stripe transfers for a range, in parallel."""
        procs = []
        pos = offset
        end = offset + nbytes
        while pos < end:
            stripe_idx = pos // self.stripe_size
            take = min(end - pos, (stripe_idx + 1) * self.stripe_size - pos)
            procs.append(self.sim.process(
                self._stripe_op(client_node, stripe_idx, take, write),
                name=f"pfs.stripe{stripe_idx}"))
            pos += take
        if procs:
            yield AllOf(self.sim, procs)

    def write(self, client_node: int, path: str, offset: int, data):
        """Timed striped write; creates/grows the file as needed.
        Generator."""
        data = bytes(data)
        self.create(path)
        buf = self._files[path]
        if offset < 0:
            raise PfsError(f"negative offset {offset}")
        if offset > len(buf):
            buf.extend(b"\0" * (offset - len(buf)))
        yield from self._striped(client_node, offset, len(data), write=True)
        end = offset + len(data)
        if end > len(buf):
            buf.extend(b"\0" * (end - len(buf)))
        buf[offset:end] = data

    def read(self, client_node: int, path: str, offset: int, nbytes: int):
        """Timed striped read; returns bytes. Generator."""
        buf = self._file(path)
        if offset < 0 or offset + nbytes > len(buf):
            raise PfsError(
                f"range [{offset}, {offset + nbytes}) outside {path} "
                f"of {len(buf)} bytes")
        yield from self._striped(client_node, offset, nbytes, write=False)
        return bytes(buf[offset:offset + nbytes])

    @property
    def bytes_written(self) -> int:
        return sum(d.bytes_written for d in self.devices)

    @property
    def bytes_read(self) -> int:
        return sum(d.bytes_read for d in self.devices)
