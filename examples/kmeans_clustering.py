#!/usr/bin/env python
"""Clustering a Gadget-like particle dataset with MegaMmap KMeans‖.

The paper's Listing-1 scenario end to end: generate a synthetic
cosmology snapshot (parquet format), map it as a nonvolatile shared
vector, run the KMeans‖ application with a bounded pcache, persist the
cluster assignments through a file-backed vector, and verify the
recovered halos against ground truth.

Run:  python examples/kmeans_clustering.py
"""

import os
import tempfile

import numpy as np

from repro.apps.datagen import as_xyz, generate_points, \
    write_parquet_points
from repro.apps.kmeans import assign, match_accuracy, mm_kmeans
from repro.cluster import SimCluster
from repro.core.config import MegaMmapConfig
from repro.storage.tiers import DRAM, MB, NVME, scaled

N_POINTS = 100_000
K = 8


def main():
    workdir = tempfile.mkdtemp(prefix="megammap-kmeans-")
    data_path = os.path.join(workdir, "points.parquet")
    truth = write_parquet_points(data_path, N_POINTS, K, seed=42)
    print(f"dataset: {N_POINTS} points, {K} halos -> {data_path}")

    cluster = SimCluster(
        n_nodes=4, procs_per_node=2, pfs_servers=2,
        tiers=(scaled(DRAM, 16 * MB), scaled(NVME, 64 * MB)),
        config=MegaMmapConfig(page_size=64 * 1024),
    )
    assign_url = f"posix://{workdir}/assignments.bin"
    result = cluster.run(
        mm_kmeans, f"parquet://{data_path}", K,
        4,                  # max_iter
        0,                  # seed
        512 * 1024,         # pcache bound: 1 MB per process
        3,                  # init rounds
        assign_url)
    cluster.shutdown()      # persists all file-backed vectors

    centroids, inertia = result.values[0]
    pts, _ = generate_points(N_POINTS, K, seed=42)
    pred, _ = assign(as_xyz(pts), centroids)
    acc = match_accuracy(pred, truth)
    print(f"inertia: {inertia:.1f}")
    print(f"halo recovery accuracy: {acc:.1%}")
    print(f"simulated runtime: {result.runtime * 1e3:.1f} ms "
          f"({cluster.spec.nprocs} processes)")

    on_disk = np.fromfile(os.path.join(workdir, "assignments.bin"),
                          dtype=np.int32)
    print(f"persisted assignments: {len(on_disk)} labels, "
          f"accuracy {match_accuracy(on_disk, truth):.1%}")
    assert acc > 0.8


if __name__ == "__main__":
    main()
