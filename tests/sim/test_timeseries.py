"""Edge-case tests for TimeSeries.time_average (monitor satellite fix).

Pre-fix, ``time_average(until=t)`` with ``t`` at or before the first
sample returned the *last sample's value* (a nonsense answer for an
empty window) because the zero/negative span fell through to a
single-sample shortcut. It must return 0.0.
"""

import pytest

from repro.sim.monitor import TimeSeries


def _series(*samples):
    ts = TimeSeries()
    for t, v in samples:
        ts.record(t, v)
    return ts


def test_empty_series_averages_zero():
    assert TimeSeries().time_average() == 0.0
    assert TimeSeries().time_average(until=5.0) == 0.0


def test_until_before_first_sample_is_zero():
    ts = _series((10.0, 42.0), (20.0, 7.0))
    # The regression: this used to return 7.0 (the last value).
    assert ts.time_average(until=5.0) == 0.0
    assert ts.time_average(until=10.0) == 0.0  # zero-width window


def test_single_sample_zero_span_is_zero():
    ts = _series((3.0, 99.0))
    assert ts.time_average() == 0.0            # until defaults to t0
    assert ts.time_average(until=3.0) == 0.0
    assert ts.time_average(until=1.0) == 0.0


def test_single_sample_extends_to_until():
    ts = _series((3.0, 99.0))
    assert ts.time_average(until=5.0) == pytest.approx(99.0)


def test_step_function_average():
    ts = _series((0.0, 1.0), (1.0, 3.0), (3.0, 0.0))
    # [0,1): 1, [1,3): 3 -> (1*1 + 3*2) / 3
    assert ts.time_average() == pytest.approx(7.0 / 3.0)


def test_until_clips_partial_interval():
    ts = _series((0.0, 2.0), (4.0, 10.0))
    # [0,2) of value 2 -> 4/2 = 2.0; the 10.0 sample is untouched.
    assert ts.time_average(until=2.0) == pytest.approx(2.0)
    # [0,5): 2*4 + 10*1 = 18 over 5.
    assert ts.time_average(until=5.0) == pytest.approx(18.0 / 5.0)


def test_until_before_last_sample_ignores_later_samples():
    ts = _series((0.0, 1.0), (1.0, 100.0), (2.0, 1000.0))
    assert ts.time_average(until=1.0) == pytest.approx(1.0)
    assert ts.time_average(until=1.5) == pytest.approx(
        (1.0 * 1.0 + 100.0 * 0.5) / 1.5)
