"""SLO monitor: spec parsing, burn-rate alert lifecycle, exact
compliance reporting."""

import pytest

from repro.obs.live import LiveObs
from repro.obs.slo import Alert, SLOMonitor, SLOSpec, load_slos
from repro.sim import Monitor, Simulator


def _rig(specs, window=0.01):
    sim = Simulator()
    mon = Monitor(sim)
    obs = LiveObs(sim, mon, window=window, retention=64).install()
    slo = SLOMonitor(obs, specs)
    return sim, mon, obs, slo


def _latency_spec(**over):
    base = dict(name="lat", objective="latency_p99", tenant="a",
                threshold_ms=100.0, target=0.9,
                fast_window_s=0.02, slow_window_s=0.1,
                fast_burn=2.0, slow_burn=1.0)
    base.update(over)
    return SLOSpec(**base)


# -- spec parsing ----------------------------------------------------------

def test_spec_validation():
    with pytest.raises(ValueError):
        SLOSpec(name="x", objective="nope")
    with pytest.raises(ValueError):
        SLOSpec(name="x", objective="latency_p99", threshold_ms=0)
    with pytest.raises(ValueError):
        SLOSpec(name="x", objective="availability")
    with pytest.raises(ValueError):
        SLOSpec(name="x", objective="hit_ratio", target=1.5)
    with pytest.raises(ValueError):
        SLOSpec.from_dict({"name": "x", "objective": "hit_ratio",
                           "bogus": 1})
    spec = _latency_spec()
    assert spec.budget == pytest.approx(0.1)


def test_load_slos_yaml():
    specs = load_slos("""
slos:
  - name: victim-lat
    objective: latency_p99
    tenant: km1
    threshold_ms: 120
    target: 0.95
  - name: victim-hits
    objective: hit_ratio
    tenant: km1
    target: 0.6
""")
    assert [s.name for s in specs] == ["victim-lat", "victim-hits"]
    assert specs[0].slow_window_s == pytest.approx(
        5 * specs[0].fast_window_s)
    assert load_slos("- name: a\n  objective: hit_ratio\n")[0].name \
        == "a"
    with pytest.raises(ValueError):
        load_slos("just-a-scalar")


# -- alert lifecycle -------------------------------------------------------

def test_latency_alert_fires_and_resolves():
    sim, mon, obs, slo = _rig([_latency_spec()])
    h = mon.metrics.histogram("tenant_task_latency", tenant="a")

    def work():
        # Healthy phase: everything under threshold.
        for _ in range(10):
            h.observe(0.01)
            yield sim.timeout(0.01)
        # Burn phase: all tasks 5x over threshold.
        for _ in range(10):
            h.observe(0.5)
            yield sim.timeout(0.01)
        # Recovery: healthy again long enough to clear both windows.
        for _ in range(20):
            h.observe(0.01)
            yield sim.timeout(0.01)

    sim.run(until=sim.process(work(), name="work"))
    assert len(slo.history) == 1
    alert = slo.history[0]
    assert not alert.firing
    # Fired during the burn phase, resolved during recovery.
    assert 0.1 <= alert.fired_at <= 0.2
    assert alert.resolved_at > 0.2
    assert not slo.firing
    # Lifecycle reached the metrics registry.
    fires = mon.metrics.counter("slo_alerts", slo="lat", event="fire")
    resolves = mon.metrics.counter("slo_alerts", slo="lat",
                                   event="resolve")
    assert fires.value == 1.0 and resolves.value == 1.0


def test_alert_needs_min_count():
    sim, mon, obs, slo = _rig([_latency_spec(min_count=5)])
    h = mon.metrics.histogram("tenant_task_latency", tenant="a")

    def work():
        # One horrible sample per fast window: burn is 10x but the
        # fast window never holds min_count samples.
        for _ in range(10):
            h.observe(9.9)
            yield sim.timeout(0.02)

    sim.run(until=sim.process(work(), name="work"))
    assert slo.history == []


def test_hit_ratio_alert():
    spec = SLOSpec(name="hits", objective="hit_ratio", tenant="a",
                   target=0.5, fast_window_s=0.02, slow_window_s=0.1)
    sim, mon, obs, slo = _rig([spec])
    fast = mon.metrics.counter("tenant_read_bytes", tenant="a",
                               speed="fast")
    slow = mon.metrics.counter("tenant_read_bytes", tenant="a",
                               speed="slow")

    def work():
        for _ in range(10):
            fast.inc(900)
            slow.inc(100)
            yield sim.timeout(0.01)
        for _ in range(15):
            slow.inc(1000)
            yield sim.timeout(0.01)

    sim.run(until=sim.process(work(), name="work"))
    assert len(slo.history) == 1
    assert slo.history[0].firing  # never resolves: run ends burned


def test_availability_alert_flat_counters():
    spec = SLOSpec(name="avail", objective="availability",
                   target=0.9, good_metric="tasks.ok",
                   bad_metric="tasks.err",
                   fast_window_s=0.02, slow_window_s=0.1)
    sim, mon, obs, slo = _rig([spec])

    def work():
        for _ in range(10):
            mon.count("tasks.ok", 10)
            yield sim.timeout(0.01)
        for _ in range(10):
            mon.count("tasks.ok", 1)
            mon.count("tasks.err", 9)
            yield sim.timeout(0.01)

    sim.run(until=sim.process(work(), name="work"))
    assert len(slo.history) == 1


# -- reporting -------------------------------------------------------------

def test_report_exact_compliance_and_violations():
    sim, mon, obs, slo = _rig([_latency_spec(target=0.8)])
    h = mon.metrics.histogram("tenant_task_latency", tenant="a")

    def work():
        for i in range(10):
            h.observe(0.5 if i < 5 else 0.01)  # 50% bad overall
            yield sim.timeout(0.01)

    sim.run(until=sim.process(work(), name="work"))
    rep = slo.report()
    assert rep["violations"] == 1
    slo_row = rep["slos"][0]
    assert slo_row["compliance"] == pytest.approx(0.5)
    assert slo_row["samples"] == 10
    assert not slo_row["ok"]
    assert rep["alerts"] and rep["alerts"][0]["slo"] == "lat"
    # Alert timeline attached to the owning SLO row too.
    assert slo_row["alerts"]


def test_report_no_data_is_ok():
    _sim, _mon, _obs, slo = _rig([_latency_spec()])
    rep = slo.report()
    assert rep["violations"] == 0
    assert rep["slos"][0]["ok"]


def test_alert_spans_recorded_when_tracing():
    from repro.sim.trace import Tracer
    sim = Simulator()
    mon = Monitor(sim)
    tracer = Tracer(sim, enabled=True)
    mon.tracer = tracer
    obs = LiveObs(sim, mon, tracer=tracer, window=0.01,
                  retention=64).install()
    slo = SLOMonitor(obs, [_latency_spec()])
    h = mon.metrics.histogram("tenant_task_latency", tenant="a")

    def work():
        for _ in range(10):
            h.observe(0.5)
            yield sim.timeout(0.01)
        for _ in range(20):
            h.observe(0.001)
            yield sim.timeout(0.01)

    sim.run(until=sim.process(work(), name="work"))
    cats = {s.category for s in tracer.spans}
    assert "alert" in cats
    events = [s.attrs.get("event") for s in tracer.spans
              if s.category == "alert"]
    assert "fire" in events and "episode" in events
