"""The per-node Deep Memory and Storage Hierarchy (DMSH).

An ordered stack of :class:`~repro.storage.device.Device` instances,
fastest first. The MegaMmap Data Organizer asks the DMSH where a page
of a given score should live; the DMSH also answers capacity queries
and computes the hardware cost of a composition (Fig. 7's $ axis).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.sim import Monitor, Simulator
from repro.storage.device import Device, DeviceSpec
from repro.storage.tiers import GB


class DMSH:
    """Ordered tier stack for one node.

    ``specs`` are sorted by descending performance score at
    construction, so ``dmsh.tiers[0]`` is always the fastest tier.
    """

    def __init__(self, sim: Simulator, specs: Iterable[DeviceSpec],
                 node_id: int = 0, monitor: Optional[Monitor] = None):
        ordered = sorted(specs, key=lambda s: s.perf_score(), reverse=True)
        if not ordered:
            raise ValueError("DMSH needs at least one tier")
        self.node_id = node_id
        self.tiers: List[Device] = [
            Device(sim, spec, name=f"node{node_id}.{spec.kind}",
                   monitor=monitor)
            for spec in ordered
        ]
        kinds = [d.spec.kind for d in self.tiers]
        if len(set(kinds)) != len(kinds):
            raise ValueError(f"duplicate tier kinds in DMSH: {kinds}")

    def __iter__(self):
        return iter(self.tiers)

    def __len__(self) -> int:
        return len(self.tiers)

    def tier(self, kind: str) -> Device:
        for dev in self.tiers:
            if dev.spec.kind == kind:
                return dev
        raise KeyError(f"no tier {kind!r} on node {self.node_id}")

    def has_tier(self, kind: str) -> bool:
        return any(d.spec.kind == kind for d in self.tiers)

    def index_of(self, kind: str) -> int:
        for i, dev in enumerate(self.tiers):
            if dev.spec.kind == kind:
                return i
        raise KeyError(kind)

    def fastest_with_room(self, nbytes: int) -> Optional[Device]:
        """Fastest tier that can absorb ``nbytes`` right now, or None."""
        for dev in self.tiers:
            if dev.fits(nbytes):
                return dev
        return None

    def tier_for_score(self, score: float, nbytes: int) -> Optional[Device]:
        """Map a page score in [0, 1] to a target tier with room.

        The fastest tier accepts scores above its own performance-rank
        threshold; lower scores map to deeper tiers. If the mapped tier
        is full, the next deeper tier with room is chosen.
        """
        n = len(self.tiers)
        # score 1.0 -> tier 0; score 0.0 -> deepest tier.
        idx = min(n - 1, int((1.0 - score) * n))
        for dev in self.tiers[idx:]:
            if dev.fits(nbytes):
                return dev
        return None

    def slower_than(self, dev: Device) -> Optional[Device]:
        """Next deeper tier, or None if ``dev`` is the deepest."""
        i = self.tiers.index(dev)
        return self.tiers[i + 1] if i + 1 < len(self.tiers) else None

    def fastest_durable(self) -> Optional[Device]:
        """Fastest tier whose medium survives a node crash (PMEM
        before NVMe before SSD...), or None on an all-volatile node.
        The durability subsystem hosts its write-ahead log here."""
        for dev in self.tiers:
            if dev.spec.durable:
                return dev
        return None

    # -- accounting -------------------------------------------------------
    @property
    def total_capacity(self) -> int:
        return sum(d.capacity for d in self.tiers)

    @property
    def total_used(self) -> int:
        return sum(d.used for d in self.tiers)

    def hardware_cost(self) -> float:
        """$ cost of the composition: capacity × $/GB summed over tiers."""
        return sum(d.capacity / GB * d.spec.cost_per_gb for d in self.tiers)

    def describe(self) -> str:
        """Fig. 7-style label, e.g. ``48D-16N-32S`` (sizes in MB or GB)."""
        letter = {"dram": "D", "cxl": "C", "pmem": "P", "nvme": "N",
                  "ssd": "S", "hdd": "H"}
        parts = []
        for dev in self.tiers:
            cap = dev.capacity
            if cap >= GB:
                size = f"{cap // GB}"
            else:
                size = f"{cap // (1024 ** 2)}"
            parts.append(f"{size}{letter.get(dev.spec.kind, '?')}")
        return "-".join(parts)
