#!/usr/bin/env python3
"""Gate CI on the kernel wall-clock floors (and overhead ceilings).

Reads the ``{name, metric, value, unit, sim_config}`` records emitted
by ``benchmarks.common.emit_result`` (``benchmarks/results/
BENCH_*.json``) and compares the *latest* record of each gated metric
against the floors in ``benchmarks/perf_floor.json``. Exits non-zero,
listing every violation, when a metric runs below its floor; metrics
with no emitted record fail too (the benchmark did not run).

The floors file may also carry a ``ceilings`` section — metrics that
must stay *at or below* a bound (e.g. ``obs.overhead_pct``, the
always-on observability wall-clock tax). Ceilings are gated with the
same matching/exclusion flags and the same no-record-is-a-failure
rule.

Usage::

    python scripts/check_perf_floor.py [--results DIR] [--floors FILE]
                                       [--match SUBSTR]
                                       [--exclude SUBSTR] [--json]

``--match`` restricts the gate to floors whose metric name contains
the substring — e.g. ``--match recovery`` lets the durability-smoke CI
job enforce only the recovery floors without requiring the kernel
benchmarks to have run in that job. ``--exclude`` is the complement
and may repeat: ``--exclude colocation --exclude scaling`` lets the
otherwise-unfiltered bench-perf job skip the floors whose benchmarks
run in the colocation-smoke and scaling-smoke jobs. ``--json`` prints
the full machine-readable verdict (per-metric status + failures) to
stdout instead of the human table; the exit code is unchanged.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
DEFAULT_RESULTS = os.path.join(REPO, "benchmarks", "results")
DEFAULT_FLOORS = os.path.join(REPO, "benchmarks", "perf_floor.json")


def load_latest_metrics(results_dir: str) -> dict:
    """{metric: (value, unit)} from the newest record of each metric."""
    latest = {}
    for path in sorted(glob.glob(os.path.join(results_dir,
                                              "BENCH_*.json"))):
        with open(path, encoding="utf-8") as fh:
            records = json.load(fh)
        for rec in records:  # in emit order; later records win
            latest[rec["metric"]] = (rec["value"], rec.get("unit", ""))
    return latest


def _filter(bounds: dict, match: str, exclude) -> dict:
    if match:
        bounds = {m: b for m, b in bounds.items() if match in m}
    for sub in exclude:
        bounds = {m: b for m, b in bounds.items() if sub not in m}
    return bounds


def evaluate(metrics: dict, floors: dict, ceilings: dict) -> list:
    """Per-metric verdicts: ``{metric, kind, bound, value, unit, ok}``
    rows (value/unit None when the benchmark never ran)."""
    rows = []
    for kind, bounds in (("floor", floors), ("ceiling", ceilings)):
        for metric, bound in sorted(bounds.items()):
            got = metrics.get(metric)
            if got is None:
                rows.append({"metric": metric, "kind": kind,
                             "bound": bound, "value": None,
                             "unit": None, "ok": False})
                continue
            value, unit = got
            ok = value >= bound if kind == "floor" else value <= bound
            rows.append({"metric": metric, "kind": kind,
                         "bound": bound, "value": value, "unit": unit,
                         "ok": ok})
    return rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--results", default=DEFAULT_RESULTS)
    ap.add_argument("--floors", default=DEFAULT_FLOORS)
    ap.add_argument("--match", default="",
                    help="only enforce bounds whose metric name "
                         "contains this substring")
    ap.add_argument("--exclude", action="append", default=[],
                    help="skip bounds whose metric name contains "
                         "this substring (repeatable)")
    ap.add_argument("--json", action="store_true",
                    help="print the machine-readable verdict instead "
                         "of the human table")
    args = ap.parse_args(argv)

    with open(args.floors, encoding="utf-8") as fh:
        doc = json.load(fh)
    floors = _filter(doc["floors"], args.match, args.exclude)
    ceilings = _filter(doc.get("ceilings", {}), args.match,
                       args.exclude)
    if not floors and not ceilings:
        msg = (f"no bounds match {args.match!r}" if args.match else
               f"--exclude {args.exclude!r} leaves no bounds")
        print(msg, file=sys.stderr)
        return 1
    metrics = load_latest_metrics(args.results)
    rows = evaluate(metrics, floors, ceilings)

    failures = []
    for row in rows:
        rel = ">=" if row["kind"] == "floor" else "<="
        if row["value"] is None:
            failures.append(f"{row['metric']}: no emitted record "
                            f"({row['kind']} {row['bound']})")
            continue
        status = "ok" if row["ok"] else \
            f"ABOVE CEILING" if row["kind"] == "ceiling" else \
            "BELOW FLOOR"
        if not args.json:
            print(f"{row['metric']}: {row['value']:,.4g} "
                  f"{row['unit']} ({row['kind']} {rel} "
                  f"{row['bound']:,g}) {status}")
        if not row["ok"]:
            failures.append(
                f"{row['metric']}: {row['value']:,.4g} violates "
                f"{row['kind']} {row['bound']:,g}")

    if args.json:
        print(json.dumps({"results": rows, "failures": failures,
                          "ok": not failures}, indent=2))
    if failures:
        if not args.json:
            print("\nPerf bound violations:", file=sys.stderr)
            for f in failures:
                print(f"  {f}", file=sys.stderr)
        return 1
    if not args.json:
        print("All perf bounds satisfied.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
