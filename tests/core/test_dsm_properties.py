"""Property-based DSM tests: random op sequences vs a NumPy oracle.

Hypothesis drives random mixes of writes, reads, appends, flushes,
evictions, and phase changes through the full DSM stack (pcache ->
runtime -> scache -> tiers -> backend) on multiple clients, checking
every read against a plain array model. This is the strongest
statement of the reproduction's "functionally real" property.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    MM_READ_ONLY,
    MM_READ_WRITE,
    MM_WRITE_ONLY,
    SeqTx,
)
from tests.core.conftest import build_system, run_procs

N = 2048  # elements per vector (int32; 4096-byte pages -> 2 pages)


op_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 1),
                  st.integers(0, N - 1), st.integers(1, 300),
                  st.integers(0, 1 << 20)),
        st.tuples(st.just("read"), st.integers(0, 1),
                  st.integers(0, N - 1), st.integers(1, 300)),
        st.tuples(st.just("flush"), st.integers(0, 1)),
        st.tuples(st.just("evict_all"), st.integers(0, 1)),
    ),
    min_size=1, max_size=12,
)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=op_strategy)
def test_single_client_matches_numpy_model(ops):
    sim, system = build_system(n_nodes=2, dram_mb=1, nvme_mb=8)
    client = system.client(rank=0, node=0)
    model = np.zeros(N, dtype=np.int32)
    mismatches = []

    def app():
        vec = yield from client.vector("v", dtype=np.int32, size=N)
        vec.bound_memory(2 * 4096)
        yield from vec.tx_begin(SeqTx(0, N, MM_READ_WRITE))
        for op in ops:
            kind = op[0]
            if kind == "write":
                _, _, off, count, value = op
                count = min(count, N - off)
                data = np.full(count, value, dtype=np.int32)
                yield from vec.write_range(off, data)
                model[off:off + count] = data
            elif kind == "read":
                _, _, off, count = op
                count = min(count, N - off)
                got = yield from vec.read_range(off, count)
                if not np.array_equal(got, model[off:off + count]):
                    mismatches.append((op, got.copy()))
            elif kind == "flush":
                yield from vec.flush(wait=True)
            elif kind == "evict_all":
                for page in list(vec.frames):
                    yield from vec.evict_page(page)
        yield from vec.tx_end()
        # Final full verification after draining everything.
        yield from vec.flush(wait=True)
        got = yield from vec.read_range(0, N)
        if not np.array_equal(got, model):
            mismatches.append(("final", got.copy()))

    run_procs(sim, app())
    assert not mismatches, mismatches[0]


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=op_strategy, data=st.data())
def test_two_clients_disjoint_halves_match_model(ops, data):
    """Two clients own disjoint halves (Read/Write Local-style); after
    a flush+barrier, a third observer must see both halves exactly."""
    sim, system = build_system(n_nodes=2, dram_mb=2, nvme_mb=8)
    half = N // 2
    model = np.zeros(N, dtype=np.int32)
    done = [sim.event(), sim.event()]

    def writer(rank):
        client = system.client(rank=rank, node=rank % 2)

        def app():
            vec = yield from client.vector("v", dtype=np.int32, size=N)
            vec.bound_memory(2 * 4096)
            lo = rank * half
            yield from vec.tx_begin(SeqTx(lo, half, MM_READ_WRITE))
            for op in ops:
                if op[0] != "write" or op[1] != rank:
                    continue
                _, _, off, count, value = op
                off = lo + off % half
                count = min(count, lo + half - off)
                arr = np.full(count, value + rank, dtype=np.int32)
                yield from vec.write_range(off, arr)
                model[off:off + count] = arr
            yield from vec.tx_end()
            yield from vec.flush(wait=True)
            done[rank].succeed()

        return app

    def observer():
        client = system.client(rank=2, node=0)
        vec = yield from client.vector("v", dtype=np.int32, size=N)
        yield done[0]
        yield done[1]
        yield from vec.tx_begin(SeqTx(0, N, MM_READ_ONLY))
        got = yield from vec.read_range(0, N)
        yield from vec.tx_end()
        return got

    _, _, got = run_procs(sim, writer(0)(), writer(1)(), observer())
    assert np.array_equal(got, model)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(chunks=st.lists(st.integers(1, 200), min_size=1, max_size=8),
       seed=st.integers(0, 1 << 16))
def test_append_then_scan_roundtrip(chunks, seed):
    sim, system = build_system(n_nodes=2)
    client = system.client(rank=0, node=0)
    rng = np.random.default_rng(seed)
    arrays = [rng.integers(0, 1 << 30, size=c).astype(np.int64)
              for c in chunks]

    def app():
        vec = yield from client.vector("log", dtype=np.int64, size=0)
        yield from vec.tx_begin(SeqTx(0, 0, MM_READ_WRITE))
        offsets = []
        for arr in arrays:
            off = yield from vec.append(arr)
            offsets.append(off)
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        yield from vec.tx_begin(SeqTx(0, vec.size, MM_READ_ONLY))
        out = yield from vec.read_range(0, vec.size)
        yield from vec.tx_end()
        return offsets, out

    ((offsets, out),) = run_procs(sim, app())
    assert len(out) == sum(chunks)
    for off, arr in zip(offsets, arrays):
        assert np.array_equal(out[off:off + len(arr)], arr)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(1, 3000), page_kb=st.sampled_from([4, 8, 16]),
       seed=st.integers(0, 99))
def test_persist_roundtrip_any_geometry(n, page_kb, seed, tmp_path_factory):
    """Vectors of arbitrary length/page-size persist bit-exactly,
    including the partial final page."""
    base = tmp_path_factory.mktemp("geom")
    sim, system = build_system(page_size=page_kb * 1024)
    client = system.client(rank=0, node=0)
    rng = np.random.default_rng(seed)
    data = rng.normal(size=n)
    url = f"posix://{base}/v_{n}_{page_kb}_{seed}.bin"

    def app():
        vec = yield from client.vector(url, dtype=np.float64, size=n)
        yield from vec.tx_begin(SeqTx(0, n, MM_WRITE_ONLY))
        yield from vec.write_range(0, data)
        yield from vec.tx_end()
        yield from vec.persist()

    run_procs(sim, app())
    on_disk = np.fromfile(url.replace("posix://", ""), dtype=np.float64)
    assert len(on_disk) == n
    assert np.array_equal(on_disk, data)
