"""Integration tests: the full DSM data path on real data."""

import numpy as np
import pytest

from repro.core import (
    MM_APPEND_ONLY,
    MM_LOCAL,
    MM_READ_ONLY,
    MM_READ_WRITE,
    MM_WRITE_ONLY,
    RandTx,
    SeqTx,
    TransactionError,
    VectorError,
)
from repro.core.coherence import CoherencePolicy

from tests.core.conftest import build_system, run_procs


def test_volatile_vector_write_then_read_same_process(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)
    data = np.arange(1000, dtype=np.float64)

    def app():
        vec = yield from client.vector("scratch", dtype=np.float64,
                                       size=1000)
        tx = yield from vec.tx_begin(SeqTx(0, 1000, MM_WRITE_ONLY))
        yield from vec.write_range(0, data)
        yield from vec.tx_end()
        tx = yield from vec.tx_begin(SeqTx(0, 1000, MM_READ_ONLY))
        out = yield from vec.read_range(0, 1000)
        yield from vec.tx_end()
        return out

    (out,) = run_procs(sim, app())
    assert np.array_equal(out, data)


def test_cross_process_visibility_after_flush(dsm):
    sim, system = dsm
    c0 = system.client(rank=0, node=0)
    c1 = system.client(rank=1, node=1)
    data = np.arange(500, dtype=np.int32)
    written = sim.event()

    def writer():
        vec = yield from c0.vector("shared", dtype=np.int32, size=500)
        tx = yield from vec.tx_begin(SeqTx(0, 500, MM_WRITE_ONLY))
        yield from vec.write_range(0, data)
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        written.succeed()

    def reader():
        vec = yield from c1.vector("shared", dtype=np.int32, size=500)
        yield written
        tx = yield from vec.tx_begin(SeqTx(0, 500, MM_READ_ONLY))
        out = yield from vec.read_range(0, 500)
        yield from vec.tx_end()
        return out

    _, out = run_procs(sim, writer(), reader())
    assert np.array_equal(out, data)


def test_chunk_iteration_covers_whole_region(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)
    n = 3000  # several pages of int32 (4096 B pages -> 1024 elems)

    def app():
        vec = yield from client.vector("v", dtype=np.int32, size=n)
        tx = yield from vec.tx_begin(SeqTx(0, n, MM_WRITE_ONLY))
        while True:
            chunk = yield from vec.next_chunk()
            if chunk is None:
                break
            chunk.data[:] = np.arange(chunk.start,
                                      chunk.start + len(chunk))
        yield from vec.tx_end()
        tx = yield from vec.tx_begin(SeqTx(0, n, MM_READ_ONLY))
        seen = []
        while True:
            chunk = yield from vec.next_chunk()
            if chunk is None:
                break
            seen.append(chunk.data.copy())
        yield from vec.tx_end()
        return np.concatenate(seen)

    (out,) = run_procs(sim, app())
    assert np.array_equal(out, np.arange(n, dtype=np.int32))


def test_pcache_bound_forces_eviction(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)
    # 64 KB budget, 4 KB pages -> at most 16 frames resident.
    n = 32 * 1024  # 128 KB of int32 = 32 pages

    def app():
        vec = yield from client.vector("big", dtype=np.int32, size=n)
        vec.bound_memory(8 * 4096)
        tx = yield from vec.tx_begin(SeqTx(0, n, MM_WRITE_ONLY))
        while True:
            chunk = yield from vec.next_chunk()
            if chunk is None:
                break
            chunk.data[:] = chunk.start
        yield from vec.tx_end()
        return len(vec.frames)

    (resident,) = run_procs(sim, app())
    assert resident <= 8
    assert system.monitor.counter("pcache.evictions_dirty") > 0


def test_evicted_data_survives_roundtrip(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)
    n = 16 * 1024
    rng = np.random.default_rng(3)
    data = rng.integers(0, 1 << 30, size=n).astype(np.int64)

    def app():
        vec = yield from client.vector("v", dtype=np.int64, size=n)
        vec.bound_memory(4 * 4096)
        tx = yield from vec.tx_begin(SeqTx(0, n, MM_WRITE_ONLY))
        yield from vec.write_range(0, data)
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        tx = yield from vec.tx_begin(SeqTx(0, n, MM_READ_ONLY))
        out = yield from vec.read_range(0, n)
        yield from vec.tx_end()
        return out

    (out,) = run_procs(sim, app())
    assert np.array_equal(out, data)


def test_nonvolatile_vector_maps_existing_file(tmp_path):
    sim, system = build_system()
    # Prepare a real backing file.
    data = np.arange(2048, dtype=np.float32)
    path = tmp_path / "pts.bin"
    path.write_bytes(data.tobytes())
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector(f"posix://{path}", dtype=np.float32)
        assert vec.size == 2048  # size inferred from the backing object
        tx = yield from vec.tx_begin(SeqTx(0, 2048, MM_READ_ONLY))
        out = yield from vec.read_range(0, 2048)
        yield from vec.tx_end()
        return out

    (out,) = run_procs(sim, app())
    assert np.array_equal(out, data)


def test_persist_writes_real_backend_file(tmp_path):
    sim, system = build_system()
    client = system.client(rank=0, node=0)
    data = np.linspace(0, 1, 4096, dtype=np.float64)
    url = f"posix://{tmp_path}/out.bin"

    def app():
        vec = yield from client.vector(url, dtype=np.float64, size=4096)
        tx = yield from vec.tx_begin(SeqTx(0, 4096, MM_WRITE_ONLY))
        yield from vec.write_range(0, data)
        yield from vec.tx_end()
        yield from vec.persist()

    run_procs(sim, app())
    on_disk = np.fromfile(tmp_path / "out.bin", dtype=np.float64)
    assert np.array_equal(on_disk, data)


def test_read_only_replication_and_phase_change(dsm):
    sim, system = dsm
    c0 = system.client(rank=0, node=0)
    c1 = system.client(rank=1, node=1)
    ready = sim.event()
    done_reading = sim.event()

    def writer():
        vec = yield from c0.vector("v", dtype=np.int32, size=2048)
        tx = yield from vec.tx_begin(SeqTx(0, 2048, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.arange(2048, dtype=np.int32))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        ready.succeed()
        yield done_reading
        # Phase change back to writing must invalidate replicas.
        tx = yield from vec.tx_begin(SeqTx(0, 2048, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.zeros(2048, dtype=np.int32))
        yield from vec.tx_end()
        return vec.shared.replicated_pages

    def reader():
        vec = yield from c1.vector("v", dtype=np.int32, size=2048)
        yield ready
        tx = yield from vec.tx_begin(SeqTx(0, 2048, MM_READ_ONLY))
        out = yield from vec.read_range(0, 2048)
        yield from vec.tx_end()
        replicated = len(vec.shared.replicated_pages)
        done_reading.succeed()
        return out, replicated

    replicated_after, (out, replicated_during) = run_procs(
        sim, writer(), reader())
    assert np.array_equal(out, np.arange(2048, dtype=np.int32))
    assert replicated_during > 0       # replicas were created
    assert len(replicated_after) == 0  # and invalidated on phase change


def test_append_only_vector(dsm):
    sim, system = dsm
    c0 = system.client(rank=0, node=0)
    c1 = system.client(rank=1, node=1)

    def appender(client, value, count):
        vec = yield from client.vector("log", dtype=np.int32, size=0)
        tx = yield from vec.tx_begin(SeqTx(0, 0, MM_APPEND_ONLY))
        start = yield from vec.append(
            np.full(count, value, dtype=np.int32))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        return start

    s0, s1 = run_procs(sim, appender(c0, 7, 100), appender(c1, 9, 50))
    # Disjoint regions allocated atomically.
    assert {s0, s1} == {0, 100} or (s0, s1) == (50, 0) or \
        sorted([(s0, 100), (s1, 50)]) is not None
    ranges = sorted([(s0, s0 + 100), (s1, s1 + 50)])
    assert ranges[0][1] <= ranges[1][0]  # no overlap
    vec_meta = system.vectors["log"]
    assert vec_meta.length == 150


def test_strong_consistency_single_page_rw_global(dsm):
    """Concurrent writers to the same page serialize through one
    worker: the final state is one of the two writes, bit-exact, and a
    read after both sees it."""
    sim, system = dsm
    c0 = system.client(rank=0, node=0)
    c1 = system.client(rank=1, node=1)

    def writer(client, value):
        vec = yield from client.vector("kv", dtype=np.int64, size=512)
        tx = yield from vec.tx_begin(SeqTx(0, 512, MM_READ_WRITE))
        yield from vec.write_range(0, np.full(512, value, dtype=np.int64))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)

    def reader(client):
        vec = yield from client.vector("kv", dtype=np.int64, size=512)
        tx = yield from vec.tx_begin(SeqTx(0, 512, MM_READ_ONLY))
        out = yield from vec.read_range(0, 512)
        yield from vec.tx_end()
        return out

    run_procs(sim, writer(c0, 111), writer(c1, 222))
    (out,) = run_procs(sim, reader(c0))
    assert set(np.unique(out)) <= {111, 222}


def test_partial_write_fragments_do_not_conflict(dsm):
    """Two processes modifying different halves of the SAME page: only
    modified bytes ship, so neither clobbers the other (paper III-C,
    Read/Write Local)."""
    sim, system = dsm
    c0 = system.client(rank=0, node=0)
    c1 = system.client(rank=1, node=1)
    # One 4096-byte page of 512 int64 elements.

    def writer(client, lo, hi, value):
        vec = yield from client.vector("pg", dtype=np.int64, size=512)
        tx = yield from vec.tx_begin(
            SeqTx(lo, hi - lo, MM_READ_WRITE | MM_LOCAL))
        yield from vec.write_range(
            lo, np.full(hi - lo, value, dtype=np.int64))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)

    run_procs(sim, writer(c0, 0, 256, 5), writer(c1, 256, 512, 9))

    def reader():
        vec = yield from c0.vector("pg", dtype=np.int64, size=512)
        tx = yield from vec.tx_begin(SeqTx(0, 512, MM_READ_ONLY))
        out = yield from vec.read_range(0, 512)
        yield from vec.tx_end()
        return out

    (out,) = run_procs(sim, reader())
    assert np.all(out[:256] == 5)
    assert np.all(out[256:] == 9)


def test_rand_tx_roundtrip(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)
    n = 8192

    def app():
        vec = yield from client.vector("r", dtype=np.int32, size=n)
        vec.bound_memory(4 * 4096)
        tx = yield from vec.tx_begin(SeqTx(0, n, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.arange(n, dtype=np.int32))
        yield from vec.tx_end()
        tx = yield from vec.tx_begin(RandTx(0, n, seed=5,
                                            flags=MM_READ_ONLY))
        total = 0
        count = 0
        while True:
            chunk = yield from vec.next_chunk()
            if chunk is None:
                break
            total += int(chunk.data.sum())
            count += len(chunk)
        yield from vec.tx_end()
        return total, count

    (result,) = run_procs(sim, app())
    total, count = result
    assert count == n
    assert total == n * (n - 1) // 2


def test_nested_transaction_rejected(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.int32, size=100)
        yield from vec.tx_begin(SeqTx(0, 100, MM_READ_ONLY))
        yield from vec.tx_begin(SeqTx(0, 100, MM_READ_ONLY))

    with pytest.raises(TransactionError):
        run_procs(sim, app())


def test_access_outside_transaction_rejected(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.int32, size=100)
        yield from vec.get(0)

    with pytest.raises(TransactionError):
        run_procs(sim, app())


def test_write_under_read_only_rejected(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.int32, size=100)
        yield from vec.tx_begin(SeqTx(0, 100, MM_READ_ONLY))
        yield from vec.set(0, 1)

    with pytest.raises(TransactionError):
        run_procs(sim, app())


def test_out_of_range_access_rejected(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.int32, size=100)
        yield from vec.tx_begin(SeqTx(0, 100, MM_READ_ONLY))
        yield from vec.read_range(90, 20)

    with pytest.raises(VectorError):
        run_procs(sim, app())


def test_dtype_mismatch_on_attach_rejected(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        yield from client.vector("v", dtype=np.int32, size=100)
        yield from client.vector("v", dtype=np.float64)

    with pytest.raises(VectorError):
        run_procs(sim, app())


def test_page_size_immutable_after_creation(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        yield from client.vector("v", dtype=np.int32, size=100,
                                 page_size=4096)
        yield from client.vector("v", dtype=np.int32, page_size=8192)

    with pytest.raises(VectorError):
        run_procs(sim, app())


def test_element_get_set(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.float64, size=100)
        tx = yield from vec.tx_begin(SeqTx(0, 100, MM_READ_WRITE))
        yield from vec.set(42, 3.25)
        val = yield from vec.get(42)
        yield from vec.tx_end()
        return float(val)

    (val,) = run_procs(sim, app())
    assert val == 3.25


def test_destroy_releases_scache(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.int32, size=4096)
        tx = yield from vec.tx_begin(SeqTx(0, 4096, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.ones(4096, dtype=np.int32))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        yield from vec.destroy()

    run_procs(sim, app())
    assert "v" not in system.vectors
    used = sum(dev.used for dmsh in system.dmshs for dev in dmsh)
    assert used == 0


def test_prefetcher_issues_readahead(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)
    n = 16 * 1024

    def app():
        vec = yield from client.vector("v", dtype=np.int32, size=n)
        vec.bound_memory(8 * 4096)
        tx = yield from vec.tx_begin(SeqTx(0, n, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.arange(n, dtype=np.int32))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        tx = yield from vec.tx_begin(SeqTx(0, n, MM_READ_ONLY))
        while True:
            chunk = yield from vec.next_chunk()
            if chunk is None:
                break
        yield from vec.tx_end()

    run_procs(sim, app())
    assert system.monitor.counter("pcache.prefetches") > 0


def test_prefetch_disabled_ablation():
    sim, system = build_system(prefetch_enabled=False)
    client = system.client(rank=0, node=0)
    n = 8 * 1024

    def app():
        vec = yield from client.vector("v", dtype=np.int32, size=n)
        vec.bound_memory(4 * 4096)
        tx = yield from vec.tx_begin(SeqTx(0, n, MM_READ_ONLY))
        while True:
            chunk = yield from vec.next_chunk()
            if chunk is None:
                break
        yield from vec.tx_end()

    run_procs(sim, app())
    assert system.monitor.counter("pcache.prefetches") == 0
    assert system.monitor.counter("pcache.faults") > 0


def test_scache_spills_to_nvme_when_dram_small():
    sim, system = build_system(dram_mb=1, nvme_mb=32)
    client = system.client(rank=0, node=0)
    n = 512 * 1024  # 2 MB of int32 > 1 MB DRAM

    def app():
        vec = yield from client.vector("v", dtype=np.int32, size=n)
        vec.bound_memory(16 * 4096)
        tx = yield from vec.tx_begin(SeqTx(0, n, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.arange(n, dtype=np.int32))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        tx = yield from vec.tx_begin(SeqTx(0, n, MM_READ_ONLY))
        out_sum = 0
        while True:
            chunk = yield from vec.next_chunk()
            if chunk is None:
                break
            out_sum += int(chunk.data.astype(np.int64).sum())
        yield from vec.tx_end()
        return out_sum

    (total,) = run_procs(sim, app())
    assert total == n * (n - 1) // 2
    nvme_used = sum(d.tier("nvme").used for d in system.dmshs)
    assert nvme_used > 0  # overflow really landed on NVMe
