"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_timeout_advances_clock():
    sim = Simulator()

    def proc():
        yield sim.timeout(5.0)
        return sim.now

    p = sim.process(proc())
    sim.run()
    assert p.value == 5.0
    assert sim.now == 5.0


def test_timeout_value_passthrough():
    sim = Simulator()

    def proc():
        v = yield sim.timeout(1.0, value="hello")
        return v

    p = sim.process(proc())
    sim.run()
    assert p.value == "hello"


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_processes_interleave_deterministically():
    sim = Simulator()
    trace = []

    def proc(name, delay):
        yield sim.timeout(delay)
        trace.append((name, sim.now))
        yield sim.timeout(delay)
        trace.append((name, sim.now))

    sim.process(proc("a", 2.0))
    sim.process(proc("b", 3.0))
    sim.run()
    assert trace == [("a", 2.0), ("b", 3.0), ("a", 4.0), ("b", 6.0)]


def test_fifo_order_among_simultaneous_events():
    sim = Simulator()
    trace = []

    def proc(name):
        yield sim.timeout(1.0)
        trace.append(name)

    for name in "abcd":
        sim.process(proc(name))
    sim.run()
    assert trace == list("abcd")


def test_process_waits_on_process():
    sim = Simulator()

    def child():
        yield sim.timeout(3.0)
        return 99

    def parent():
        result = yield sim.process(child())
        return result + 1

    p = sim.process(parent())
    sim.run()
    assert p.value == 100


def test_yield_already_fired_event_resumes_immediately():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return "done"

    def parent(c):
        yield sim.timeout(5.0)
        v = yield c  # c finished long ago
        assert sim.now == 5.0
        return v

    c = sim.process(child())
    p = sim.process(parent(c))
    sim.run()
    assert p.value == "done"


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as e:
            return f"caught {e}"

    p = sim.process(parent())
    sim.run()
    assert p.value == "caught boom"


def test_unhandled_process_exception_raises_from_run():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    sim.process(proc())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_run_until_event_returns_value():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        return 7

    p = sim.process(proc())
    assert sim.run(until=p) == 7


def test_run_until_failed_event_raises():
    sim = Simulator()

    def proc():
        yield sim.timeout(2.0)
        raise KeyError("x")

    p = sim.process(proc())
    with pytest.raises(KeyError):
        sim.run(until=p)


def test_run_until_deadline_stops_clock_there():
    sim = Simulator()

    def proc():
        yield sim.timeout(100.0)

    sim.process(proc())
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_past_deadline_rejected():
    sim = Simulator()

    def noop():
        yield sim.timeout(1.0)

    sim.process(noop())
    sim.run()
    with pytest.raises(ValueError):
        sim.run(until=sim.now - 1.0)


def test_event_succeed_twice_rejected():
    sim = Simulator()
    evt = sim.event()
    evt.succeed(1)
    with pytest.raises(SimulationError):
        evt.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(SimulationError):
        _ = evt.value


def test_fail_requires_exception():
    sim = Simulator()
    evt = sim.event()
    with pytest.raises(TypeError):
        evt.fail("not an exception")


def test_yield_non_event_is_an_error():
    sim = Simulator()

    def proc():
        yield 42

    sim.process(proc())
    with pytest.raises(SimulationError, match="non-event"):
        sim.run()


def test_cross_simulator_event_rejected():
    sim1 = Simulator()
    sim2 = Simulator()

    def proc():
        yield sim2.timeout(1.0)

    sim1.process(proc())
    with pytest.raises(SimulationError, match="different Simulator"):
        sim1.run()


def test_all_of_collects_values_in_order():
    sim = Simulator()

    def child(delay, val):
        yield sim.timeout(delay)
        return val

    def parent():
        vals = yield AllOf(sim, [
            sim.process(child(3.0, "slow")),
            sim.process(child(1.0, "fast")),
        ])
        return vals

    p = sim.process(parent())
    sim.run()
    assert p.value == ["slow", "fast"]
    assert sim.now == 3.0


def test_all_of_empty_fires_immediately():
    sim = Simulator()

    def parent():
        vals = yield AllOf(sim, [])
        return vals

    p = sim.process(parent())
    sim.run()
    assert p.value == []


def test_any_of_returns_first_value():
    sim = Simulator()

    def child(delay, val):
        yield sim.timeout(delay)
        return val

    def parent():
        v = yield AnyOf(sim, [
            sim.process(child(3.0, "slow")),
            sim.process(child(1.0, "fast")),
        ])
        return v, sim.now

    p = sim.process(parent())
    sim.run()
    assert p.value == ("fast", 1.0)


def test_all_of_fails_fast_on_child_failure():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("bad child")

    def ok():
        yield sim.timeout(5.0)

    def parent():
        try:
            yield AllOf(sim, [sim.process(bad()), sim.process(ok())])
        except ValueError:
            return sim.now

    p = sim.process(parent())
    sim.run()
    assert p.value == 1.0


def test_interrupt_wakes_process_with_cause():
    sim = Simulator()

    def sleeper():
        try:
            yield sim.timeout(100.0)
        except Interrupt as i:
            return ("interrupted", i.cause, sim.now)

    def interrupter(target):
        yield sim.timeout(2.0)
        target.interrupt(cause="wakeup")

    t = sim.process(sleeper())
    sim.process(interrupter(t))
    sim.run()
    assert t.value == ("interrupted", "wakeup", 2.0)


def test_interrupt_terminated_process_rejected():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    p = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 4.0


def test_nested_yield_from_composition():
    sim = Simulator()

    def inner():
        yield sim.timeout(1.0)
        return 10

    def middle():
        v = yield from inner()
        yield sim.timeout(1.0)
        return v + 5

    def outer():
        v = yield from middle()
        return v * 2

    p = sim.process(outer())
    sim.run()
    assert p.value == 30
    assert sim.now == 2.0


def test_zero_delay_timeouts_preserve_creation_order():
    sim = Simulator()
    trace = []

    def proc(n):
        yield sim.timeout(0.0)
        trace.append(n)

    for i in range(5):
        sim.process(proc(i))
    sim.run()
    assert trace == [0, 1, 2, 3, 4]
