"""Shared KMeans math: assignment, inertia, the NumPy reference."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.sim.rand import rng_stream


def assign(xyz: np.ndarray, centroids: np.ndarray
           ) -> Tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment. Returns (labels, squared dists)."""
    # ||p - c||^2 = ||p||^2 - 2 p.c + ||c||^2, vectorized (n, k).
    d2 = (np.einsum("ij,ij->i", xyz, xyz)[:, None]
          - 2.0 * xyz @ centroids.T
          + np.einsum("ij,ij->i", centroids, centroids)[None, :])
    labels = np.argmin(d2, axis=1)
    return labels, np.maximum(d2[np.arange(len(xyz)), labels], 0.0)


def inertia_of(xyz: np.ndarray, centroids: np.ndarray) -> float:
    """Sum of squared distances to nearest centroids (Listing 1)."""
    return float(assign(xyz, centroids)[1].sum())


def weighted_kmeans(points: np.ndarray, weights: np.ndarray, k: int,
                    seed: int, iters: int = 20) -> np.ndarray:
    """Weighted Lloyd on a small candidate set (the KMeans‖ recluster
    step run on the driver/rank 0)."""
    rng = rng_stream(seed, "recluster")
    if len(points) <= k:
        pad = points[rng.integers(0, len(points),
                                  size=k - len(points))] \
            if len(points) < k else np.empty((0, 3))
        return np.vstack([points, pad])[:k]
    # kmeans++ seeding over the weighted candidates.
    centroids = [points[rng.integers(len(points))]]
    for _ in range(k - 1):
        _, d2 = assign(points, np.asarray(centroids))
        p = d2 * weights
        total = p.sum()
        if total <= 0:
            centroids.append(points[rng.integers(len(points))])
            continue
        centroids.append(points[rng.choice(len(points), p=p / total)])
    centroids = np.asarray(centroids)
    for _ in range(iters):
        labels, _ = assign(points, centroids)
        for j in range(k):
            mask = labels == j
            w = weights[mask]
            if w.sum() > 0:
                centroids[j] = np.average(points[mask], axis=0,
                                          weights=w)
    return centroids


def reference_kmeans(xyz: np.ndarray, k: int, seed: int = 0,
                     max_iter: int = 10) -> Tuple[np.ndarray, float]:
    """Single-process NumPy KMeans (kmeans++ init + Lloyd) used to
    verify the distributed implementations."""
    centroids = weighted_kmeans(xyz, np.ones(len(xyz)), k, seed)
    for _ in range(max_iter):
        labels, _ = assign(xyz, centroids)
        for j in range(k):
            mask = labels == j
            if mask.any():
                centroids[j] = xyz[mask].mean(axis=0)
    return centroids, inertia_of(xyz, centroids)


def match_accuracy(labels: np.ndarray, truth: np.ndarray) -> float:
    """Cluster-label agreement under the best greedy label matching
    (ground-truth halos vs predicted clusters; -1 truth = background,
    excluded)."""
    mask = truth >= 0
    labels, truth = labels[mask], truth[mask]
    if len(labels) == 0:
        return 0.0
    correct = 0
    for t in np.unique(truth):
        sel = truth == t
        if sel.any():
            vals, counts = np.unique(labels[sel], return_counts=True)
            correct += counts.max()
    return correct / len(labels)
