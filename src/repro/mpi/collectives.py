"""Tree-based collective algorithms over point-to-point sends.

MPICH-style (paper III-C, *Collective*: "Memory accesses will follow a
tree-based pattern to avoid overloading a single node, similar to
allgather operations in MPICH"): bcast and reduce use binomial trees,
barrier uses dissemination, allgather uses the ring algorithm, and
alltoall uses pairwise exchange — the classic algorithm choices of
Thakur & Gropp's MPICH collectives paper, which the paper cites.

Every function is a generator taking a bound :class:`~repro.mpi.comm.Comm`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional


def _relative(rank: int, root: int, size: int) -> int:
    return (rank - root) % size


def _absolute(rel: int, root: int, size: int) -> int:
    return (rel + root) % size


def bcast(comm, payload: Any, root: int = 0):
    """Binomial-tree broadcast; returns the payload on every rank."""
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    rel = _relative(rank, root, size)
    mask = 1
    while mask < size:
        if rel & mask:
            payload = yield from comm.recv(
                source=_absolute(rel - mask, root, size), tag=tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if rel + mask < size:
            yield from comm.send(
                payload, _absolute(rel + mask, root, size), tag=tag)
        mask >>= 1
    return payload


def reduce(comm, value: Any, op: Callable[[Any, Any], Any], root: int = 0):
    """Binomial-tree reduction; root returns the combined value,
    non-roots return ``None``. ``op`` must be associative."""
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    rel = _relative(rank, root, size)
    acc = value
    mask = 1
    while mask < size:
        if rel & mask:
            # Send to parent and stop participating.
            parent_rel = rel & ~mask
            yield from comm.send(acc, _absolute(parent_rel, root, size),
                                 tag=tag)
            return None
        # Receive from the child at rel | mask, if it exists.
        child_rel = rel | mask
        if child_rel < size:
            child_val = yield from comm.recv(
                source=_absolute(child_rel, root, size), tag=tag)
            acc = op(acc, child_val)
        mask <<= 1
    return acc if rel == 0 else None


def allreduce(comm, value: Any, op: Callable[[Any, Any], Any]):
    """Reduce to rank 0 then broadcast (reduce+bcast composition)."""
    acc = yield from reduce(comm, value, op, root=0)
    result = yield from bcast(comm, acc, root=0)
    return result


def barrier(comm):
    """Dissemination barrier: ceil(log2(p)) rounds of pairwise tokens."""
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    dist = 1
    while dist < size:
        dest = (rank + dist) % size
        src = (rank - dist) % size
        req = comm.isend(None, dest, tag=tag)
        yield from comm.recv(source=src, tag=tag)
        yield req
        dist <<= 1


def gather(comm, value: Any, root: int = 0):
    """Binomial-tree gather; root returns the list ordered by rank."""
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    rel = _relative(rank, root, size)
    # Each rank accumulates {comm_rank: value} from its subtree.
    acc = {rank: value}
    mask = 1
    while mask < size:
        if rel & mask:
            parent_rel = rel & ~mask
            yield from comm.send(acc, _absolute(parent_rel, root, size),
                                 tag=tag)
            return None
        child_rel = rel | mask
        if child_rel < size:
            child_acc = yield from comm.recv(
                source=_absolute(child_rel, root, size), tag=tag)
            acc.update(child_acc)
        mask <<= 1
    if rel == 0:
        return [acc[r] for r in range(size)]
    return None


def allgather(comm, value: Any):
    """Ring allgather: p-1 rounds, each forwarding the next slice."""
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    result: List[Any] = [None] * size
    result[rank] = value
    if size == 1:
        return result
    right = (rank + 1) % size
    left = (rank - 1) % size
    held = rank  # index of the slice this rank forwards next
    for _ in range(size - 1):
        req = comm.isend((held, result[held]), right, tag=tag)
        idx, val = yield from comm.recv(source=left, tag=tag)
        yield req
        result[idx] = val
        held = idx
    return result


def scatter(comm, values: Optional[List[Any]], root: int = 0):
    """Root distributes ``values[i]`` to comm rank ``i``."""
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    if rank == root:
        if values is None or len(values) != size:
            raise ValueError(
                f"scatter root needs exactly {size} values")
        reqs = []
        for dest in range(size):
            if dest == root:
                continue
            reqs.append(comm.isend(values[dest], dest, tag=tag))
        for req in reqs:
            yield req
        return values[root]
    item = yield from comm.recv(source=root, tag=tag)
    return item


def alltoall(comm, values: List[Any]):
    """Pairwise-exchange alltoall; returns the list indexed by source."""
    tag = comm._next_coll_tag()
    size, rank = comm.size, comm.rank
    if len(values) != size:
        raise ValueError(f"alltoall needs exactly {size} values")
    result: List[Any] = [None] * size
    result[rank] = values[rank]
    for round_ in range(1, size):
        partner = rank ^ round_ if (size & (size - 1)) == 0 else \
            (rank + round_) % size
        src = partner if (size & (size - 1)) == 0 else \
            (rank - round_) % size
        req = comm.isend(values[partner], partner, tag=tag + round_)
        result[src] = yield from comm.recv(source=src, tag=tag + round_)
        yield req
    return result
