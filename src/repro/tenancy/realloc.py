"""MaxMem-style periodic fast-memory reallocation between tenants.

Every ``realloc_period`` seconds the loop snapshots each registered
tenant's slow-read bytes since the previous sweep and computes a
*reuse density* — slow-read bytes per byte of scache footprint,
smoothed with an exponential moving average so one quiet window does
not flip a steady re-reader into a donor. A tenant rereading a
working set that misses DRAM has high density; a streaming antagonist
touches enormous footprints once and scores low. Quota then flows to
the highest-density receiver, taken first from *idle* quota — a
tenant holding fast-memory headroom it is not using — and only then
from the lowest-density active tenant (bounded by ``min_dram`` and
damped by a hysteresis factor). Every sweep — whether or not quota
moved — *enforces* the current split: over-quota owners' coldest DRAM
blobs demote to the next tier, and tenants with recent slow traffic
and unfilled quota get their hottest deep blobs promoted into the
headroom. Enforcement is continuous rather than grant-triggered
because placements drift between grants: other tenants' stage-in
bursts demote a victim's pages, and a grant is worthless until the
granted bytes actually hold the receiver's data. Each decision is
appended to the manager's decision log with the metric readings that
justified it (including the ``rt_backlog`` congestion gauge), so
same-seed runs produce bit-identical logs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.tenancy.quota import QuotaManager, TenantQuota


class ReallocLoop:
    """The periodic fast-memory rebalancer (one per colocated run)."""

    def __init__(self, manager: QuotaManager):
        self.manager = manager
        self.system = manager.system
        cfg = self.system.config
        self.period = cfg.realloc_period
        self.step = cfg.realloc_step
        self.hysteresis = cfg.realloc_hysteresis
        self.max_moves = cfg.realloc_max_moves
        self.stop = False
        self.sweeps = 0
        self._last_reads: Dict[str, Tuple[float, float]] = {}
        #: EWMA of per-window reuse density; new tenants seed at their
        #: first observation.
        self._ewma: Dict[str, float] = {}
        self.EWMA_ALPHA = 0.5
        #: (fast, slow) read-byte deltas from the most recent sweep,
        #: shared between the decision and the enforcement pass.
        self._window: Dict[str, Tuple[float, float]] = {}
        #: Sweeps to sit out after the thrash anomaly detector trips
        #: (only consulted when a :class:`~repro.obs.live.LiveObs` is
        #: installed on the system — plain runs never back off).
        self.BACKOFF_SWEEPS = 3
        self._backoff = 0
        self._obs_cursor = 0

    # -- main loop -------------------------------------------------------
    def run(self):
        """Generator process: sweep until :attr:`stop` is set."""
        sim = self.system.sim
        while not self.stop:
            yield sim.timeout(self.period)
            if self.stop:
                return
            self.sweeps += 1
            if self._thrash_backoff():
                continue
            self.rebalance()
            yield from self.enforce_all()

    def _thrash_backoff(self) -> bool:
        """Consume ``realloc_thrash`` anomaly events from an installed
        observability plane: each trip pauses rebalancing (decisions
        *and* enforcement churn) for ``BACKOFF_SWEEPS`` sweeps, giving
        placements time to settle instead of ping-ponging blobs. A
        no-op without obs — the attribute does not exist and plain
        colocated runs are byte-identical to pre-obs behaviour."""
        obs = getattr(self.system, "obs", None)
        if obs is None:
            return False
        new = obs.events[self._obs_cursor:]
        self._obs_cursor = len(obs.events)
        if any(e["detector"] == "realloc_thrash" for e in new):
            self._backoff = self.BACKOFF_SWEEPS
            self.manager.log("realloc_backoff", sweep=self.sweeps,
                             sweeps=self.BACKOFF_SWEEPS)
        if self._backoff > 0:
            self._backoff -= 1
            return True
        return False

    def _window_deltas(self) -> Dict[str, Tuple[float, float]]:
        """(fast, slow) read bytes per registered tenant since the
        last sweep. All tenants, not just active ones: an idle
        tenant's zero delta decays its EWMA density toward zero, which
        is what marks its quota as reclaimable."""
        out = {}
        for t in self.manager.tenants.values():
            fast, slow = self.manager.read_stats(t.name)
            pf, ps = self._last_reads.get(t.name, (0.0, 0.0))
            out[t.name] = (fast - pf, slow - ps)
            self._last_reads[t.name] = (fast, slow)
        return out

    def _backlog(self) -> float:
        metrics = self.system.monitor.metrics
        return sum(
            metrics.gauge("rt_backlog", node=n).value
            for n in range(len(self.system.dmshs)))

    # -- decision --------------------------------------------------------
    def rebalance(self) -> Optional[Tuple[TenantQuota, TenantQuota, int]]:
        """Pick (donor, receiver) and shift quota; None when the sweep
        decides to hold. Pure bookkeeping — enforcement is separate."""
        mgr = self.manager
        deltas = self._window_deltas()
        self._window = deltas
        quotaed = [t for t in mgr.tenants.values()
                   if t.dram_quota is not None]
        active_names = {t.name for t in mgr.active_tenants()}
        active = [t for t in quotaed if t.name in active_names]
        if not active or len(quotaed) < 2:
            return None

        alpha = self.EWMA_ALPHA
        for t in quotaed:
            _fast, slow = deltas.get(t.name, (0.0, 0.0))
            # Reuse density: slow-read bytes per byte the tenant could
            # conceivably hold fast. Normalizing by at least the quota
            # keeps a tenant with a tiny footprint from posting an
            # absurd density off a near-zero denominator.
            inst = slow / max(t.scache_used, t.dram_quota or 0, 1)
            prev = self._ewma.get(t.name)
            self._ewma[t.name] = inst if prev is None \
                else alpha * inst + (1.0 - alpha) * prev

        def density(t: TenantQuota) -> float:
            return self._ewma.get(t.name, 0.0)

        # A receiver must be missing DRAM *and* able to use the grant:
        # once its quota covers its whole scache footprint, more fast
        # memory cannot convert any further misses.
        wanting = [t for t in active
                   if deltas.get(t.name, (0, 0))[1] > 0
                   and t.scache_used > t.dram_quota]
        if not wanting:
            return None
        receiver = max(wanting, key=lambda t: (density(t), t.name))
        # Donors come from *all* registered tenants: a job that has
        # finished (or not yet arrived) is holding quota it cannot
        # use, and admission control still guarantees it ``min_dram``
        # when it next runs.
        donors = [t for t in quotaed
                  if t is not receiver
                  and t.dram_quota - self.step >= t.min_dram]
        if not donors:
            return None
        # Idle quota first: a tenant with *no read traffic at all* this
        # window (finished, not yet arrived, or between phases) gives
        # up quota without a density contest. Idleness is judged on
        # traffic, not on unused headroom — a hot tenant whose blobs
        # have not been promoted yet has low usage but is anything but
        # idle. Only when every donor is trafficking does density
        # (with hysteresis) arbitrate, so steady re-readers are robbed
        # last.
        idle = [t for t in donors
                if sum(deltas.get(t.name, (0.0, 0.0))) == 0.0]
        if idle:
            donor = min(idle, key=lambda t: (density(t), t.name))
        else:
            donor = min(donors, key=lambda t: (density(t), t.name))
            if density(receiver) <= self.hysteresis * density(donor):
                return None
        moved = min(self.step, donor.dram_quota - donor.min_dram)
        if moved <= 0:
            return None
        donor.dram_quota -= moved
        receiver.dram_quota += moved
        mgr._g_quota[donor.name].set(donor.dram_quota)
        mgr._g_quota[receiver.name].set(receiver.dram_quota)
        mgr.log("realloc", sweep=self.sweeps, src=donor.name,
                dst=receiver.name, bytes=moved,
                src_idle=int(donor in idle),
                src_density=round(density(donor), 9),
                dst_density=round(density(receiver), 9),
                dst_hit_ratio=round(mgr.hit_ratio(receiver.name), 6),
                rt_backlog=self._backlog())
        return donor, receiver, moved

    # -- enforcement -----------------------------------------------------
    def _owned_blobs(self, name: str):
        mgr = self.manager
        return [info for info in self.system.hermes.mdm.all_blobs()
                if mgr.bucket_owner.get(info.bucket) == name
                and info.node >= 0]

    def _make_room_fast(self, node: int, nbytes: int, protect: str):
        """Demote over-quota owners' coldest fast-tier blobs until
        ``nbytes`` fit. The loop conserves total quota at cluster
        capacity, so a receiver with unfilled quota implies someone
        else is over theirs; quota — not score — is the arbiter here.
        Generator; returns True when the bytes fit."""
        from repro.hermes.blob import BlobNotFound
        from repro.storage.device import DeviceFullError
        mgr = self.manager
        hermes = self.system.hermes
        fast = mgr.fast_kind
        dmsh = self.system.dmshs[node]
        dev = dmsh.tier(fast)
        if dev.fits(nbytes):
            return True
        victims = sorted(
            (info for info in hermes.mdm.all_blobs()
             if info.node == node and info.tier == fast),
            key=lambda i: (i.score, i.bucket, str(i.key)))
        for info in victims:
            if dev.fits(nbytes):
                break
            owner = mgr.tenants.get(mgr.bucket_owner.get(info.bucket))
            if owner is None or owner.dram_quota is None \
                    or owner.name == protect \
                    or owner.dram_used <= owner.dram_quota:
                continue
            lower = dmsh.slower_than(dev)
            while lower is not None and not lower.fits(info.nbytes):
                lower = dmsh.slower_than(lower)
            if lower is None:
                continue
            try:
                yield from hermes.move(info.bucket, info.key,
                                       info.node, lower.spec.kind)
            except (BlobNotFound, DeviceFullError):
                continue
        return dev.fits(nbytes)

    def enforce_all(self):
        """Make placements match quotas: demote every over-quota
        owner's coldest DRAM blobs, then promote the hottest deep
        blobs of tenants that are missing DRAM (recent slow traffic)
        and have unfilled quota. Runs every sweep — a quota grant is
        worthless until the granted bytes hold the receiver's data,
        and other tenants' stage-ins keep demoting pages between
        grants. Generator; bounded by ``realloc_max_moves``."""
        from repro.hermes.blob import BlobNotFound
        from repro.storage.device import DeviceFullError
        mgr = self.manager
        hermes = self.system.hermes
        fast = mgr.fast_kind
        moves = 0
        quotaed = sorted(
            (t for t in mgr.tenants.values()
             if t.dram_quota is not None),
            key=lambda t: t.name)
        # Demote: every over-quota owner, coldest blobs first.
        for t in quotaed:
            if t.dram_used <= t.dram_quota:
                continue
            victims = sorted(
                (i for i in self._owned_blobs(t.name)
                 if i.tier == fast),
                key=lambda i: (i.score, i.bucket, str(i.key)))
            for info in victims:
                if t.dram_used <= t.dram_quota \
                        or moves >= self.max_moves:
                    break
                dmsh = self.system.dmshs[info.node]
                lower = dmsh.slower_than(dmsh.tier(fast))
                while lower is not None and not lower.fits(info.nbytes):
                    lower = dmsh.slower_than(lower)
                if lower is None:
                    continue
                try:
                    yield from hermes.move(info.bucket, info.key,
                                           info.node, lower.spec.kind)
                    moves += 1
                except (BlobNotFound, DeviceFullError):
                    continue
        # Promote: tenants that are actually missing (slow reads this
        # window) fill their quota headroom, hottest blobs first.
        active_names = {t.name for t in mgr.active_tenants()}
        missing = [t for t in quotaed
                   if t.name in active_names
                   and self._window.get(t.name, (0.0, 0.0))[1] > 0
                   and t.dram_used < t.dram_quota]
        missing.sort(key=lambda t: (-self._ewma.get(t.name, 0.0),
                                    t.name))
        for t in missing:
            candidates = sorted(
                (i for i in self._owned_blobs(t.name)
                 if i.tier != fast),
                key=lambda i: (-i.score, i.bucket, str(i.key)))
            for info in candidates:
                if moves >= self.max_moves:
                    break
                if t.dram_used + info.nbytes > t.dram_quota:
                    continue
                dmsh = self.system.dmshs[info.node]
                dev = dmsh.tier(fast)
                if not dev.fits(info.nbytes):
                    # The fast tier is usually packed: evict whoever
                    # is over their (possibly just shrunk) quota.
                    fits = yield from self._make_room_fast(
                        info.node, info.nbytes, t.name)
                    if not fits:
                        continue
                try:
                    yield from hermes.move(info.bucket, info.key,
                                           info.node, fast)
                    moves += 1
                except (BlobNotFound, DeviceFullError):
                    continue
        if moves:
            self.system.monitor.count("tenancy.realloc_moves", moves)
