"""Jarvis-style workflow pipelines (the paper's AD appendix).

The paper's artifact drives every experiment through Jarvis-CD YAML
workflow files (``test/unit/iter-pipelines/*.yaml``): each file
declares the deployment, the application, the variables to sweep, and
where to aggregate statistics ("Jarvis produces a single CSV file
that, for each tested configuration, contains the aggregated resource
utilization statistics and application runtime").

This module is that runner for the simulated cluster. A pipeline file
looks like::

    name: mm_kmeans_mega
    cluster:
      n_nodes: 4
      procs_per_node: 2
      dram_mb: 48
      nvme_mb: 128
    dataset:
      kind: points          # points | gadget | none
      n: 100000
      k: 8
      path: points.parquet
    app:
      kind: mm_kmeans       # see APP_REGISTRY
      k: 8
      max_iter: 4
    sweep:                  # optional grid search, jarvis-style
      - key: cluster.dram_mb
        values: [8, 16, 32]
    output: stats_dict.csv

Run with :func:`run_pipeline` or ``python -m repro <file.yaml>``.
"""

from __future__ import annotations

import copy
import csv
import itertools
import os
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.apps.datagen import write_gadget_like, write_parquet_points
from repro.cluster import SimCluster
from repro.core.config import MegaMmapConfig
from repro.core.errors import MegaMmapError
from repro.storage.tiers import (DRAM, HDD, MB, NVME, PMEM, SATA_SSD,
                                 scaled)
from repro.core.config import load_yaml_subset


class PipelineError(MegaMmapError):
    """Malformed pipeline description."""


# ---------------------------------------------------------------------------
# Application registry: kind -> launcher(cluster, spec, workdir) -> RunResult
# ---------------------------------------------------------------------------

def _kmeans_urls(spec, workdir):
    return f"parquet://{os.path.join(workdir, spec['dataset']['path'])}"


def _run_mm_kmeans(cluster, spec, workdir):
    from repro.apps.kmeans import mm_kmeans
    app = spec["app"]
    return cluster.run(mm_kmeans, _kmeans_urls(spec, workdir),
                       app.get("k", 8), app.get("max_iter", 4),
                       app.get("seed", 0), app.get("pcache"))


def _run_spark_kmeans(cluster, spec, workdir):
    from repro.apps.kmeans import spark_kmeans
    app = spec["app"]
    return cluster.run_driver(spark_kmeans(
        cluster, _kmeans_urls(spec, workdir), app.get("k", 8),
        app.get("max_iter", 4), app.get("seed", 0)))


def _run_mm_dbscan(cluster, spec, workdir):
    from repro.apps.dbscan import mm_dbscan
    app = spec["app"]
    return cluster.run(mm_dbscan, _kmeans_urls(spec, workdir),
                       float(app.get("eps", 8.0)),
                       app.get("min_pts", 64), app.get("seed", 0),
                       app.get("pcache"))


def _run_mpi_dbscan(cluster, spec, workdir):
    from repro.apps.dbscan import mpi_dbscan
    app = spec["app"]
    return cluster.run(mpi_dbscan, _kmeans_urls(spec, workdir),
                       float(app.get("eps", 8.0)),
                       app.get("min_pts", 64), app.get("seed", 0))


def _rf_urls(spec, workdir):
    base = os.path.join(workdir, spec["dataset"]["path"])
    return f"hdf5://{base}:parttype0", f"posix://{base}.labels"


def _run_mm_rf(cluster, spec, workdir):
    from repro.apps.rf import mm_random_forest
    url, lurl = _rf_urls(spec, workdir)
    app = spec["app"]
    return cluster.run(mm_random_forest, url, lurl,
                       app.get("num_trees", 1), app.get("max_depth", 10),
                       app.get("oob", 4), app.get("seed", 0),
                       app.get("pcache"))


def _run_spark_rf(cluster, spec, workdir):
    from repro.apps.rf.spark_rf import spark_random_forest
    url, lurl = _rf_urls(spec, workdir)
    app = spec["app"]
    return cluster.run_driver(spark_random_forest(
        cluster, url, lurl, num_trees=app.get("num_trees", 1),
        max_depth=app.get("max_depth", 10), oob=app.get("oob", 4),
        seed=app.get("seed", 0)))


def _run_mm_gray_scott(cluster, spec, workdir):
    from repro.apps.grayscott import mm_gray_scott
    app = spec["app"]
    prefix = None
    if app.get("plotgap"):
        prefix = f"posix://{os.path.join(workdir, 'gs_ckpt')}"
    return cluster.run(mm_gray_scott, app.get("L", 32),
                       app.get("steps", 3), app.get("plotgap", 0),
                       app.get("pcache"))


def _run_mm_stream(cluster, spec, workdir):
    from repro.apps.stream import mm_stream
    app = spec["app"]
    return cluster.run(mm_stream, _kmeans_urls(spec, workdir),
                       app.get("passes", 1), app.get("pcache"))


def _run_mm_serving(cluster, spec, workdir):
    from repro.apps.serving import mm_serving
    app = spec["app"]
    return cluster.run(mm_serving,
                       app.get("n_keys", 1 << 14),
                       app.get("obj_bytes", 64),
                       app.get("queries", 128),
                       app.get("lookups", 8),
                       app.get("zipf_s", 1.2),
                       app.get("write_frac", 0.05),
                       app.get("qps", 2000.0),
                       app.get("api", "object"),
                       app.get("pcache"),
                       app.get("partition_writes", True))


def _run_mpi_gray_scott(cluster, spec, workdir):
    from repro.apps.grayscott import mpi_gray_scott
    app = spec["app"]
    io = cluster.pfs if app.get("plotgap") else None
    return cluster.run(mpi_gray_scott, app.get("L", 32),
                       app.get("steps", 3), app.get("plotgap", 0), io)


APP_REGISTRY: Dict[str, Callable] = {
    "mm_kmeans": _run_mm_kmeans,
    "spark_kmeans": _run_spark_kmeans,
    "mm_dbscan": _run_mm_dbscan,
    "mpi_dbscan": _run_mpi_dbscan,
    "mm_random_forest": _run_mm_rf,
    "spark_random_forest": _run_spark_rf,
    "mm_gray_scott": _run_mm_gray_scott,
    "mpi_gray_scott": _run_mpi_gray_scott,
    "mm_stream": _run_mm_stream,
    "mm_serving": _run_mm_serving,
}

#: cluster-section keys consumed by the builder (everything else goes
#: to MegaMmapConfig).
_CLUSTER_KEYS = {"n_nodes", "procs_per_node", "dram_mb", "pmem_mb",
                 "nvme_mb", "ssd_mb", "hdd_mb", "pfs_servers", "seed"}


def build_cluster(section: Dict[str, Any]) -> SimCluster:
    """Construct a SimCluster from a pipeline's ``cluster`` section."""
    section = dict(section or {})
    tiers = [scaled(DRAM, int(section.get("dram_mb", 48)) * MB)]
    if section.get("pmem_mb", 0):
        tiers.append(scaled(PMEM, int(section["pmem_mb"]) * MB))
    if section.get("nvme_mb", 128):
        tiers.append(scaled(NVME, int(section.get("nvme_mb", 128)) * MB))
    if section.get("ssd_mb", 0):
        tiers.append(scaled(SATA_SSD, int(section["ssd_mb"]) * MB))
    if section.get("hdd_mb", 0):
        tiers.append(scaled(HDD, int(section["hdd_mb"]) * MB))
    cfg_kwargs = {k: v for k, v in section.items()
                  if k not in _CLUSTER_KEYS}
    return SimCluster(
        n_nodes=int(section.get("n_nodes", 4)),
        procs_per_node=int(section.get("procs_per_node", 2)),
        pfs_servers=int(section.get("pfs_servers", 2)),
        tiers=tuple(tiers),
        seed=int(section.get("seed", 0)),
        config=MegaMmapConfig.from_dict(cfg_kwargs),
    )


def prepare_dataset(section: Optional[Dict[str, Any]],
                    workdir: str) -> None:
    """Materialize the pipeline's dataset in ``workdir``."""
    if not section or section.get("kind", "none") == "none":
        return
    kind = section["kind"]
    path = os.path.join(workdir, section.get("path", "data"))
    if os.path.exists(path):
        return
    n = int(section.get("n", 10_000))
    k = int(section.get("k", 8))
    seed = int(section.get("seed", 0))
    if kind == "points":
        write_parquet_points(path, n, k, seed=seed)
    elif kind == "gadget":
        labels = write_gadget_like(path, n, k, seed=seed)
        (labels + 1).astype(np.int32).tofile(path + ".labels")
    else:
        raise PipelineError(f"unknown dataset kind {kind!r}")


def _expand_sweep(spec: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Grid-search expansion: the cross product of all sweep axes."""
    sweep = spec.get("sweep") or []
    if not sweep:
        return [spec]
    axes = []
    for axis in sweep:
        if "key" not in axis or "values" not in axis:
            raise PipelineError("sweep entries need 'key' and 'values'")
        axes.append([(axis["key"], v) for v in axis["values"]])
    out = []
    for combo in itertools.product(*axes):
        variant = copy.deepcopy(spec)
        for key, value in combo:
            _set_path(variant, key, value)
        out.append(variant)
    return out


def _set_path(spec: Dict[str, Any], dotted: str, value: Any) -> None:
    parts = dotted.split(".")
    node = spec
    for p in parts[:-1]:
        node = node.setdefault(p, {})
    node[parts[-1]] = value


def _get_path(spec: Dict[str, Any], dotted: str) -> Any:
    node = spec
    for p in dotted.split("."):
        node = node[p]
    return node


def run_pipeline(text_or_path: str, workdir: Optional[str] = None,
                 trace_path: Optional[str] = None,
                 on_variant: Optional[Callable] = None,
                 on_cluster: Optional[Callable] = None
                 ) -> List[Dict[str, Any]]:
    """Execute a pipeline; returns (and persists) the stats rows.

    ``trace_path`` enables span tracing on every variant's cluster and
    writes Chrome-trace-format JSON there (sweep variants append
    ``.<i>`` before the extension). ``on_variant(cluster, variant,
    row)`` is invoked after each variant completes, while the cluster
    (tracer, monitor) is still live — the hook `repro report` uses for
    live-mode analysis. ``on_cluster(cluster, variant)`` is invoked
    right after each variant's cluster is built and before the app
    runs — the hook `repro chaos` uses to install fault injection and
    the history recorder.
    """
    if os.path.exists(text_or_path):
        with open(text_or_path, encoding="utf-8") as fh:
            text = fh.read()
        default_dir = os.path.dirname(os.path.abspath(text_or_path))
    else:
        text = text_or_path
        default_dir = os.getcwd()
    spec = load_yaml_subset(text)
    if not isinstance(spec, dict) or "app" not in spec:
        raise PipelineError("pipeline must be a mapping with an 'app'")
    kind = spec["app"].get("kind")
    if kind not in APP_REGISTRY:
        raise PipelineError(
            f"unknown app kind {kind!r}; known: {sorted(APP_REGISTRY)}")
    workdir = workdir or default_dir
    os.makedirs(workdir, exist_ok=True)
    rows: List[Dict[str, Any]] = []
    variants = _expand_sweep(spec)
    for i, variant in enumerate(variants):
        prepare_dataset(variant.get("dataset"), workdir)
        cluster = build_cluster(variant.get("cluster"))
        if trace_path:
            cluster.tracer.enabled = True
        if on_cluster is not None:
            on_cluster(cluster, variant)
        trace_file = None
        if trace_path:
            trace_file = trace_path
            if len(variants) > 1:
                root, ext = os.path.splitext(trace_path)
                trace_file = f"{root}.{i}{ext or '.json'}"
        try:
            res = APP_REGISTRY[kind](cluster, variant, workdir)
        except BaseException:
            # Still export the partial trace on a mid-run crash —
            # spans open at the failure point come out clipped at
            # sim.now with an `unfinished` marker, which is exactly
            # the timeline a post-mortem needs.
            if trace_file:
                cluster.export_trace(trace_file)
            raise
        if trace_file:
            cluster.export_trace(trace_file)
        row: Dict[str, Any] = {
            "app": variant.get("name", kind),
            "nprocs": cluster.spec.nprocs,
            "nodes": cluster.spec.n_nodes,
            "runtime_s": res.runtime,
            "crashed": res.oom,
            "peak_dram_node_mb": res.peak_dram_node / 2 ** 20,
            "peak_dram_total_mb": res.peak_dram_total / 2 ** 20,
            "net_mb": res.stats.get("net.bytes_moved", 0) / 2 ** 20,
            "pcache_faults": int(res.stats.get("pcache.faults", 0)),
        }
        if res.stats.get("serving.queries"):
            # Serving workloads surface their headline rate directly
            # in the stats row (queries are counted once per rank).
            row["serving_qps"] = round(
                res.stats["serving.queries"] / res.runtime, 1)
            row["object_reads"] = int(res.stats.get("object.reads", 0))
        for axis in variant.get("sweep_echo", []) or []:
            row[axis] = _get_path(variant, axis)
        for axis in (spec.get("sweep") or []):
            row[axis["key"]] = _get_path(variant, axis["key"])
        if trace_file:
            row["trace_file"] = trace_file
        if on_variant is not None:
            on_variant(cluster, variant, row)
        rows.append(row)
    out_name = spec.get("output", "stats_dict.csv")
    out_path = os.path.join(workdir, out_name)
    if rows:
        with open(out_path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
    return rows
