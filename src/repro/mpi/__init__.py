"""Message-passing library over the simulated fabric (MPICH stand-in).

API mirrors mpi4py's lower-case object interface: ``send``/``recv``/
``isend``/``irecv`` plus tree-based collectives (``barrier``,
``bcast``, ``reduce``, ``allreduce``, ``gather``, ``allgather``,
``scatter``, ``alltoall``) implemented, MPICH-style, on top of
point-to-point binomial trees — so collective *cost* emerges from the
fabric model rather than being hard-coded. All blocking calls are
generators: ``data = yield from comm.recv(...)``.
"""

from repro.mpi.comm import Comm, MpiWorld
from repro.net.message import ANY_SOURCE, ANY_TAG

__all__ = ["ANY_SOURCE", "ANY_TAG", "Comm", "MpiWorld"]
