"""CLI: run pipeline workflow files against the simulated cluster.

    python -m repro run pipelines/mm_kmeans_mega.yaml [--workdir DIR]
    python -m repro trace pipelines/mm_kmeans_mega.yaml [--out T.json]
    python -m repro report <pipeline.yaml | trace.json> [--json]
    python -m repro diff A.trace.json B.trace.json [--json]
    python -m repro chaos pipelines/chaos_kmeans_2n.yaml --seeds 25
    python -m repro colocate pipelines/colocate_mixed.yaml
    python -m repro top pipelines/colocate_mixed.yaml
    python -m repro slo pipelines/colocate_mixed.yaml --slos slos.yaml

Mirrors the artifact's ``jarvis ppl run yaml /path/to/workflow.yaml``;
the ``trace`` subcommand additionally records latency spans and writes
a Chrome-trace-format JSON timeline (load in ``chrome://tracing`` or
Perfetto). ``report`` analyzes where the time went — critical-path
breakdown, overlap ratio, top spans, queueing stats — either live (run
a pipeline with tracing on) or post-hoc (from a trace JSON file).
``diff`` aligns two trace files by span category and reports which
categories account for the runtime delta. ``chaos`` runs seeded
fault-injection campaigns with the coherence model-checker attached,
shrinks the first failing seed's fault schedule to a minimal repro,
and writes a replay file. ``top`` runs a pipeline or colocation spec
with the live observability plane attached and prints the final
windowed dashboard (rates, gauges, latency quantiles, firing alerts,
anomalies); ``slo`` additionally evaluates declarative SLOs with
burn-rate alerting and exits 1 when any objective is violated. The
bare form ``python -m repro <file.yaml>`` is kept as an alias for
``run``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.pipeline import run_pipeline

_SUBCOMMANDS = ("run", "trace", "report", "diff", "chaos", "colocate",
                "top", "slo")


def _print_rows(rows) -> None:
    cols = list(rows[0])
    print("  ".join(cols))
    for row in rows:
        print("  ".join(
            f"{row[c]:.4f}" if isinstance(row[c], float) else str(row[c])
            for c in cols))


def _is_trace_file(path: str) -> bool:
    """A JSON file is a trace; anything else is a pipeline YAML."""
    if not path.endswith(".json"):
        return False
    try:
        with open(path, encoding="utf-8") as fh:
            head = fh.read(512).lstrip()
    except OSError:
        return False
    return head.startswith("{") or head.startswith("[")


def _analyze_trace_file(path: str, top_k: int):
    from repro.obs import analyze, load_trace
    return analyze(load_trace(path), top_k=top_k)


def _cmd_report(args) -> int:
    from repro.obs import SpanGraph, analyze, render_report
    analyses = []  # (title, analysis)
    if _is_trace_file(args.target):
        analyses.append((os.path.basename(args.target),
                         _analyze_trace_file(args.target, args.top)))
    else:
        workdir = args.workdir or tempfile.mkdtemp(prefix="megammap-ppl-")
        trace_path = os.path.abspath(os.path.join(workdir, "trace.json"))

        def on_variant(cluster, variant, row):
            graph = SpanGraph.from_tracer(cluster.tracer)
            analyses.append((row.get("app", "run"),
                             analyze(graph, monitor=cluster.monitor,
                                     top_k=args.top)))

        run_rows = run_pipeline(args.target, workdir=workdir,
                                trace_path=trace_path,
                                on_variant=on_variant)
        if not run_rows:
            print("pipeline produced no rows", file=sys.stderr)
            return 1
    if not analyses:
        print("no spans recorded — nothing to report", file=sys.stderr)
        return 1
    if args.out:
        payload = [a for _, a in analyses]
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload[0] if len(payload) == 1 else payload,
                      fh, indent=2)
        print(f"report JSON written to {os.path.abspath(args.out)}",
              file=sys.stderr)
    if args.json:
        payload = [a for _, a in analyses]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2))
    else:
        for i, (title, analysis) in enumerate(analyses):
            if i:
                print()
            print(render_report(analysis, title=title))
    return 0


def _cmd_diff(args) -> int:
    from repro.obs import diff_analyses, render_diff
    for path in (args.a, args.b):
        if not _is_trace_file(path):
            print(f"error: {path} is not a trace/report JSON file",
                  file=sys.stderr)
            return 2

    def load_analysis(path):
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if isinstance(data, dict) and "critical_path" in data:
            return data  # already an analysis (repro report --out)
        return _analyze_trace_file(path, top_k=5)

    diff = diff_analyses(load_analysis(args.a), load_analysis(args.b))
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(render_diff(diff, label_a=os.path.basename(args.a),
                          label_b=os.path.basename(args.b)))
    return 0


def _cmd_chaos(args) -> int:
    from repro.chaos import ChaosPlan
    from repro.chaos.campaign import (detection_stats, run_campaign,
                                      run_case, shrink_case,
                                      write_replay)
    workdir = args.workdir or tempfile.mkdtemp(prefix="megammap-chaos-")
    if args.faults is not None:
        kinds = tuple(k.strip() for k in args.faults.split(",")
                      if k.strip())
    elif args.durability:
        # Durability campaigns are crash campaigns: the clause under
        # test is committed-barrier survival across crash+restart.
        kinds = ("crash",)
    else:
        kinds = ("crash", "partition", "delay", "drop", "stall",
                 "corrupt")

    def log(msg):
        print(msg, flush=True)

    if args.durability:
        from repro.core.config import load_yaml_subset
        with open(args.pipeline, encoding="utf-8") as fh:
            spec = load_yaml_subset(fh.read())
        cluster_cfg = (spec or {}).get("cluster") or {}
        if not cluster_cfg.get("durability"):
            print(f"error: --durability needs the pipeline to declare "
                  f"'durability: true' in its cluster section "
                  f"({args.pipeline} does not)", file=sys.stderr)
            return 2

    if args.replay:
        plan = ChaosPlan.from_json(args.replay)
        res = run_case(args.pipeline, plan.seed, horizon=plan.horizon,
                       plan=plan, workdir=workdir)
        log(res.summary())
        for v in res.violations[:10]:
            log(f"  violation: {v}")
        for c in res.conservation[:10]:
            log(f"  conservation: {c}")
        return 0 if res.ok else 1

    seeds = range(args.seed_base, args.seed_base + args.seeds)
    results = run_campaign(args.pipeline, seeds, kinds=kinds,
                           intensity=args.intensity,
                           perturb=args.perturb,
                           horizon=args.horizon, workdir=workdir,
                           log=log, obs=args.obs)
    bad = [r for r in results if not r.ok]
    log(f"campaign: {len(results) - len(bad)}/{len(results)} seeds "
        f"clean")
    if args.obs:
        stats = detection_stats(results)
        log("detection latency by fault kind "
            "(first anomaly/alert at or after onset):")
        for kind in sorted(stats):
            row = stats[kind]
            if row["detected"]:
                log(f"  {kind:<10} {row['detected']}/{row['faults']} "
                    f"detected, mean {row['mean_s'] * 1e3:.2f} ms, "
                    f"max {row['max_s'] * 1e3:.2f} ms")
            else:
                log(f"  {kind:<10} 0/{row['faults']} detected")
    if not bad:
        return 0
    first = bad[0]
    for v in first.violations[:10]:
        log(f"  violation: {v}")
    for c in first.conservation[:10]:
        log(f"  conservation: {c}")
    minimal = None
    if first.plan is not None and len(first.plan.faults) > 1:
        log(f"shrinking seed {first.seed} "
            f"({len(first.plan.faults)} faults)...")
        minimal, keep = shrink_case(args.pipeline, first,
                                    workdir=workdir, log=log)
        log(f"minimal repro: faults {keep} of seed {first.seed}")
        for f in minimal.faults:
            log(f"  {f}")
    out = args.out or os.path.join(workdir,
                                   f"chaos-replay-{first.seed}.json")
    write_replay(out, first, minimal)
    log(f"replay file written to {os.path.abspath(out)}")
    return 1


def _is_colocation_spec(path: str) -> bool:
    from repro.core.config import load_yaml_subset
    with open(path, encoding="utf-8") as fh:
        spec = load_yaml_subset(fh.read())
    return isinstance(spec, dict) and "jobs" in spec


def _run_with_obs(args, workdir, slos=None):
    """Run the target (pipeline or colocation spec) with the live
    observability plane attached; returns ``[(title, obs, result)]``
    where ``result`` is the ColocationResult or the pipeline row."""
    from repro.obs import LiveObs, SLOMonitor
    from repro.obs.anomaly import attach_detectors, standard_detectors
    window = getattr(args, "window", None)
    out = []
    if _is_colocation_spec(args.target):
        from repro.tenancy import run_colocation

        def hook(cluster):
            out.append((os.path.basename(args.target),
                        LiveObs.attach(cluster, window=window), None))

        result = run_colocation(args.target, workdir=workdir,
                                on_cluster=hook, slos=slos)
        out[:] = [(t, o, result) for t, o, _r in out]
    else:
        def hook(cluster, variant):
            obs = LiveObs.attach(cluster, window=window)
            if slos:
                SLOMonitor(obs, slos)
            attach_detectors(obs, standard_detectors(
                n_nodes=cluster.spec.n_nodes))
            out.append((variant.get("name", "run"), obs, None))

        run_pipeline(args.target, workdir=workdir, on_cluster=hook)
    return out


def _fmt_series(name: str, labels) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _render_top(title: str, obs, limit: int) -> str:
    store = obs.store
    now = store.last_tick
    lines = [f"== top: {title} @ t={now:.3f}s  "
             f"(window {store.window * 1e3:g} ms x {store.retention}, "
             f"{obs.ticks} ticks) =="]

    counters = sorted(
        ((store.delta(name, ls), name, ls)
         for name, ls in store.counters), reverse=True)[:limit]
    if counters:
        lines.append("-- counters (retained window) --")
        width = max(len(_fmt_series(n, ls)) for _d, n, ls in counters)
        for delta, name, ls in counters:
            lines.append(f"  {_fmt_series(name, ls).ljust(width)}  "
                         f"+{delta:.6g}  "
                         f"({store.rate(name, ls):.6g}/s)")

    gauges = sorted(store.gauges)[:limit]
    if gauges:
        lines.append("-- gauges (last sample) --")
        width = max(len(_fmt_series(n, ls)) for n, ls in gauges)
        for name, ls in gauges:
            lines.append(f"  {_fmt_series(name, ls).ljust(width)}  "
                         f"{store.gauge_last(name, ls):.6g}")

    hists = []
    for name, ls in sorted(store.histograms):
        stats = store.window_stats(name, ls)
        if stats is not None and stats.count:
            hists.append((stats.count, name, ls, stats))
    hists.sort(reverse=True, key=lambda h: (h[0], h[1]))
    if hists:
        lines.append("-- latencies (retained window, ms) --")
        width = max(len(_fmt_series(n, ls))
                    for _c, n, ls, _s in hists[:limit])
        for count, name, ls, stats in hists[:limit]:
            p50 = stats.sketch.quantile(50) * 1e3
            p99 = stats.sketch.quantile(99) * 1e3
            lines.append(f"  {_fmt_series(name, ls).ljust(width)}  "
                         f"n={count:<6d} mean={stats.mean * 1e3:.4g} "
                         f"p50={p50:.4g} p99={p99:.4g}")

    if obs.slo is not None and obs.slo.history:
        lines.append("-- alerts --")
        for alert in obs.slo.history:
            state = ("firing" if alert.firing else
                     f"resolved at {alert.resolved_at:.3f}s")
            lines.append(f"  {alert.slo}: fired at "
                         f"{alert.fired_at:.3f}s, {state} "
                         f"(burn fast {alert.fast_burn:.2f}x / "
                         f"slow {alert.slow_burn:.2f}x)")

    if obs.events:
        lines.append("-- anomalies --")
        for e in obs.events[-limit:]:
            lines.append(f"  t={e['t']:.3f}s {e['detector']} "
                         f"{e['direction']} z={e['zscore']:.1f} "
                         f"value={e['value']:.6g}")
    return "\n".join(lines)


def _top_json(obs) -> dict:
    store = obs.store
    doc = {"t": store.last_tick, "ticks": obs.ticks,
           "window_s": store.window, "retention": store.retention,
           "counters": {}, "gauges": {}, "histograms": {},
           "anomalies": list(obs.events)}
    for name, ls in sorted(store.counters):
        doc["counters"][_fmt_series(name, ls)] = {
            "delta": store.delta(name, ls),
            "rate": store.rate(name, ls)}
    for name, ls in sorted(store.gauges):
        doc["gauges"][_fmt_series(name, ls)] = store.gauge_last(name, ls)
    for name, ls in sorted(store.histograms):
        stats = store.window_stats(name, ls)
        if stats is None or not stats.count:
            continue
        doc["histograms"][_fmt_series(name, ls)] = {
            "count": stats.count, "mean": stats.mean,
            "p50": stats.sketch.quantile(50),
            "p99": stats.sketch.quantile(99)}
    if obs.slo is not None:
        doc["alerts"] = [a.to_dict() for a in obs.slo.history]
    return doc


def _cmd_top(args) -> int:
    workdir = args.workdir or tempfile.mkdtemp(prefix="megammap-top-")
    runs = _run_with_obs(args, workdir)
    if not runs:
        print("run produced no output", file=sys.stderr)
        return 1
    if args.json:
        payload = [_top_json(obs) for _t, obs, _r in runs]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2))
    else:
        for i, (title, obs, _result) in enumerate(runs):
            if i:
                print()
            print(_render_top(title, obs, args.limit))
    return 0


def _render_slo(title: str, report: dict) -> str:
    lines = [f"== slo: {title} @ t={report['t']:.3f}s =="]
    rows = report["slos"]
    if rows:
        cols = ("name", "tenant", "objective", "target", "compliance",
                "samples", "alerts", "ok")

        def cell(s, col):
            if col == "alerts":
                return str(len(s["alerts"]))
            if col == "ok":
                return "ok" if s["ok"] else "VIOLATED"
            v = s.get(col)
            if isinstance(v, float):
                return f"{v:.4f}" if col == "compliance" else f"{v:g}"
            return str(v if v is not None else "-")

        table = [[cell(s, c) for c in cols] for s in rows]
        widths = [max(len(c), *(len(r[i]) for r in table))
                  for i, c in enumerate(cols)]
        lines.append("  ".join(c.ljust(w) for c, w in zip(cols, widths)))
        for r in table:
            lines.append("  ".join(v.ljust(w)
                                   for v, w in zip(r, widths)))
    for alert in report["alerts"]:
        state = ("still firing" if alert["resolved_at"] is None else
                 f"resolved at {alert['resolved_at']:.3f}s")
        lines.append(f"  alert {alert['slo']}: fired at "
                     f"{alert['fired_at']:.3f}s, {state}")
    n = len(report["slos"])
    lines.append(f"{n - report['violations']}/{n} SLOs met"
                 + (f", {report['violations']} violated"
                    if report["violations"] else ""))
    return "\n".join(lines)


def _cmd_slo(args) -> int:
    from repro.obs import load_slos
    extra = load_slos(args.slos) if args.slos else []
    workdir = args.workdir or tempfile.mkdtemp(prefix="megammap-slo-")
    if not extra and not _is_colocation_spec(args.target):
        print("error: pipeline targets need --slos <spec.yaml>",
              file=sys.stderr)
        return 2
    runs = _run_with_obs(args, workdir, slos=extra)
    if not runs:
        print("run produced no output", file=sys.stderr)
        return 1
    reports = []
    for title, obs, _result in runs:
        if obs.slo is None:
            print(f"error: no SLOs attached for {title} (use --slos "
                  f"or embed 'slos:'/per-job 'slo:' blocks in the "
                  f"spec)", file=sys.stderr)
            return 2
        reports.append((title, obs.slo.report()))
    if args.json:
        payload = [r for _t, r in reports]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2))
    else:
        for i, (title, report) in enumerate(reports):
            if i:
                print()
            print(_render_slo(title, report))
    violations = sum(r["violations"] for _t, r in reports)
    return 1 if violations else 0


def _cmd_colocate(args) -> int:
    from repro.tenancy import run_colocation
    workdir = args.workdir or tempfile.mkdtemp(prefix="megammap-colo-")
    result = run_colocation(args.spec, workdir=workdir)
    if not result.rows:
        print("colocation produced no rows", file=sys.stderr)
        return 1
    _print_rows(result.rows)
    ok = [r for r in result.rows if r["status"] == "ok"]
    print(f"\n{len(ok)}/{len(result.rows)} jobs completed in "
          f"{result.makespan:.3f}s simulated "
          f"({len(result.decisions)} scheduler decisions)")
    if args.decisions:
        for d in result.decisions:
            print("  " + json.dumps(d))
    rates = [1.0 / r["service_s"] for r in ok if r["service_s"]]
    if len(rates) > 1:
        jain = (sum(rates) ** 2) / (len(rates) * sum(x * x
                                                     for x in rates))
        print(f"Jain fairness index over per-job service rates: "
              f"{jain:.4f}")
    print(f"stats written to {workdir}/", flush=True)
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `python -m repro file.yaml` means `run file.yaml`.
    if argv and argv[0] not in _SUBCOMMANDS \
            and argv[0] not in ("-h", "--help"):
        argv.insert(0, "run")
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a MegaMmap workflow pipeline (Jarvis-style).")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", help="execute a pipeline and print its stats rows")
    p_run.add_argument("pipeline", help="path to a workflow YAML file")
    p_run.add_argument("--workdir", default=None,
                       help="directory for datasets + stats_dict.csv "
                            "(default: a fresh temp directory)")

    p_trace = sub.add_parser(
        "trace",
        help="execute a pipeline with span tracing enabled and write "
             "a Chrome-trace-format JSON timeline")
    p_trace.add_argument("pipeline", help="path to a workflow YAML file")
    p_trace.add_argument("--workdir", default=None,
                         help="directory for datasets + stats (default: "
                              "a fresh temp directory)")
    p_trace.add_argument("--out", default=None,
                         help="trace JSON path (default: "
                              "<workdir>/trace.json)")

    p_report = sub.add_parser(
        "report",
        help="critical-path triage report: pass a pipeline YAML (runs "
             "it traced) or an existing trace JSON")
    p_report.add_argument("target",
                          help="pipeline YAML or Chrome-trace JSON")
    p_report.add_argument("--workdir", default=None,
                          help="workdir when running a pipeline")
    p_report.add_argument("--top", type=int, default=10,
                          help="number of top spans to list")
    p_report.add_argument("--out", default=None,
                          help="also write the analysis as JSON here")
    p_report.add_argument("--json", action="store_true",
                          help="print the analysis as JSON")

    p_diff = sub.add_parser(
        "diff",
        help="compare two runs: which span categories account for the "
             "runtime delta")
    p_diff.add_argument("a", help="baseline trace/report JSON")
    p_diff.add_argument("b", help="comparison trace/report JSON")
    p_diff.add_argument("--json", action="store_true",
                        help="print the diff as JSON")

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign with the coherence "
             "model-checker; shrinks and persists failing schedules")
    p_chaos.add_argument("pipeline", help="path to a workflow YAML file")
    p_chaos.add_argument("--seeds", type=int, default=25,
                         help="number of seeded cases to run")
    p_chaos.add_argument("--seed-base", type=int, default=0,
                         help="first seed (cases use seed-base..+seeds)")
    p_chaos.add_argument("--faults", default=None,
                         help="comma-separated fault kinds to inject "
                              "(default: all kinds, or just 'crash' "
                              "with --durability)")
    p_chaos.add_argument("--durability", action="store_true",
                         help="durability campaign: require the "
                              "pipeline's durable mode, inject "
                              "crash+restart faults, and hold reads "
                              "to the committed-barrier clause (no "
                              "crash excuse for flushed bytes)")
    p_chaos.add_argument("--intensity", type=float, default=1.0,
                         help="expected-fault-count multiplier")
    p_chaos.add_argument("--horizon", type=float, default=None,
                         help="fault window in simulated seconds "
                              "(default: measured by a fault-free "
                              "probe run)")
    p_chaos.add_argument("--perturb", action="store_true",
                         help="also randomize same-timestamp event "
                              "ordering (seeded)")
    p_chaos.add_argument("--obs", action="store_true",
                         help="attach the live observability plane to "
                              "every case and report per-fault-kind "
                              "detection latency")
    p_chaos.add_argument("--workdir", default=None,
                         help="directory for datasets + replay files")
    p_chaos.add_argument("--out", default=None,
                         help="replay-file path for a failing seed")
    p_chaos.add_argument("--replay", default=None,
                         help="replay-file path to re-run instead of "
                              "a seeded campaign")

    p_colo = sub.add_parser(
        "colocate",
        help="run N jobs as tenants of one shared deployment with "
             "per-tenant quotas, admission control and fast-memory "
             "reallocation")
    p_colo.add_argument("spec", help="path to a colocation YAML spec")
    p_colo.add_argument("--workdir", default=None,
                        help="directory for datasets + "
                             "colocate_stats.csv (default: a fresh "
                             "temp directory)")
    p_colo.add_argument("--decisions", action="store_true",
                        help="also print the admission/reallocation "
                             "decision log")

    p_top = sub.add_parser(
        "top",
        help="run a pipeline or colocation spec with the live "
             "observability plane attached and print the windowed "
             "dashboard: counter rates, gauges, latency quantiles, "
             "alerts, anomalies")
    p_top.add_argument("target",
                       help="pipeline YAML or colocation spec")
    p_top.add_argument("--workdir", default=None,
                       help="directory for datasets + stats (default: "
                            "a fresh temp directory)")
    p_top.add_argument("--window", type=float, default=None,
                       help="obs window in simulated seconds "
                            "(default: the config's obs_window)")
    p_top.add_argument("--limit", type=int, default=12,
                       help="max rows per dashboard section")
    p_top.add_argument("--json", action="store_true",
                       help="print the dashboard as JSON")

    p_slo = sub.add_parser(
        "slo",
        help="run a pipeline or colocation spec under declarative "
             "SLOs with burn-rate alerting; prints compliance and "
             "exits 1 when any objective is violated")
    p_slo.add_argument("target",
                       help="pipeline YAML or colocation spec")
    p_slo.add_argument("--slos", default=None,
                       help="SLO spec YAML (a 'slos:' list); merged "
                            "with SLOs embedded in a colocation spec")
    p_slo.add_argument("--workdir", default=None,
                       help="directory for datasets + stats (default: "
                            "a fresh temp directory)")
    p_slo.add_argument("--window", type=float, default=None,
                       help="obs window in simulated seconds "
                            "(default: the config's obs_window)")
    p_slo.add_argument("--json", action="store_true",
                       help="print the report as JSON")

    args = parser.parse_args(argv)
    if args.command == "diff":
        for path in (args.a, args.b):
            if not os.path.exists(path):
                print(f"error: file not found: {path}", file=sys.stderr)
                return 2
        return _cmd_diff(args)
    if args.command in ("report", "top", "slo"):
        target = args.target
    elif args.command == "colocate":
        target = args.spec
    else:
        target = args.pipeline
    if not os.path.exists(target):
        print(f"error: file not found: {target}", file=sys.stderr)
        return 2
    if args.command == "slo" and args.slos \
            and not os.path.exists(args.slos):
        print(f"error: file not found: {args.slos}", file=sys.stderr)
        return 2
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "colocate":
        return _cmd_colocate(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "slo":
        return _cmd_slo(args)

    workdir = args.workdir or tempfile.mkdtemp(prefix="megammap-ppl-")
    trace_path = None
    if args.command == "trace":
        # Default the trace next to the run's stats inside the workdir
        # (never the CWD) and always resolve to an absolute path so the
        # printed location is unambiguous.
        trace_path = os.path.abspath(
            args.out or os.path.join(workdir, "trace.json"))
        os.makedirs(os.path.dirname(trace_path), exist_ok=True)
    rows = run_pipeline(args.pipeline, workdir=workdir,
                        trace_path=trace_path)
    if not rows:
        print("pipeline produced no rows", file=sys.stderr)
        return 1
    _print_rows(rows)
    print(f"\nstats written to {workdir}/", flush=True)
    if trace_path:
        # Sweeps write one trace per variant (<out>.<i>.json); report
        # the paths actually written, not the requested one.
        written = [r["trace_file"] for r in rows if r.get("trace_file")]
        for p in dict.fromkeys(written):
            print(f"trace written to {os.path.abspath(p)} "
                  f"(open in chrome://tracing or https://ui.perfetto.dev)",
                  flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
