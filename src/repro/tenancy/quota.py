"""Per-tenant byte ledgers and quota enforcement hooks.

MaxMem-style multi-tenant governance over one shared MegaMmap
deployment: each colocated job is a *tenant* with a pcache quota (its
processes' private caches, cluster-wide), an scache quota (total bytes
of authoritative blobs it owns across all tiers) and a DRAM-tier quota
(its slice of fast memory, the quantity the reallocation loop trades
between tenants).

The :class:`QuotaManager` installs three untimed hooks on
:class:`~repro.hermes.core.Hermes` — ``accountant`` (blob create /
destroy / move deltas against the owner's ledger), ``admission``
(minimum tier index for new placements: an over-quota tenant spills to
the next tier instead of demoting other tenants' hot pages) and
``read_hook`` (per-tenant fast/slow read bytes, the hit-ratio signal
the reallocation loop consumes). Every hook is a no-op-by-default
attribute: runs without a manager keep the exact pre-tenancy event
sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.errors import QuotaExceededError

__all__ = ["TenantQuota", "QuotaManager", "QuotaExceededError"]


@dataclass
class TenantQuota:
    """One tenant's quotas and live usage.

    ``None`` quotas are unlimited. ``dram_quota`` is the only quota
    the reallocation loop mutates; ``min_dram`` is the floor below
    which reallocation may not shrink it (and the amount the admission
    controller commits when the job is admitted).
    """

    name: str
    pcache_quota: Optional[int] = None
    scache_quota: Optional[int] = None
    dram_quota: Optional[int] = None
    min_dram: int = 0
    # -- live usage (maintained by the manager / client hooks) ----------
    pcache_used: int = 0
    scache_used: int = 0
    dram_used: int = 0
    active: bool = False
    manager: Optional["QuotaManager"] = field(default=None, repr=False)

    def scoped_key(self, key: str) -> str:
        """Namespace volatile vector keys per tenant; nonvolatile URL
        keys stay global (datasets are shareable across tenants)."""
        if "://" in key:
            return key
        mgr = self.manager
        if mgr is not None and not mgr.namespace:
            return key
        return f"{self.name}::{key}"

    # -- pcache (charged by MegaMmapClient.reserve/unreserve) -----------
    def charge_pcache(self, nbytes: int) -> None:
        self.pcache_used += nbytes
        mgr = self.manager
        if mgr is not None:
            mgr._g_pcache[self.name].set(self.pcache_used)
            if self.pcache_quota is not None \
                    and self.pcache_used > self.pcache_quota:
                mgr._c_overcommit[self.name].inc(nbytes)

    def release_pcache(self, nbytes: int) -> None:
        self.pcache_used -= nbytes
        mgr = self.manager
        if mgr is not None:
            mgr._g_pcache[self.name].set(self.pcache_used)

    def pcache_over(self, extra: int = 0) -> bool:
        return (self.pcache_quota is not None
                and self.pcache_used + extra > self.pcache_quota)


class QuotaManager:
    """Owner map + byte ledgers + enforcement hooks for one system.

    Install with ``QuotaManager(system)``: the constructor wires the
    hermes hooks and publishes itself as ``system.tenancy``. Buckets
    (vector names) are claimed by the tenant whose client *created*
    the vector; every authoritative-blob credit/debit lands on the
    owner's ledger regardless of which tenant's activity triggered it
    (an evicting antagonist must not launder its usage onto a victim).
    """

    def __init__(self, system, namespace: bool = True):
        self.system = system
        self.namespace = namespace
        self.tenants: Dict[str, TenantQuota] = {}
        self.bucket_owner: Dict[str, str] = {}
        #: Admission / reallocation decision log: a list of plain dicts
        #: (``t``, ``kind``, then per-kind fields), bit-comparable
        #: across same-seed runs.
        self.decisions: List[dict] = []
        metrics = system.monitor.metrics
        self._metrics = metrics
        self._g_pcache: Dict = {}
        self._g_scache: Dict = {}
        self._g_dram: Dict = {}
        self._g_quota: Dict = {}
        self._c_overcommit: Dict = {}
        self._c_fast_reads: Dict = {}
        self._c_slow_reads: Dict = {}
        self._c_ops: Dict = {}
        #: Tier kind counted as "fast memory" (the DRAM-quota tier).
        self.fast_kind = system.dmshs[0].tiers[0].spec.kind
        hermes = system.hermes
        hermes.accountant = self._on_account
        hermes.admission = self._admission_floor
        hermes.read_hook = self._on_read
        system.tenancy = self

    # -- registration ----------------------------------------------------
    def register(self, quota: TenantQuota) -> TenantQuota:
        if quota.name in self.tenants:
            raise QuotaExceededError(
                f"tenant {quota.name!r} already registered")
        quota.manager = self
        self.tenants[quota.name] = quota
        m = self._metrics
        name = quota.name
        self._g_pcache[name] = m.gauge("tenant_pcache_bytes",
                                       tenant=name)
        self._g_scache[name] = m.gauge("tenant_scache_bytes",
                                       tenant=name)
        self._g_dram[name] = m.gauge("tenant_dram_bytes", tenant=name)
        self._g_quota[name] = m.gauge("tenant_dram_quota", tenant=name)
        self._c_overcommit[name] = m.counter("tenant_pcache_overcommit",
                                             tenant=name)
        self._c_fast_reads[name] = m.counter("tenant_read_bytes",
                                             tenant=name, speed="fast")
        self._c_slow_reads[name] = m.counter("tenant_read_bytes",
                                             tenant=name, speed="slow")
        if quota.dram_quota is not None:
            self._g_quota[name].set(quota.dram_quota)
        return quota

    def claim_bucket(self, bucket: str, tenant_name: str) -> None:
        """First creator wins; later attaches never transfer
        ownership."""
        self.bucket_owner.setdefault(bucket, tenant_name)

    def owner_of(self, bucket: str) -> Optional[TenantQuota]:
        name = self.bucket_owner.get(bucket)
        return self.tenants.get(name) if name is not None else None

    # -- hermes hooks ----------------------------------------------------
    def _on_account(self, bucket: str, node: int, tier: str,
                    delta: int) -> None:
        t = self.owner_of(bucket)
        if t is None:
            return
        t.scache_used += delta
        self._g_scache[t.name].set(t.scache_used)
        if tier == self.fast_kind:
            t.dram_used += delta
            self._g_dram[t.name].set(t.dram_used)

    def _admission_floor(self, node: int, bucket: str,
                         nbytes: int) -> int:
        """Minimum tier index for a new placement of ``bucket``.

        Floor 1 (skip the fast tier) when the owner would exceed its
        DRAM-tier quota or already exceeds its total scache quota —
        the spill-don't-evict rule: tiers above the floor are never
        attempted, so an over-quota tenant can't demote another
        tenant's hot pages out of DRAM.
        """
        t = self.owner_of(bucket)
        if t is None:
            return 0
        if t.dram_quota is not None \
                and t.dram_used + nbytes > t.dram_quota:
            return 1
        if t.scache_quota is not None \
                and t.scache_used > t.scache_quota:
            return 1
        return 0

    def _on_read(self, bucket: str, tier: str, nbytes: int) -> None:
        t = self.owner_of(bucket)
        if t is None:
            return
        if tier == self.fast_kind:
            self._c_fast_reads[t.name].inc(nbytes)
        else:
            self._c_slow_reads[t.name].inc(nbytes)

    # -- scache op attribution (called from ScacheExecutor) --------------
    def note_scache_op(self, bucket: str, kind: str, n: int = 1) -> None:
        t = self.owner_of(bucket)
        if t is None:
            return
        key = (t.name, kind)
        handle = self._c_ops.get(key)
        if handle is None:
            handle = self._c_ops[key] = self._metrics.counter(
                "tenant_scache_ops", tenant=t.name, kind=kind)
        handle.inc(n)

    # -- admission-control bookkeeping ----------------------------------
    def activate(self, name: str) -> None:
        t = self.tenants[name]
        t.active = True
        if t.dram_quota is not None:
            self._g_quota[name].set(t.dram_quota)

    def deactivate(self, name: str) -> None:
        self.tenants[name].active = False

    def active_tenants(self) -> List[TenantQuota]:
        return [t for t in self.tenants.values() if t.active]

    def committed_min_dram(self) -> int:
        return sum(t.min_dram for t in self.tenants.values() if t.active)

    # -- stats -----------------------------------------------------------
    def read_stats(self, name: str):
        """Cumulative (fast_bytes, slow_bytes) read by tenant
        ``name``."""
        return (self._c_fast_reads[name].value,
                self._c_slow_reads[name].value)

    def hit_ratio(self, name: str) -> float:
        fast, slow = self.read_stats(name)
        total = fast + slow
        return fast / total if total else 1.0

    def log(self, kind: str, **fields) -> dict:
        entry = {"t": round(self.system.sim.now, 9), "kind": kind}
        entry.update(fields)
        self.decisions.append(entry)
        return entry

    def ledger_sweep(self) -> Dict[str, Dict[str, int]]:
        """Recompute per-tenant scache/DRAM bytes from scratch by
        sweeping metadata — the ground truth the incremental hook
        accounting must agree with (used by the regression tests)."""
        out: Dict[str, Dict[str, int]] = {
            name: {"scache": 0, "dram": 0} for name in self.tenants}
        for info in self.system.hermes.mdm.all_blobs():
            name = self.bucket_owner.get(info.bucket)
            if name is None or name not in out:
                continue
            out[name]["scache"] += info.nbytes
            if info.tier == self.fast_kind:
                out[name]["dram"] += info.nbytes
        return out
