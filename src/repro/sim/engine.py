"""Core discrete-event engine: events, processes, and the simulator loop.

Design notes
------------
* Events carry a value or an exception. Triggering an event schedules
  it on the simulator heap; its callbacks run when the heap pops it.
* A :class:`Process` wraps a generator. Each ``yield`` must produce an
  :class:`Event`; the process resumes with the event's value (or the
  exception is thrown into the generator). ``return x`` sets the
  process's own event value, so processes compose: one process can
  ``yield`` another.
* The heap is ordered by ``(time, priority, seq)``; ``seq`` keeps FIFO
  order among simultaneous events, which makes every simulation run
  bit-for-bit deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

#: Priority for "urgent" events (process resumption) so that control
#: transfer happens before same-time ordinary timeouts.
URGENT = 0
NORMAL = 1

_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """An occurrence at a point in simulated time.

    An event starts *pending*; it becomes *triggered* once
    :meth:`succeed` or :meth:`fail` is called (the simulator then owns
    it), and *processed* once its callbacks have run.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "processed")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self.processed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"{exc!r} is not an exception")
        self._ok = False
        self._value = exc
        self.sim._schedule(self, priority)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires automatically ``delay`` time units from now."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal: kicks off a newly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        sim._schedule(self, URGENT)


class Process(Event):
    """A running generator inside the simulation.

    The process is itself an event that triggers when the generator
    returns (value = return value) or raises (event fails).
    """

    __slots__ = ("gen", "name", "_target")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(f"{gen!r} is not a generator")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"{self.name} already terminated")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        evt = Event(self.sim)
        evt.callbacks = [self._resume]
        evt._ok = False
        evt._value = Interrupt(cause)
        self.sim._schedule(evt, URGENT)

    # -- engine hook ----------------------------------------------------
    def _resume(self, event: Event) -> None:
        self.sim._active = self
        evt: Optional[Event] = event
        while True:
            try:
                if evt is None:
                    target = next(self.gen)
                elif evt._ok:
                    target = self.gen.send(evt._value)
                else:
                    # mark the failure as handled by this process
                    target = self.gen.throw(evt._value)
            except StopIteration as stop:
                self.sim._active = None
                self.succeed(stop.value, priority=URGENT)
                return
            except BaseException as exc:
                self.sim._active = None
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(exc, priority=URGENT)
                return
            if not isinstance(target, Event):
                self.sim._active = None
                raise SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}")
            if target.sim is not self.sim:
                self.sim._active = None
                raise SimulationError(
                    "yielded event belongs to a different Simulator")
            if target.processed or target.callbacks is None:
                # Already fired: resume immediately with its value.
                evt = target
                continue
            target.callbacks.append(self._resume)
            self._target = target
            self.sim._active = None
            return


class _Condition(Event):
    """Base for AllOf/AnyOf: composite over several events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        for evt in self.events:
            if evt.sim is not sim:
                raise SimulationError("condition spans multiple simulators")
        if not self.events:
            self.succeed([])
            return
        for evt in self.events:
            if evt.callbacks is None or evt.processed:
                self._check(evt)
            else:
                evt.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when all constituent events have triggered.

    Value is the list of constituent values, in construction order.
    Fails fast if any constituent fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Triggers when the first constituent event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)


class Simulator:
    """The event loop: a heap of ``(time, priority, seq, event)``."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active: Optional[Process] = None

    # -- construction helpers -------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        heapq.heappush(self._heap, (self.now + delay, priority, self._seq, event))
        self._seq += 1

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Pop and process a single event."""
        when, _prio, _seq, event = heapq.heappop(self._heap)
        if when < self.now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None
        for cb in callbacks:
            cb(event)
        event.processed = True
        if not event._ok and not callbacks:
            # Nothing was waiting on this failure: surface it rather
            # than letting the simulation silently continue.
            raise event._value

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        When ``until`` is an event, returns that event's value (raising
        its exception if it failed). Unhandled process failures
        propagate out of :meth:`run`.
        """
        stop_evt: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_evt = until
            if stop_evt.callbacks is not None:
                # Mark the stop event as observed so a failure is
                # reported by run() itself rather than from step().
                stop_evt.callbacks.append(lambda _evt: None)
        elif until is not None:
            deadline = float(until)
            if deadline < self.now:
                raise ValueError("deadline lies in the past")
        while self._heap:
            if stop_evt is not None and stop_evt.processed:
                break
            if self.peek() > deadline:
                self.now = deadline
                return None
            self.step()
        if stop_evt is not None:
            if not stop_evt.triggered:
                raise SimulationError("run() ended before `until` event fired")
            if not stop_evt._ok:
                raise stop_evt._value
            return stop_evt._value
        return None
