"""KMeans: unit tests for the math + integration for both versions."""

import numpy as np
import pytest

from repro.apps.datagen import POINT3D, as_xyz, generate_points, \
    write_parquet_points
from repro.apps.kmeans import (
    assign,
    inertia_of,
    match_accuracy,
    mm_kmeans,
    reference_kmeans,
    spark_kmeans,
)
from tests.apps.conftest import make_cluster


def test_assign_picks_nearest():
    xyz = np.array([[0.0, 0, 0], [10.0, 0, 0]])
    cents = np.array([[1.0, 0, 0], [9.0, 0, 0]])
    labels, d2 = assign(xyz, cents)
    assert list(labels) == [0, 1]
    assert d2 == pytest.approx([1.0, 1.0])


def test_inertia_zero_at_points():
    xyz = np.array([[1.0, 2, 3], [4.0, 5, 6]])
    assert inertia_of(xyz, xyz) == pytest.approx(0.0)


def test_reference_kmeans_recovers_halos():
    pts, labels = generate_points(2000, 4, seed=1, spread=1.0)
    xyz = as_xyz(pts)
    cents, inertia = reference_kmeans(xyz, 4, seed=0, max_iter=10)
    pred, _ = assign(xyz, cents)
    assert match_accuracy(pred, labels) > 0.9
    assert inertia > 0


def test_match_accuracy_bounds():
    truth = np.array([0, 0, 1, 1])
    assert match_accuracy(np.array([5, 5, 9, 9]), truth) == 1.0
    assert match_accuracy(np.array([5, 9, 5, 9]), truth) == 0.5


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    path = tmp_path_factory.mktemp("kmeans") / "pts.parquet"
    labels = write_parquet_points(str(path), 4000, 4, seed=11)
    return f"parquet://{path}", labels


def test_mm_kmeans_clusters_correctly(dataset):
    url, truth = dataset
    cluster = make_cluster()

    res = cluster.run(mm_kmeans, url, 4, 4)
    centroids, inertia = res.values[0]
    # All ranks agree on the result.
    for c, i in res.values[1:]:
        assert np.allclose(c, centroids)
        assert i == pytest.approx(inertia)
    pts, _ = generate_points(4000, 4, seed=11)
    pred, _ = assign(as_xyz(pts), centroids)
    assert match_accuracy(pred, truth) > 0.85
    assert res.runtime > 0


def test_mm_kmeans_inertia_matches_direct_computation(dataset):
    url, _ = dataset
    cluster = make_cluster()
    res = cluster.run(mm_kmeans, url, 4, 3)
    centroids, inertia = res.values[0]
    pts, _ = generate_points(4000, 4, seed=11)
    # The reported inertia is measured during the final assignment
    # pass (against pre-update centroids), so it upper-bounds the
    # post-update value and must sit within a few percent of it.
    final = inertia_of(as_xyz(pts), centroids)
    assert inertia >= final - 1e-6
    assert inertia == pytest.approx(final, rel=0.05)


def test_mm_kmeans_persists_assignments(dataset, tmp_path):
    url, truth = dataset
    cluster = make_cluster()
    assign_url = f"posix://{tmp_path}/assign.bin"
    res = cluster.run(mm_kmeans, url, 4, 3, 0, None, 3, assign_url)
    cluster.shutdown()
    labels = np.fromfile(tmp_path / "assign.bin", dtype=np.int32)
    assert len(labels) == 4000
    assert match_accuracy(labels, truth) > 0.85


def test_mm_kmeans_bounded_memory_still_correct(dataset):
    url, truth = dataset
    cluster = make_cluster()
    res = cluster.run(mm_kmeans, url, 4, 3, 0, 64 * 1024)  # 8 pages
    centroids, _ = res.values[0]
    pts, _ = generate_points(4000, 4, seed=11)
    pred, _ = assign(as_xyz(pts), centroids)
    assert match_accuracy(pred, truth) > 0.8


def test_spark_kmeans_clusters_correctly(dataset):
    url, truth = dataset
    cluster = make_cluster()
    res = cluster.run_driver(spark_kmeans(cluster, url, 4, 4))
    centroids, inertia = res.values[0]
    pts, _ = generate_points(4000, 4, seed=11)
    pred, _ = assign(as_xyz(pts), centroids)
    assert match_accuracy(pred, truth) > 0.85


def test_spark_uses_more_dram_than_megammap(tmp_path):
    """The Fig. 5 memory claim: Spark materializes several copies of
    the dataset; MegaMmap's caches are bounded."""
    path = tmp_path / "big.parquet"
    write_parquet_points(str(path), 50_000, 4, seed=4)
    url = f"parquet://{path}"
    c1 = make_cluster()
    mm_res = c1.run(mm_kmeans, url, 4, 2, 0, 64 * 1024)
    c2 = make_cluster()
    sp_res = c2.run_driver(spark_kmeans(c2, url, 4, 2))
    assert sp_res.peak_dram_total > 1.5 * mm_res.peak_dram_total


def test_spark_is_slower_than_megammap(tmp_path):
    """Fig. 5's compute-dominated regime (the paper runs 2 GB/node,
    entirely in memory): Spark's JVM factor, extra materialization
    stages, and TCP shuffles make it slower than MegaMmap."""
    path = tmp_path / "big.parquet"
    write_parquet_points(str(path), 200_000, 4, seed=4)
    url = f"parquet://{path}"
    c1 = make_cluster()
    mm_res = c1.run(mm_kmeans, url, 4, 4)
    c2 = make_cluster()
    sp_res = c2.run_driver(spark_kmeans(c2, url, 4, 4))
    assert sp_res.runtime > mm_res.runtime
