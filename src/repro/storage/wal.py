"""Write-ahead intent log for the durable scache tier.

One :class:`WriteAheadLog` lives per node on the node's fastest
*durable* tier (:meth:`~repro.storage.dmsh.DMSH.fastest_durable`:
PMEM before NVMe before SSD before HDD). The durability protocol is
the classic redo-log + checkpoint pair:

* **Staging** (volatile): every acknowledged scache write registers a
  page-sized *intent* — the latest bytes of that page — in a DRAM-side
  buffer. Intents cost nothing until a barrier; a node crash discards
  them (they were never promised durable).
* **Barrier commit** (durable, failure-atomic): at a transaction
  barrier (``Vector.flush``), the staged intents are serialized as
  :class:`WalRecord` entries, the append is paid as one timed write on
  the durable device, and then — with *no* simulated yield in between
  — the records are attached and the commit marker (``committed_seq``)
  is advanced. A crash therefore observes either the whole barrier or
  none of it; a torn log cannot exist in the model, which is exactly
  the guarantee a real implementation gets from a checksummed commit
  record.
* **Snapshot** (durable, failure-atomic): every ``snapshot_every``
  barriers the log is folded into a :class:`WalSnapshot` — the
  ``mem_map`` image of the latest committed version of every logged
  page. The new image is written in full (timed), then swapped in and
  the log truncated atomically (no yield), bounding replay time: RTO
  scales with ``snapshot + tail-of-log``, not with history.
* **Replay** (pure): :meth:`replay` folds snapshot + committed records
  in sequence order into a ``{(vector, page): (bytes, crc)}`` image.
  Folding is idempotent — replaying twice yields the identical image —
  which is what makes crash-during-recovery safe.

Capacity is accounted on the host device with ``reserve`` /
``unreserve`` (not blobs), so a crash that wipes the device's blob
store leaves the log bytes intact — the point of a durable tier.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.storage.device import Device, DeviceFullError

#: Modelled serialization overhead: per-record header (seq, vector
#: name ref, page, length, CRC) and the barrier commit marker.
RECORD_HEADER = 32
COMMIT_MARKER = 16
#: Snapshot framing: image header plus a per-page entry header.
SNAPSHOT_HEADER = 64


@dataclass(frozen=True)
class WalRecord:
    """One committed page intent."""

    seq: int        # barrier sequence number that committed it
    vector: str
    page: int
    data: bytes
    crc: int

    @property
    def nbytes(self) -> int:
        return RECORD_HEADER + len(self.data)


@dataclass
class WalSnapshot:
    """Folded ``mem_map`` image of every page committed so far.

    ``pages`` maps ``(vector, page)`` to ``(bytes, crc, seq)`` where
    ``seq`` is the barrier that committed those bytes — kept per page
    (not just per image) so recovery can arbitrate between copies of a
    page whose primary migrated across nodes over its lifetime.
    """

    seq: int = 0
    pages: Dict[Tuple[str, int], Tuple[bytes, int, int]] = None

    def __post_init__(self):
        if self.pages is None:
            self.pages = {}

    @property
    def nbytes(self) -> int:
        return SNAPSHOT_HEADER + sum(
            RECORD_HEADER + len(d) for d, _crc, _seq in
            self.pages.values())


class WriteAheadLog:
    """Per-node durable intent log + snapshot on one durable device."""

    def __init__(self, device: Device, node_id: int,
                 snapshot_every: int = 8):
        self.device = device
        self.node_id = node_id
        self.snapshot_every = max(1, int(snapshot_every))
        #: Volatile staged intents: latest shipped bytes per page.
        self.staged: Dict[Tuple[str, int], bytes] = {}
        #: Committed (durable) records since the last snapshot.
        self.records: List[WalRecord] = []
        self.snapshot = WalSnapshot()
        self.committed_seq = 0
        self.barriers = 0
        self._reserved = 0  # durable bytes accounted on the device
        self._log_markers = 0  # commit-marker bytes in the live log
        # The empty image occupies its header from the start, so the
        # snapshot-swap accounting (release old, keep new) balances.
        self._grow(self.snapshot.nbytes)

    # -- sizes -----------------------------------------------------------
    @property
    def log_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    @property
    def durable_bytes(self) -> int:
        """Bytes a recovery must scan: snapshot + tail of the log."""
        return self.snapshot.nbytes + self.log_bytes

    # -- staging (volatile) ----------------------------------------------
    def stage(self, vector: str, page: int, data) -> None:
        """Register the latest shipped bytes of a page as an intent.
        Untimed: staging is a host-memory bookkeeping step."""
        self.staged[(vector, page)] = bytes(data)

    def discard(self, vector: str, page: int) -> None:
        self.staged.pop((vector, page), None)

    def crash(self) -> None:
        """Node crash: volatile intents are lost; committed records and
        the snapshot (durable medium) survive."""
        self.staged.clear()

    # -- barrier commit (durable, failure-atomic) ------------------------
    def commit_barrier(self, seq: int):
        """Commit every staged intent under barrier ``seq``.

        Generator. The payload capture happens synchronously at entry
        and the records+marker flip happens with no yield after the
        timed append — the failure-atomicity of the commit protocol.
        """
        entries = [(key, data) for key, data in self.staged.items()]
        new = [WalRecord(seq=seq, vector=v, page=p, data=d,
                         crc=zlib.crc32(d))
               for (v, p), d in entries]
        nbytes = COMMIT_MARKER + sum(r.nbytes for r in new)
        try:
            self._grow(nbytes)
        except DeviceFullError:
            # Fold the log into the snapshot to free space, then retry.
            yield from self.write_snapshot()
            self._grow(nbytes)
        yield from self.device.charge(nbytes, write=True)
        # -- durability point: no yield between here and return --------
        self.records.extend(new)
        self.committed_seq = seq
        self.staged.clear()
        self.barriers += 1
        self._log_markers += COMMIT_MARKER
        if self.barriers % self.snapshot_every == 0 and self.records:
            yield from self.write_snapshot()

    def write_snapshot(self):
        """Fold committed records into a fresh failure-atomic image.

        The new image is fully written (timed) *before* the old
        snapshot and the log are released — at no instant is there
        less durable state than the last committed barrier.
        """
        image = dict(self.snapshot.pages)
        for rec in self.records:
            image[(rec.vector, rec.page)] = (rec.data, rec.crc, rec.seq)
        new = WalSnapshot(seq=self.committed_seq, pages=image)
        self._grow(new.nbytes)
        yield from self.device.charge(new.nbytes, write=True)
        # -- atomic swap: no yield ------------------------------------
        release = self.snapshot.nbytes + self.log_bytes \
            + self._log_markers
        self.snapshot = new
        self.records = []
        self._log_markers = 0
        self._shrink(release)

    # -- replay (pure) ---------------------------------------------------
    def replay(self) -> Dict[Tuple[str, int], Tuple[bytes, int, int]]:
        """Fold snapshot + log into the recovered image. Pure and
        idempotent: calling it any number of times yields the same
        image; it never mutates the log."""
        image = dict(self.snapshot.pages)
        for rec in sorted(self.records, key=lambda r: r.seq):
            image[(rec.vector, rec.page)] = (rec.data, rec.crc, rec.seq)
        return image

    def lookup(self, vector: str, page: int
               ) -> Optional[Tuple[bytes, int, int]]:
        """Latest *committed* ``(bytes, crc, seq)`` of one page, or
        None. Chooses by barrier seq, not log position, so concurrent
        barriers whose appends interleaved still resolve correctly."""
        hit = self.snapshot.pages.get((vector, page))
        for rec in self.records:
            if rec.vector == vector and rec.page == page \
                    and (hit is None or rec.seq >= hit[2]):
                hit = (rec.data, rec.crc, rec.seq)
        return hit

    def covers(self, vector: str, page: int) -> bool:
        """True when the latest shipped bytes of the page are durable:
        a committed record (or snapshot entry) exists and no newer
        intent is still staged (uncommitted)."""
        if (vector, page) in self.staged:
            return False
        return self.lookup(vector, page) is not None

    # -- capacity accounting ---------------------------------------------
    def _grow(self, nbytes: int) -> None:
        self.device.reserve(nbytes, strict=True)
        self._reserved += nbytes

    def _shrink(self, nbytes: int) -> None:
        self.device.unreserve(nbytes)
        self._reserved -= nbytes
