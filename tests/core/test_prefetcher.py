"""Direct unit tests of Algorithm 1 (the prefetcher's scoring)."""

import numpy as np
import pytest

from repro.core import MM_READ_ONLY, MM_WRITE_ONLY, RandTx, SeqTx
from tests.core.conftest import build_system, run_procs

PAGE = 4096
EPP = PAGE // 4  # int32 elements per page


def _vector_with_tx(sim, system, size, budget_pages, tx):
    client = system.client(rank=0, node=0)
    holder = {}

    def app():
        vec = yield from client.vector("v", dtype=np.int32, size=size)
        vec.bound_memory(budget_pages * PAGE)
        tx.bind(vec)
        vec.tx = tx
        holder["vec"] = vec

    run_procs(sim, app())
    return holder["vec"]


def test_evict_scores_zero_for_touched_one_for_upcoming(dsm):
    sim, system = dsm
    tx = SeqTx(0, 16 * EPP, MM_READ_ONLY)
    vec = _vector_with_tx(sim, system, 16 * EPP, budget_pages=4, tx=tx)
    tx.advance(2 * EPP)  # pages 0-1 touched
    scores = vec.prefetcher._evict_scores(tx)
    assert scores[0] == 0.0 and scores[1] == 0.0
    # The next pcache-window pages (2..5 for a 4-page budget) get 1.0.
    for p in (2, 3, 4, 5):
        assert scores[p] == 1.0


def test_rand_tx_retouched_pages_not_evicted(dsm):
    """Algorithm 1's note: 'The scores between Tx.Head and Tx.Tail may
    not be 0 if a page is expected to be retouched.'"""
    sim, system = dsm
    tx = RandTx(0, 8 * EPP, seed=3, flags=MM_READ_ONLY)
    vec = _vector_with_tx(sim, system, 8 * EPP, budget_pages=8, tx=tx)
    tx.advance(EPP // 2)  # half a page into the first visited page
    scores = vec.prefetcher._evict_scores(tx)
    first_page = tx.get_pages(0, 1)[0].page_idx
    # The page is mid-visit: the future window revisits it -> score 1.
    assert scores[first_page] == 1.0


def test_horizon_scores_decay_below_min_score(dsm):
    sim, system = dsm
    tx = SeqTx(0, 64 * EPP, MM_READ_ONLY)
    vec = _vector_with_tx(sim, system, 64 * EPP, budget_pages=2, tx=tx)
    scores = vec.prefetcher._prefetch_scores(tx)
    min_score = system.config.min_score
    vals = [v for v in scores.values() if v < 1.0]
    assert vals, "expected a scored horizon beyond the free window"
    # Decaying, bounded sequence: all in (min_score_epsilon, 1).
    assert all(0.0 < v <= 1.0 for v in vals)
    assert min(vals) <= max(min_score * 1.5, 0.5)


def test_scores_propagate_node_id(dsm):
    sim, system = dsm
    captured = []
    orig = system.organizer.ingest

    def spy(vec, scores):
        captured.extend(scores)
        return orig(vec, scores)

    system.organizer.ingest = spy
    client = system.client(rank=0, node=1)

    def app():
        vec = yield from client.vector("w", dtype=np.int32,
                                       size=8 * EPP)
        vec.bound_memory(2 * PAGE)
        yield from vec.tx_begin(SeqTx(0, 8 * EPP, MM_READ_ONLY))
        while True:
            chunk = yield from vec.next_chunk()
            if chunk is None:
                break
        yield from vec.tx_end()
        yield from client.drain()
        yield sim.timeout(0.2)

    run_procs(sim, app())
    assert captured
    assert all(hint == 1 for _page, _score, hint in captured)


def test_prefetcher_acknowledges_head(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.int32,
                                       size=8 * EPP)
        tx = yield from vec.tx_begin(SeqTx(0, 8 * EPP, MM_READ_ONLY))
        c = yield from vec.next_chunk()
        c = yield from vec.next_chunk()
        # After the second chunk's acknowledgment ran, head caught up
        # to the first chunk's tail.
        assert tx.head >= EPP
        yield from vec.tx_end()

    run_procs(sim, app())


def test_read_ahead_bounded_by_free_budget_not_total(dsm):
    """Regression: ``_evict_scores`` sizes its retouch window from the
    *total* pcache budget; those score-1 pages max-merged into the
    apply step, which prefetched every one of them — consuming the
    space the evictions just freed for the synchronous access stream.
    Read-ahead must be bounded by the bytes actually free before the
    evictions run."""
    sim, system = dsm
    tx = SeqTx(0, 16 * EPP, MM_READ_ONLY)
    vec = _vector_with_tx(sim, system, 16 * EPP, budget_pages=4, tx=tx)

    def app():
        # Pages 0 and 1 resident (just touched) -> 2 of 4 budget pages
        # free when the acknowledgment fires.
        yield from vec.read_range(0, 2 * EPP)
        tx.advance(2 * EPP)
        yield from vec.prefetcher.on_advance(tx)
        return set(vec.frames)

    (resident,) = run_procs(sim, app())
    # Old behaviour admitted the whole retouch window {2, 3, 4, 5}
    # (4 pages — a full budget) because the evictions of 0 and 1 freed
    # space mid-apply. Only the 2 actually-free pages may be admitted.
    assert resident == {2, 3}


def test_disabled_prefetcher_still_acknowledges():
    sim, system = build_system(prefetch_enabled=False)
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("v", dtype=np.int32,
                                       size=4 * EPP)
        tx = yield from vec.tx_begin(SeqTx(0, 4 * EPP, MM_READ_ONLY))
        while True:
            chunk = yield from vec.next_chunk()
            if chunk is None:
                break
        assert tx.head == tx.tail == tx.count
        yield from vec.tx_end()

    run_procs(sim, app())
