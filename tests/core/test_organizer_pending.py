"""Regression test: DataOrganizer._pending must stay bounded.

Pre-fix, scores for pages that never materialize (speculative
prefetcher scores past the end of a stream) sat in ``_pending``
forever — every sweep re-walked them and the dict grew without bound
over a long run. Entries older than ``score_window`` must age out.
"""

import numpy as np

from repro.core import MM_WRITE_ONLY, SeqTx
from tests.core.conftest import build_system, run_procs


def test_pending_bounded_for_never_materializing_pages():
    sim, system = build_system(prefetch_enabled=False)
    org = system.organizer
    client = system.client(rank=0, node=0)
    window = system.config.score_window
    rounds = 60

    def app():
        vec = yield from client.vector("v", dtype=np.uint8,
                                       size=rounds * 4096)
        max_pending = 0
        for i in range(rounds):
            # A fresh page each round; none is ever written, so no
            # blob materializes and the sweep can never place it.
            org.ingest(vec.shared, [(i, 0.5, 0)])
            yield sim.timeout(window / 4)
            yield from org.sweep(0)
            max_pending = max(max_pending, len(org._pending))
        # Only entries younger than the window survive a sweep: the
        # dict tracks the window, not the run (pre-fix it reached
        # `rounds` here).
        assert max_pending <= int(window / (window / 4)) + 2, max_pending
        yield sim.timeout(2 * window)
        yield from org.sweep(0)
        return len(org._pending)

    (left,) = run_procs(sim, app())
    assert left == 0
    assert system.monitor.counter("organizer.expired") > 0


def test_fresh_scores_for_materialized_pages_still_apply():
    """Aging must not eat scores the sweep can act on right now."""
    sim, system = build_system(prefetch_enabled=False)
    org = system.organizer
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("m", dtype=np.uint8, size=4096)
        yield from vec.tx_begin(SeqTx(0, 4096, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.zeros(4096, dtype=np.uint8))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)      # page 0 materializes
        org.ingest(vec.shared, [(0, 1.0, 0)])
        assert ("m", 0) in org._pending
        yield from org.sweep(0)              # fresh: swept, not expired
        return ("m", 0) in org._pending

    (still_pending,) = run_procs(sim, app())
    assert not still_pending
