"""The simulated-cluster harness: nodes, fabric, PFS, MegaMmap, MPI.

:class:`SimCluster` builds the paper's testbed in miniature — a
compute rack of nodes each with a DMSH, a storage rack of PFS servers,
the 40 Gb/s fabric between them, a deployed MegaMmap runtime, and an
MPI world — and launches SPMD applications written as generator
functions ``app(ctx, *args)`` where ``ctx`` is an
:class:`AppContext`. Runtime, resource usage, and OOM behaviour are
recorded per run (the role jarvis-cd + pymonitor play in the paper's
artifact).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.core.config import MegaMmapConfig
from repro.core.client import MegaMmapClient
from repro.core.system import MegaMmapSystem
from repro.mpi import Comm, MpiWorld
from repro.net.fabric import ETH_40G, LinkSpec, Network
from repro.sim import AllOf, Monitor, Simulator, rng_stream
from repro.storage.device import DeviceFullError, DeviceSpec
from repro.storage.dmsh import DMSH
from repro.storage.pfs import ParallelFS
from repro.storage.tiers import DRAM, HDD, MB, NVME, scaled


class OutOfMemoryError(RuntimeError):
    """A process exceeded its node's DRAM (the simulated OOM kill)."""


@dataclass
class ClusterSpec:
    """Shape of the simulated testbed.

    Defaults follow the paper's per-node hardware with capacities
    scaled GB -> MB (DESIGN.md, scaled units) and a modest process
    count for simulation tractability.
    """

    n_nodes: int = 4
    procs_per_node: int = 4
    tiers: Sequence[DeviceSpec] = field(default_factory=lambda: (
        scaled(DRAM, 48 * MB),
        scaled(NVME, 128 * MB),
    ))
    intra: LinkSpec = ETH_40G
    inter: Optional[LinkSpec] = None
    pfs_servers: int = 2
    pfs_spec: DeviceSpec = field(
        default_factory=lambda: scaled(HDD, 4096 * MB))
    pfs_stripe: int = MB
    config: MegaMmapConfig = field(default_factory=MegaMmapConfig)
    seed: int = 0
    #: Record latency spans (see :mod:`repro.sim.trace`); off by
    #: default — the tracer costs nothing when disabled.
    trace: bool = False

    @property
    def nprocs(self) -> int:
        return self.n_nodes * self.procs_per_node


@dataclass
class RunResult:
    """Outcome of one application run."""

    values: List[Any]
    runtime: float
    oom: bool
    peak_dram_node: float     # max over nodes of peak DRAM bytes
    peak_dram_total: float    # sum over nodes of peak DRAM bytes
    stats: dict

    @property
    def crashed(self) -> bool:
        return self.oom


class AppContext:
    """Everything one application process sees."""

    def __init__(self, cluster: "SimCluster", rank: int, comm: Comm,
                 mm: MegaMmapClient, nprocs: Optional[int] = None,
                 rng=None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.rank = rank
        # Colocated jobs see their own world size and rng stream, not
        # the cluster's — the defaults keep plain runs bit-identical.
        self.nprocs = cluster.spec.nprocs if nprocs is None else nprocs
        self.comm = comm
        self.node = comm.node
        self.mm = mm
        self.rng = rng if rng is not None \
            else rng_stream(cluster.spec.seed, "proc", rank)
        self._allocs = 0

    # -- compute charging ------------------------------------------------------
    def compute_bytes(self, nbytes: float, factor: float = 1.0):
        """Charge compute time for touching ``nbytes`` of data
        (generator). ``factor`` scales per-byte cost (heavier kernels,
        JVM overheads...)."""
        bw = self.cluster.spec.config.compute_bw
        yield self.sim.timeout(factor * nbytes / bw)

    def compute_seconds(self, seconds: float):
        yield self.sim.timeout(seconds)

    # -- explicit memory accounting (baselines) -----------------------------------
    def alloc(self, nbytes: int) -> int:
        """Reserve working DRAM; raises :class:`OutOfMemoryError` when
        the node's memory is exhausted (the Linux OOM kill of paper
        IV-B2)."""
        dram = self.cluster.dmshs[self.node].tiers[0]
        try:
            dram.reserve(int(nbytes), strict=True)
        except DeviceFullError as exc:
            raise OutOfMemoryError(str(exc)) from exc
        self._allocs += int(nbytes)
        return int(nbytes)

    def free(self, nbytes: int) -> None:
        dram = self.cluster.dmshs[self.node].tiers[0]
        dram.unreserve(int(nbytes))
        self._allocs -= int(nbytes)

    def free_all(self) -> None:
        if self._allocs:
            self.free(self._allocs)

    def barrier(self):
        return self.comm.barrier()


class SimCluster:
    """One simulated deployment; reusable across several app runs."""

    def __init__(self, spec: Optional[ClusterSpec] = None, **kwargs):
        if spec is None:
            spec = ClusterSpec(**kwargs)
        elif kwargs:
            raise TypeError("pass either a spec or keyword overrides")
        self.spec = spec
        self.sim = Simulator()
        self.monitor = Monitor(self.sim)
        total_nodes = spec.n_nodes + spec.pfs_servers
        self.network = Network(
            self.sim, total_nodes, intra=spec.intra, inter=spec.inter,
            rack_size=spec.n_nodes, monitor=self.monitor)
        self.dmshs = [
            DMSH(self.sim, spec.tiers, node_id=i, monitor=self.monitor)
            for i in range(spec.n_nodes)
        ]
        self.pfs = None
        if spec.pfs_servers > 0:
            self.pfs = ParallelFS(
                self.sim, self.network,
                server_nodes=list(range(spec.n_nodes, total_nodes)),
                server_spec=spec.pfs_spec, stripe_size=spec.pfs_stripe,
                monitor=self.monitor)
        self.system = MegaMmapSystem(
            self.sim, self.network, self.dmshs, config=spec.config,
            pfs=self.pfs, monitor=self.monitor)
        self.tracer = self.system.tracer
        self.tracer.enabled = spec.trace
        rank_to_node = [r // spec.procs_per_node
                        for r in range(spec.nprocs)]
        self.world = MpiWorld(self.sim, self.network, rank_to_node)

    # -- running applications ------------------------------------------------------
    def contexts(self) -> List[AppContext]:
        out = []
        for rank in range(self.spec.nprocs):
            comm = self.world.comm(rank)
            mm = self.system.client(rank, comm.node)
            out.append(AppContext(self, rank, comm, mm))
        return out

    def run(self, app: Callable, *args, allow_oom: bool = False,
            quiesce: bool = True) -> RunResult:
        """Launch ``app(ctx, *args)`` on every rank and run to
        completion."""
        ctxs = self.contexts()
        procs = [self.sim.process(app(ctx, *args), name=f"rank{ctx.rank}")
                 for ctx in ctxs]
        t0 = self.sim.now
        mark = {dev.name: dev.spec.kind == "dram" and dev.used
                for dmsh in self.dmshs for dev in dmsh}
        oom = False
        values: List[Any] = []
        try:
            values = self.sim.run(until=AllOf(self.sim, procs))
        except OutOfMemoryError:
            oom = True
            if not allow_oom:
                raise
        if not oom and quiesce:
            self.sim.run(until=self.sim.process(
                self.system.quiesce(), name="quiesce"))
        runtime = self.sim.now - t0
        peaks = [self.monitor.peak(f"{dmsh.tiers[0].name}.used")
                 for dmsh in self.dmshs]
        return RunResult(
            values=values, runtime=runtime, oom=oom,
            peak_dram_node=max(peaks, default=0.0),
            peak_dram_total=sum(peaks),
            stats=self.system.stats())

    def run_driver(self, gen, quiesce: bool = True) -> RunResult:
        """Run a single driver-style generator (Spark jobs) to
        completion."""
        t0 = self.sim.now
        proc = self.sim.process(gen, name="driver")
        value = self.sim.run(until=proc)
        if quiesce:
            self.sim.run(until=self.sim.process(
                self.system.quiesce(), name="quiesce"))
        peaks = [self.monitor.peak(f"{dmsh.tiers[0].name}.used")
                 for dmsh in self.dmshs]
        return RunResult(
            values=[value], runtime=self.sim.now - t0, oom=False,
            peak_dram_node=max(peaks, default=0.0),
            peak_dram_total=sum(peaks),
            stats=self.system.stats())

    def shutdown(self) -> None:
        """Drain and persist everything (end of the job)."""
        self.sim.run(until=self.sim.process(self.system.shutdown(),
                                            name="shutdown"))

    def export_trace(self, path: str) -> str:
        """Write recorded spans as Chrome-trace-format JSON (load in
        ``chrome://tracing`` / Perfetto); returns ``path``."""
        return self.tracer.export_chrome(path)

    # -- introspection --------------------------------------------------------------
    def hardware_cost(self) -> float:
        """$ of the per-node DMSH composition × node count (Fig. 7)."""
        return sum(d.hardware_cost() for d in self.dmshs)

    def describe_tiers(self) -> str:
        return self.dmshs[0].describe() if self.dmshs else ""
