"""CLI: run pipeline workflow files against the simulated cluster.

    python -m repro run pipelines/mm_kmeans_mega.yaml [--workdir DIR]
    python -m repro trace pipelines/mm_kmeans_mega.yaml [--out T.json]
    python -m repro report <pipeline.yaml | trace.json> [--json]
    python -m repro diff A.trace.json B.trace.json [--json]
    python -m repro chaos pipelines/chaos_kmeans_2n.yaml --seeds 25
    python -m repro colocate pipelines/colocate_mixed.yaml

Mirrors the artifact's ``jarvis ppl run yaml /path/to/workflow.yaml``;
the ``trace`` subcommand additionally records latency spans and writes
a Chrome-trace-format JSON timeline (load in ``chrome://tracing`` or
Perfetto). ``report`` analyzes where the time went — critical-path
breakdown, overlap ratio, top spans, queueing stats — either live (run
a pipeline with tracing on) or post-hoc (from a trace JSON file).
``diff`` aligns two trace files by span category and reports which
categories account for the runtime delta. ``chaos`` runs seeded
fault-injection campaigns with the coherence model-checker attached,
shrinks the first failing seed's fault schedule to a minimal repro,
and writes a replay file. The bare form ``python -m repro <file.yaml>``
is kept as an alias for ``run``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from repro.pipeline import run_pipeline

_SUBCOMMANDS = ("run", "trace", "report", "diff", "chaos", "colocate")


def _print_rows(rows) -> None:
    cols = list(rows[0])
    print("  ".join(cols))
    for row in rows:
        print("  ".join(
            f"{row[c]:.4f}" if isinstance(row[c], float) else str(row[c])
            for c in cols))


def _is_trace_file(path: str) -> bool:
    """A JSON file is a trace; anything else is a pipeline YAML."""
    if not path.endswith(".json"):
        return False
    try:
        with open(path, encoding="utf-8") as fh:
            head = fh.read(512).lstrip()
    except OSError:
        return False
    return head.startswith("{") or head.startswith("[")


def _analyze_trace_file(path: str, top_k: int):
    from repro.obs import analyze, load_trace
    return analyze(load_trace(path), top_k=top_k)


def _cmd_report(args) -> int:
    from repro.obs import SpanGraph, analyze, render_report
    analyses = []  # (title, analysis)
    if _is_trace_file(args.target):
        analyses.append((os.path.basename(args.target),
                         _analyze_trace_file(args.target, args.top)))
    else:
        workdir = args.workdir or tempfile.mkdtemp(prefix="megammap-ppl-")
        trace_path = os.path.abspath(os.path.join(workdir, "trace.json"))

        def on_variant(cluster, variant, row):
            graph = SpanGraph.from_tracer(cluster.tracer)
            analyses.append((row.get("app", "run"),
                             analyze(graph, monitor=cluster.monitor,
                                     top_k=args.top)))

        run_rows = run_pipeline(args.target, workdir=workdir,
                                trace_path=trace_path,
                                on_variant=on_variant)
        if not run_rows:
            print("pipeline produced no rows", file=sys.stderr)
            return 1
    if not analyses:
        print("no spans recorded — nothing to report", file=sys.stderr)
        return 1
    if args.out:
        payload = [a for _, a in analyses]
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload[0] if len(payload) == 1 else payload,
                      fh, indent=2)
        print(f"report JSON written to {os.path.abspath(args.out)}",
              file=sys.stderr)
    if args.json:
        payload = [a for _, a in analyses]
        print(json.dumps(payload[0] if len(payload) == 1 else payload,
                         indent=2))
    else:
        for i, (title, analysis) in enumerate(analyses):
            if i:
                print()
            print(render_report(analysis, title=title))
    return 0


def _cmd_diff(args) -> int:
    from repro.obs import diff_analyses, render_diff
    for path in (args.a, args.b):
        if not _is_trace_file(path):
            print(f"error: {path} is not a trace/report JSON file",
                  file=sys.stderr)
            return 2

    def load_analysis(path):
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        if isinstance(data, dict) and "critical_path" in data:
            return data  # already an analysis (repro report --out)
        return _analyze_trace_file(path, top_k=5)

    diff = diff_analyses(load_analysis(args.a), load_analysis(args.b))
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(render_diff(diff, label_a=os.path.basename(args.a),
                          label_b=os.path.basename(args.b)))
    return 0


def _cmd_chaos(args) -> int:
    from repro.chaos import ChaosPlan
    from repro.chaos.campaign import (run_campaign, run_case,
                                      shrink_case, write_replay)
    workdir = args.workdir or tempfile.mkdtemp(prefix="megammap-chaos-")
    if args.faults is not None:
        kinds = tuple(k.strip() for k in args.faults.split(",")
                      if k.strip())
    elif args.durability:
        # Durability campaigns are crash campaigns: the clause under
        # test is committed-barrier survival across crash+restart.
        kinds = ("crash",)
    else:
        kinds = ("crash", "partition", "delay", "drop", "stall",
                 "corrupt")

    def log(msg):
        print(msg, flush=True)

    if args.durability:
        from repro.core.config import load_yaml_subset
        with open(args.pipeline, encoding="utf-8") as fh:
            spec = load_yaml_subset(fh.read())
        cluster_cfg = (spec or {}).get("cluster") or {}
        if not cluster_cfg.get("durability"):
            print(f"error: --durability needs the pipeline to declare "
                  f"'durability: true' in its cluster section "
                  f"({args.pipeline} does not)", file=sys.stderr)
            return 2

    if args.replay:
        plan = ChaosPlan.from_json(args.replay)
        res = run_case(args.pipeline, plan.seed, horizon=plan.horizon,
                       plan=plan, workdir=workdir)
        log(res.summary())
        for v in res.violations[:10]:
            log(f"  violation: {v}")
        for c in res.conservation[:10]:
            log(f"  conservation: {c}")
        return 0 if res.ok else 1

    seeds = range(args.seed_base, args.seed_base + args.seeds)
    results = run_campaign(args.pipeline, seeds, kinds=kinds,
                           intensity=args.intensity,
                           perturb=args.perturb,
                           horizon=args.horizon, workdir=workdir,
                           log=log)
    bad = [r for r in results if not r.ok]
    log(f"campaign: {len(results) - len(bad)}/{len(results)} seeds "
        f"clean")
    if not bad:
        return 0
    first = bad[0]
    for v in first.violations[:10]:
        log(f"  violation: {v}")
    for c in first.conservation[:10]:
        log(f"  conservation: {c}")
    minimal = None
    if first.plan is not None and len(first.plan.faults) > 1:
        log(f"shrinking seed {first.seed} "
            f"({len(first.plan.faults)} faults)...")
        minimal, keep = shrink_case(args.pipeline, first,
                                    workdir=workdir, log=log)
        log(f"minimal repro: faults {keep} of seed {first.seed}")
        for f in minimal.faults:
            log(f"  {f}")
    out = args.out or os.path.join(workdir,
                                   f"chaos-replay-{first.seed}.json")
    write_replay(out, first, minimal)
    log(f"replay file written to {os.path.abspath(out)}")
    return 1


def _cmd_colocate(args) -> int:
    from repro.tenancy import run_colocation
    workdir = args.workdir or tempfile.mkdtemp(prefix="megammap-colo-")
    result = run_colocation(args.spec, workdir=workdir)
    if not result.rows:
        print("colocation produced no rows", file=sys.stderr)
        return 1
    _print_rows(result.rows)
    ok = [r for r in result.rows if r["status"] == "ok"]
    print(f"\n{len(ok)}/{len(result.rows)} jobs completed in "
          f"{result.makespan:.3f}s simulated "
          f"({len(result.decisions)} scheduler decisions)")
    if args.decisions:
        for d in result.decisions:
            print("  " + json.dumps(d))
    rates = [1.0 / r["service_s"] for r in ok if r["service_s"]]
    if len(rates) > 1:
        jain = (sum(rates) ** 2) / (len(rates) * sum(x * x
                                                     for x in rates))
        print(f"Jain fairness index over per-job service rates: "
              f"{jain:.4f}")
    print(f"stats written to {workdir}/", flush=True)
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `python -m repro file.yaml` means `run file.yaml`.
    if argv and argv[0] not in _SUBCOMMANDS \
            and argv[0] not in ("-h", "--help"):
        argv.insert(0, "run")
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a MegaMmap workflow pipeline (Jarvis-style).")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", help="execute a pipeline and print its stats rows")
    p_run.add_argument("pipeline", help="path to a workflow YAML file")
    p_run.add_argument("--workdir", default=None,
                       help="directory for datasets + stats_dict.csv "
                            "(default: a fresh temp directory)")

    p_trace = sub.add_parser(
        "trace",
        help="execute a pipeline with span tracing enabled and write "
             "a Chrome-trace-format JSON timeline")
    p_trace.add_argument("pipeline", help="path to a workflow YAML file")
    p_trace.add_argument("--workdir", default=None,
                         help="directory for datasets + stats (default: "
                              "a fresh temp directory)")
    p_trace.add_argument("--out", default=None,
                         help="trace JSON path (default: "
                              "<workdir>/trace.json)")

    p_report = sub.add_parser(
        "report",
        help="critical-path triage report: pass a pipeline YAML (runs "
             "it traced) or an existing trace JSON")
    p_report.add_argument("target",
                          help="pipeline YAML or Chrome-trace JSON")
    p_report.add_argument("--workdir", default=None,
                          help="workdir when running a pipeline")
    p_report.add_argument("--top", type=int, default=10,
                          help="number of top spans to list")
    p_report.add_argument("--out", default=None,
                          help="also write the analysis as JSON here")
    p_report.add_argument("--json", action="store_true",
                          help="print the analysis as JSON")

    p_diff = sub.add_parser(
        "diff",
        help="compare two runs: which span categories account for the "
             "runtime delta")
    p_diff.add_argument("a", help="baseline trace/report JSON")
    p_diff.add_argument("b", help="comparison trace/report JSON")
    p_diff.add_argument("--json", action="store_true",
                        help="print the diff as JSON")

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaign with the coherence "
             "model-checker; shrinks and persists failing schedules")
    p_chaos.add_argument("pipeline", help="path to a workflow YAML file")
    p_chaos.add_argument("--seeds", type=int, default=25,
                         help="number of seeded cases to run")
    p_chaos.add_argument("--seed-base", type=int, default=0,
                         help="first seed (cases use seed-base..+seeds)")
    p_chaos.add_argument("--faults", default=None,
                         help="comma-separated fault kinds to inject "
                              "(default: all kinds, or just 'crash' "
                              "with --durability)")
    p_chaos.add_argument("--durability", action="store_true",
                         help="durability campaign: require the "
                              "pipeline's durable mode, inject "
                              "crash+restart faults, and hold reads "
                              "to the committed-barrier clause (no "
                              "crash excuse for flushed bytes)")
    p_chaos.add_argument("--intensity", type=float, default=1.0,
                         help="expected-fault-count multiplier")
    p_chaos.add_argument("--horizon", type=float, default=None,
                         help="fault window in simulated seconds "
                              "(default: measured by a fault-free "
                              "probe run)")
    p_chaos.add_argument("--perturb", action="store_true",
                         help="also randomize same-timestamp event "
                              "ordering (seeded)")
    p_chaos.add_argument("--workdir", default=None,
                         help="directory for datasets + replay files")
    p_chaos.add_argument("--out", default=None,
                         help="replay-file path for a failing seed")
    p_chaos.add_argument("--replay", default=None,
                         help="replay-file path to re-run instead of "
                              "a seeded campaign")

    p_colo = sub.add_parser(
        "colocate",
        help="run N jobs as tenants of one shared deployment with "
             "per-tenant quotas, admission control and fast-memory "
             "reallocation")
    p_colo.add_argument("spec", help="path to a colocation YAML spec")
    p_colo.add_argument("--workdir", default=None,
                        help="directory for datasets + "
                             "colocate_stats.csv (default: a fresh "
                             "temp directory)")
    p_colo.add_argument("--decisions", action="store_true",
                        help="also print the admission/reallocation "
                             "decision log")

    args = parser.parse_args(argv)
    if args.command == "diff":
        for path in (args.a, args.b):
            if not os.path.exists(path):
                print(f"error: file not found: {path}", file=sys.stderr)
                return 2
        return _cmd_diff(args)
    if args.command == "report":
        target = args.target
    elif args.command == "colocate":
        target = args.spec
    else:
        target = args.pipeline
    if not os.path.exists(target):
        print(f"error: file not found: {target}", file=sys.stderr)
        return 2
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "colocate":
        return _cmd_colocate(args)

    workdir = args.workdir or tempfile.mkdtemp(prefix="megammap-ppl-")
    trace_path = None
    if args.command == "trace":
        # Default the trace next to the run's stats inside the workdir
        # (never the CWD) and always resolve to an absolute path so the
        # printed location is unambiguous.
        trace_path = os.path.abspath(
            args.out or os.path.join(workdir, "trace.json"))
        os.makedirs(os.path.dirname(trace_path), exist_ok=True)
    rows = run_pipeline(args.pipeline, workdir=workdir,
                        trace_path=trace_path)
    if not rows:
        print("pipeline produced no rows", file=sys.stderr)
        return 1
    _print_rows(rows)
    print(f"\nstats written to {workdir}/", flush=True)
    if trace_path:
        # Sweeps write one trace per variant (<out>.<i>.json); report
        # the paths actually written, not the requested one.
        written = [r["trace_file"] for r in rows if r.get("trace_file")]
        for p in dict.fromkeys(written):
            print(f"trace written to {os.path.abspath(p)} "
                  f"(open in chrome://tracing or https://ui.perfetto.dev)",
                  flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
