"""Half-open integer interval sets — the dirty-byte tracking algebra.

Paper III-B (Lifecycle of Modified Data): "Since transactions store
the exact memory accesses made, only the bits of the page that were
modified during a transaction will be a part of the writer MemoryTask
operation. This reduces I/O amplification and improves data
correctness, since stale data will not be included."

:class:`IntervalSet` keeps a sorted list of disjoint ``[start, end)``
intervals with O(log n) insertion point lookup and merge-on-add.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Tuple


class IntervalSet:
    """A set of disjoint, sorted half-open intervals over the integers."""

    __slots__ = ("_ivs",)

    def __init__(self, intervals: Iterable[Tuple[int, int]] = ()):
        self._ivs: List[Tuple[int, int]] = []
        for start, end in intervals:
            self.add(start, end)

    def add(self, start: int, end: int) -> None:
        """Insert ``[start, end)``, merging with overlapping/adjacent
        intervals."""
        if start > end:
            raise ValueError(f"start {start} > end {end}")
        if start == end:
            return
        ivs = self._ivs
        # Find all intervals that overlap or touch [start, end).
        lo = bisect.bisect_left(ivs, (start, start)) if ivs else 0
        # Step back once: the previous interval may reach into start.
        if lo > 0 and ivs[lo - 1][1] >= start:
            lo -= 1
        hi = lo
        while hi < len(ivs) and ivs[hi][0] <= end:
            start = min(start, ivs[hi][0])
            end = max(end, ivs[hi][1])
            hi += 1
        ivs[lo:hi] = [(start, end)]

    def remove(self, start: int, end: int) -> None:
        """Delete ``[start, end)`` from the set (splitting as needed)."""
        if start > end:
            raise ValueError(f"start {start} > end {end}")
        if start == end or not self._ivs:
            return
        out: List[Tuple[int, int]] = []
        for s, e in self._ivs:
            if e <= start or s >= end:
                out.append((s, e))
                continue
            if s < start:
                out.append((s, start))
            if e > end:
                out.append((end, e))
        self._ivs = out

    def clear(self) -> None:
        self._ivs.clear()

    def __iter__(self) -> Iterator[Tuple[int, int]]:
        return iter(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __bool__(self) -> bool:
        return bool(self._ivs)

    def __eq__(self, other) -> bool:
        if isinstance(other, IntervalSet):
            return self._ivs == other._ivs
        return NotImplemented

    def __contains__(self, point: int) -> bool:
        i = bisect.bisect_right(self._ivs, (point, float("inf")))
        return i > 0 and self._ivs[i - 1][0] <= point < self._ivs[i - 1][1]

    @property
    def total(self) -> int:
        """Sum of interval lengths (dirty byte count)."""
        return sum(e - s for s, e in self._ivs)

    @property
    def span(self) -> Tuple[int, int]:
        """(min start, max end), or (0, 0) when empty."""
        if not self._ivs:
            return (0, 0)
        return (self._ivs[0][0], self._ivs[-1][1])

    def overlaps(self, start: int, end: int) -> bool:
        if start >= end:  # an empty probe overlaps nothing
            return False
        i = bisect.bisect_left(self._ivs, (start, start))
        if i > 0 and self._ivs[i - 1][1] > start:
            return True
        return i < len(self._ivs) and self._ivs[i][0] < end

    def intersect(self, start: int, end: int) -> "IntervalSet":
        """New set clipped to ``[start, end)``."""
        out = IntervalSet()
        for s, e in self._ivs:
            s2, e2 = max(s, start), min(e, end)
            if s2 < e2:
                out.add(s2, e2)
        return out

    def copy(self) -> "IntervalSet":
        out = IntervalSet()
        out._ivs = list(self._ivs)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"IntervalSet({self._ivs})"
