#!/usr/bin/env python
"""Profile the simulation kernel's hot paths under cProfile.

Runs the same workloads ``benchmarks/bench_kernel.py`` times —
immediate-event churn through the microqueue fast path and the
two-node data-plane exchange through pcache/scache/net — but under
``cProfile``, printing the top cumulative hotspots so optimization
work starts from measurement, not guesswork.

Usage::

    PYTHONPATH=src python scripts/profile_kernel.py
    PYTHONPATH=src python scripts/profile_kernel.py --workload churn \
        --events 500000 --top 30
    PYTHONPATH=src python scripts/profile_kernel.py --pstats out.prof
    # then: python -m pstats out.prof   (or snakeviz, gprof2dot, ...)

The script has no dependencies beyond the repo itself and the stdlib.
"""

from __future__ import annotations

import argparse
import cProfile
import os
import pstats
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                "src"))

PAGE = 64 * 1024


def churn_workload(n_events: int) -> dict:
    """Immediate-event churn: every yield is already triggered.

    Mirrors ``bench_kernel._churn`` — the workload that exercises the
    microqueue + trampoline fast path exclusively.
    """
    from repro.sim.engine import Event, Simulator

    sim = Simulator()

    def proc():
        for _ in range(n_events):
            e = Event(sim)
            e.succeed()
            yield e

    sim.process(proc())
    sim.run()
    return {"fast_events": sim.fast_events, "heap_events": sim.heap_events}


def timer_workload(n_events: int) -> dict:
    """Heap/wheel-bound churn: every event carries a nonzero delay,
    half of them far enough out to land in the far-timer wheel."""
    from repro.sim.engine import Simulator

    sim = Simulator()

    def proc(delay):
        for _ in range(n_events // 2):
            yield sim.timeout(delay)

    sim.process(proc(1e-4))       # near: binary heap
    sim.process(proc(5e-3))       # far: numpy-backed timer wheel
    sim.run()
    return {"heap_events": sim.heap_events,
            "wheel_events": sim.wheel_events}


def exchange_workload(pages_per_rank: int) -> dict:
    """Two-node page exchange through the full data plane — the
    end-to-end loop ``bench_kernel.test_two_node_exchange_dataplane``
    measures (pcache faults, scache, hermes placement, net transfers).
    """
    import numpy as np

    from repro.core import MM_READ_WRITE, MM_WRITE_ONLY, SeqTx
    from benchmarks.common import testbed

    def app(ctx, n_pages):
        half = n_pages * PAGE
        vec = yield from ctx.mm.vector("profile", dtype=np.uint8,
                                       size=2 * half)
        lo = ctx.rank * half
        data = ((np.arange(half) + ctx.rank) % 199).astype(np.uint8)
        yield from vec.tx_begin(SeqTx(lo, half, MM_WRITE_ONLY))
        yield from vec.write_range(lo, data)
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        yield from ctx.barrier()
        other = (1 - ctx.rank) * half
        yield from vec.tx_begin(SeqTx(other, half, MM_READ_WRITE))
        out = yield from vec.read_range(other, half)
        yield from vec.tx_end()
        yield from ctx.mm.drain()
        return int(out.sum())

    cluster = testbed(n_nodes=2, procs_per_node=1,
                      pcache=(pages_per_rank + 4) * PAGE,
                      prefetch_enabled=False, trace=False)
    res = cluster.run(app, pages_per_rank)
    return {"faults": res.stats.get("pcache.faults", 0),
            "net_bytes": res.stats.get("net.bytes", 0)}


WORKLOADS = {
    "churn": lambda a: churn_workload(a.events),
    "timer": lambda a: timer_workload(a.events),
    "exchange": lambda a: exchange_workload(a.pages),
}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--workload", choices=(*WORKLOADS, "all"),
                    default="all",
                    help="which loop to profile (default: all)")
    ap.add_argument("--events", type=int, default=200_000,
                    help="event count for churn/timer (default 200k)")
    ap.add_argument("--pages", type=int, default=64,
                    help="pages per rank for exchange (default 64)")
    ap.add_argument("--top", type=int, default=20,
                    help="rows of the hotspot table (default 20)")
    ap.add_argument("--sort", default="cumulative",
                    choices=("cumulative", "tottime", "calls"),
                    help="pstats sort key (default cumulative)")
    ap.add_argument("--pstats", metavar="OUT.PROF", default=None,
                    help="also dump raw stats for snakeviz/pstats")
    args = ap.parse_args(argv)

    names = list(WORKLOADS) if args.workload == "all" else [args.workload]
    # Pull the heavy imports in before enabling the profiler so module
    # loading does not pollute the hotspot table.
    import numpy  # noqa: F401
    import repro.sim.engine  # noqa: F401
    import benchmarks.common  # noqa: F401

    profiler = cProfile.Profile()
    for name in names:
        print(f"--- profiling {name} ---")
        profiler.enable()
        result = WORKLOADS[name](args)
        profiler.disable()
        print(f"    {result}")

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort)
    print(f"\n=== top {args.top} by {args.sort} "
          f"({'+'.join(names)}) ===")
    stats.print_stats(args.top)

    if args.pstats:
        profiler.dump_stats(args.pstats)
        print(f"raw profile written to {args.pstats} "
              f"(open with: python -m pstats {args.pstats})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
