"""CI perf-gate tooling: floors, ceilings, --json, exit codes."""

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_perf_floor",
    os.path.join(os.path.dirname(__file__), os.pardir, "scripts",
                 "check_perf_floor.py"))
cpf = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(cpf)


@pytest.fixture()
def harness(tmp_path):
    """(results_dir, floors_path, emit, write_bounds) scratch gate."""
    results = tmp_path / "results"
    results.mkdir()
    floors = tmp_path / "perf_floor.json"

    def emit(name, metric, value, unit="x/s"):
        path = results / f"BENCH_{name}.json"
        records = json.loads(path.read_text()) if path.exists() else []
        records.append({"name": name, "metric": metric,
                        "value": value, "unit": unit,
                        "sim_config": {}})
        path.write_text(json.dumps(records))

    def write_bounds(floor_map, ceiling_map=None):
        doc = {"floors": floor_map}
        if ceiling_map is not None:
            doc["ceilings"] = ceiling_map
        floors.write_text(json.dumps(doc))

    return results, floors, emit, write_bounds


def _run(results, floors, *extra):
    return cpf.main(["--results", str(results),
                     "--floors", str(floors), *extra])


def test_floor_pass_and_fail(harness, capsys):
    results, floors, emit, write_bounds = harness
    write_bounds({"kernel.eps": 100.0})
    emit("kernel", "kernel.eps", 250.0)
    assert _run(results, floors) == 0
    emit("kernel", "kernel.eps", 50.0)  # latest record wins
    assert _run(results, floors) == 1
    err = capsys.readouterr().err
    assert "violates floor" in err


def test_ceiling_enforced_as_upper_bound(harness):
    results, floors, emit, write_bounds = harness
    write_bounds({}, {"obs.overhead_pct": 5.0})
    emit("obs", "obs.overhead_pct", 3.2, unit="%")
    assert _run(results, floors) == 0
    emit("obs", "obs.overhead_pct", 7.9, unit="%")
    assert _run(results, floors) == 1


def test_missing_record_fails(harness):
    results, floors, _emit, write_bounds = harness
    write_bounds({"kernel.eps": 100.0})
    assert _run(results, floors) == 1


def test_match_and_exclude_filter_both_families(harness):
    results, floors, emit, write_bounds = harness
    write_bounds({"kernel.eps": 100.0}, {"obs.overhead_pct": 5.0})
    emit("obs", "obs.overhead_pct", 2.0, unit="%")
    # --match obs: the failing kernel floor (no record) is skipped.
    assert _run(results, floors, "--match", "obs") == 0
    # --exclude kernel: same outcome.
    assert _run(results, floors, "--exclude", "kernel") == 0
    # Unfiltered: the kernel floor has no record and fails.
    assert _run(results, floors) == 1


def test_no_bounds_after_filter_errors(harness):
    results, floors, _emit, write_bounds = harness
    write_bounds({"kernel.eps": 100.0})
    assert _run(results, floors, "--match", "nosuch") == 1


def test_json_output_shape_and_exit_codes(harness, capsys):
    results, floors, emit, write_bounds = harness
    write_bounds({"kernel.eps": 100.0}, {"obs.overhead_pct": 5.0})
    emit("kernel", "kernel.eps", 250.0)
    emit("obs", "obs.overhead_pct", 6.5, unit="%")
    rc = _run(results, floors, "--json")
    out = capsys.readouterr().out
    doc = json.loads(out)  # stdout is pure JSON
    assert rc == 1
    assert doc["ok"] is False
    assert len(doc["failures"]) == 1
    assert "obs.overhead_pct" in doc["failures"][0]
    by_metric = {r["metric"]: r for r in doc["results"]}
    assert by_metric["kernel.eps"]["ok"] is True
    assert by_metric["kernel.eps"]["kind"] == "floor"
    assert by_metric["obs.overhead_pct"]["ok"] is False
    assert by_metric["obs.overhead_pct"]["kind"] == "ceiling"
    assert by_metric["obs.overhead_pct"]["bound"] == 5.0

    emit("obs", "obs.overhead_pct", 1.5, unit="%")
    rc = _run(results, floors, "--json")
    doc = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert doc["ok"] is True and doc["failures"] == []


def test_repo_floor_file_has_obs_ceiling():
    with open(cpf.DEFAULT_FLOORS, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["ceilings"]["obs.overhead_pct"] == 5.0
