"""Unit tests for the mini-Spark substrate."""

import numpy as np
import pytest

from repro.apps.datagen import POINT3D, write_parquet_points
from repro.spark.core import RDD, SparkOom, SparkSim
from tests.apps.conftest import make_cluster


def make_spark(**over):
    cluster = make_cluster(**over)
    return cluster, SparkSim(cluster)


def run(cluster, gen):
    return cluster.sim.run(until=cluster.sim.process(gen))


def test_parallelize_and_collect():
    cluster, spark = make_spark()
    rdd = spark.parallelize([np.arange(4), np.arange(4, 8)])

    def driver():
        parts = yield from rdd.collect()
        return np.concatenate(parts)

    out = run(cluster, driver())
    assert np.array_equal(out, np.arange(8))


def test_map_partitions_materializes_new_rdd():
    cluster, spark = make_spark()
    rdd = spark.parallelize([np.arange(4), np.arange(4)])

    def driver():
        doubled = yield from rdd.map_partitions(lambda a: a * 2)
        parts = yield from doubled.collect()
        return parts

    parts = run(cluster, driver())
    assert all(np.array_equal(p, np.arange(4) * 2) for p in parts)


def test_memory_amplification_parents_stay_resident():
    cluster, spark = make_spark()
    data = [np.zeros(1000, dtype=np.float64) for _ in range(2)]
    before = sum(d.tiers[0].used for d in cluster.dmshs)
    rdd = spark.parallelize(data)

    def driver():
        stage2 = yield from rdd.map_partitions(lambda a: a + 1)
        return stage2

    run(cluster, driver())
    after = sum(d.tiers[0].used for d in cluster.dmshs)
    # Two materialized copies x mem_factor (JVM overhead).
    assert after - before == pytest.approx(2 * 16000 * spark.mem_factor)


def test_unpersist_releases_memory():
    cluster, spark = make_spark()
    rdd = spark.parallelize([np.zeros(1000)])
    used = sum(d.tiers[0].used for d in cluster.dmshs)
    assert used > 0
    rdd.unpersist()
    rdd.unpersist()  # idempotent
    assert sum(d.tiers[0].used for d in cluster.dmshs) == 0


def test_executor_oom():
    cluster, spark = make_spark(dram_mb=1)
    with pytest.raises(SparkOom):
        spark.parallelize([np.zeros(1_000_000)])  # 8 MB > 1 MB DRAM


def test_tree_aggregate_sums_partitions():
    cluster, spark = make_spark()
    rdd = spark.parallelize([np.full(10, i, dtype=np.float64)
                             for i in range(4)])

    def driver():
        total = yield from rdd.tree_aggregate(
            lambda a: float(a.sum()), lambda x, y: x + y)
        return total

    assert run(cluster, driver()) == pytest.approx(10 * (0 + 1 + 2 + 3))


def test_read_records_loads_real_file(tmp_path):
    cluster, spark = make_spark()
    path = tmp_path / "pts.parquet"
    write_parquet_points(str(path), 1000, 2, seed=1)

    def driver():
        rdd = yield from spark.read_records(f"parquet://{path}", POINT3D)
        parts = yield from rdd.collect()
        return sum(len(p) for p in parts), rdd.n_partitions

    n, parts = run(cluster, driver())
    assert n == 1000
    assert parts == spark.partitions_per_node * spark.n_nodes


def test_broadcast_charges_tcp():
    cluster, spark = make_spark()
    before = cluster.network.bytes_moved

    def driver():
        yield from spark.broadcast(np.zeros(1000))

    run(cluster, driver())
    # One copy to every non-driver node.
    assert cluster.network.bytes_moved - before >= \
        (spark.n_nodes - 1) * 8000


def test_tcp_is_slower_than_fabric():
    cluster, spark = make_spark()
    t_tcp = spark.tcp.xfer_time(10 ** 6)
    t_fab = cluster.network.intra.xfer_time(10 ** 6)
    assert t_tcp > t_fab


def test_jvm_factor_scales_compute_time():
    cluster, spark = make_spark()
    rdd = spark.parallelize([np.zeros(100_000, dtype=np.float64)])

    def driver():
        t0 = cluster.sim.now
        yield from rdd.map_partitions(lambda a: a, factor=4.0)
        return cluster.sim.now - t0

    elapsed = run(cluster, driver())
    expected = spark.jvm_factor * 5.0 * 800_000 \
        / cluster.spec.config.compute_bw
    assert elapsed == pytest.approx(expected, rel=0.01)
