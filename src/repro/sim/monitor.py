"""Time-series statistics collection (the `pymonitor` stand-in).

The paper's artifact deploys a monitoring tool ("pymonitor") per node
producing time-series CSVs of CPU, network, and storage utilization,
which Jarvis aggregates into a ``stats_dict.csv``. :class:`Monitor`
plays that role: simulated components record gauges (bytes resident in
DRAM, device queue depth, ...) and counters (bytes read/written, page
faults), and the benchmark harness aggregates peaks/averages per run.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import Simulator


class TimeSeries:
    """A step-wise time series of (time, value) samples."""

    __slots__ = ("samples",)

    def __init__(self):
        self.samples: List[Tuple[float, float]] = []

    def record(self, t: float, value: float) -> None:
        if self.samples and t < self.samples[-1][0]:
            raise ValueError("samples must be recorded in time order")
        self.samples.append((t, value))

    @property
    def last(self) -> float:
        return self.samples[-1][1] if self.samples else 0.0

    @property
    def peak(self) -> float:
        return max((v for _, v in self.samples), default=0.0)

    @property
    def minimum(self) -> float:
        return min((v for _, v in self.samples), default=0.0)

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted average over ``[first sample, until)``,
        treating the series as a step function.

        An empty window (no samples, or ``until`` at or before the
        first sample) averages to 0.0; samples past ``until`` are
        clipped rather than counted.
        """
        if not self.samples:
            return 0.0
        end = until if until is not None else self.samples[-1][0]
        span = end - self.samples[0][0]
        if span <= 0:
            return 0.0
        total = 0.0
        for (t0, v0), (t1, _v1) in zip(self.samples, self.samples[1:]):
            if t0 >= end:
                break
            total += v0 * (min(t1, end) - t0)
        if self.samples[-1][0] < end:
            total += self.samples[-1][1] * (end - self.samples[-1][0])
        return total / span


class Gauge:
    """A named instantaneous quantity with add/sub convenience."""

    __slots__ = ("monitor", "name", "value", "series")

    def __init__(self, monitor: "Monitor", name: str):
        self.monitor = monitor
        self.name = name
        self.value = 0.0
        self.series = TimeSeries()

    def set(self, value: float) -> None:
        self.value = value
        self.series.record(self.monitor.sim.now, value)

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def sub(self, delta: float) -> None:
        self.set(self.value - delta)

    @property
    def peak(self) -> float:
        return self.series.peak

    def time_average(self) -> float:
        return self.series.time_average(until=self.monitor.sim.now)


class Monitor:
    """Registry of gauges and counters keyed by dotted names."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.gauges: Dict[str, Gauge] = {}
        self.counters: Dict[str, float] = {}
        #: Optional :class:`~repro.sim.trace.Tracer` whose per-category
        #: latency percentiles fold into :meth:`summary`.
        self.tracer = None

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(self, name)
        return self.gauges[name]

    def count(self, name: str, delta: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + delta

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def peak(self, name: str) -> float:
        g = self.gauges.get(name)
        return g.peak if g else 0.0

    def summary(self) -> Dict[str, float]:
        """Flat dict of counters plus per-gauge peak and time average,
        plus per-category trace latency percentiles when a tracer is
        attached and was enabled.

        ``kernel.*`` keys report host-side scheduling counters; they
        describe wall-clock behaviour, not simulated time, so
        equivalence comparisons between kernels should exclude them.
        """
        out: Dict[str, float] = dict(self.counters)
        for name, g in self.gauges.items():
            out[f"{name}.peak"] = g.peak
            avg = g.time_average()
            out[f"{name}.avg"] = avg if math.isfinite(avg) else 0.0
        sim = self.sim
        out["kernel.fast_events"] = float(sim.fast_events)
        out["kernel.heap_events"] = float(sim.heap_events)
        out["kernel.trampolines"] = float(sim.trampolines)
        if self.tracer is not None:
            out.update(self.tracer.latency_summary())
        return out
