"""Client-boundary history recording + coherence model-checking.

The :class:`HistoryRecorder` installs at ``system.history`` and
receives every client-boundary event the core emits: reads
(``read_range`` / read-only ``next_chunk``), buffered writes
(``write_range``), commits (dirty fragments shipped by ``flush`` /
``evict_page``), flush completions, appends, cache invalidations, and
RPC submissions. It folds each event into a running BLAKE2 *trace
hash* (the seed-replay determinism witness) and forwards the semantic
events to a :class:`CoherenceChecker`.

The checker maintains a **two-version byte model** per vector:

* ``pending[b]`` / ``pending_writer[b]`` — the last committed-but-
  unflushed value of byte ``b`` and the rank that wrote it;
* ``stable[b]`` — the last flushed (globally ordered) value;
* ``prev[b]`` / ``promote_t[b]`` — the value ``stable`` replaced and
  when, so bounded staleness can be told apart from data loss.

A read by rank ``r`` starting at time ``t0`` is legal for byte ``b``
iff one of:

1. it matches ``pending[b]`` (the writer committed it and per-page
   FIFO order at the owner makes it visible) — and when
   ``pending_writer[b] == r`` this clause is *mandatory*: a client
   must read its own committed writes (read-after-write);
2. it matches ``stable[b]``;
3. it matches ``prev[b]`` and either the promotion happened after
   ``r``'s freshness horizon (``r`` may still hold a legally stale
   cached frame) or a node crash occurred between the promotion and
   the read (failover to a surviving replica legitimately rewinds to
   the last replicated version — the read is accepted and the model
   *rebased* so later reads must stay consistent with it).

Bytes the reader currently holds dirty in its own pcache are excluded
(their content is client-private until the commit boundary records
it), and bytes never written through the model are *adopted* on first
read (backend-staged datasets enter the model lazily; re-reads must
then agree, which is what catches corruption of read-only pages).

``raw_check=False`` turns clause-1's mandatory part and clause-3's
horizon condition off — the deliberately-weakened stub the mutation
test uses to prove the full checker has teeth.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from typing import Dict, List, Optional

import numpy as np


class Violation(dict):
    """A checker finding (a dict, for painless JSON serialization)."""

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return (f"[{self.get('check')}] {self.get('vector')} rank "
                f"{self.get('rank')} @t={self.get('time')}: "
                f"{self.get('detail')}")


class _VecModel:
    """Two-version byte model of one shared vector."""

    __slots__ = ("stable", "prev", "prev_valid", "promote_t",
                 "promoted_by", "pending", "pending_writer",
                 "initialized", "append_end", "horizon")

    def __init__(self, nbytes: int):
        self.stable = np.zeros(nbytes, np.uint8)
        self.prev = np.zeros(nbytes, np.uint8)
        self.prev_valid = np.zeros(nbytes, bool)
        self.promote_t = np.full(nbytes, -np.inf)
        self.promoted_by = np.full(nbytes, -1, np.int32)
        self.pending = np.zeros(nbytes, np.uint8)
        self.pending_writer = np.full(nbytes, -1, np.int32)
        self.initialized = np.zeros(nbytes, bool)
        #: Highest acknowledged append end (elements).
        self.append_end = 0
        #: Per-rank freshness horizon (time of last full invalidation).
        self.horizon: Dict[int, float] = {}

    def ensure(self, nbytes: int) -> None:
        cur = len(self.stable)
        if nbytes <= cur:
            return
        grow = nbytes - cur
        self.stable = np.concatenate(
            [self.stable, np.zeros(grow, np.uint8)])
        self.prev = np.concatenate(
            [self.prev, np.zeros(grow, np.uint8)])
        self.prev_valid = np.concatenate(
            [self.prev_valid, np.zeros(grow, bool)])
        self.promote_t = np.concatenate(
            [self.promote_t, np.full(grow, -np.inf)])
        self.promoted_by = np.concatenate(
            [self.promoted_by, np.full(grow, -1, np.int32)])
        self.pending = np.concatenate(
            [self.pending, np.zeros(grow, np.uint8)])
        self.pending_writer = np.concatenate(
            [self.pending_writer, np.full(grow, -1, np.int32)])
        self.initialized = np.concatenate(
            [self.initialized, np.zeros(grow, bool)])


def _as_u8(data) -> np.ndarray:
    if isinstance(data, (bytes, bytearray, memoryview)):
        return np.frombuffer(bytes(data), dtype=np.uint8)
    arr = np.ascontiguousarray(data)
    return arr.view(np.uint8).ravel()


class CoherenceChecker:
    """Online validator of per-policy consistency contracts.

    ``max_violations`` bounds memory under a badly broken system; the
    count keeps incrementing either way.
    """

    def __init__(self, raw_check: bool = True,
                 max_violations: int = 200,
                 durability: bool = False):
        self.raw_check = raw_check
        self.max_violations = max_violations
        #: Durability clause (durable scache tier): bytes promoted at a
        #: committed barrier must be readable after crash+restart, so a
        #: crash never excuses serving the pre-barrier version. Bytes
        #: committed after the last barrier may roll back (they match
        #: ``stable``) but never tear.
        self.durability = durability
        self.models: Dict[str, _VecModel] = {}
        self.violations: List[Violation] = []
        self.violation_count = 0
        self.crash_times: List[float] = []
        self.checked_reads = 0
        self.checked_bytes = 0

    # -- bookkeeping -----------------------------------------------------
    def _model(self, vec) -> _VecModel:
        m = self.models.get(vec.shared.name)
        nbytes = vec.shared.length * vec.itemsize
        if m is None:
            m = self.models[vec.shared.name] = _VecModel(nbytes)
        else:
            m.ensure(nbytes)
        return m

    def _flag(self, **fields) -> None:
        self.violation_count += 1
        if len(self.violations) < self.max_violations:
            self.violations.append(Violation(**fields))

    # -- event intake ----------------------------------------------------
    def on_write(self, vec, elem_off: int, array, now: float) -> None:
        m = self._model(vec)
        b = _as_u8(array)
        off = elem_off * vec.itemsize
        m.ensure(off + len(b))
        sl = slice(off, off + len(b))
        m.pending[sl] = b
        m.pending_writer[sl] = vec.client.rank

    def on_commit(self, vec, page_idx: int, fragments,
                  now: float) -> None:
        m = self._model(vec)
        base = page_idx * vec.shared.page_size
        for start, data in fragments:
            b = _as_u8(data)
            m.ensure(base + start + len(b))
            sl = slice(base + start, base + start + len(b))
            m.pending[sl] = b
            m.pending_writer[sl] = vec.client.rank

    def on_flush(self, vec, now: float) -> None:
        """Promote the flushing rank's pending bytes: from here on,
        later reads by anyone are ordered behind these writes."""
        m = self._model(vec)
        self._promote(m, m.pending_writer == vec.client.rank,
                      vec.client.rank, now)

    def on_promote(self, vec, elem_off: int, nbytes: int,
                   now: float) -> None:
        """An acked write-through (the object path's OBJ_WRITE): the
        ack globally orders exactly this byte range — a flush scoped
        to the acked bytes, nothing else of the rank's pending state."""
        m = self._model(vec)
        off = elem_off * vec.itemsize
        m.ensure(off + nbytes)
        mask = np.zeros(len(m.stable), bool)
        mask[off:off + nbytes] = \
            m.pending_writer[off:off + nbytes] == vec.client.rank
        self._promote(m, mask, vec.client.rank, now)

    @staticmethod
    def _promote(m, mask, rank: int, now: float) -> None:
        if not mask.any():
            return
        m.prev[mask] = m.stable[mask]
        m.prev_valid[mask] = m.initialized[mask]
        m.promote_t[mask] = now
        m.promoted_by[mask] = rank
        m.stable[mask] = m.pending[mask]
        m.initialized[mask] = True
        m.pending_writer[mask] = -1

    def on_append(self, vec, start: int, count: int,
                  now: float) -> None:
        m = self._model(vec)
        m.ensure((start + count) * vec.itemsize)
        m.append_end = max(m.append_end, start + count)

    def on_invalidate(self, vec, now: float) -> None:
        self._model(vec).horizon[vec.client.rank] = now

    def on_crash(self, node: int, now: float) -> None:
        self.crash_times.append(now)

    # -- the read check --------------------------------------------------
    def on_read(self, vec, elem_off: int, out, t0: float,
                now: float) -> None:
        m = self._model(vec)
        rank = vec.client.rank
        got = _as_u8(out)
        off = elem_off * vec.itemsize
        m.ensure(off + len(got))
        sl = slice(off, off + len(got))
        self.checked_reads += 1
        self.checked_bytes += len(got)

        excl = self._own_dirty_mask(vec, off, len(got))
        # First-read adoption: bytes never written through the model
        # (backend-staged datasets, volatile zero-fill) enter as the
        # stable version; re-reads must then agree.
        uninit = ~m.initialized[sl] & ~excl
        if uninit.any():
            m.stable[sl][uninit] = got[uninit]
            m.initialized[sl][uninit] = True

        stable = m.stable[sl]
        pending = m.pending[sl]
        writer = m.pending_writer[sl]
        ok_stable = got == stable
        has_pending = writer != -1
        ok_pending = has_pending & (got == pending)
        # Crash rewind: a crash strictly after a promotion may lose it
        # (failover serves the last replicated version). Any crash up
        # to the read's *completion* counts — the fetch happens inside
        # [t0, now], so a crash landing mid-read can affect the bytes
        # served. The promotion comparison stays strict: a crash at
        # exactly t == the barrier-commit instant is ordered with the
        # commit and must never rewind (rebase) the committed writes.
        cmax = max((c for c in self.crash_times if c <= now),
                   default=-np.inf)
        if self.durability:
            crashed_since = np.zeros(got.shape, bool)
        else:
            crashed_since = m.promote_t[sl] < cmax
        horizon = m.horizon.get(rank, -np.inf)
        ok_prev = m.prev_valid[sl] & (got == m.prev[sl])
        if self.raw_check:
            # A stale (pre-promotion) value is legal only while the
            # reader has not invalidated since the promotion — and
            # never for the rank that performed the promotion itself:
            # a flush is ordered before the flusher's own later reads.
            ok_prev = ok_prev & ((m.promote_t[sl] >= horizon)
                                 | crashed_since) \
                & (m.promoted_by[sl] != rank)
        ok = ok_stable | ok_pending | ok_prev
        if self.raw_check:
            # Mandatory read-after-write: a rank's own committed bytes
            # must be visible to it, even if the stale value happens
            # to match an older legal version.
            ok &= ~((writer == rank) & ~ok_pending)
        bad = ~ok & ~excl
        if bad.any():
            idx = np.flatnonzero(bad)
            b0 = int(idx[0])
            self._flag(
                check="stale_or_lost_read", vector=vec.shared.name,
                rank=rank, time=now, read_start=t0,
                byte_offset=off + b0, bad_bytes=int(bad.sum()),
                detail=(f"byte {off + b0}: got {int(got[b0])}, "
                        f"stable {int(stable[b0])}, "
                        f"pending {int(pending[b0])} "
                        f"(writer {int(writer[b0])}), "
                        f"prev {int(m.prev[sl][b0])}"))
        # Rebase on crash-accepted rewinds: the system settled on the
        # older version, so make it the model's stable version too.
        rebase = ok_prev & crashed_since & ~ok_stable & ~ok_pending \
            & ~excl
        if rebase.any():
            m.stable[sl][rebase] = m.prev[sl][rebase]
            m.promote_t[sl][rebase] = -np.inf

    def _own_dirty_mask(self, vec, off: int, nbytes: int) -> np.ndarray:
        """Bytes of [off, off+nbytes) the reader holds dirty in its own
        pcache (client-private until the commit boundary)."""
        mask = np.zeros(nbytes, bool)
        if not vec.frames:
            return mask
        ps = vec.shared.page_size
        for page_idx in range(off // ps, (off + nbytes - 1) // ps + 1):
            frame = vec.frames.get(page_idx)
            if frame is None or not frame.dirty:
                continue
            base = page_idx * ps
            for s, e in frame.dirty:
                lo = max(base + s, off)
                hi = min(base + e, off + nbytes)
                if lo < hi:
                    mask[lo - off:hi - off] = True
        return mask

    # -- end-of-run checks -----------------------------------------------
    def finalize(self, system) -> List[Violation]:
        """No-lost-append check + final conservation sweep."""
        for name, m in self.models.items():
            shared = system.vectors.get(name)
            if shared is None:
                continue
            if shared.length < m.append_end:
                self._flag(
                    check="lost_append", vector=name, rank=-1,
                    time=float(system.sim.now),
                    detail=(f"acknowledged appends reach element "
                            f"{m.append_end}, final length is "
                            f"{shared.length}"))
        for problem in check_conservation(system):
            self._flag(check="conservation", vector="", rank=-1,
                       time=float(system.sim.now), detail=problem)
        return self.violations


def check_conservation(system, vectors=()) -> List[str]:
    """Conservation invariants that must hold at *any* instant.

    * device occupancy: ``0 <= used <= capacity`` and stored blob
      bytes never exceed the ``used`` account;
    * pcache accounting: each live Vector handle's ``_reserved``
      equals the bytes of its resident frames.
    """
    problems: List[str] = []
    for node, dmsh in enumerate(system.dmshs):
        for dev in dmsh:
            if not 0 <= dev.used <= dev.capacity:
                problems.append(
                    f"{dev.name}: used {dev.used} outside "
                    f"[0, {dev.capacity}]")
            blob_bytes = sum(len(b) for b in dev._blobs.values())
            if blob_bytes > dev.used:
                problems.append(
                    f"{dev.name}: {blob_bytes} blob bytes exceed used "
                    f"account {dev.used}")
    for vec in vectors:
        if vec.shared.destroyed:
            continue
        frame_bytes = sum(len(f.data) for f in vec.frames.values())
        if frame_bytes != vec._reserved:
            problems.append(
                f"pcache {vec.shared.name} rank {vec.client.rank}: "
                f"{frame_bytes} frame bytes vs {vec._reserved} "
                f"reserved")
    return problems


class HistoryRecorder:
    """The ``system.history`` hook target: trace hash + checker fanout.

    Also tracks monotonic-counter floors (``bytes.copied``,
    ``net.bytes``) and the set of live Vector handles for the
    injector's post-fault conservation sweeps.
    """

    def __init__(self, system,
                 checker: Optional[CoherenceChecker] = None):
        self.system = system
        self.checker = checker
        self._hash = hashlib.blake2b(digest_size=16)
        self.events = 0
        self.vectors: list = []
        self._seen_handles: set = set()
        self._floors = {"bytes.copied": 0.0, "net.bytes": 0.0}
        self.floor_problems: List[str] = []

    # -- trace hash ------------------------------------------------------
    def _log(self, tag: bytes, *fields) -> None:
        self.events += 1
        h = self._hash
        h.update(tag)
        for f in fields:
            if isinstance(f, float):
                h.update(struct.pack("<d", f))
            elif isinstance(f, int):
                h.update(struct.pack("<q", f))
            else:
                raw = str(f).encode()
                h.update(struct.pack("<i", len(raw)))
                h.update(raw)

    def trace_hash(self) -> str:
        return self._hash.hexdigest()

    def _track(self, vec) -> None:
        if id(vec) not in self._seen_handles:
            self._seen_handles.add(id(vec))
            self.vectors.append(vec)

    # -- hook surface (called by core when system.history is set) --------
    def on_read(self, vec, elem_off: int, out, t0: float) -> None:
        self._track(vec)
        now = float(self.system.sim.now)
        b = _as_u8(out)
        self._log(b"r", now, t0, vec.client.rank, vec.shared.name,
                  elem_off, len(b), zlib.crc32(b))
        if self.checker is not None:
            self.checker.on_read(vec, elem_off, out, t0, now)

    def on_write(self, vec, elem_off: int, array) -> None:
        self._track(vec)
        now = float(self.system.sim.now)
        b = _as_u8(array)
        self._log(b"w", now, vec.client.rank, vec.shared.name,
                  elem_off, len(b), zlib.crc32(b))
        if self.checker is not None:
            self.checker.on_write(vec, elem_off, array, now)

    def on_commit(self, vec, page_idx: int, fragments) -> None:
        self._track(vec)
        now = float(self.system.sim.now)
        total = sum(len(d) for _s, d in fragments)
        self._log(b"c", now, vec.client.rank, vec.shared.name,
                  page_idx, total)
        if self.checker is not None:
            self.checker.on_commit(vec, page_idx, fragments, now)

    def on_flush(self, vec) -> None:
        self._track(vec)
        now = float(self.system.sim.now)
        self._log(b"f", now, vec.client.rank, vec.shared.name)
        if self.checker is not None:
            self.checker.on_flush(vec, now)

    def on_promote(self, vec, elem_off: int, nbytes: int) -> None:
        self._track(vec)
        now = float(self.system.sim.now)
        self._log(b"p", now, vec.client.rank, vec.shared.name,
                  elem_off, nbytes)
        if self.checker is not None:
            self.checker.on_promote(vec, elem_off, nbytes, now)

    def on_append(self, vec, start: int, count: int) -> None:
        self._track(vec)
        now = float(self.system.sim.now)
        self._log(b"a", now, vec.client.rank, vec.shared.name, start,
                  count)
        if self.checker is not None:
            self.checker.on_append(vec, start, count, now)

    def on_invalidate(self, vec) -> None:
        self._track(vec)
        now = float(self.system.sim.now)
        self._log(b"i", now, vec.client.rank, vec.shared.name)
        if self.checker is not None:
            self.checker.on_invalidate(vec, now)

    def on_task(self, client, kind: str, vec_name: str, detail: int,
                target: int) -> None:
        self._log(b"t", float(self.system.sim.now), client.rank, kind,
                  vec_name, detail, target)

    # -- injector-facing surface -----------------------------------------
    def on_chaos(self, kind: str, *fields) -> None:
        """Fold an applied fault into the trace hash."""
        self._log(b"x", float(self.system.sim.now), kind,
                  *[f if isinstance(f, (int, float)) else str(f)
                    for f in fields])
        if self.checker is not None and kind == "crash":
            self.checker.on_crash(int(fields[0]),
                                  float(self.system.sim.now))

    def check_conservation(self) -> List[str]:
        """Instantaneous invariant sweep (the injector runs this after
        every applied fault)."""
        problems = check_conservation(self.system, self.vectors)
        mon = self.system.monitor
        for name, floor in self._floors.items():
            value = mon.counter(name)
            if value < floor:
                problems.append(
                    f"counter {name} regressed: {value} < {floor}")
            else:
                self._floors[name] = value
        self.floor_problems.extend(problems)
        return problems
