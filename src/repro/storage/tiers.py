"""Tier presets matching the paper's testbed and cost figures.

Per compute node (paper IV-A1): 48 GB DRAM, 128 GB NVMe PCIe x8,
256 GB SATA SSD, 1 TB HDD. Costs (IV-B3): HDD ≈ $.02/GB, SATA SSD ≈
$.04/GB, NVMe ≈ $.08/GB. Relative speeds (IV-B3): HDDs are "6-10x
slower than the SSD and NVMe".

Benchmarks run with capacities scaled GB→MB (:func:`scaled`) so a
laptop-size run preserves every capacity *ratio* of the testbed; since
every cost in the simulation is ``bytes / bandwidth``, all relative
results (speedups, crossovers) are invariant under that scaling.
"""

from __future__ import annotations

from repro.storage.device import DeviceSpec

KB = 1024
MB = 1024 ** 2
GB = 1024 ** 3
TB = 1024 ** 4

#: DRAM: ~12 GB/s per-socket sustained, ~100 ns access.
DRAM = DeviceSpec(kind="dram", capacity=48 * GB, read_bw=12e9, write_bw=12e9,
                  latency=1e-7, cost_per_gb=4.0, byte_addressable=True)

#: CXL-attached memory (paper III-E: "traditional libc mmap and memcpy
#: for upcoming CXL devices"): DRAM-like bandwidth, higher latency.
CXL = DeviceSpec(kind="cxl", capacity=64 * GB, read_bw=8e9, write_bw=8e9,
                 latency=4e-7, cost_per_gb=2.0, byte_addressable=True)

#: Persistent memory (Optane-DC-class, the paper's PMEM-adjacent tier
#: and Fridman et al.'s checkpoint medium): byte-addressable like
#: DRAM, asymmetric ~6.6/2.3 GB/s bandwidth, ~300 ns access, and
#: *durable* — the tier the write-ahead intent log lives on.
PMEM = DeviceSpec(kind="pmem", capacity=128 * GB, read_bw=6.6e9,
                  write_bw=2.3e9, latency=3e-7, cost_per_gb=1.0,
                  byte_addressable=True, durable=True)

#: Node-local NVMe over SPDK: ~3.2/2.0 GB/s, ~20 µs.
NVME = DeviceSpec(kind="nvme", capacity=128 * GB, read_bw=3.2e9, write_bw=2.0e9,
                  latency=2e-5, cost_per_gb=0.08, durable=True)

#: SATA SSD: ~500/450 MB/s, ~80 µs.
SATA_SSD = DeviceSpec(kind="ssd", capacity=256 * GB, read_bw=5.0e8,
                      write_bw=4.5e8, latency=8e-5, cost_per_gb=0.04,
                      durable=True)

#: HDD: ~7x slower than the SATA SSD (inside the paper's 6-10x band),
#: 5 ms seek.
HDD = DeviceSpec(kind="hdd", capacity=1 * TB, read_bw=7.2e7, write_bw=7.2e7,
                 latency=5e-3, cost_per_gb=0.02, durable=True)

TIER_PRESETS = {spec.kind: spec
                for spec in (DRAM, CXL, PMEM, NVME, SATA_SSD, HDD)}


def scaled(spec: DeviceSpec, capacity: int) -> DeviceSpec:
    """Preset with an explicit capacity (e.g. the MB-scaled testbed)."""
    return spec.with_capacity(capacity)


def dollars(spec: DeviceSpec, nbytes: int) -> float:
    """Financial cost of ``nbytes`` on this tier (paper Fig. 7 axis)."""
    return spec.cost_per_gb * nbytes / GB
