"""Shared harness for DSM-level tests: a small MegaMmap deployment."""

import pytest

from repro.core.config import MegaMmapConfig
from repro.core.system import MegaMmapSystem
from repro.net import LinkSpec, Network
from repro.sim import Monitor, Simulator
from repro.storage import DMSH, DRAM, HDD, NVME
from repro.storage.tiers import MB


def build_system(n_nodes=2, dram_mb=4, nvme_mb=16, hdd_mb=64, **cfg_kwargs):
    sim = Simulator()
    mon = Monitor(sim)
    net = Network(sim, n_nodes, intra=LinkSpec(bandwidth=5e9, latency=2e-5))
    dmshs = [
        DMSH(sim, [DRAM.with_capacity(dram_mb * MB),
                   NVME.with_capacity(nvme_mb * MB),
                   HDD.with_capacity(hdd_mb * MB)],
             node_id=i, monitor=mon)
        for i in range(n_nodes)
    ]
    cfg_kwargs.setdefault("page_size", 4096)
    cfg_kwargs.setdefault("pcache_size", 64 * 1024)
    cfg = MegaMmapConfig(**cfg_kwargs)
    system = MegaMmapSystem(sim, net, dmshs, config=cfg, monitor=mon)
    return sim, system


@pytest.fixture
def dsm():
    """(sim, system) with 2 nodes and small pages for fast tests."""
    return build_system()


def run_procs(sim, *gens):
    """Run generator apps to completion; returns their values."""
    procs = [sim.process(g, name=f"app{i}") for i, g in enumerate(gens)]
    from repro.sim import AllOf
    return sim.run(until=AllOf(sim, procs))
