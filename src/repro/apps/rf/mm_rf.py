"""MegaMmap Random Forest (paper IV-A2).

Each process performs out-of-order bagging: a seeded *random*
transaction (``RandTx`` — the randomness seed is part of the access
intent, so the prefetcher predicts the visit order) streams a random
page subset of the dataset, from which ``N/(oob*p)`` samples are
drawn. Tree construction is coordinated SPMD recursion: every rank
holds its bag's fraction of the current node and agrees on each split
through allreduces of binned Gini statistics.
"""

from __future__ import annotations

import numpy as np

from repro.apps.rf.common import (
    FEATURE6,
    best_split,
    class_counts,
    edges_from_minmax,
    hist_stats,
    leaf_label,
    merge_hists,
    merge_minmax,
    minmax_stats,
    to_features,
)
from repro.core import MM_READ_ONLY, RandTx
from repro.sim.rand import rng_stream


def mm_random_forest(ctx, url, labels_url, num_trees=1, max_depth=10,
                     oob=4, seed=0, pcache=None):
    """Returns the list of trees (same structure on every rank)."""
    pts = yield from ctx.mm.vector(url, dtype=FEATURE6)
    labs = yield from ctx.mm.vector(labels_url, dtype=np.int32)
    if pcache:
        pts.bound_memory(pcache)
        labs.bound_memory(max(pcache // 4, labs.shared.page_size))
    n = pts.size
    target = max(16, n // (max(1, oob) * ctx.nprocs))

    trees = []
    for t in range(num_trees):
        rng = rng_stream(seed, "rf", t, ctx.rank)
        X, y = yield from _bag(ctx, pts, labs, target,
                               seed=int(rng.integers(1 << 30)))
        tree = yield from _build(ctx, X, y, max_depth,
                                 rng_stream(seed, "rf-split", t))
        trees.append(tree)
    return trees


def _bag(ctx, pts, labs, target, seed):
    """Stream a seeded-random page visit order, sampling with
    replacement until ``target`` samples are drawn."""
    tx = yield from pts.tx_begin(RandTx(0, pts.size, seed=seed,
                                        flags=MM_READ_ONLY))
    rng = rng_stream(seed, "bag-pick")
    xs, ys, got = [], [], 0
    while got < target:
        chunk = yield from pts.next_chunk()
        if chunk is None:
            break
        yield from ctx.compute_bytes(chunk.data.nbytes, factor=2.0)
        take = min(target - got, max(1, len(chunk) // 2))
        idx = rng.integers(0, len(chunk), size=take)  # with replacement
        xs.append(to_features(chunk.data[idx]))
        lab = yield from labs.read_range(chunk.start, len(chunk))
        ys.append(lab[idx])
        got += take
    yield from pts.tx_end()
    if not xs:
        return (np.empty((0, len(FEATURE6.names))),
                np.empty(0, dtype=np.int64))
    return np.vstack(xs), np.concatenate(ys).astype(np.int64)


def _build(ctx, X, y, max_depth, rng, depth=0):
    """Coordinated SPMD recursion; identical tree on every rank."""
    counts = yield from ctx.comm.allreduce(class_counts(y),
                                           op=lambda a, b: a + b)
    total = counts.sum()
    if depth >= max_depth or total < 8 or (counts > 0).sum() <= 1:
        return {"leaf": leaf_label(counts)}
    n_features = X.shape[1]
    subset = sorted(rng.choice(n_features,
                               size=max(1, int(np.sqrt(n_features))),
                               replace=False))
    mm = yield from ctx.comm.allreduce(minmax_stats(X, subset),
                                       op=merge_minmax)
    edges = edges_from_minmax(*mm)
    yield from ctx.compute_bytes(X.nbytes, factor=3.0)
    hists = yield from ctx.comm.allreduce(
        hist_stats(X, y, subset, edges), op=merge_hists)
    f, th, gain = best_split(subset, edges, hists)
    if f is None or gain <= 1e-9:
        return {"leaf": leaf_label(counts)}
    mask = X[:, f] <= th
    left = yield from _build(ctx, X[mask], y[mask], max_depth, rng,
                             depth + 1)
    right = yield from _build(ctx, X[~mask], y[~mask], max_depth, rng,
                              depth + 1)
    return {"feature": int(f), "threshold": float(th),
            "left": left, "right": right}
