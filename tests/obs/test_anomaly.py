"""Anomaly detectors: EWMA+MAD scoring, one-event-per-episode
semantics, the standard bank's wiring, and the ReallocLoop backoff
consumer."""

import pytest

from repro.obs.anomaly import EwmaMadDetector, attach_detectors, \
    standard_detectors
from repro.obs.live import LiveObs
from repro.sim import Monitor, Simulator


def _steady_then(values, steady=1.0, n=20):
    return [steady] * n + list(values)


def _feed(det, values, dt=1.0):
    events = []
    for i, v in enumerate(values):
        det_source_value[0] = v
        events.extend(det.tick(None, float(i + 1) * dt))
    return events


det_source_value = [None]


def _det(**over):
    kw = dict(name="d", metric="m",
              source=lambda _s, _n: det_source_value[0],
              threshold=4.0, warmup=8)
    kw.update(over)
    return EwmaMadDetector(**kw)


def test_spike_detected_once_per_episode():
    det = _det(direction="up")
    # Steady noise, then a sustained 100x spike, then recovery and a
    # second spike: exactly two events, stamped at each onset.
    values = _steady_then([100.0] * 5 + [1.0] * 10 + [100.0] * 3,
                          steady=1.0)
    # Tiny wiggle so MAD is nonzero but small.
    values = [v + (0.01 if i % 2 else -0.01)
              for i, v in enumerate(values)]
    events = _feed(det, values)
    assert len(events) == 2
    assert events[0]["t"] == 21.0
    assert events[1]["t"] == 36.0
    assert events[0]["direction"] == "up"
    assert events[0]["zscore"] >= 4.0


def test_direction_gating():
    up = _det(direction="up")
    down = _det(direction="down")
    collapse = _steady_then([0.0] * 5, steady=10.0)
    collapse = [v + (0.01 if i % 2 else -0.01)
                for i, v in enumerate(collapse)]
    assert _feed(up, collapse) == []
    assert len(_feed(down, collapse)) == 1


def test_warmup_suppresses_early_alarms():
    det = _det(warmup=10)
    # A spike in the warmup period must not fire.
    events = _feed(det, [1.0, 1.0, 100.0, 1.0, 1.0])
    assert events == []


def test_none_samples_skipped():
    det = _det()
    det_source_value[0] = None
    assert det.tick(None, 1.0) == []
    assert det.seen == 0


def test_anomaly_does_not_poison_baseline():
    det = _det(direction="up")
    values = _steady_then([100.0] * 30, steady=1.0)
    values = [v + (0.01 if i % 2 else -0.01)
              for i, v in enumerate(values)]
    _feed(det, values)
    # 30 anomalous windows later the baseline still reflects normal.
    assert det.ewma < 2.0


def test_standard_bank_names():
    dets = standard_detectors(tenants=["a", "b"], n_nodes=2)
    names = {d.name for d in dets}
    assert names == {"hit_ratio:a", "hit_ratio:b", "rt_backlog",
                     "wal_growth", "realloc_thrash"}


def test_backlog_detector_end_to_end():
    sim = Simulator()
    mon = Monitor(sim)
    obs = LiveObs(sim, mon, window=0.01, retention=64).install()
    attach_detectors(obs, standard_detectors(n_nodes=1, warmup=5))
    g = mon.metrics.gauge("rt_backlog", node=0)

    def work():
        for _ in range(12):
            g.set(2.0)
            yield sim.timeout(0.01)
            g.set(3.0)
            yield sim.timeout(0.01)
        g.set(500.0)
        for _ in range(4):
            yield sim.timeout(0.01)

    sim.run(until=sim.process(work(), name="work"))
    events = obs.events_since(0.0, detector="rt_backlog")
    assert len(events) == 1
    assert events[0]["value"] == 500.0
    # Mirrored into the metrics registry by attach_detectors.
    c = mon.metrics.counter("obs_anomalies", detector="rt_backlog")
    assert c.value == 1.0


def test_hit_ratio_detector_collapse():
    sim = Simulator()
    mon = Monitor(sim)
    obs = LiveObs(sim, mon, window=0.01, retention=64).install()
    attach_detectors(obs, standard_detectors(tenants=["a"], warmup=5))
    fast = mon.metrics.counter("tenant_read_bytes", tenant="a",
                               speed="fast")
    slow = mon.metrics.counter("tenant_read_bytes", tenant="a",
                               speed="slow")

    def work():
        for i in range(15):
            fast.inc(900 + (i % 2))
            slow.inc(100)
            yield sim.timeout(0.01)
        for _ in range(5):
            slow.inc(1000)
            yield sim.timeout(0.01)

    sim.run(until=sim.process(work(), name="work"))
    events = obs.events_since(0.0, detector="hit_ratio:a")
    assert len(events) == 1
    assert events[0]["direction"] == "down"


def test_realloc_backoff_consumes_thrash_events():
    """A thrash event pauses the loop for BACKOFF_SWEEPS sweeps and
    logs the decision; without obs the path is inert."""
    from repro.tenancy.realloc import ReallocLoop

    class _Mgr:
        def __init__(self, system):
            self.system = system
            self.tenants = {}
            self.decisions = []

        def log(self, kind, **kw):
            self.decisions.append({"kind": kind, **kw})

    class _Sys:
        class config:
            realloc_period = 0.01
            realloc_step = 1
            realloc_hysteresis = 1.5
            realloc_max_moves = 4
        sim = None
        monitor = None
        dmshs = []

    sys_ = _Sys()
    loop = ReallocLoop(_Mgr(sys_))
    # No obs installed: never backs off.
    assert loop._thrash_backoff() is False

    sim = Simulator()
    mon = Monitor(sim)
    obs = LiveObs(sim, mon, window=0.01, retention=8).install()
    sys_.obs = obs
    obs.events.append({"t": 0.0, "detector": "realloc_thrash",
                       "value": 9.0})
    assert loop._thrash_backoff() is True       # trip: sweep 1 skipped
    assert loop._backoff == loop.BACKOFF_SWEEPS - 1
    assert loop.manager.decisions[0]["kind"] == "realloc_backoff"
    assert loop._thrash_backoff() is True       # still backing off
    assert loop._thrash_backoff() is True
    assert loop._thrash_backoff() is False      # resumed
    # The same event is not consumed twice.
    assert len(loop.manager.decisions) == 1
