#!/usr/bin/env python
"""Tiering playground: watch the organizer place pages in the DMSH.

Builds a node with a tiny DRAM tier over NVMe, SSD, and HDD; streams a
write-heavy workload through it; and prints where every page of the
vector ended up, with the hardware cost of each composition — a
hands-on miniature of the paper's Fig. 7.

Run:  python examples/tiering_playground.py
"""

import numpy as np

from repro.cluster import SimCluster
from repro.core import MM_WRITE_ONLY, SeqTx
from repro.core.config import MegaMmapConfig
from repro.storage.tiers import DRAM, HDD, MB, NVME, SATA_SSD, scaled

N = 768 * 1024  # float64 = 6 MB, vs 1 MB of DRAM


def writer(ctx):
    vec = yield from ctx.mm.vector("data", dtype=np.float64, size=N)
    vec.bound_memory(256 * 1024)
    vec.pgas(ctx.rank, ctx.nprocs)
    tx = yield from vec.tx_begin(SeqTx(vec.local_off(),
                                       vec.local_size(), MM_WRITE_ONLY))
    while True:
        chunk = yield from vec.next_chunk()
        if chunk is None:
            break
        chunk.data[:] = chunk.start
        yield from ctx.compute_bytes(chunk.data.nbytes)
    yield from vec.tx_end()
    yield from vec.flush(wait=True)


def main():
    for label, tiers in [
        ("DRAM+HDD", (scaled(DRAM, MB), scaled(HDD, 64 * MB))),
        ("DRAM+SSD+HDD", (scaled(DRAM, MB), scaled(SATA_SSD, 8 * MB),
                          scaled(HDD, 64 * MB))),
        ("DRAM+NVMe", (scaled(DRAM, MB), scaled(NVME, 64 * MB))),
    ]:
        cluster = SimCluster(
            n_nodes=1, procs_per_node=2, pfs_servers=1, tiers=tiers,
            config=MegaMmapConfig(page_size=64 * 1024),
        )
        res = cluster.run(writer)
        print(f"\n--- composition: {label} "
              f"(${cluster.hardware_cost():.4f} of storage) ---")
        print(f"runtime: {res.runtime * 1e3:8.2f} ms")
        # Where did the pages land?
        placement = {}
        for info in cluster.system.hermes.mdm.all_blobs():
            placement[info.tier] = placement.get(info.tier, 0) \
                + info.nbytes
        for dev in cluster.dmshs[0]:
            held = placement.get(dev.spec.kind, 0)
            bar = "#" * int(40 * held / (N * 8))
            print(f"  {dev.spec.kind:>5}: {held / 2**20:6.2f} MB {bar}")


if __name__ == "__main__":
    main()
