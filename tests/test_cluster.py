"""Integration tests for the SimCluster harness."""

import numpy as np
import pytest

from repro.cluster import ClusterSpec, OutOfMemoryError, SimCluster
from repro.core import MM_READ_ONLY, MM_WRITE_ONLY, SeqTx
from repro.core.config import MegaMmapConfig
from repro.storage.device import DeviceSpec
from repro.storage.tiers import DRAM, MB, NVME, scaled


def small_cluster(**over):
    kwargs = dict(
        n_nodes=2, procs_per_node=2, pfs_servers=1,
        tiers=(scaled(DRAM, 8 * MB), scaled(NVME, 32 * MB)),
        config=MegaMmapConfig(page_size=4096, pcache_size=64 * 1024),
    )
    kwargs.update(over)
    return SimCluster(**kwargs)


def test_run_returns_per_rank_values():
    cluster = small_cluster()

    def app(ctx):
        yield from ctx.compute_seconds(0.01 * (ctx.rank + 1))
        return ctx.rank * 10

    res = cluster.run(app)
    assert res.values == [0, 10, 20, 30]
    assert res.runtime >= 0.04


def test_contexts_map_ranks_to_nodes_blockwise():
    cluster = small_cluster()
    ctxs = cluster.contexts()
    assert [c.node for c in ctxs] == [0, 0, 1, 1]


def test_mpi_and_mm_share_the_simulation():
    cluster = small_cluster()

    def app(ctx):
        vec = yield from ctx.mm.vector("v", dtype=np.int32, size=1024)
        tx = yield from vec.tx_begin(SeqTx(0, 1024, MM_WRITE_ONLY))
        if ctx.rank == 0:
            yield from vec.write_range(0, np.arange(1024, dtype=np.int32))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        yield from ctx.barrier()
        tx = yield from vec.tx_begin(SeqTx(0, 1024, MM_READ_ONLY))
        out = yield from vec.read_range(0, 1024)
        yield from vec.tx_end()
        total = yield from ctx.comm.allreduce(int(out.sum()),
                                              op=lambda a, b: a + b)
        return total

    res = cluster.run(app)
    expected = 4 * (1023 * 1024 // 2)
    assert res.values == [expected] * 4


def test_alloc_oom_crashes_run():
    cluster = small_cluster()

    def app(ctx):
        ctx.alloc(100 * MB)  # far beyond the 8 MB node DRAM
        yield ctx.sim.timeout(0)

    with pytest.raises(OutOfMemoryError):
        cluster.run(app)


def test_allow_oom_reports_crash():
    cluster = small_cluster()

    def app(ctx):
        ctx.alloc(100 * MB)
        yield ctx.sim.timeout(0)

    res = cluster.run(app, allow_oom=True)
    assert res.oom
    assert res.crashed


def test_alloc_free_balance():
    cluster = small_cluster()

    def app(ctx):
        ctx.alloc(MB)
        yield from ctx.compute_seconds(0.001)
        ctx.free(MB)
        return True

    cluster.run(app)
    assert all(d.tiers[0].used == 0 for d in cluster.dmshs)


def test_peak_dram_recorded():
    cluster = small_cluster()

    def app(ctx):
        ctx.alloc(2 * MB)
        yield from ctx.compute_seconds(0.001)
        ctx.free_all()

    res = cluster.run(app)
    assert res.peak_dram_node >= 4 * MB  # two procs per node
    assert res.peak_dram_total >= 8 * MB


def test_compute_bytes_charges_time():
    cluster = small_cluster()
    bw = cluster.spec.config.compute_bw

    def app(ctx):
        yield from ctx.compute_bytes(bw)  # exactly one second

    res = cluster.run(app)
    assert res.runtime == pytest.approx(1.0, rel=0.01)


def test_shutdown_persists_nonvolatile(tmp_path):
    cluster = small_cluster()
    url = f"posix://{tmp_path}/data.bin"
    data = np.arange(4096, dtype=np.float32)

    def app(ctx):
        if ctx.rank == 0:
            vec = yield from ctx.mm.vector(url, dtype=np.float32,
                                           size=4096)
            tx = yield from vec.tx_begin(SeqTx(0, 4096, MM_WRITE_ONLY))
            yield from vec.write_range(0, data)
            yield from vec.tx_end()
            yield from vec.flush(wait=True)
        else:
            yield ctx.sim.timeout(0)

    cluster.run(app)
    cluster.shutdown()
    on_disk = np.fromfile(tmp_path / "data.bin", dtype=np.float32)
    assert np.array_equal(on_disk, data)


def test_spec_nprocs_and_cost():
    spec = ClusterSpec(n_nodes=3, procs_per_node=5)
    assert spec.nprocs == 15
    cluster = small_cluster()
    assert cluster.hardware_cost() > 0
    assert "D" in cluster.describe_tiers()


def test_spec_and_kwargs_mutually_exclusive():
    with pytest.raises(TypeError):
        SimCluster(ClusterSpec(), n_nodes=2)


def test_deterministic_across_identical_runs():
    def app(ctx):
        vec = yield from ctx.mm.vector("v", dtype=np.int64, size=4096)
        vec.bound_memory(4 * 4096)
        tx = yield from vec.tx_begin(SeqTx(0, 4096, MM_WRITE_ONLY))
        yield from vec.write_range(
            0, ctx.rng.integers(0, 100, size=4096).astype(np.int64))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        return None

    r1 = small_cluster().run(app)
    r2 = small_cluster().run(app)
    assert r1.runtime == r2.runtime
    assert r1.stats["net.bytes_moved"] == r2.stats["net.bytes_moved"]
