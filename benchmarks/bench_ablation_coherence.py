"""Ablation: coherence policy choice (paper Fig. 3 / III-C).

Read-only replication should make repeated cross-node reads cheap
(local replicas); forcing the same workload through the read-write
policy disables replication and keeps paying remote fetches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MM_READ_ONLY, MM_READ_WRITE, MM_WRITE_ONLY, SeqTx
from benchmarks.common import emit_result, print_table, testbed, \
    write_csv

N = 64 * 1024  # float64 = 512 KB, a few pages per node


def _app(read_flags, repeats=4):
    def app(ctx):
        vec = yield from ctx.mm.vector("shared", dtype=np.float64,
                                       size=N)
        vec.bound_memory(256 * 1024)
        if ctx.rank == 0:
            tx = yield from vec.tx_begin(SeqTx(0, N, MM_WRITE_ONLY))
            yield from vec.write_range(
                0, np.arange(N, dtype=np.float64))
            yield from vec.tx_end()
            yield from vec.flush(wait=True)
        yield from ctx.barrier()
        total = 0.0
        for _ in range(repeats):
            tx = yield from vec.tx_begin(SeqTx(0, N, read_flags))
            while True:
                chunk = yield from vec.next_chunk()
                if chunk is None:
                    break
                total += float(chunk.data.sum())
            yield from vec.tx_end()
        return total

    return app


def run_coherence_ablation():
    rows = []
    for label, flags in (("read_only_global", MM_READ_ONLY),
                         ("read_write_global", MM_READ_WRITE)):
        cluster = testbed(n_nodes=4)
        res = cluster.run(_app(flags))
        expected = 4 * (N * (N - 1) / 2)
        assert res.values[0] == pytest.approx(expected)
        rows.append(dict(
            policy=label,
            runtime_s=round(res.runtime, 4),
            replications=int(res.stats.get("hermes.replications", 0)),
            net_mb=round(res.stats["net.bytes_moved"] / 2 ** 20, 2)))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_coherence(benchmark):
    rows = benchmark.pedantic(run_coherence_ablation, rounds=1,
                              iterations=1)
    print_table("Ablation — coherence policy", rows)
    write_csv("ablation_coherence", rows)
    ro = next(r for r in rows if r["policy"] == "read_only_global")
    rw = next(r for r in rows if r["policy"] == "read_write_global")
    # Replication only happens under the read-only policy...
    assert ro["replications"] > 0
    assert rw["replications"] == 0
    # ...and repeated global reads are no slower with it.
    assert ro["runtime_s"] <= rw["runtime_s"] * 1.05
    emit_result("ablation_coherence", "coherence.ro_speedup",
                rw["runtime_s"] / max(ro["runtime_s"], 1e-9), "x",
                dict(n_nodes=4, elements=N))
