"""Coherence policies (paper Figure 3) and their mechanics.

The policy of a vector (derived from transaction intent, possibly
changing between phases) decides:

* **placement affinity** — LOCAL policies place pages on the node that
  produced them; GLOBAL policies hash pages to owner nodes so that all
  faults and evictions for one page serialize through one worker;
* **replication** — READ_ONLY_GLOBAL allows page replicas in every
  node's shared cache (and freely in pcaches);
* **invalidation** — a phase change away from READ_ONLY drops replicas.
"""

from __future__ import annotations

from enum import Enum

from repro.core.transaction import Transaction, TxFlags


class CoherencePolicy(Enum):
    """The five access patterns of Figure 3."""

    READ_WRITE_LOCAL = "rw_local"
    READ_ONLY_GLOBAL = "ro_global"
    WRITE_ONLY_GLOBAL = "wo_global"
    APPEND_ONLY_GLOBAL = "ao_global"
    READ_WRITE_GLOBAL = "rw_global"

    @property
    def allows_replication(self) -> bool:
        return self is CoherencePolicy.READ_ONLY_GLOBAL

    @property
    def local_affinity(self) -> bool:
        return self is CoherencePolicy.READ_WRITE_LOCAL

    @property
    def asynchronous_writeback(self) -> bool:
        """Write/append-only phases never read back, so evictions can
        be fire-and-forget (III-C, Write and Append Only Global)."""
        return self in (CoherencePolicy.WRITE_ONLY_GLOBAL,
                        CoherencePolicy.APPEND_ONLY_GLOBAL,
                        CoherencePolicy.READ_WRITE_LOCAL)

    def contract(self) -> dict:
        """Checkable consistency contract of this policy.

        The chaos model-checker (:mod:`repro.chaos.checker`) enforces
        exactly these clauses; ``repro.chaos`` docs render them. The
        clauses shared by every policy:

        * ``read_after_write`` — a client that committed a write (its
          frame was flushed or evicted to the scache) reads its own
          value back, even across pcache eviction and node failover.
        * ``failover_reads`` — after a crash, reads of pages whose
          primary was lost return a *legal prior committed* value
          (a replica's or the backend's), never garbage.
        * ``no_lost_appends`` — every acknowledged append is reflected
          in the final vector length and contents.

        Per-policy clause:

        * ``stale_reads_until`` — how long a concurrent reader may
          observe the previous committed value of a byte another
          client has overwritten: until the writer's ``flush``
          completes ("flush"), plus until the reader's next
          phase-change invalidation for cached frames ("invalidate").
        """
        return {
            "policy": self.value,
            "read_after_write": True,
            "failover_reads": "legal_prior_committed_value",
            "no_lost_appends": True,
            "replicated_reads": self.allows_replication,
            "stale_reads_until":
                "flush" if not self.asynchronous_writeback
                else "invalidate",
        }


def policy_for(tx: Transaction) -> CoherencePolicy:
    """Derive the Figure-3 policy from transaction intent flags."""
    flags = tx.flags
    if flags & TxFlags.LOCAL:
        return CoherencePolicy.READ_WRITE_LOCAL
    if flags & TxFlags.APPEND:
        return CoherencePolicy.APPEND_ONLY_GLOBAL
    reads = bool(flags & TxFlags.READ)
    writes = bool(flags & TxFlags.WRITE)
    if reads and writes:
        return CoherencePolicy.READ_WRITE_GLOBAL
    if writes:
        return CoherencePolicy.WRITE_ONLY_GLOBAL
    return CoherencePolicy.READ_ONLY_GLOBAL
