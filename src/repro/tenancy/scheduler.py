"""Multi-tenant job scheduler over one shared MegaMmap deployment.

A colocation spec names N jobs (mixed MegaMmap / MPI / Spark apps with
staggered arrivals and per-tenant quotas) that all run against **one**
cluster — shared scache, devices and fabric. The scheduler:

* registers each job as a tenant with the :class:`QuotaManager`;
* admission-controls arrivals — a job whose ``min_dram`` cannot be
  committed against cluster DRAM capacity queues (retried in arrival
  order on each completion) or is rejected outright when it could
  never fit;
* launches admitted jobs as their own process groups (own
  :class:`~repro.mpi.MpiWorld`, own rng streams keyed by tenant name)
  against the shared system;
* optionally runs the MaxMem-style :class:`ReallocLoop` shifting
  DRAM-tier quota between tenants while jobs run.

A single-job spec with tenancy disabled takes the *plain* path — the
exact launcher :func:`repro.pipeline.run_pipeline` uses, same rng
streams, no quota manager — and is therefore bit-identical to running
the equivalent pipeline file.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster import AppContext, SimCluster
from repro.core.config import MB, load_yaml_subset
from repro.core.errors import QuotaExceededError
from repro.mpi import MpiWorld
from repro.pipeline import (APP_REGISTRY, PipelineError, build_cluster,
                            prepare_dataset)
from repro.sim import AllOf, rng_stream
from repro.tenancy.quota import QuotaManager, TenantQuota
from repro.tenancy.realloc import ReallocLoop

#: App kinds a colocated (multi-tenant) run can launch. Rank-style
#: entries get one process per job rank; driver-style entries run as a
#: single generator (the Spark driver model).
RANK_APPS = ("mm_kmeans", "mm_dbscan", "mm_gray_scott", "mm_stream")
DRIVER_APPS = ("spark_kmeans",)


@dataclass
class JobSpec:
    """One tenant's job: what to run, when it arrives, its quotas."""

    name: str
    app: Dict[str, Any]
    procs: int = 1
    arrival: float = 0.0
    dataset: Optional[Dict[str, Any]] = None
    pcache_quota: Optional[int] = None
    scache_quota: Optional[int] = None
    dram_quota: Optional[int] = None
    min_dram: int = 0
    slo: Optional[Dict[str, Any]] = None

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JobSpec":
        if "name" not in data or "app" not in data:
            raise PipelineError("each job needs 'name' and 'app'")

        def mb(key):
            v = data.get(key)
            return None if v is None else int(float(v) * MB)

        return cls(
            name=str(data["name"]),
            app=dict(data["app"]),
            procs=int(data.get("procs", 1)),
            arrival=float(data.get("arrival", 0.0)),
            dataset=data.get("dataset"),
            pcache_quota=mb("pcache_quota_mb"),
            scache_quota=mb("scache_quota_mb"),
            dram_quota=mb("dram_quota_mb"),
            min_dram=int(float(data.get("min_dram_mb", 0)) * MB),
            slo=data.get("slo"),
        )


@dataclass
class ColocationResult:
    """Outcome of one colocated campaign."""

    rows: List[Dict[str, Any]]
    decisions: List[dict]
    makespan: float
    stats: dict = field(default_factory=dict)
    #: SLO compliance + alert report (None when no SLOs were attached).
    slo: Optional[Dict[str, Any]] = None
    #: Anomaly events from the live obs plane, oldest first.
    obs_events: List[dict] = field(default_factory=list)


def _dataset_url(job: JobSpec, workdir: str) -> str:
    if not job.dataset or "path" not in job.dataset:
        raise PipelineError(
            f"job {job.name!r}: app kind {job.app.get('kind')!r} needs "
            f"a dataset with a 'path'")
    return f"parquet://{os.path.join(workdir, job.dataset['path'])}"


def _rank_launcher(job: JobSpec, workdir: str) -> Tuple[Callable, tuple]:
    """(app_generator_fn, args) for a rank-style job."""
    app = job.app
    kind = app.get("kind")
    if kind == "mm_kmeans":
        from repro.apps.kmeans import mm_kmeans
        return mm_kmeans, (_dataset_url(job, workdir), app.get("k", 8),
                           app.get("max_iter", 4), app.get("seed", 0),
                           app.get("pcache"))
    if kind == "mm_dbscan":
        from repro.apps.dbscan import mm_dbscan
        return mm_dbscan, (_dataset_url(job, workdir),
                           float(app.get("eps", 8.0)),
                           app.get("min_pts", 64), app.get("seed", 0),
                           app.get("pcache"))
    if kind == "mm_gray_scott":
        from repro.apps.grayscott import mm_gray_scott
        return mm_gray_scott, (app.get("L", 32), app.get("steps", 3),
                               app.get("plotgap", 0), app.get("pcache"))
    if kind == "mm_stream":
        from repro.apps.stream import mm_stream
        return mm_stream, (_dataset_url(job, workdir),
                           app.get("passes", 1), app.get("pcache"))
    raise PipelineError(
        f"job {job.name!r}: app kind {kind!r} not colocatable; "
        f"known: {sorted(RANK_APPS + DRIVER_APPS)}")


class JobScheduler:
    """Admission control + launch + reallocation for one campaign."""

    def __init__(self, cluster: SimCluster, jobs: List[JobSpec],
                 workdir: str = ".",
                 realloc: bool = True, namespace: bool = True,
                 overcommit: float = 1.0):
        self.cluster = cluster
        self.system = cluster.system
        self.jobs = list(jobs)
        self.workdir = workdir
        self.realloc_enabled = realloc
        names = [j.name for j in self.jobs]
        if len(set(names)) != len(names):
            raise PipelineError(f"duplicate job names: {names}")
        self.qm = QuotaManager(self.system, namespace=namespace)
        for job in self.jobs:
            self.qm.register(TenantQuota(
                name=job.name, pcache_quota=job.pcache_quota,
                scache_quota=job.scache_quota,
                dram_quota=job.dram_quota, min_dram=job.min_dram))
        self.dram_capacity = int(overcommit * sum(
            dmsh.tiers[0].capacity for dmsh in self.system.dmshs))
        self._committed = 0
        self._release = self.system.sim.event()
        self._rows: Dict[str, Dict[str, Any]] = {}
        self._queued_logged: set = set()

    # -- admission -------------------------------------------------------
    def _try_admit(self, job: JobSpec) -> str:
        if job.min_dram > self.dram_capacity:
            self.qm.log("reject", job=job.name,
                        min_dram=job.min_dram,
                        capacity=self.dram_capacity,
                        reason="min quota exceeds cluster DRAM")
            return "reject"
        if self._committed + job.min_dram > self.dram_capacity:
            if job.name not in self._queued_logged:
                self._queued_logged.add(job.name)
                self.qm.log("queue", job=job.name,
                            min_dram=job.min_dram,
                            committed=self._committed,
                            capacity=self.dram_capacity)
            return "queue"
        self._committed += job.min_dram
        self.qm.activate(job.name)
        self.qm.log("admit", job=job.name, min_dram=job.min_dram,
                    committed=self._committed)
        return "admit"

    def _signal_release(self) -> None:
        prev, self._release = self._release, self.system.sim.event()
        if not prev.triggered:
            prev.succeed(None)
        elif not prev.callbacks and not prev.processed:
            # Nothing ever waited; mark observed so the kernel's
            # unawaited-event accounting stays clean.
            prev.callbacks.append(lambda _e: None)

    # -- per-job lifecycle ----------------------------------------------
    def _job_entry(self, job: JobSpec):
        sim = self.system.sim
        if job.arrival > 0:
            yield sim.timeout(job.arrival)
        while True:
            decision = self._try_admit(job)
            if decision == "admit":
                break
            if decision == "reject":
                self._rows[job.name] = self._row(job, status="rejected",
                                                 start=sim.now,
                                                 finish=sim.now)
                return
            yield self._release
        start = sim.now
        status = "ok"
        try:
            yield from self._run_job(job)
        except Exception as exc:
            # One tenant's failure (e.g. a Spark OOM under memory
            # pressure) must not take the campaign down: record the
            # crash, release its commitment, keep scheduling.
            status = "crashed"
            self.qm.log("crash", job=job.name,
                        error=type(exc).__name__)
        finish = sim.now
        self.qm.deactivate(job.name)
        self._committed -= job.min_dram
        if status == "ok":
            self.qm.log("complete", job=job.name,
                        turnaround=round(finish - job.arrival, 9))
        self._rows[job.name] = self._row(job, status=status,
                                         start=start, finish=finish)
        self._signal_release()

    def _run_job(self, job: JobSpec):
        sim = self.system.sim
        tenant = self.qm.tenants[job.name]
        kind = job.app.get("kind")
        n_nodes = len(self.system.dmshs)
        if kind in DRIVER_APPS:
            from repro.apps.kmeans import spark_kmeans
            gen = spark_kmeans(
                self.cluster, _dataset_url(job, self.workdir),
                job.app.get("k", 8), job.app.get("max_iter", 4),
                job.app.get("seed", 0))
            procs = [sim.process(gen, name=f"{job.name}:driver")]
        else:
            app_fn, args = _rank_launcher(job, self.workdir)
            world = MpiWorld(sim, self.system.network,
                             [r % n_nodes for r in range(job.procs)])
            procs = []
            for r in range(job.procs):
                comm = world.comm(r)
                mm = self.system.client(r, comm.node)
                mm.bind_tenant(tenant)
                ctx = AppContext(
                    self.cluster, r, comm, mm, nprocs=job.procs,
                    rng=rng_stream(self.cluster.spec.seed, "tenant",
                                   job.name, "proc", r))
                procs.append(sim.process(app_fn(ctx, *args),
                                         name=f"{job.name}:rank{r}"))
        values = yield AllOf(sim, procs)
        return values

    def _row(self, job: JobSpec, status: str, start: float,
             finish: float) -> Dict[str, Any]:
        hist = self.system.monitor.metrics.histogram(
            "tenant_task_latency", tenant=job.name)
        fast, slow = self.qm.read_stats(job.name)
        return {
            "job": job.name,
            "kind": job.app.get("kind"),
            "procs": job.procs,
            "status": status,
            "arrival_s": job.arrival,
            "start_s": round(start, 9),
            "finish_s": round(finish, 9),
            "turnaround_s": round(finish - job.arrival, 9),
            "service_s": round(finish - start, 9),
            "task_p99_ms": round(hist.percentile(99) * 1e3, 6),
            "tasks": hist.count,
            "hit_ratio": round(self.qm.hit_ratio(job.name), 6)
            if (fast + slow) else "",
            "dram_quota_mb": round(
                (self.qm.tenants[job.name].dram_quota or 0) / MB, 3),
        }

    # -- campaign --------------------------------------------------------
    def run(self) -> ColocationResult:
        sim = self.system.sim
        t0 = sim.now
        order = sorted(range(len(self.jobs)),
                       key=lambda i: (self.jobs[i].arrival, i))
        entries = [
            sim.process(self._job_entry(self.jobs[i]),
                        name=f"sched:{self.jobs[i].name}")
            for i in order
        ]
        loop = None
        if self.realloc_enabled and len(self.jobs) > 1:
            loop = ReallocLoop(self.qm)
            sim.process(loop.run(), name="realloc")
        sim.run(until=AllOf(sim, entries))
        if loop is not None:
            loop.stop = True
        sim.run(until=sim.process(self.system.quiesce(),
                                  name="quiesce"))
        makespan = sim.now - t0
        rows = [self._rows[j.name] for j in self.jobs
                if j.name in self._rows]
        return ColocationResult(rows=rows, decisions=self.qm.decisions,
                                makespan=makespan,
                                stats=self.system.stats())


def load_colocation_spec(text_or_path: str) -> Dict[str, Any]:
    if os.path.exists(text_or_path):
        with open(text_or_path, encoding="utf-8") as fh:
            text = fh.read()
    else:
        text = text_or_path
    spec = load_yaml_subset(text)
    if not isinstance(spec, dict) or "jobs" not in spec:
        raise PipelineError(
            "colocation spec must be a mapping with a 'jobs' list")
    return spec


def collect_slos(spec: Dict[str, Any], jobs: List[JobSpec],
                 extra=None) -> list:
    """SLO specs for one campaign: the spec's top-level ``slos:``
    list, each job's ``slo:`` block (tenant/name defaulted from the
    job), plus any externally supplied specs (``repro slo --slos``)."""
    from repro.obs.slo import SLOSpec
    specs = list(extra or [])
    for data in (spec.get("slos") or []):
        specs.append(SLOSpec.from_dict(dict(data)))
    for job in jobs:
        if not job.slo:
            continue
        data = dict(job.slo)
        data.setdefault("tenant", job.name)
        data.setdefault(
            "name", f"{job.name}-{data.get('objective', 'slo')}")
        specs.append(SLOSpec.from_dict(data))
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise PipelineError(f"duplicate SLO names: {names}")
    return specs


def _attach_obs(cluster, jobs: List[JobSpec], slo_specs: list):
    """Install the live observability plane on a colocated cluster:
    windowed store + ticker, the SLO monitor when objectives exist,
    and the standard anomaly-detector bank (whose ``realloc_thrash``
    events the :class:`ReallocLoop` consumes for backoff)."""
    from repro.obs import LiveObs, SLOMonitor
    from repro.obs.anomaly import attach_detectors, standard_detectors
    obs = getattr(cluster.system, "obs", None)
    if obs is None:
        obs = LiveObs.attach(cluster)
    if slo_specs and obs.slo is None:
        SLOMonitor(obs, slo_specs)
    if not obs.detectors:
        attach_detectors(obs, standard_detectors(
            tenants=[j.name for j in jobs],
            n_nodes=cluster.spec.n_nodes))
    return obs


def run_colocation(text_or_path: str, workdir: Optional[str] = None,
                   on_cluster=None, slos=None
                   ) -> ColocationResult:
    """Execute a colocation spec; returns (and persists) per-job rows.

    Single-job specs with tenancy disabled run through the plain
    pipeline launcher (bit-identical to ``repro run`` on the
    equivalent pipeline file); everything else goes through the
    :class:`JobScheduler`.

    ``on_cluster(cluster)`` is invoked right after the cluster is
    built, before any job runs — the hook ``repro top``/``repro slo``
    use to install the live observability plane. ``slos`` (a list of
    :class:`~repro.obs.slo.SLOSpec`) is merged with SLOs embedded in
    the spec (top-level ``slos:`` and per-job ``slo:`` blocks); when
    any exist the obs plane is attached automatically and the result
    carries the compliance/alert report in ``.slo``.
    """
    spec = load_colocation_spec(text_or_path)
    if os.path.exists(text_or_path):
        default_dir = os.path.dirname(os.path.abspath(text_or_path))
    else:
        default_dir = os.getcwd()
    workdir = workdir or default_dir
    os.makedirs(workdir, exist_ok=True)
    jobs = [JobSpec.from_dict(j) for j in spec["jobs"]]
    tenancy = dict(spec.get("tenancy") or {})
    enabled = tenancy.get("enabled")
    if enabled is None:
        enabled = len(jobs) > 1
    if not enabled and len(jobs) != 1:
        # Validate before materializing datasets: a bad spec should
        # leave nothing behind in the workdir.
        raise QuotaExceededError(
            "tenancy cannot be disabled with more than one job")
    slo_specs = collect_slos(spec, jobs, extra=slos)
    for job in jobs:
        prepare_dataset(job.dataset, workdir)
    if not enabled:
        result = _run_plain(spec, jobs[0], workdir,
                            on_cluster=on_cluster)
    else:
        cluster = build_cluster(spec.get("cluster"))
        if on_cluster is not None:
            on_cluster(cluster)
        obs = None
        if slo_specs or getattr(cluster.system, "obs", None) is not None:
            obs = _attach_obs(cluster, jobs, slo_specs)
        sched = JobScheduler(
            cluster, jobs, workdir=workdir,
            realloc=bool(tenancy.get("realloc", True)),
            namespace=bool(tenancy.get("namespace", True)),
            overcommit=float(tenancy.get("overcommit", 1.0)))
        result = sched.run()
        if obs is not None:
            result.obs_events = list(obs.events)
            if obs.slo is not None:
                result.slo = obs.slo.report()
    out_path = os.path.join(workdir,
                            spec.get("output", "colocate_stats.csv"))
    if result.rows:
        with open(out_path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(result.rows[0]))
            writer.writeheader()
            writer.writerows(result.rows)
    return result


def _run_plain(spec: Dict[str, Any], job: JobSpec,
               workdir: str, on_cluster=None) -> ColocationResult:
    """Single-tenant fast path: the exact plain-pipeline launcher (no
    QuotaManager, global rank rng streams, same process names)."""
    kind = job.app.get("kind")
    if kind not in APP_REGISTRY:
        raise PipelineError(
            f"unknown app kind {kind!r}; known: {sorted(APP_REGISTRY)}")
    if job.arrival:
        raise PipelineError("plain (single-tenant) runs start at t=0")
    cluster = build_cluster(spec.get("cluster"))
    if on_cluster is not None:
        on_cluster(cluster)
    variant = {"app": dict(job.app), "dataset": job.dataset,
               "name": job.name}
    res = APP_REGISTRY[kind](cluster, variant, workdir)
    row = {
        "job": job.name,
        "kind": kind,
        "procs": cluster.spec.nprocs,
        "status": "crashed" if res.oom else "ok",
        "arrival_s": 0.0,
        "start_s": 0.0,
        "finish_s": round(res.runtime, 9),
        "turnaround_s": round(res.runtime, 9),
        "service_s": round(res.runtime, 9),
        "task_p99_ms": "",
        "tasks": "",
        "hit_ratio": "",
        "dram_quota_mb": "",
    }
    return ColocationResult(rows=[row], decisions=[],
                            makespan=res.runtime, stats=res.stats)
