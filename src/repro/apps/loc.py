"""cloc-like line counting (paper Fig. 4 methodology).

"We measure code volume in terms of LOC using cloc, which ignores
visual spaces and comments." This counter does the same for Python
sources: blank lines, ``#`` comments, and docstrings are excluded.
"""

from __future__ import annotations

import io
import tokenize
from pathlib import Path
from typing import Iterable, Union


def count_loc(source: str) -> int:
    """Count code lines in Python source, cloc-style."""
    code_lines: set[int] = set()
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Fall back to a crude count on unparsable input.
        return sum(1 for line in source.splitlines()
                   if line.strip() and not line.strip().startswith("#"))
    prev_type = None
    for tok in tokens:
        if tok.type in (tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE,
                        tokenize.INDENT, tokenize.DEDENT,
                        tokenize.ENCODING, tokenize.ENDMARKER):
            prev_type = tok.type
            continue
        if tok.type == tokenize.STRING and prev_type in (
                None, tokenize.NEWLINE, tokenize.NL, tokenize.INDENT,
                tokenize.ENCODING, tokenize.DEDENT):
            # A string statement = docstring; cloc treats it as comment.
            prev_type = tokenize.NEWLINE
            continue
        for line in range(tok.start[0], tok.end[0] + 1):
            code_lines.add(line)
        prev_type = tok.type
    return len(code_lines)


def count_file(path: Union[str, Path]) -> int:
    return count_loc(Path(path).read_text(encoding="utf-8"))


def count_files(paths: Iterable[Union[str, Path]]) -> int:
    return sum(count_file(p) for p in paths)
