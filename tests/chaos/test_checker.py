"""Coherence model-checker: clean runs stay clean, broken coherence
is caught, and the weakened (read-after-write-disabled) checker stub
demonstrably misses what the full checker flags — the mutation test
that proves the checker's RAW clause is load-bearing.
"""

import numpy as np

from repro.chaos import CoherenceChecker, HistoryRecorder
from repro.chaos.checker import check_conservation
from repro.core import MM_READ_ONLY, MM_READ_WRITE, MM_WRITE_ONLY, \
    SeqTx
from repro.core.scache import ScacheExecutor
from tests.core.conftest import build_system, run_procs

PAGE = 4096
N = PAGE  # one page of uint8


def _install(system, raw_check=True, durability=False):
    checker = CoherenceChecker(raw_check=raw_check,
                               durability=durability)
    system.history = HistoryRecorder(system, checker)
    return checker


def _exchange(system):
    """Two ranks write disjoint halves, flush, read the other half."""
    c0 = system.client(rank=0, node=0)
    c1 = system.client(rank=1, node=1)
    half = N
    ready = [system.sim.event(), system.sim.event()]

    def rank(client, i):
        vec = yield from client.vector("x", dtype=np.uint8,
                                       size=2 * half)
        lo = i * half
        data = ((np.arange(half) + i) % 199).astype(np.uint8)
        yield from vec.tx_begin(SeqTx(lo, half, MM_WRITE_ONLY))
        yield from vec.write_range(lo, data)
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        ready[i].succeed()
        yield ready[1 - i]
        other = (1 - i) * half
        yield from vec.tx_begin(SeqTx(other, half, MM_READ_ONLY))
        out = yield from vec.read_range(other, half)
        yield from vec.tx_end()
        return out

    return rank(c0, 0), rank(c1, 1)


def test_clean_exchange_has_no_violations():
    sim, system = build_system()
    checker = _install(system)
    a, b = run_procs(sim, *_exchange(system))
    assert np.array_equal(a, (np.arange(N) + 1) % 199)
    assert np.array_equal(b, np.arange(N) % 199)
    checker.finalize(system)
    assert checker.violations == []
    assert checker.checked_reads >= 2
    assert system.history.events > 0


def test_trace_hash_is_replayable_and_workload_sensitive():
    hashes = []
    for _ in range(2):
        sim, system = build_system()
        _install(system)
        run_procs(sim, *_exchange(system))
        hashes.append(system.history.trace_hash())
    assert hashes[0] == hashes[1]

    sim, system = build_system()
    _install(system)

    def tiny():
        c = system.client(rank=0, node=0)
        vec = yield from c.vector("x", dtype=np.uint8, size=N)
        yield from vec.tx_begin(SeqTx(0, N, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.zeros(N, np.uint8))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)

    run_procs(sim, tiny())
    assert system.history.trace_hash() != hashes[0]


def _lost_update_workload(system, broken):
    """write v1 -> flush -> write v2 -> dirty evict -> read back.

    With a correct scache the read returns v2 (the acknowledged,
    shipped-but-unflushed write). ``broken`` arms a write path that
    acknowledges v2 and drops it, so the read returns v1 — stale for
    the writing rank itself.
    """
    client = system.client(rank=0, node=0)
    v1 = np.full(N, 3, np.uint8)
    v2 = np.full(N, 9, np.uint8)

    def app():
        vec = yield from client.vector("m", dtype=np.uint8, size=N)
        yield from vec.tx_begin(SeqTx(0, N, MM_READ_WRITE))
        yield from vec.write_range(0, v1)
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        broken["on"] = True
        yield from vec.tx_begin(SeqTx(0, N, MM_READ_WRITE))
        yield from vec.write_range(0, v2)
        yield from vec.tx_end()
        yield from vec.evict_page(0)  # ships the dirty fragments
        yield from client.drain()
        yield from vec.tx_begin(SeqTx(0, N, MM_READ_ONLY))
        out = yield from vec.read_range(0, N)
        yield from vec.tx_end()
        return out

    return app, v1, v2


def _patch_broken_writes(monkeypatch, broken):
    orig_write = ScacheExecutor._write
    orig_write_batch = ScacheExecutor._write_batch

    def bad_write(self, vec, task):
        if broken["on"]:
            return  # acknowledge without applying: a lost update
            yield  # pragma: no cover - marks this as a generator
        yield from orig_write(self, vec, task)

    def bad_write_batch(self, vec, batch):
        if broken["on"]:
            return [None] * len(batch.tasks)
            yield  # pragma: no cover - marks this as a generator
        return (yield from orig_write_batch(self, vec, batch))

    monkeypatch.setattr(ScacheExecutor, "_write", bad_write)
    monkeypatch.setattr(ScacheExecutor, "_write_batch",
                        bad_write_batch)


def test_full_checker_catches_lost_update(monkeypatch):
    sim, system = build_system()
    checker = _install(system, raw_check=True)
    broken = {"on": False}
    _patch_broken_writes(monkeypatch, broken)
    app, v1, _v2 = _lost_update_workload(system, broken)
    out, = run_procs(sim, app())
    # The sabotage really happened: the read surfaced stale v1.
    assert np.array_equal(out, v1)
    assert checker.violations, "full checker missed the lost update"
    assert any(v["check"] == "stale_or_lost_read"
               for v in checker.violations)


def test_weakened_stub_misses_what_the_full_checker_catches(
        monkeypatch):
    sim, system = build_system()
    stub = _install(system, raw_check=False)
    broken = {"on": False}
    _patch_broken_writes(monkeypatch, broken)
    app, v1, _v2 = _lost_update_workload(system, broken)
    out, = run_procs(sim, app())
    assert np.array_equal(out, v1)
    # Same history, read-after-write clause disabled: no detection.
    # This is the mutation the chaos tests exist to catch.
    stub.finalize(system)
    assert stub.violations == []


def test_correct_run_of_the_same_workload_is_clean():
    sim, system = build_system()
    checker = _install(system, raw_check=True)
    # Same script, sabotage never armed (and write paths unpatched):
    # the acknowledged v2 is really applied, so the read-after-write
    # clause is satisfied and the checker stays quiet.
    app, _v1, v2 = _lost_update_workload(system, {"on": False})
    out, = run_procs(sim, app())
    assert np.array_equal(out, v2)
    checker.finalize(system)
    assert checker.violations == []


def _two_version_setup(durability=False):
    """Model state stable=v2 / prev=v1 plus a second-rank reader
    handle whose freshness horizon postdates the barrier, so reading
    v1 is only legal with a crash excuse. Returns
    (checker, model, reader_vec, v1, v2, t_promote)."""
    sim, system = build_system()
    checker = _install(system, durability=durability)
    c0 = system.client(rank=0, node=0)
    c1 = system.client(rank=1, node=1)
    v1 = np.full(N, 3, np.uint8)
    v2 = np.full(N, 9, np.uint8)
    holder = {}

    def writer():
        vec = yield from c0.vector("d", dtype=np.uint8, size=N)
        for data in (v1, v2):
            yield from vec.tx_begin(SeqTx(0, N, MM_WRITE_ONLY))
            yield from vec.write_range(0, data)
            yield from vec.tx_end()
            yield from vec.flush(wait=True)

    def reader_handle():
        holder["vec"] = yield from c1.vector("d", dtype=np.uint8)

    run_procs(sim, writer())
    run_procs(sim, reader_handle())
    m = checker.models["d"]
    assert np.array_equal(m.stable, v2)
    assert np.array_equal(m.prev, v1)
    tp = float(m.promote_t[0])
    # Rank 1 invalidated after the barrier: a stale v1 read needs the
    # crash-rewind excuse, not the bounded-staleness one.
    checker.on_invalidate(holder["vec"], tp + 1e-6)
    return checker, m, holder["vec"], v1, v2, tp


def test_crash_at_exact_barrier_instant_does_not_rebase():
    """A crash landing at exactly t == the barrier-commit instant is
    ordered with the commit: the committed bytes must survive, so a
    pre-barrier read is a violation and the model is not rebased."""
    checker, m, vec, v1, v2, tp = _two_version_setup()
    checker.on_crash(0, tp)
    checker.on_read(vec, 0, v1, tp + 1e-3, tp + 2e-3)
    assert any(v["check"] == "stale_or_lost_read"
               for v in checker.violations)
    assert np.array_equal(m.stable, v2), "committed writes rebased"


def test_crash_strictly_after_barrier_excuses_rewind_and_rebases():
    checker, m, vec, v1, _v2, tp = _two_version_setup()
    checker.on_crash(0, tp + 1e-4)
    checker.on_read(vec, 0, v1, tp + 1e-3, tp + 2e-3)
    assert checker.violations == []
    # The system settled on the older version; the model follows.
    assert np.array_equal(m.stable, v1)


def test_crash_landing_mid_read_excuses_the_rewind():
    """The crash eligibility window is the read's *completion*, not
    its start: a failover triggered while the fetch was in flight can
    legitimately serve the pre-crash replicated version."""
    checker, m, vec, v1, _v2, tp = _two_version_setup()
    t0, now = tp + 1e-4, tp + 1e-3
    checker.on_crash(0, tp + 5e-4)  # t0 < crash < now
    checker.on_read(vec, 0, v1, t0, now)
    assert checker.violations == []


def test_durability_clause_rejects_crash_rewind_of_committed_bytes():
    """Durable mode: bytes promoted at a committed barrier must be
    readable after crash+restart — the crash excuse is off entirely."""
    checker, m, vec, v1, v2, tp = _two_version_setup(durability=True)
    checker.on_crash(0, tp + 1e-4)
    checker.on_read(vec, 0, v1, tp + 1e-3, tp + 2e-3)
    assert any(v["check"] == "stale_or_lost_read"
               for v in checker.violations)
    assert np.array_equal(m.stable, v2)
    # Reading the committed version itself stays legal, of course.
    checker.violations.clear()
    checker.on_read(vec, 0, v2, tp + 3e-3, tp + 4e-3)
    assert checker.violations == []


def test_conservation_check_flags_device_accounting_breach():
    sim, system = build_system()
    assert check_conservation(system) == []
    dev = system.dmshs[0].tier("dram")
    dev.used = dev.capacity + 1
    problems = check_conservation(system)
    assert problems and "outside" in problems[0]
