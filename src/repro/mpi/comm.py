"""Communicators: point-to-point transport and rank bookkeeping."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.net.fabric import Network
from repro.net.message import (
    ANY_SOURCE,
    ANY_TAG,
    Mailbox,
    Message,
    payload_nbytes,
)
from repro.sim import Process, Simulator

#: Tag space reserved for collective algorithms (user tags must stay
#: below this; collectives use COLLECTIVE_TAG_BASE + sequence number).
COLLECTIVE_TAG_BASE = 1 << 24


class MpiWorld:
    """Owns the mailboxes and rank→node mapping for one parallel job."""

    def __init__(self, sim: Simulator, network: Network,
                 rank_to_node: List[int]):
        for node in rank_to_node:
            if not 0 <= node < network.n_nodes:
                raise ValueError(f"rank mapped to unknown node {node}")
        self.sim = sim
        self.network = network
        self.rank_to_node = list(rank_to_node)
        self.size = len(rank_to_node)
        self._mailboxes: Dict[Tuple[int, int], Mailbox] = {}
        self._next_comm_id = 1

    def mailbox(self, comm_id: int, rank: int) -> Mailbox:
        key = (comm_id, rank)
        if key not in self._mailboxes:
            self._mailboxes[key] = Mailbox(self.sim)
        return self._mailboxes[key]

    def alloc_comm_id(self) -> int:
        cid = self._next_comm_id
        self._next_comm_id += 1
        return cid

    def comm(self, rank: int) -> "Comm":
        """COMM_WORLD view for one rank."""
        return Comm(self, comm_id=0, rank=rank,
                    members=list(range(self.size)))


class Comm:
    """One rank's handle on a communicator.

    SPMD contract (as in MPI): all member ranks call collectives in the
    same order. Collective tags are sequenced per rank under that
    contract, isolating overlapping collectives.
    """

    def __init__(self, world: MpiWorld, comm_id: int, rank: int,
                 members: List[int]):
        self.world = world
        self.comm_id = comm_id
        self.rank = rank            # rank within this communicator
        self.members = members      # comm rank -> world rank
        self.size = len(members)
        self._coll_seq = 0
        if rank < 0 or rank >= self.size:
            raise ValueError(f"rank {rank} outside communicator of "
                             f"size {self.size}")

    # -- helpers -----------------------------------------------------------
    @property
    def sim(self) -> Simulator:
        return self.world.sim

    def node_of(self, comm_rank: int) -> int:
        return self.world.rank_to_node[self.members[comm_rank]]

    @property
    def node(self) -> int:
        return self.node_of(self.rank)

    def _mailbox(self, comm_rank: int) -> Mailbox:
        return self.world.mailbox(self.comm_id, self.members[comm_rank])

    # -- point to point ------------------------------------------------------
    def send(self, payload: Any, dest: int, tag: int = 0):
        """Blocking-ish send: returns after the wire transfer completes.

        NumPy payloads are copied at the call boundary (the simulated
        receiver must not alias the sender's live buffer).
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} outside communicator")
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        nbytes = payload_nbytes(payload)
        dst_node = self.node_of(dest)
        boundary = self.world.network.boundary
        if boundary is not None and not boundary.local_node(dst_node):
            # Sharded run, destination rank lives in another rack's
            # simulator: pay the sender-side cost here and hand the
            # message (with its delivery time) to the shard boundary;
            # the coordinator injects it into the destination rack at
            # the window barrier.
            msg = Message(src=self.rank, dst=dest, tag=tag,
                          payload=payload, nbytes=nbytes)
            key = (self.comm_id, self.members[dest])
            yield from self.world.network.transfer_export(
                self.node, dst_node, nbytes,
                lambda t: boundary.export(t, dst_node, key, msg))
            return
        yield from self.world.network.transfer(
            self.node, dst_node, nbytes)
        self._mailbox(dest).deliver(
            Message(src=self.rank, dst=dest, tag=tag, payload=payload,
                    nbytes=nbytes))

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Process:
        """Nonblocking send; yield the returned process to wait.

        The payload is captured (NumPy arrays copied) *now*, so the
        caller may reuse its buffer immediately — eager-send semantics.
        """
        if isinstance(payload, np.ndarray):
            payload = payload.copy()
        return self.sim.process(self.send(payload, dest, tag),
                                name=f"isend r{self.rank}->r{dest}")

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive; returns the payload."""
        msg = yield self._mailbox(self.rank).receive(source, tag)
        return msg.payload

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Nonblocking receive: returns an event whose value is the
        message; use ``(yield req).payload``."""
        return self._mailbox(self.rank).receive(source, tag)

    def sendrecv(self, payload: Any, dest: int, source: int,
                 tag: int = 0):
        """Simultaneous exchange (deadlock-free)."""
        req = self.isend(payload, dest, tag)
        msg = yield self._mailbox(self.rank).receive(source, tag)
        yield req
        return msg.payload

    # -- collectives (implemented in collectives.py, bound here) -------------
    def _next_coll_tag(self) -> int:
        # Stride leaves room for per-round sub-tags (alltoall uses
        # tag + round for up to size-1 rounds).
        tag = COLLECTIVE_TAG_BASE + self._coll_seq * 65536
        self._coll_seq += 1
        return tag

    def barrier(self):
        from repro.mpi.collectives import barrier
        return barrier(self)

    def bcast(self, payload: Any, root: int = 0):
        from repro.mpi.collectives import bcast
        return bcast(self, payload, root)

    def reduce(self, value: Any, op: Callable[[Any, Any], Any],
               root: int = 0):
        from repro.mpi.collectives import reduce as _reduce
        return _reduce(self, value, op, root)

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]):
        from repro.mpi.collectives import allreduce
        return allreduce(self, value, op)

    def gather(self, value: Any, root: int = 0):
        from repro.mpi.collectives import gather
        return gather(self, value, root)

    def allgather(self, value: Any):
        from repro.mpi.collectives import allgather
        return allgather(self, value)

    def scatter(self, values: Optional[List[Any]], root: int = 0):
        from repro.mpi.collectives import scatter
        return scatter(self, values, root)

    def alltoall(self, values: List[Any]):
        from repro.mpi.collectives import alltoall
        return alltoall(self, values)

    # -- communicator management ----------------------------------------------
    def split(self, color: int, key: Optional[int] = None):
        """Partition into sub-communicators by color (``MPI_Comm_split``).

        Generator returning this rank's new :class:`Comm` (or ``None``
        for a negative color). Collective over this communicator.
        """
        from repro.mpi.collectives import allgather
        key = self.rank if key is None else key
        triples = yield from allgather(self, (color, key, self.rank))
        # Communicator ids must be identical across members: derive the
        # id deterministically from the split sequence, not allocation
        # order. Reserve a block of ids on the world per split.
        base_id = None
        if self.rank == 0:
            base_id = self.world.alloc_comm_id() * 4096
        base_id = yield from self.bcast(base_id, root=0)
        if color < 0:
            return None
        same = sorted(
            [(k, r) for c, k, r in triples if c == color])
        members = [self.members[r] for _, r in same]
        my_index = [r for _, r in same].index(self.rank)
        colors = sorted({c for c, _, _ in triples if c >= 0})
        new_id = base_id + colors.index(color)
        return Comm(self.world, comm_id=new_id, rank=my_index,
                    members=members)
