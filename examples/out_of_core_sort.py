#!/usr/bin/env python
"""Out-of-core distributed sample sort on MegaMmap vectors.

A workload the paper's intro motivates but does not evaluate: sorting
a dataset larger than DRAM. The input and output are shared vectors;
per-process memory stays bounded while the DSM spills to NVMe. The
classic sample-sort structure:

1. each process scans its PGAS partition, drawing a sample;
2. splitters are agreed via allgather;
3. buckets are exchanged alltoall;
4. each process sorts its bucket and writes it to the output vector at
   its globally computed offset (an exclusive-scan of bucket sizes).

Run:  python examples/out_of_core_sort.py
"""

import numpy as np

from repro.cluster import SimCluster
from repro.core import MM_READ_ONLY, MM_WRITE_ONLY, SeqTx
from repro.core.config import MegaMmapConfig
from repro.storage.tiers import DRAM, MB, NVME, scaled

N = 512 * 1024  # int64 elements = 4 MB, vs 2 MB DRAM per node


def sample_sort(ctx):
    vec = yield from ctx.mm.vector("unsorted", dtype=np.int64, size=N)
    out = yield from ctx.mm.vector("sorted", dtype=np.int64, size=N)
    for v in (vec, out):
        v.bound_memory(256 * 1024)
        v.pgas(ctx.rank, ctx.nprocs)

    # Fill the input with per-process random data.
    rng = ctx.rng
    tx = yield from vec.tx_begin(SeqTx(vec.local_off(),
                                       vec.local_size(), MM_WRITE_ONLY))
    while True:
        chunk = yield from vec.next_chunk()
        if chunk is None:
            break
        chunk.data[:] = rng.integers(0, 1 << 40, size=len(chunk))
    yield from vec.tx_end()
    yield from vec.flush(wait=True)
    yield from ctx.barrier()

    # Pass 1: sample while streaming the local partition.
    sample = []
    buckets = [[] for _ in range(ctx.nprocs)]
    tx = yield from vec.tx_begin(SeqTx(vec.local_off(),
                                       vec.local_size(), MM_READ_ONLY))
    chunks = []
    while True:
        chunk = yield from vec.next_chunk()
        if chunk is None:
            break
        yield from ctx.compute_bytes(chunk.data.nbytes)
        chunks.append(chunk.data.copy())
        sample.append(rng.choice(chunk.data,
                                 size=min(8, len(chunk))))
    yield from vec.tx_end()
    local = np.concatenate(chunks) if chunks else np.empty(0, np.int64)

    samples = yield from ctx.comm.allgather(np.concatenate(sample))
    pool = np.sort(np.concatenate(samples))
    splitters = pool[np.linspace(0, len(pool) - 1,
                                 ctx.nprocs + 1).astype(int)][1:-1]

    # Pass 2: bucket the local data and exchange alltoall.
    dest = np.searchsorted(splitters, local, side="right")
    outgoing = [local[dest == p] for p in range(ctx.nprocs)]
    incoming = yield from ctx.comm.alltoall(outgoing)
    mine = np.sort(np.concatenate(incoming))
    yield from ctx.compute_bytes(mine.nbytes * 4)  # sort cost

    # Exclusive scan of bucket sizes gives each process its offset.
    sizes = yield from ctx.comm.allgather(len(mine))
    offset = int(np.sum(sizes[:ctx.rank]))

    tx = yield from out.tx_begin(SeqTx(offset, len(mine),
                                       MM_WRITE_ONLY))
    yield from out.write_range(offset, mine)
    yield from out.tx_end()
    yield from out.flush(wait=True)
    yield from ctx.barrier()
    return offset, len(mine)


def verify(ctx):
    out = yield from ctx.mm.vector("sorted", dtype=np.int64)
    out.bound_memory(256 * 1024)
    if ctx.rank != 0:
        return True
    tx = yield from out.tx_begin(SeqTx(0, N, MM_READ_ONLY))
    prev = -1
    ok = True
    while True:
        chunk = yield from out.next_chunk()
        if chunk is None:
            break
        arr = chunk.data
        ok &= bool(np.all(np.diff(arr) >= 0)) and arr[0] >= prev
        prev = int(arr[-1])
    yield from out.tx_end()
    return ok


def main():
    cluster = SimCluster(
        n_nodes=4, procs_per_node=2, pfs_servers=1,
        tiers=(scaled(DRAM, 2 * MB), scaled(NVME, 64 * MB)),
        config=MegaMmapConfig(page_size=64 * 1024),
    )
    res = cluster.run(sample_sort)
    total = sum(n for _, n in res.values)
    assert total == N, f"lost elements: {total} != {N}"
    check = cluster.run(verify)
    assert all(check.values), "output not sorted!"
    nvme = sum(d.tier("nvme").used for d in cluster.dmshs)
    print(f"sorted {N} int64s ({N * 8 / 2**20:.0f} MB) with only "
          f"{cluster.dmshs[0].tiers[0].capacity / 2**20:.0f} MB DRAM/node")
    print(f"NVMe holding {nvme / 2**20:.1f} MB of spilled pages")
    print(f"simulated runtime: {res.runtime * 1e3:.1f} ms  [OK]")


if __name__ == "__main__":
    main()
