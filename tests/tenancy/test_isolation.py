"""Spill-don't-evict: an over-quota tenant cannot degrade a neighbor.

The regression these tests pin down: scache admission used to be
tenant-blind — a streaming antagonist's hot stage-ins would demote a
small tenant's resident pages out of DRAM (``_demote_colder`` picks
the coldest blobs regardless of owner). With per-tenant DRAM quotas
installed, an antagonist at its quota takes the *next tier down* for
its own new placements instead, and the victim's hit ratio can never
fall below the floor its own quota implies (1.0 when its working set
fits its slice).
"""

import pytest

from repro.tenancy import QuotaManager, TenantQuota
from tests.core.conftest import build_system

KB = 1024
MB = 1024 * 1024


def _run(sim, gen):
    return sim.run(until=sim.process(gen))


def _victim_fills(h, nbytes, score=0.4, chunk=64 * KB):
    for i in range(nbytes // chunk):
        yield from h.put(0, "victim-bkt", f"v{i}", b"v" * chunk,
                         score=score)


def _antagonist_streams(h, nbytes, score=1.0, chunk=64 * KB):
    for i in range(nbytes // chunk):
        yield from h.put(0, "antag-bkt", f"a{i}", b"a" * chunk,
                         score=score)


def test_unquotaed_antagonist_demotes_the_victim():
    # Control: without quotas the attack works — the antagonist's
    # hotter placements push the victim's colder blobs out of DRAM.
    # (This is the behavior satellite 2 exists to prevent.)
    sim, system = build_system(n_nodes=1, dram_mb=1, nvme_mb=64,
                               organizer_enabled=False)
    qm = QuotaManager(system)
    qm.register(TenantQuota(name="victim"))
    qm.register(TenantQuota(name="antag"))  # no quotas: unbounded
    qm.claim_bucket("victim-bkt", "victim")
    qm.claim_bucket("antag-bkt", "antag")
    h = system.hermes

    def proc():
        yield from _victim_fills(h, 512 * KB)
        yield from _antagonist_streams(h, 2 * MB)

    _run(sim, proc())
    victim_dram = sum(
        i.nbytes for i in h.mdm.all_blobs()
        if i.bucket == "victim-bkt" and i.tier == "dram")
    assert victim_dram == 0  # fully demoted: the attack succeeded


def test_quotaed_antagonist_spills_instead_of_evicting():
    # Same pressure, but the antagonist has a small DRAM quota: its
    # placements past the quota go straight to the next tier and the
    # victim's working set stays resident in DRAM, byte for byte.
    sim, system = build_system(n_nodes=1, dram_mb=1, nvme_mb=64,
                               organizer_enabled=False)
    qm = QuotaManager(system)
    qm.register(TenantQuota(name="victim", dram_quota=768 * KB))
    qm.register(TenantQuota(name="antag", dram_quota=128 * KB))
    qm.claim_bucket("victim-bkt", "victim")
    qm.claim_bucket("antag-bkt", "antag")
    h = system.hermes

    def proc():
        yield from _victim_fills(h, 512 * KB)
        yield from _antagonist_streams(h, 2 * MB)

    _run(sim, proc())
    victim_dram = sum(
        i.nbytes for i in h.mdm.all_blobs()
        if i.bucket == "victim-bkt" and i.tier == "dram")
    antag_dram = sum(
        i.nbytes for i in h.mdm.all_blobs()
        if i.bucket == "antag-bkt" and i.tier == "dram")
    assert victim_dram == 512 * KB          # untouched
    assert antag_dram <= 128 * KB           # held to its quota
    assert qm.tenants["antag"].scache_used == 2 * MB  # spilled, not lost


def test_victim_hit_ratio_never_falls_below_its_quota_floor():
    # The victim's working set fits its DRAM quota, so every one of
    # its reads must be a fast-tier hit — a streaming antagonist
    # cannot pull that below 1.0. Without quotas the same scenario
    # drops the victim to a 0% fast-read ratio.
    def scenario(antag_quota):
        sim, system = build_system(n_nodes=1, dram_mb=1, nvme_mb=64,
                                   organizer_enabled=False)
        qm = QuotaManager(system)
        qm.register(TenantQuota(name="victim", dram_quota=768 * KB))
        qm.register(TenantQuota(name="antag",
                                dram_quota=antag_quota))
        qm.claim_bucket("victim-bkt", "victim")
        qm.claim_bucket("antag-bkt", "antag")
        h = system.hermes

        def proc():
            yield from _victim_fills(h, 512 * KB)
            for _ in range(3):  # interleave streams with re-reads
                yield from _antagonist_streams(h, 1 * MB)
                for i in range(512 * KB // (64 * KB)):
                    yield from h.get(0, "victim-bkt", f"v{i}")

        _run(sim, proc())
        return qm.hit_ratio("victim")

    assert scenario(antag_quota=None) < 1.0       # attack works...
    assert scenario(antag_quota=128 * KB) == 1.0  # ...quota stops it


def test_over_quota_scache_footprint_also_floors_admission():
    # The second admission clause: a tenant whose *total* scache
    # footprint exceeds its scache quota is floored out of DRAM even
    # when its DRAM slice itself has room.
    sim, system = build_system(n_nodes=1, dram_mb=4, nvme_mb=64,
                               organizer_enabled=False)
    qm = QuotaManager(system)
    qm.register(TenantQuota(name="A", scache_quota=256 * KB))
    qm.claim_bucket("a-bkt", "A")
    h = system.hermes

    def proc():
        # First 4 puts fit the scache quota -> DRAM; once the
        # footprint exceeds it, later puts are floored to nvme.
        for i in range(8):
            yield from h.put(0, "a-bkt", f"k{i}", b"x" * (64 * KB))

    _run(sim, proc())
    tiers = {i.key: i.tier for i in h.mdm.all_blobs()
             if i.bucket == "a-bkt"}
    assert tiers["k0"] == "dram"
    assert tiers["k7"] == "nvme"
