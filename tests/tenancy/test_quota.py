"""Per-tenant ledger accounting: credits, owner-debits, quotas.

The regression these tests pin down: accounting used to be
tenant-blind — when tenant B's placement pressure demoted or evicted
tenant A's blob, nothing recorded whose bytes left the fast tier, so
B could launder its footprint onto A. Every debit must now land on
the bucket *owner's* ledger regardless of which tenant's activity
triggered it, and the incremental hook accounting must always agree
with a from-scratch metadata sweep (``QuotaManager.ledger_sweep``).
"""

import numpy as np
import pytest

from repro.core import MM_READ_ONLY, MM_WRITE_ONLY, SeqTx
from repro.tenancy import QuotaManager, TenantQuota
from tests.core.conftest import build_system, run_procs

KB = 1024


def _manager(system, *quotas):
    qm = QuotaManager(system)
    for q in quotas:
        qm.register(q)
    return qm


def _assert_ledgers_match_sweep(qm):
    sweep = qm.ledger_sweep()
    for name, t in qm.tenants.items():
        assert t.scache_used == sweep[name]["scache"], name
        assert t.dram_used == sweep[name]["dram"], name


def test_creation_credits_the_owner():
    sim, system = build_system(n_nodes=1)
    qm = _manager(system, TenantQuota(name="A"), TenantQuota(name="B"))
    qm.claim_bucket("a-bkt", "A")
    h = system.hermes

    def proc():
        yield from h.put(0, "a-bkt", "k", b"x" * (64 * KB))

    sim.run(until=sim.process(proc()))
    assert qm.tenants["A"].scache_used == 64 * KB
    assert qm.tenants["A"].dram_used == 64 * KB
    assert qm.tenants["B"].scache_used == 0
    _assert_ledgers_match_sweep(qm)


def test_cross_tenant_demotion_debits_the_owner_not_the_evictor():
    # A fills DRAM with colder blobs; B's hot placement demotes them.
    # The DRAM debit must land on A's ledger (B pays only for its own
    # bytes), and A keeps its total scache footprint — demoted, not
    # destroyed.
    sim, system = build_system(n_nodes=1, dram_mb=1, nvme_mb=32)
    qm = _manager(system, TenantQuota(name="A"), TenantQuota(name="B"))
    qm.claim_bucket("a-bkt", "A")
    qm.claim_bucket("b-bkt", "B")
    h = system.hermes
    a_bytes = 768 * KB

    def proc():
        yield from h.put(0, "a-bkt", "k", b"x" * a_bytes, score=0.3)
        yield from h.put(0, "b-bkt", "k", b"y" * a_bytes, score=1.0)

    sim.run(until=sim.process(proc()))
    A, B = qm.tenants["A"], qm.tenants["B"]
    assert A.scache_used == a_bytes       # still owns its bytes
    assert A.dram_used == 0               # ... but they left DRAM
    assert B.dram_used == a_bytes         # B pays for B
    info = h.mdm.peek("a-bkt", "k")
    assert info.tier != "dram"
    _assert_ledgers_match_sweep(qm)


def test_delete_debits_the_owner():
    sim, system = build_system(n_nodes=1)
    qm = _manager(system, TenantQuota(name="A"))
    qm.claim_bucket("a-bkt", "A")
    h = system.hermes

    def proc():
        yield from h.put(0, "a-bkt", "k", b"x" * (32 * KB))
        yield from h.delete(0, "a-bkt", "k")

    sim.run(until=sim.process(proc()))
    assert qm.tenants["A"].scache_used == 0
    assert qm.tenants["A"].dram_used == 0
    _assert_ledgers_match_sweep(qm)


def test_two_tenant_client_workload_ledgers_match_metadata():
    # End-to-end regression through the real client path: two tenants
    # write/flush/read through their own bound clients; hook
    # accounting (create, demote, evict, rewrite) must equal the
    # ground-truth metadata sweep at every quiescent point.
    sim, system = build_system(n_nodes=2, dram_mb=1, nvme_mb=32)
    qm = _manager(system, TenantQuota(name="A"), TenantQuota(name="B"))
    n = 64 * KB  # int32 elements -> 256 KB per tenant

    def tenant(rank, node, name, value):
        client = system.client(rank=rank, node=node)
        client.bind_tenant(qm.tenants[name])

        def app():
            vec = yield from client.vector("data", dtype=np.int32,
                                           size=n)
            vec.bound_memory(16 * 4096)
            yield from vec.tx_begin(SeqTx(0, n, MM_WRITE_ONLY))
            yield from vec.write_range(
                0, np.full(n, value, dtype=np.int32))
            yield from vec.tx_end()
            yield from vec.flush(wait=True)
            yield from vec.tx_begin(SeqTx(0, n, MM_READ_ONLY))
            out = yield from vec.read_range(0, n)
            yield from vec.tx_end()
            return np.unique(out).tolist()

        return app

    res_a, res_b = run_procs(sim, tenant(0, 0, "A", 11)(),
                             tenant(1, 1, "B", 22)())
    assert res_a == [11]
    assert res_b == [22]
    # Namespacing: each tenant got its own vector under a scoped key.
    assert "A::data" in system.vectors
    assert "B::data" in system.vectors
    assert qm.bucket_owner["A::data"] == "A"
    assert qm.bucket_owner["B::data"] == "B"
    assert qm.tenants["A"].scache_used > 0
    assert qm.tenants["B"].scache_used > 0
    _assert_ledgers_match_sweep(qm)


def test_bucket_ownership_is_first_creator_wins():
    sim, system = build_system(n_nodes=1)
    qm = _manager(system, TenantQuota(name="A"), TenantQuota(name="B"))
    qm.claim_bucket("shared", "A")
    qm.claim_bucket("shared", "B")  # later attach: no transfer
    assert qm.bucket_owner["shared"] == "A"


def test_pcache_quota_bounds_a_tenants_private_cache():
    # A pcache quota below the per-vector budget forces self-eviction
    # in _make_room: as long as no single transaction pins a range
    # larger than the quota, the tenant's cluster-wide pcache usage
    # settles at or under its quota while data stays correct.
    sim, system = build_system(n_nodes=1)
    quota = 8 * 4096
    qm = _manager(system, TenantQuota(name="A", pcache_quota=quota))
    client = system.client(rank=0, node=0)
    client.bind_tenant(qm.tenants["A"])
    n = 16 * KB  # 64 KB of int32, 16 pages @ 4096
    half = n // 2

    def app():
        vec = yield from client.vector("big", dtype=np.int32, size=n)
        vec.bound_memory(32 * 4096)  # vector budget >> tenant quota
        yield from vec.tx_begin(SeqTx(0, n, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.arange(n, dtype=np.int32))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        parts = []
        for lo in (0, half):  # two half-range read transactions
            yield from vec.tx_begin(SeqTx(lo, half, MM_READ_ONLY))
            parts.append((yield from vec.read_range(lo, half)))
            yield from vec.tx_end()
        return np.concatenate(parts)

    out = run_procs(sim, app())[0]
    assert np.array_equal(out, np.arange(n, dtype=np.int32))
    assert qm.tenants["A"].pcache_used <= quota


def test_pcache_quota_is_soft_under_a_pinned_transaction():
    # A single transaction over a range larger than the quota pins all
    # its frames (correctness beats quota), but the overcommit counter
    # records every byte charged beyond the quota so operators can see
    # the pressure.
    sim, system = build_system(n_nodes=1)
    quota = 8 * 4096
    qm = _manager(system, TenantQuota(name="A", pcache_quota=quota))
    client = system.client(rank=0, node=0)
    client.bind_tenant(qm.tenants["A"])
    n = 16 * KB

    def app():
        vec = yield from client.vector("big", dtype=np.int32, size=n)
        vec.bound_memory(32 * 4096)
        yield from vec.tx_begin(SeqTx(0, n, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.arange(n, dtype=np.int32))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        yield from vec.tx_begin(SeqTx(0, n, MM_READ_ONLY))
        out = yield from vec.read_range(0, n)
        yield from vec.tx_end()
        return out

    out = run_procs(sim, app())[0]
    assert np.array_equal(out, np.arange(n, dtype=np.int32))
    over = system.monitor.metrics.counter(
        "tenant_pcache_overcommit", tenant="A")
    assert over.value > 0


def test_duplicate_registration_rejected():
    sim, system = build_system(n_nodes=1)
    qm = _manager(system, TenantQuota(name="A"))
    from repro.tenancy import QuotaExceededError
    with pytest.raises(QuotaExceededError):
        qm.register(TenantQuota(name="A"))


def test_nonvolatile_keys_stay_global_volatile_keys_scoped():
    sim, system = build_system(n_nodes=1)
    qm = _manager(system, TenantQuota(name="A"))
    t = qm.tenants["A"]
    assert t.scoped_key("scratch") == "A::scratch"
    assert t.scoped_key("parquet:///data/p.parquet") == \
        "parquet:///data/p.parquet"
