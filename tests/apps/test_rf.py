"""Random Forest: unit tests for the split machinery + both versions."""

import numpy as np
import pytest

from repro.apps.datagen import PARTICLE, generate_points, write_gadget_like
from repro.apps.rf.common import (
    FEATURE6,
    accuracy,
    best_split,
    class_counts,
    edges_from_minmax,
    hist_stats,
    leaf_label,
    merge_hists,
    merge_minmax,
    minmax_stats,
    predict_tree,
    reference_tree,
    rf_predict,
    to_features,
)
from repro.apps.rf.mm_rf import mm_random_forest
from repro.apps.rf.spark_rf import spark_random_forest
from repro.sim.rand import rng_stream
from repro.storage import open_backend
from tests.apps.conftest import make_cluster


def toy_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = (X[:, 1] > 0.5).astype(np.int64)  # single clean split
    return X, y


def test_minmax_merge_identity_on_empty():
    X, _ = toy_data()
    a = minmax_stats(X, [0, 1])
    e = minmax_stats(np.empty((0, 3)), [0, 1])
    merged = merge_minmax(a, e)
    assert np.allclose(merged[0], a[0])
    assert np.allclose(merged[1], a[1])


def test_hist_stats_total_matches_population():
    X, y = toy_data()
    edges = edges_from_minmax(*minmax_stats(X, [1]))
    hists = hist_stats(X, y, [1], edges)
    assert hists[0].sum() == len(X)


def test_hist_merge_equals_joint():
    X, y = toy_data()
    edges = edges_from_minmax(*minmax_stats(X, [0, 2]))
    whole = hist_stats(X, y, [0, 2], edges)
    parts = merge_hists(
        hist_stats(X[:200], y[:200], [0, 2], edges),
        hist_stats(X[200:], y[200:], [0, 2], edges))
    for w, p in zip(whole, parts):
        assert np.array_equal(w, p)


def test_best_split_finds_the_clean_feature():
    X, y = toy_data()
    subset = [0, 1, 2]
    edges = edges_from_minmax(*minmax_stats(X, subset))
    hists = hist_stats(X, y, subset, edges)
    f, th, gain = best_split(subset, edges, hists)
    assert f == 1
    assert abs(th - 0.5) < 0.5
    assert gain > 0.1


def test_best_split_none_on_pure_node():
    X, _ = toy_data()
    y = np.zeros(len(X), dtype=np.int64)
    edges = edges_from_minmax(*minmax_stats(X, [0]))
    hists = hist_stats(X, y, [0], edges)
    f, _, gain = best_split([0], edges, hists)
    assert f is None or gain <= 1e-9


def test_reference_tree_learns_and_predicts():
    X, y = toy_data(800)
    tree = reference_tree(X, y, max_depth=4,
                          rng=rng_stream(0, "t"))
    pred = predict_tree(tree, X)
    assert accuracy(pred, y) > 0.9


def test_rf_predict_majority_vote():
    t_a = {"leaf": 0}
    t_b = {"leaf": 1}
    X = np.zeros((3, 2))
    assert list(rf_predict([t_a, t_a, t_b], X)) == [0, 0, 0]


def test_leaf_label_and_class_counts():
    y = np.array([2, 2, 5])
    counts = class_counts(y)
    assert counts[2] == 2 and counts[5] == 1
    assert leaf_label(counts) == 2


@pytest.fixture(scope="module")
def rf_dataset(tmp_path_factory):
    """A Gadget-like snapshot + labels file (the paper's RF input:
    particle features predict halo membership)."""
    base = tmp_path_factory.mktemp("rf")
    snap = base / "snap.h5"
    labels = write_gadget_like(str(snap), 6000, 3, seed=21)
    # RF needs nonnegative classes: background (-1) -> class 0,
    # halos -> 1..k (as the paper's cluster assignments from KMeans).
    classes = (labels + 1).astype(np.int32)
    lab_path = base / "labels.bin"
    classes.tofile(lab_path)
    pts, _ = generate_points(6000, 3, seed=21, with_velocity=True)
    return (f"hdf5://{snap}:parttype0", f"posix://{lab_path}",
            to_features(pts), classes.astype(np.int64))


def test_mm_rf_learns_halo_membership(rf_dataset):
    url, labels_url, X, y = rf_dataset
    cluster = make_cluster()
    res = cluster.run(mm_random_forest, url, labels_url, 3, 8, 2)
    trees = res.values[0]
    # SPMD: all ranks build identical trees.
    for other in res.values[1:]:
        assert other == trees
    pred = rf_predict(trees, X)
    assert accuracy(pred, y) > 0.8


def test_mm_rf_num_trees(rf_dataset):
    url, labels_url, _, _ = rf_dataset
    cluster = make_cluster()
    res = cluster.run(mm_random_forest, url, labels_url, 2, 4, 4)
    assert len(res.values[0]) == 2


def test_spark_rf_learns_halo_membership(rf_dataset):
    url, labels_url, X, y = rf_dataset
    cluster = make_cluster()
    res = cluster.run_driver(spark_random_forest(
        cluster, url, labels_url, num_trees=3, max_depth=8, oob=2,
        test_X=X, test_y=y))
    trees, acc = res.values[0]
    assert len(trees) == 3
    assert acc > 0.8


def test_rf_mm_and_spark_agree_roughly(rf_dataset):
    url, labels_url, X, y = rf_dataset
    c1 = make_cluster()
    mm_trees = c1.run(mm_random_forest, url, labels_url, 1, 8, 2
                      ).values[0]
    c2 = make_cluster()
    sp_trees, _ = c2.run_driver(spark_random_forest(
        c2, url, labels_url, num_trees=1, max_depth=8, oob=2)).values[0]
    mm_acc = accuracy(rf_predict(mm_trees, X), y)
    sp_acc = accuracy(rf_predict(sp_trees, X), y)
    assert abs(mm_acc - sp_acc) < 0.15
