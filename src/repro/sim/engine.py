"""Core discrete-event engine: events, processes, and the simulator loop.

Design notes
------------
* Events carry a value or an exception. Triggering an event schedules
  it on the simulator; its callbacks run when the scheduler pops it.
* A :class:`Process` wraps a generator. Each ``yield`` must produce an
  :class:`Event`; the process resumes with the event's value (or the
  exception is thrown into the generator). ``return x`` sets the
  process's own event value, so processes compose: one process can
  ``yield`` another.
* The schedule is ordered by ``(time, priority, seq)``; ``seq`` keeps
  FIFO order among simultaneous events, which makes every simulation
  run bit-for-bit deterministic.

Fast paths (see DESIGN.md, "Kernel fast paths")
-----------------------------------------------
Most events in a MegaMmap run are *immediate*: control transfers at
the current timestamp (process resumption, store hand-offs, lock
grants, zero-delay timeouts). Two fast paths keep them off the time
heap without changing the processing order:

* **Microqueue** — zero-delay events land in per-priority FIFO deques
  instead of the heap. Because time only advances when both deques are
  empty, every deque entry has ``time == now`` and FIFO order equals
  ``seq`` order; :meth:`Simulator.step` merges the deque heads with
  the heap head under the exact ``(time, priority, seq)`` comparison,
  so the pop order is identical to the heap-only kernel.
* **Trampoline** — when a process yields an event that is *already
  triggered* and is *exactly the event step() would pop next*, the
  process consumes it inline (running any other callbacks first, just
  as ``step()`` would) and keeps executing without returning to the
  scheduler. Chains of immediate events then run entirely inside one
  ``_resume`` call.
* **Far-timer wheel** — delayed events whose horizon exceeds
  ``wheel_threshold`` (service periods, long compute timeouts) bypass
  the heap into a numpy-backed far store: an unsorted append-only
  level above the heap. Entries are promoted back into the heap in
  time-sliced cohorts (one vectorized mask + a batched heap insert)
  the moment the far minimum could become the next pop, so the heap
  stays small for the dense near-term traffic while far timers cost
  O(1) amortized to park. Promotion re-inserts the original ``(time,
  priority, seq)`` tuples, so the pop order — and therefore every
  simulated result — is bit-for-bit identical to the heap-only kernel.

``MEGAMMAP_SLOW_KERNEL=1`` (or ``Simulator(fast=False)``) disables
all three paths, restoring the heap-only kernel — simulated results
and timings are bit-for-bit identical either way; only wall-clock
differs.
"""

from __future__ import annotations

import heapq
import os
import random
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

import numpy as np

#: Priority for "urgent" events (process resumption) so that control
#: transfer happens before same-time ordinary timeouts.
URGENT = 0
NORMAL = 1

_PENDING = object()


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """An occurrence at a point in simulated time.

    An event starts *pending*; it becomes *triggered* once
    :meth:`succeed` or :meth:`fail` is called (the simulator then owns
    it), and *processed* once its callbacks have run.
    """

    # ``_qseq`` is assigned lazily: only microqueued events carry their
    # schedule sequence number (the heap keeps seq in its entry tuple),
    # so pending events stay one slot-write cheaper to construct.
    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled",
                 "processed", "_qseq")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self.processed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        sim = self.sim
        # Inlined microqueue schedule: an immediate NORMAL succeed is
        # the hottest call in the kernel (store hand-offs, lock grants,
        # rpc completions), so skip the _schedule() call for it.
        if sim._fast and priority == NORMAL and not self._scheduled:
            self._scheduled = True
            seq = sim._seq
            sim._seq = seq + 1
            self._qseq = seq
            sim._imm_normal.append(self)
            return self
        sim._schedule(self, priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError(f"{exc!r} is not an exception")
        self._ok = False
        self._value = exc
        self.sim._schedule(self, priority)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """Event that fires automatically ``delay`` time units from now."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, NORMAL, delay)


class Initialize(Event):
    """Internal: kicks off a newly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self.callbacks = [process._resume]
        self._ok = True
        self._value = None
        sim._schedule(self, URGENT)


class Process(Event):
    """A running generator inside the simulation.

    The process is itself an event that triggers when the generator
    returns (value = return value) or raises (event fails).
    """

    __slots__ = ("gen", "name", "_target")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(f"{gen!r} is not a generator")
        super().__init__(sim)
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self._target: Optional[Event] = None
        Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"{self.name} already terminated")
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        evt = Event(self.sim)
        evt.callbacks = [self._resume]
        evt._ok = False
        evt._value = Interrupt(cause)
        self.sim._schedule(evt, URGENT)

    # -- engine hook ----------------------------------------------------
    def _resume(self, event: Event) -> None:
        sim = self.sim
        gen = self.gen
        sim._active = self
        # The deques/heap objects are never reassigned on the
        # Simulator, so they are safe to hoist out of the hot loop.
        imm_urgent = sim._imm_urgent
        imm_normal = sim._imm_normal
        heap = sim._heap
        pending = _PENDING
        # _tail is loop-invariant here: it is True iff this _resume ran
        # as the sole callback of the event step() is processing, and
        # the trampoline below always restores it after running nested
        # callbacks. _stop's identity can only change across run()
        # calls, never mid-chain (only its .processed flips).
        tail = sim._tail
        stop = sim._stop
        evt: Optional[Event] = event
        # Trampoline count is accumulated locally and flushed once per
        # _resume call — a per-event instance-attribute increment would
        # cost as much as the scheduling it saves.
        tramps = 0
        while True:
            try:
                if evt is None:
                    target = next(gen)
                elif evt._ok:
                    target = gen.send(evt._value)
                else:
                    # mark the failure as handled by this process
                    target = gen.throw(evt._value)
            except StopIteration as stop:
                sim._active = None
                sim.trampolines += tramps
                self.succeed(stop.value, priority=URGENT)
                return
            except BaseException as exc:
                sim._active = None
                sim.trampolines += tramps
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                self.fail(exc, priority=URGENT)
                return
            try:
                wrong_sim = target.sim is not sim
            except AttributeError:
                wrong_sim = True
            if wrong_sim:
                sim._active = None
                if isinstance(target, Event):
                    raise SimulationError(
                        "yielded event belongs to a different Simulator")
                raise SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}")
            cbs = target.callbacks
            if target.processed or cbs is None:
                # Already fired: resume immediately with its value.
                evt = target
                continue
            if tail and target._value is not pending \
                    and (stop is None or not stop.processed):
                # Trampoline: the target is triggered and waiting in a
                # microqueue. If it is exactly the event step() would
                # pop next — we are the last callback of the event
                # being processed, so nothing runs between "now" and
                # that pop — consume it inline instead of bouncing
                # through the scheduler. Any other callbacks registered
                # on the target run first, exactly as step() would run
                # them (our own continuation was not appended yet, so
                # it comes last either way).
                q = imm_urgent
                prio = URGENT
                if not q:
                    q = imm_normal
                    prio = NORMAL
                if q and q[0] is target:
                    next_is_target = True
                    if heap:
                        h = heap[0]
                        if h[0] == sim.now and (
                                h[1] < prio
                                or (h[1] == prio and h[2] < target._qseq)):
                            next_is_target = False
                    if next_is_target:
                        q.popleft()
                        target.callbacks = None
                        if cbs:
                            sim._tail = False
                            for cb in cbs:
                                cb(target)
                            sim._tail = True
                            sim._active = self
                        target.processed = True
                        tramps += 1
                        evt = target
                        continue
            cbs.append(self._resume)
            self._target = target
            sim._active = None
            sim.trampolines += tramps
            return


class _Condition(Event):
    """Base for AllOf/AnyOf: composite over several events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        for evt in self.events:
            if evt.sim is not sim:
                raise SimulationError("condition spans multiple simulators")
        if not self.events:
            self.succeed([])
            return
        for evt in self.events:
            if evt.callbacks is None or evt.processed:
                self._check(evt)
            else:
                evt.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when all constituent events have triggered.

    Value is the list of constituent values, in construction order.
    Fails fast if any constituent fails.
    """

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Triggers when the first constituent event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)


class Simulator:
    """The event loop: immediate-event microqueues over a time heap.

    The heap holds ``(time, priority, seq, event)`` entries; the two
    microqueues hold bare events (their seq in ``Event._qseq``) for
    zero-delay events at the current timestamp — one deque per
    priority, so each is FIFO in ``seq``. :meth:`step` pops the
    minimum of the three heads under the ``(time, priority, seq)``
    order.

    ``fast=None`` (default) enables the microqueue/trampoline fast
    paths unless the ``MEGAMMAP_SLOW_KERNEL`` environment variable is
    set to a non-empty value other than ``"0"``.
    """

    #: Delays at or above this horizon park in the far wheel instead of
    #: the heap; promotion pulls them back in ``WHEEL_SPAN``-wide
    #: cohorts. Both are tuned to sit above the fabric's transfer
    #: timescale (tens of µs) and at the service-period timescale (ms).
    WHEEL_THRESHOLD = 1e-3
    WHEEL_SPAN = 1e-3
    #: The wheel only turns on once the heap holds this many entries:
    #: parking exists to keep the near-term heap small under a large
    #: long-horizon timer population (one service-timer pair per node
    #: at 64 nodes), and is pure overhead when the heap is already
    #: tiny — a couple of long timers ping-ponging through the wheel
    #: would pay a promotion per pop for nothing.
    WHEEL_MIN_HEAP = 32

    def __init__(self, fast: Optional[bool] = None):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, int, Event]] = []
        self._imm_urgent: deque[Event] = deque()
        self._imm_normal: deque[Event] = deque()
        self._seq = 0
        self._active: Optional[Process] = None
        if fast is None:
            fast = os.environ.get("MEGAMMAP_SLOW_KERNEL", "") in ("", "0")
        self._fast = bool(fast)
        #: Far-timer wheel: entries with ``delay >= _wheel_threshold``
        #: park here unsorted (``_far_entries`` holds the exact heap
        #: tuples) until promoted. ``_far_min`` is the running minimum
        #: time; the kernel invariant is that the wheel minimum is
        #: strictly above the heap head whenever the schedule is
        #: consulted, so no wheel entry can ever be the next pop.
        self._wheel_threshold = self.WHEEL_THRESHOLD if self._fast \
            else float("inf")
        self._far_entries: list[tuple[float, int, int, Event]] = []
        self._far_n = 0
        self._far_min = float("inf")
        #: Schedule perturbation (chaos testing): when armed via
        #: :meth:`enable_perturbation`, ties among same-``(time,
        #: priority)`` events are broken by a seeded random draw
        #: instead of FIFO ``seq`` order. Off (``None``) by default —
        #: the scheduling code below is untouched when off, so results
        #: are bit-for-bit identical to a simulator without the flag.
        self._perturb: Optional[random.Random] = None
        #: True while the single/last callback of the event currently
        #: being processed runs — the only point where the trampoline
        #: may consume the next event inline.
        self._tail = False
        #: The active ``run(until=event)`` stop event. Trampolining is
        #: suspended once it is processed so the kernel leaves exactly
        #: the same events pending as the heap-only kernel would.
        self._stop: Optional[Event] = None
        #: Host-side scheduling counters (observability; they do not
        #: exist in simulated time). ``heap_events`` paid a heap push,
        #: ``trampolines`` were consumed inline without re-entering the
        #: scheduler; ``fast_events`` (microqueue schedules) is derived
        #: as ``_seq - heap_events`` to keep the hot path increment-free.
        self.heap_events = 0
        self.trampolines = 0
        #: Events that parked in the far wheel (subset of
        #: ``heap_events`` — they still pay one batched heap insert at
        #: promotion time).
        self.wheel_events = 0

    @property
    def fast_events(self) -> int:
        """Events scheduled through a microqueue (vs. the time heap)."""
        return self._seq - self.heap_events

    # -- construction helpers -------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[[Event], None],
                priority: int = NORMAL) -> Event:
        """Run ``fn(event)`` at absolute time ``when`` (>= now).

        The shard coordinator uses this to inject cross-shard boundary
        messages at their precomputed delivery time: the event is
        scheduled through the ordinary ``(time, priority, seq)``
        machinery, so calling ``call_at`` in canonical order for
        same-time deliveries reproduces the single-kernel pop order
        exactly.
        """
        if when < self.now:
            raise SimulationError(
                f"call_at({when}) lies in the past (now={self.now})")
        evt = Event(self)
        evt.callbacks = [fn]
        evt._ok = True
        evt._value = None
        self._schedule(evt, priority, when - self.now)
        return evt

    def enable_perturbation(self, seed: int) -> None:
        """Arm randomized tie-breaking among same-timestamp events.

        Every subsequently scheduled event gets a seeded random rank
        as its tie-break key (monotonic ``seq`` stays as the final
        tiebreaker, so the order remains total and the run remains
        deterministic for a given ``seed``). The microqueue/trampoline
        fast paths assume FIFO ``seq`` order, so arming perturbation
        forces the heap-only kernel and re-keys pending entries. Chaos
        testing uses this to explore legal-but-different event
        interleavings.
        """
        rng = random.Random(seed)
        self._perturb = rng
        self._fast = False
        # Re-key already-pending entries with random ranks too: int
        # and tuple tie-break keys must never coexist in one heap (a
        # same-(time, priority) comparison between them would raise),
        # and the microqueue merge in step() compares heap keys
        # against integer ``_qseq`` values. The far wheel drains into
        # the same re-keyed heap and stays disabled from here on.
        entries = [(t, p, (rng.random(), s), e)
                   for t, p, s, e in self._heap]
        entries.extend((t, p, (rng.random(), s), e)
                       for t, p, s, e in self._far_entries[:self._far_n])
        self._wheel_threshold = float("inf")
        self._far_entries = []
        self._far_n = 0
        self._far_min = float("inf")
        for prio, q in ((URGENT, self._imm_urgent),
                        (NORMAL, self._imm_normal)):
            while q:
                evt = q.popleft()
                entries.append((self.now, prio,
                                (rng.random(), evt._qseq), evt))
        heapq.heapify(entries)
        self._heap = entries

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} scheduled twice")
        event._scheduled = True
        seq = self._seq
        self._seq = seq + 1
        if self._perturb is not None:
            # Tuple tie-break key: random rank first, seq second for
            # totality. Tuples compare fine against each other, and the
            # fast-path comparisons against ``_qseq`` never run (the
            # microqueues stay empty once perturbation is armed).
            heapq.heappush(self._heap, (self.now + delay, priority,
                                        (self._perturb.random(), seq),
                                        event))
            self.heap_events += 1
            return
        if self._fast and delay == 0.0:
            if priority == URGENT:
                event._qseq = seq
                self._imm_urgent.append(event)
                return
            if priority == NORMAL:
                event._qseq = seq
                self._imm_normal.append(event)
                return
        if delay >= self._wheel_threshold and (
                self._far_n or len(self._heap) >= self.WHEEL_MIN_HEAP):
            self._far_push(self.now + delay, priority, seq, event)
            return
        heapq.heappush(self._heap, (self.now + delay, priority, seq, event))
        self.heap_events += 1

    def _far_push(self, when: float, priority: int, seq: int,
                  event: Event) -> None:
        """Park a long-horizon entry in the far wheel (O(1))."""
        self._far_entries.append((when, priority, seq, event))
        self._far_n += 1
        if when < self._far_min:
            self._far_min = when
        self.heap_events += 1
        self.wheel_events += 1

    def _promote_far(self) -> None:
        """Move the next time-slice of far entries into the heap.

        Promotes every entry within ``WHEEL_SPAN`` of the far minimum,
        re-inserting the original ``(time, priority, seq, event)``
        tuples so heap order is exactly what it would have been
        without the wheel. Small far sets scan in Python; large ones
        (the 64-node service-timer population) use one vectorized
        numpy mask over the parked times. Postcondition: the heap head
        is at or below every remaining far entry, so no wheel entry
        can be the next pop.
        """
        n = self._far_n
        cutoff = self._far_min + self.WHEEL_SPAN
        entries = self._far_entries
        heap = self._heap
        heappush = heapq.heappush
        if n <= 64:
            kept = [e for e in entries if e[0] > cutoff]
            for e in entries:
                if e[0] <= cutoff:
                    heappush(heap, e)
        else:
            t = np.fromiter((e[0] for e in entries), np.float64, n)
            keep = np.nonzero(t > cutoff)[0]
            heap.extend(entries[i] for i in np.nonzero(t <= cutoff)[0])
            heapq.heapify(heap)
            kept = [entries[i] for i in keep]
        self._far_entries = kept
        self._far_n = len(kept)
        self._far_min = min((e[0] for e in kept), default=float("inf"))

    def peek(self) -> float:
        """Time of the next event, or ``inf`` when nothing is scheduled."""
        if self._imm_urgent or self._imm_normal:
            return self.now
        heap = self._heap
        if self._far_n and (not heap or self._far_min <= heap[0][0]):
            self._promote_far()
        return heap[0][0] if heap else float("inf")

    def step(self) -> None:
        """Pop and process a single event.

        Raises :class:`SimulationError` when nothing is scheduled
        (stepping an empty simulation is always a caller bug).
        """
        heap = self._heap
        q = self._imm_urgent
        prio = URGENT
        if not q:
            q = self._imm_normal
            prio = NORMAL
        event: Optional[Event] = None
        if q:
            # Microqueue entries are all at time == now; a heap entry
            # only wins when it is at now with a strictly smaller
            # (priority, seq) — the exact (time, priority, seq) order.
            if heap:
                h = heap[0]
                if h[0] == self.now and (
                        h[1] < prio or (h[1] == prio and h[2] < q[0]._qseq)):
                    event = heapq.heappop(heap)[3]
            if event is None:
                event = q.popleft()
        elif heap or self._far_n:
            if self._far_n and (not heap or self._far_min <= heap[0][0]):
                self._promote_far()
            when, _prio, _seq, event = heapq.heappop(heap)
            if when < self.now:  # pragma: no cover - defensive
                raise SimulationError("time went backwards")
            self.now = when
        else:
            raise SimulationError(
                "step() on an empty schedule: no events are pending")
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            if len(callbacks) == 1:
                # Tail position: the trampoline may run event chains
                # inline from here (see Process._resume).
                self._tail = True
                callbacks[0](event)
                self._tail = False
            else:
                for cb in callbacks:
                    cb(event)
        event.processed = True
        if not event._ok and not callbacks:
            # Nothing was waiting on this failure: surface it rather
            # than letting the simulation silently continue.
            raise event._value

    def _run_cohorts(self, stop_evt: Optional[Event]) -> None:
        """Deadline-free dispatch loop: :meth:`step`'s body inlined.

        With no deadline there is nothing to ``peek()`` for between
        events, so same-timestamp cohorts (the microqueue runs that
        dominate a MegaMmap schedule) dispatch back-to-back in one
        pass — same pop order as repeated ``step()`` calls, minus a
        Python frame and a ``peek()`` per event.
        """
        heap = self._heap
        iu = self._imm_urgent
        inm = self._imm_normal
        heappop = heapq.heappop
        while iu or inm or heap or self._far_n:
            if stop_evt is not None and stop_evt.processed:
                return
            q = iu
            prio = URGENT
            if not q:
                q = inm
                prio = NORMAL
            event: Optional[Event] = None
            if q:
                if heap:
                    h = heap[0]
                    if h[0] == self.now and (
                            h[1] < prio
                            or (h[1] == prio and h[2] < q[0]._qseq)):
                        event = heappop(heap)[3]
                if event is None:
                    event = q.popleft()
            else:
                if self._far_n and (not heap
                                    or self._far_min <= heap[0][0]):
                    self._promote_far()
                when, _prio, _seq, event = heappop(heap)
                self.now = when
            callbacks = event.callbacks
            event.callbacks = None
            if callbacks:
                if len(callbacks) == 1:
                    self._tail = True
                    callbacks[0](event)
                    self._tail = False
                else:
                    for cb in callbacks:
                        cb(event)
            event.processed = True
            if not event._ok and not callbacks:
                raise event._value

    def run_window(self, horizon: float) -> int:
        """Process every event strictly before ``horizon``; return the
        count.

        The conservative-window primitive for sharded execution: a
        shard runs its local schedule up to (not including) the window
        horizon, after which boundary messages for the next window can
        be injected with :meth:`call_at` — all of them land at or past
        the horizon, so nothing already processed could have depended
        on them. ``now`` is left at the last processed event (time only
        advances by popping, exactly as in the single kernel).
        """
        count = 0
        while self.peek() < horizon:
            self.step()
            count += 1
        return count

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the schedule drains, a deadline passes, or an event
        fires.

        When ``until`` is an event, returns that event's value (raising
        its exception if it failed). Unhandled process failures
        propagate out of :meth:`run`.
        """
        stop_evt: Optional[Event] = None
        deadline = float("inf")
        if isinstance(until, Event):
            stop_evt = until
            if stop_evt.callbacks is not None:
                # Mark the stop event as observed so a failure is
                # reported by run() itself rather than from step().
                stop_evt.callbacks.append(lambda _evt: None)
        elif until is not None:
            deadline = float(until)
            if deadline < self.now:
                raise ValueError("deadline lies in the past")
        prev_stop = self._stop
        self._stop = stop_evt
        try:
            if deadline == float("inf"):
                self._run_cohorts(stop_evt)
            else:
                while self._heap or self._imm_urgent or self._imm_normal \
                        or self._far_n:
                    if stop_evt is not None and stop_evt.processed:
                        break
                    if self.peek() > deadline:
                        self.now = deadline
                        return None
                    self.step()
        finally:
            self._stop = prev_stop
        if stop_evt is not None:
            if not stop_evt.triggered:
                raise SimulationError("run() ended before `until` event fired")
            if not stop_evt._ok:
                raise stop_evt._value
            return stop_evt._value
        return None
