"""Deterministic random-stream derivation.

Every stochastic component (dataset generation, RF bagging, DBSCAN
subsampling, randomized transactions) derives an independent NumPy
``Generator`` from a root seed plus a tuple of string/int keys, so
whole-cluster simulations are reproducible bit-for-bit regardless of
process interleaving. The paper's transaction API likewise propagates
"randomness seeds ... to guide data organization decisions" (III).
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

import numpy as np

Key = Union[str, int, bytes]


def spawn_seed(root: int, *keys: Key) -> int:
    """Derive a 64-bit child seed from ``root`` and a key path.

    Stable across processes and Python versions (uses BLAKE2, not
    ``hash()``).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(int(root).to_bytes(16, "little", signed=True))
    for key in keys:
        if isinstance(key, bytes):
            raw = key
        elif isinstance(key, int):
            raw = b"i" + key.to_bytes(16, "little", signed=True)
        else:
            raw = b"s" + str(key).encode("utf-8")
        h.update(len(raw).to_bytes(4, "little"))
        h.update(raw)
    return int.from_bytes(h.digest(), "little")


def rng_stream(root: int, *keys: Key) -> np.random.Generator:
    """Independent ``numpy.random.Generator`` for the given key path."""
    return np.random.default_rng(spawn_seed(root, *keys))


def py_rng(root: int, *keys: Key) -> random.Random:
    """Independent stdlib ``random.Random`` for the given key path.

    The chaos engine uses stdlib streams (cheap single draws, no numpy
    array machinery) for fault scheduling and tie-break perturbation;
    like :func:`rng_stream` the stream is a pure function of the key
    path, so plans are replayable bit-for-bit.
    """
    return random.Random(spawn_seed(root, *keys))
