"""The Data Stager: transparent (de)serialization to persistent backends.

Paper III-B (Persistently Integrating Memory with Storage): "the Data
Stager is responsible for serializing, deserializing, and flushing
content to the backend ... Periodically and during the termination of
the runtime, the stager task will be scheduled to serialize pages in
the scache and persist them. During a page fault, if a page is not
present in the scache, the stager will be invoked to read and
deserialize a subset of data from the persistent backend."

Stage-out is real: the backing file on disk ends up bit-exact with the
vector. Time is charged through the PFS model (the paper's backends
live on a parallel filesystem).
"""

from __future__ import annotations

from typing import Optional

from repro.core.shared import SharedVector
from repro.sim import Lock
from repro.hermes.blob import BlobNotFound
from repro.storage.pfs import ParallelFS


class DataStager:
    """Per-deployment stager (one background flusher per node)."""

    def __init__(self, system):
        self.system = system
        self.sim = system.sim
        self._stop = False
        self._extent_locks = {}
        self._stageout_locks = {}

    # -- timing helper -----------------------------------------------------
    def _charge_backend(self, node: int, nbytes: int, write: bool,
                        offset: int = 0):
        pfs: Optional[ParallelFS] = self.system.pfs
        if pfs is None:
            return
        yield from pfs._striped(node, offset, nbytes, write=write)

    # -- stage-in -------------------------------------------------------------
    def stage_in(self, vec: SharedVector, page_idx: int, node: int):
        """Read one page's bytes from the persistent backend. Generator;
        returns the page bytes (zero-filled for volatile vectors or
        regions the backend does not cover)."""
        nbytes = vec.page_nbytes(page_idx)
        if vec.volatile:
            return bytes(nbytes)
        backend = vec.ensure_backend()
        start = page_idx * vec.page_size
        avail = max(0, min(nbytes, backend.size() - start))
        if avail <= 0:
            return bytes(nbytes)
        with self.system.tracer.span("stage_in", "stager", node=node,
                                     vector=vec.name, page=page_idx,
                                     nbytes=avail):
            yield from self._charge_backend(node, avail, write=False,
                                            offset=start)
        raw = backend.read_range(start, avail)
        if avail < nbytes:
            raw += bytes(nbytes - avail)
        self.system.monitor.count("stager.bytes_in", avail)
        self.system.monitor.metrics.counter(
            "stager_bytes", node=node, direction="in").inc(avail)
        return raw

    def stage_in_extent(self, vec: SharedVector, page_idx: int,
                        node: int):
        """Bulk stage-in: read the aligned extent containing
        ``page_idx`` in few backend requests (amortizing the PFS
        request latency, as the paper's bulk stager does). Only pages
        not yet materialized in the scache are read; an extent lock
        prevents concurrent faults from staging the same bytes twice.
        Generator; returns [(page_idx, bytes), ...] for the missing
        pages (possibly empty if a concurrent fault staged them).
        """
        if vec.volatile:
            return [(page_idx, bytes(vec.page_nbytes(page_idx)))]
        extent = max(self.system.config.stage_extent, vec.page_size)
        pages_per_extent = max(1, extent // vec.page_size)
        first = (page_idx // pages_per_extent) * pages_per_extent
        last = min(first + pages_per_extent, vec.n_pages)
        mdm = self.system.hermes.mdm
        missing = [p for p in range(first, last)
                   if mdm.peek(vec.name, p) is None]
        if not missing:
            return []
        backend = vec.ensure_backend()
        out = []
        # Charge/read contiguous missing runs in single requests.
        run_start = 0
        runs = []
        for i in range(1, len(missing) + 1):
            if i == len(missing) or missing[i] != missing[i - 1] + 1:
                runs.append((missing[run_start], missing[i - 1]))
                run_start = i
        for lo, hi in runs:
            start = lo * vec.page_size
            span = sum(vec.page_nbytes(p) for p in range(lo, hi + 1))
            avail = max(0, min(span, backend.size() - start))
            if avail > 0:
                yield from self._charge_backend(
                    node, avail, write=False, offset=start)
                raw = backend.read_range(start, avail)
            else:
                raw = b""
            raw += bytes(span - len(raw))
            self.system.monitor.count("stager.bytes_in", avail)
            self.system.monitor.metrics.counter(
                "stager_bytes", node=node, direction="in").inc(avail)
            off = 0
            for p in range(lo, hi + 1):
                n = vec.page_nbytes(p)
                out.append((p, raw[off:off + n]))
                off += n
        out.sort(key=lambda item: item[0] != page_idx)
        return out

    def extent_lock(self, vec: SharedVector, page_idx: int) -> Lock:
        """Lock guarding one stage-in extent; the caller (the scache
        executor) holds it across stage + publish so concurrent faults
        in the same extent never duplicate the backend read."""
        extent = max(self.system.config.stage_extent, vec.page_size)
        pages_per_extent = max(1, extent // vec.page_size)
        first = (page_idx // pages_per_extent) * pages_per_extent
        key = (vec.name, first)
        lock = self._extent_locks.get(key)
        if lock is None:
            lock = self._extent_locks[key] = Lock(self.sim)
        return lock

    # -- stage-out -------------------------------------------------------------
    def _stageout_lock(self, vec: SharedVector, page_idx: int) -> Lock:
        key = (vec.name, page_idx)
        lock = self._stageout_locks.get(key)
        if lock is None:
            lock = self._stageout_locks[key] = Lock(self.sim)
        return lock

    def stage_out(self, vec: SharedVector, page_idx: int, node: int):
        """Persist one scache page to the backend. Generator.

        Stage-outs of the same page are serialized, and the dirty bit
        is claimed *before* the page bytes are captured: a write that
        lands after the snapshot re-dirties the page and a later pass
        persists the fresh bytes. (Clearing the bit on completion
        instead would wipe that re-dirty mark — the write's bytes
        would never reach the backend — and two unserialized
        stage-outs could also complete out of order, leaving the stale
        snapshot as the file's final content.)
        """
        if vec.volatile:
            vec.dirty_pages.discard(page_idx)
            return
        lock = self._stageout_lock(vec, page_idx)
        yield lock.acquire()
        try:
            vec.dirty_pages.discard(page_idx)
            try:
                raw = yield from self.system.hermes.get(
                    node, vec.name, page_idx)
            except BlobNotFound:
                return
            backend = vec.ensure_backend()
            start = page_idx * vec.page_size
            backend.ensure_size(start + len(raw))
            with self.system.tracer.span(
                    "stage_out", "stager", node=node, vector=vec.name,
                    page=page_idx, nbytes=len(raw)):
                yield from self._charge_backend(node, len(raw),
                                                write=True)
            backend.write_range(start, raw)
            # Persisted pages are cold: zero the score so the
            # organizer / placement demotes them aggressively to make
            # room for new data (paper IV-B3).
            self.system.hermes.set_score(vec.name, page_idx, 0.0)
            self.system.monitor.count("stager.bytes_out", len(raw))
            self.system.monitor.metrics.counter(
                "stager_bytes", node=node, direction="out").inc(len(raw))
        finally:
            lock.release()

    def persist(self, vec: SharedVector, node: int):
        """Flush every dirty page of ``vec`` (explicit msync / vector
        close). Generator."""
        if vec.volatile:
            vec.dirty_pages.clear()
            return
        vec.ensure_backend().ensure_size(vec.nbytes)
        for page_idx in sorted(vec.dirty_pages):
            yield from self.stage_out(vec, page_idx, node)
        vec.ensure_backend().flush()

    def persist_all(self, node: int = 0):
        """Runtime-termination flush of every nonvolatile vector."""
        for vec in list(self.system.vectors.values()):
            if not vec.volatile and not vec.destroyed:
                yield from self.persist(vec, node)

    # -- active background flushing -----------------------------------------------
    def flusher(self, node: int):
        """Background process: actively flush dirty pages during
        computation (III-B: "MegaMmap actively flushes modified data to
        storage during periods of computation")."""
        period = self.system.config.flush_period
        while not self._stop:
            yield self.sim.timeout(period)
            for vec in list(self.system.vectors.values()):
                if vec.volatile or vec.destroyed:
                    continue
                # Flush pages owned by this node to spread the work.
                mine = [p for p in sorted(vec.dirty_pages)
                        if vec.owner_node(p, node) == node]
                for page_idx in mine:
                    yield from self.stage_out(vec, page_idx, node)

    def stop(self) -> None:
        self._stop = True
