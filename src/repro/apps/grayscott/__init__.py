"""Gray-Scott reaction-diffusion (paper IV-A2).

A 3-D two-species (U, V) reaction-diffusion simulation on an L³ grid,
z-slab partitioned: the MegaMmap version keeps the grid in shared
vectors (ghost planes read through the DSM), the MPI version exchanges
ghosts with sendrecv and checkpoints synchronously through a pluggable
I/O service (OrangeFS / Assise / Hermes — the Fig. 6 baselines).
"""

from repro.apps.grayscott.stencil import (
    GSParams,
    gs_reference,
    gs_step_slab,
    init_fields,
    init_slab,
)
from repro.apps.grayscott.mm_gs import mm_gray_scott
from repro.apps.grayscott.mpi_gs import HermesIo, mpi_gray_scott

__all__ = ["GSParams", "HermesIo", "gs_reference", "gs_step_slab",
           "init_fields", "init_slab", "mm_gray_scott",
           "mpi_gray_scott"]
