"""DLRM-style embedding/KV serving workload (latency-sensitive).

``mm_serving`` turns the batch-HPC repertoire on its head: a mega-
vector is treated as an object table (embedding rows / KV values of
64–4096 B), and every rank runs an **open-loop** query loop — seeded
exponential arrivals at a configured per-rank rate, zipfian key skew,
a handful of lookups per query, and occasional writes. Queries that
arrive while the server is busy queue up, so per-query latency is
measured from *arrival*, not from service start (no coordinated
omission).

Hot keys are scattered across pages by a fixed multiplicative hash:
with zipfian skew the popular objects land on many distinct pages, so
the page-granular access path keeps faulting (and evicting) whole
pages to serve a few dozen bytes — exactly the regime where the
object-granular path (``Vector.read_objects``, gated by
``object_threshold_bytes``) wins. The app always calls the object API;
the config gate decides which path actually serves it, and with the
gate closed (``object_threshold_bytes=0``) the run is bit-identical to
``api="page"``, which calls ``read_range``/``write_range`` directly.

Outputs: per-query latencies go to the ``serving_latency`` labeled
histogram and (when tracing) to retroactive ``serving``-category spans
— so ``trace.serving.p50/p99`` appear in the stats — and each rank
returns ``(checksum, completed, p50_ms, p99_ms)``.
"""

from __future__ import annotations

import numpy as np

#: Knuth's multiplicative-hash constant: scatters consecutive keys
#: (and therefore the zipf head) across the whole table / page space.
_SCATTER = 0x9E3779B1


def zipf_keys(rng, n_keys: int, s: float, count: int) -> np.ndarray:
    """Draw ``count`` zipf(s)-distributed keys in [0, n_keys).

    Inverse-CDF on a precomputed table: unlike ``rng.zipf`` this
    supports any s >= 0 (including s <= 1, where the unbounded zipf
    law does not normalize) and is exactly reproducible.
    """
    weights = np.arange(1, n_keys + 1, dtype=np.float64) ** -s
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return np.searchsorted(cdf, rng.random(count), side="right") \
        .astype(np.int64)


def scatter_slot(keys, n_keys: int):
    """Map keys to table slots with a fixed multiplicative hash."""
    return (np.asarray(keys, dtype=np.int64) * _SCATTER) % n_keys


def mm_serving(ctx, n_keys=1 << 14, obj_bytes=64, queries=128,
               lookups=8, zipf_s=1.2, write_frac=0.05, qps=2000.0,
               api="object", pcache=None, partition_writes=True):
    """Serve ``queries`` open-loop KV queries per rank (generator).

    Each query reads ``lookups`` objects (zipf-skewed keys) and, with
    probability ``write_frac``, writes one object back. ``api`` picks
    the access path: ``"object"`` uses ``read_objects``/``write_object``
    (the config threshold still gates the actual granularity);
    ``"page"`` forces plain ``read_range``/``write_range``.
    ``partition_writes`` remaps written keys onto this rank's shard so
    concurrent ranks never race on the same bytes.
    """
    if api not in ("object", "page"):
        raise ValueError(f"api must be 'object' or 'page', not {api!r}")
    n_keys = int(n_keys)
    obj_bytes = int(obj_bytes)
    table = yield from ctx.mm.vector("kv:serving", dtype=np.uint8,
                                     size=n_keys * obj_bytes)
    if pcache:
        table.bound_memory(pcache)
    mon = ctx.cluster.monitor
    tracer = ctx.mm.system.tracer
    hist = mon.metrics.histogram("serving_latency", node=ctx.node)
    rng = ctx.rng
    # The whole query schedule is drawn up front: arrivals, keys, and
    # write coin-flips are then independent of service timing (a purely
    # open-loop client).
    arrivals = np.cumsum(rng.exponential(1.0 / float(qps),
                                         size=queries))
    keys = zipf_keys(rng, n_keys, float(zipf_s),
                     queries * lookups).reshape(queries, lookups)
    writes = rng.random(queries) < float(write_frac)
    write_vals = rng.integers(0, 251, size=(queries, obj_bytes),
                              dtype=np.uint8)
    yield from ctx.barrier()
    t_start = ctx.sim.now
    checksum = 0.0
    lats = np.empty(queries, dtype=np.float64)
    for q in range(queries):
        t_arrive = t_start + arrivals[q]
        if ctx.sim.now < t_arrive:
            yield ctx.sim.timeout(t_arrive - ctx.sim.now)
        slots = scatter_slot(keys[q], n_keys)
        offs = slots * obj_bytes
        if api == "object":
            outs = yield from table.read_objects(
                [(int(o), obj_bytes) for o in offs])
        else:
            outs = []
            for o in offs:
                outs.append((yield from table.read_range(int(o),
                                                         obj_bytes)))
        for out in outs:
            checksum += float(out.sum())
        if writes[q]:
            wkey = int(keys[q, 0])
            if partition_writes:
                wkey = min(n_keys - 1,
                           (wkey // ctx.nprocs) * ctx.nprocs + ctx.rank)
            woff = int(scatter_slot(wkey, n_keys)) * obj_bytes
            if api == "object":
                yield from table.write_object(woff, write_vals[q])
            else:
                yield from table.write_range(woff, write_vals[q])
        now = ctx.sim.now
        lat = now - t_arrive
        lats[q] = lat
        hist.observe(lat)
        mon.count("serving.queries")
        mon.count("serving.lookups", lookups)
        tracer.record("query", "serving", ctx.node, t_arrive, now,
                      rank=ctx.rank, lookups=lookups)
    yield from ctx.barrier()
    return (round(checksum, 6), queries,
            float(np.percentile(lats, 50) * 1e3),
            float(np.percentile(lats, 99) * 1e3))
