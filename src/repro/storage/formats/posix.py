"""Raw byte-file backend (``posix://`` and ``file://`` schemes)."""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.storage.backend import Backend, BackendError, ParsedUrl


class PosixBackend(Backend):
    """A plain binary file: the logical image *is* the file."""

    def __init__(self, url: ParsedUrl, dtype: Optional[np.dtype] = None,
                 create: bool = False):
        super().__init__(url)
        self.path = url.path
        if create and not os.path.exists(self.path):
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(self.path, "wb"):
                pass
        if not os.path.exists(self.path):
            raise BackendError(f"no such file: {self.path}")

    def size(self) -> int:
        return os.path.getsize(self.path)

    def read_range(self, offset: int, nbytes: int) -> bytes:
        self._check_range(offset, nbytes)
        with open(self.path, "rb") as fh:
            fh.seek(offset)
            data = fh.read(nbytes)
        if len(data) != nbytes:
            raise BackendError(f"short read from {self.path}")
        return data

    def write_range(self, offset: int, data: bytes) -> None:
        if offset < 0:
            raise BackendError(f"negative offset {offset}")
        with open(self.path, "r+b") as fh:
            end = fh.seek(0, os.SEEK_END)
            if offset > end:
                fh.write(b"\0" * (offset - end))
            fh.seek(offset)
            fh.write(bytes(data))

    def ensure_size(self, nbytes: int) -> None:
        if self.size() < nbytes:
            with open(self.path, "r+b") as fh:
                fh.truncate(nbytes)
