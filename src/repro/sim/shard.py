"""Conservative time-window parallel simulation across shards.

The sharded execution model (DESIGN.md, "Sharded simulation") splits a
rack-decomposed cluster into one :class:`~repro.sim.engine.Simulator`
per rack. Racks couple *only* through fabric messages that take at
least the inter-rack wire latency to arrive, so every rack can run
freely through the window ``[T, T + W)`` — ``T`` the global minimum
next-event time, ``W`` the lookahead (minimum cross-rack message
latency) — without ever missing a remote message: a message exported
at time ``t >= T`` is delivered at ``t + d`` with ``d >= W``, which is
at or past the window horizon.

At each window barrier the coordinator gathers every rack's exports,
sorts them into the canonical ``(delivery time, source rack, export
seq)`` order, and injects them into the destination simulators before
the next window runs. Injection uses the ordinary ``(time, priority,
seq)`` scheduling machinery, so a given rack processes an identical
event sequence whether the racks run in one OS process (the
*sequential* driver) or spread across ``multiprocessing`` workers (the
*parallel* driver) — results are bit-for-bit identical at every shard
count, which the equivalence suite pins.

The drivers are generic over *handles*: any object with ``peek()``,
``inject(msgs)``, ``run_window(horizon)``, ``drain_exports()``,
``done()`` and ``finish()`` (see :class:`repro.cluster.RackHandle`).
"""

from __future__ import annotations

import multiprocessing
import traceback
from typing import Callable, Dict, List, NamedTuple, Optional, Sequence


class BoundaryMsg(NamedTuple):
    """One cross-rack message crossing a shard boundary.

    ``time`` is the absolute delivery time at the destination (NIC
    acquire + wire time, computed on the sender); ``seq`` is the
    sender rack's export counter — together with ``src_rack`` it makes
    the canonical injection order total and grouping-invariant.
    ``key`` addresses the destination mailbox ``(comm_id, world
    rank)``; ``payload`` is the delivered object.
    """

    time: float
    src_rack: int
    seq: int
    dst_rack: int
    key: tuple
    payload: object


class ShardBoundary:
    """Per-rack outbox for messages leaving the local rack.

    Attached to the rack's :class:`~repro.net.fabric.Network`; the MPI
    transport routes cross-rack sends here (at NIC-acquire time, which
    keeps the delivery at least one lookahead ahead of anything the
    local window can still process).
    """

    def __init__(self, rack_id: int, node_lo: int, node_hi: int,
                 rack_size: int):
        self.rack_id = rack_id
        self.node_lo = node_lo
        self.node_hi = node_hi
        self.rack_size = rack_size
        self._seq = 0
        self._outbox: List[BoundaryMsg] = []

    def local_node(self, node: int) -> bool:
        return self.node_lo <= node < self.node_hi

    def export(self, time: float, dst_node: int, key: tuple,
               payload: object) -> None:
        """Queue a message for injection at the window barrier."""
        self._outbox.append(BoundaryMsg(
            time, self.rack_id, self._seq, dst_node // self.rack_size,
            key, payload))
        self._seq += 1

    def drain(self) -> List[BoundaryMsg]:
        out = self._outbox
        self._outbox = []
        return out


def partition_nodes(n_nodes: int, racks: int) -> List[range]:
    """Contiguous node ranges, one per rack."""
    if racks < 1 or n_nodes % racks:
        raise ValueError(
            f"{racks} racks do not evenly partition {n_nodes} nodes")
    size = n_nodes // racks
    return [range(r * size, (r + 1) * size) for r in range(racks)]


#: One rack's barrier report: (next event time, exports, app done).
Report = tuple


def _plan_window(reports: Dict[int, Report], lookahead: float):
    """One coordinator decision: the next horizon and the injections.

    Returns ``None`` to stop (every rack's application is done and the
    final round produced no exports), else ``(horizon, inject)`` with
    ``inject`` mapping rack id -> canonically ordered messages.
    Deterministic in the *set* of reports — dict order never matters.
    """
    exports: List[BoundaryMsg] = []
    for _next_t, rack_exports, _done in reports.values():
        exports.extend(rack_exports)
    if not exports and all(done for _t, _e, done in reports.values()):
        return None
    t_min = min(next_t for next_t, _e, _d in reports.values())
    if exports:
        t_min = min(t_min, min(m.time for m in exports))
    if t_min == float("inf"):
        return None  # nothing scheduled anywhere (defensive)
    inject: Dict[int, List[BoundaryMsg]] = {}
    for msg in sorted(exports, key=lambda m: (m.time, m.src_rack,
                                              m.seq)):
        inject.setdefault(msg.dst_rack, []).append(msg)
    return t_min + lookahead, inject


def _window_round(handles: Dict[int, object], horizon: float,
                  inject: Dict[int, List[BoundaryMsg]]):
    """Inject and run one window for a group of racks; return their
    reports. Rack order is irrelevant — the simulators share nothing
    between barriers."""
    reports: Dict[int, Report] = {}
    for rid in sorted(handles):
        h = handles[rid]
        h.inject(inject.get(rid, ()))
        h.run_window(horizon)
        reports[rid] = (h.peek(), h.drain_exports(), h.done())
    return reports


def run_windows(handles: Dict[int, object], lookahead: float) -> dict:
    """Sequential driver: every rack simulator in this process.

    Runs the identical barrier protocol as the parallel driver (same
    horizons, same canonical injections), so its results are the
    bit-for-bit reference for any worker count. Returns
    ``{rack_id: handle.finish()}``.
    """
    if lookahead <= 0:
        raise ValueError(f"lookahead must be positive, got {lookahead}")
    reports = {rid: (h.peek(), h.drain_exports(), h.done())
               for rid, h in sorted(handles.items())}
    while True:
        plan = _plan_window(reports, lookahead)
        if plan is None:
            break
        horizon, inject = plan
        reports = _window_round(handles, horizon, inject)
    return {rid: handles[rid].finish() for rid in sorted(handles)}


def _shard_worker(conn, rack_ids: Sequence[int],
                  build: Callable[[int], object]) -> None:
    """Worker process: owns a group of rack simulators.

    Speaks a tiny pipe protocol with the coordinator:
    ``("window", horizon, inject)`` -> ``("report", {rid: report})``,
    then ``("stop",)`` -> ``("result", {rid: finish()})``. Any
    exception is shipped back as ``("error", traceback)``.
    """
    try:
        handles = {rid: build(rid) for rid in rack_ids}
        conn.send(("report", {
            rid: (h.peek(), h.drain_exports(), h.done())
            for rid, h in sorted(handles.items())}))
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                break
            _tag, horizon, inject = msg
            conn.send(("report", _window_round(handles, horizon,
                                               inject)))
        conn.send(("result", {rid: handles[rid].finish()
                              for rid in sorted(handles)}))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


class ShardWorkerError(RuntimeError):
    """A shard worker died; carries its formatted traceback."""


def run_windows_parallel(rack_ids: Sequence[int], shards: int,
                         build: Callable[[int], object],
                         lookahead: float,
                         mp_context: Optional[str] = None) -> dict:
    """Parallel driver: racks grouped onto ``shards`` worker processes.

    ``build(rack_id)`` runs *inside* the worker (fork start method, so
    closures carry over without pickling); only window-barrier traffic
    crosses the pipes. Returns ``{rack_id: finish()}`` — bit-for-bit
    identical to :func:`run_windows` over the same racks.
    """
    if lookahead <= 0:
        raise ValueError(f"lookahead must be positive, got {lookahead}")
    rack_ids = list(rack_ids)
    if shards < 1 or len(rack_ids) % shards:
        raise ValueError(
            f"{shards} shards do not evenly split {len(rack_ids)} racks")
    per = len(rack_ids) // shards
    groups = [rack_ids[w * per:(w + 1) * per] for w in range(shards)]
    ctx = multiprocessing.get_context(mp_context or "fork")
    workers = []
    try:
        for group in groups:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_shard_worker,
                               args=(child_conn, group, build),
                               daemon=True)
            proc.start()
            child_conn.close()
            workers.append((parent_conn, proc))

        def gather(expect: str) -> dict:
            merged: dict = {}
            for conn, _proc in workers:
                tag, payload = conn.recv()
                if tag == "error":
                    raise ShardWorkerError(payload)
                if tag != expect:  # pragma: no cover - protocol bug
                    raise ShardWorkerError(
                        f"expected {expect!r}, got {tag!r}")
                merged.update(payload)
            return merged

        reports = gather("report")
        while True:
            plan = _plan_window(reports, lookahead)
            if plan is None:
                break
            horizon, inject = plan
            for (conn, _proc), group in zip(workers, groups):
                conn.send(("window", horizon,
                           {rid: inject[rid] for rid in group
                            if rid in inject}))
            reports = gather("report")
        for conn, _proc in workers:
            conn.send(("stop",))
        results = gather("result")
        for conn, proc in workers:
            conn.close()
            proc.join(timeout=60)
        return results
    finally:
        for _conn, proc in workers:
            if proc.is_alive():  # pragma: no cover - error cleanup
                proc.terminate()
                proc.join(timeout=5)
