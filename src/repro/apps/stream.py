"""Streaming-scan antagonist workload for colocation experiments.

``mm_stream`` maps a file-backed dataset and sweeps it sequentially
``passes`` times with no reuse between touches — the classic
cache-polluting neighbor. Under naive sharing its stage-ins flood the
fast tier and demote colocated tenants' hot pages; under per-tenant
quotas its placements spill past its DRAM slice instead.
"""

from __future__ import annotations

import numpy as np

from repro.apps.datagen import POINT3D
from repro.core import MM_READ_ONLY, SeqTx


def mm_stream(ctx, url, passes=1, pcache=None):
    """Sequentially scan the dataset ``passes`` times; returns the
    running float64 checksum (bit-stable across identical runs)."""
    pts = yield from ctx.mm.vector(url, dtype=POINT3D)
    if pcache:
        pts.bound_memory(pcache)
    pts.pgas(ctx.rank, ctx.nprocs)
    checksum = 0.0
    for _ in range(int(passes)):
        yield from pts.tx_begin(SeqTx(pts.local_off(),
                                      pts.local_size(),
                                      MM_READ_ONLY))
        while True:
            chunk = yield from pts.next_chunk()
            if chunk is None:
                break
            yield from ctx.compute_bytes(chunk.data.nbytes, factor=1.0)
            checksum += float(
                np.asarray(chunk.data["x"], dtype=np.float64).sum())
        yield from pts.tx_end()
    yield from ctx.barrier()
    return checksum
