"""The per-node MegaMmap runtime: queue, scheduler, worker pools.

Paper III-B: the runtime "is a process running separate from
applications that manages the scache. The runtime can dedicate a
configurable maximum number of CPU cores and dynamically adjusts the
number of cores based on experienced load using an approach similar to
LabStor." Scheduling rules implemented here:

* MemoryTasks for the same page hash to the same worker **queue**
  (strong consistency / read-after-write: one FIFO per page);
* tasks under 16 KB execute on the **low-latency** CPU core pool,
  larger ones on the high-latency pool, so latency-sensitive requests
  of other pages are never stalled behind bulk transfers;
* the high-latency pool's core count is adjusted with load by the
  scaling controller (LabStor-style);
* a :class:`~repro.core.memtask.BatchTask` fans out as one *shard*
  per involved worker FIFO. Every shard sits in its page's FIFO, so
  tasks submitted before the batch execute first and tasks submitted
  after it wait for the batch — the per-page read-after-write
  guarantee holds across the batched path. The worker that pops the
  batch's **last** shard (at which point every involved FIFO has
  reached the batch) services the whole batch in one scache round;
  the other shard workers block until it completes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.memtask import BatchTask, TaskKind
from repro.core.scache import ScacheExecutor
from repro.sim import AllOf, Event, Resource, Store
from repro.sim.rand import spawn_seed


class _BatchState:
    """Coordination record for one BatchTask inside a runtime.

    ``complete`` succeeds once the batch has been serviced (or failed);
    shard workers that were not the last to arrive wait on it so later
    tasks in their FIFOs keep ordering with the batch.
    """

    __slots__ = ("batch", "n_shards", "arrived", "complete")

    def __init__(self, batch: BatchTask, n_shards: int, sim):
        self.batch = batch
        self.n_shards = n_shards
        self.arrived = 0
        self.complete = Event(sim)


class _BatchShard:
    """One FIFO's share of a BatchTask (placed in that page FIFO)."""

    __slots__ = ("state",)

    def __init__(self, state: _BatchState):
        self.state = state


class NodeRuntime:
    """One node's runtime process group."""

    def __init__(self, system, node_id: int, active: bool = True):
        self.system = system
        self.node_id = node_id
        self.sim = system.sim
        self.active = active
        cfg = system.config
        self.executor = ScacheExecutor(system, node_id)
        self.queue: Store = Store(self.sim, name=f"rt{node_id}.queue")
        n_workers = cfg.low_latency_workers + cfg.high_latency_workers
        self._stores: List[Store] = [
            Store(self.sim, name=f"rt{node_id}.w{i}")
            for i in range(n_workers)]
        # Dedicated CPU core pools per size class (III-B: low-latency
        # workers "are scheduled on different CPU cores from
        # high-latency workers"). The high pool scales dynamically.
        self.low_cores = Resource(self.sim, capacity=cfg.low_latency_workers,
                                  name=f"rt{node_id}.lowcores")
        self.high_cores = Resource(self.sim, capacity=cfg.workers_min,
                                   name=f"rt{node_id}.highcores")
        self.inflight = 0
        self._low_streak = 0
        # Labeled backlog gauge: +1 on submit, -1 when a worker gets a
        # core. Its time average is an L measurement *independent* of
        # the rt.queue wait spans, so `repro report` can cross-check
        # Little's law (L = lambda * W) from two sources.
        self._backlog_gauge = system.monitor.metrics.gauge(
            "rt_backlog", node=node_id)
        self._procs = []
        if active:
            self._procs.append(self.sim.process(
                self._scheduler(), name=f"rt{node_id}.sched"))
            for i, store in enumerate(self._stores):
                self._procs.append(self.sim.process(
                    self._worker(store), name=f"rt{node_id}.w{i}"))
            self._procs.append(self.sim.process(
                self._scaling_controller(), name=f"rt{node_id}.scale"))

    # -- submission -----------------------------------------------------------
    def submit(self, task) -> None:
        """Enqueue a MemoryTask or BatchTask at this runtime."""
        if not self.active:
            from repro.core.errors import ShardBoundaryError
            raise ShardBoundaryError(
                f"task for node {self.node_id} submitted in a rack "
                f"that does not own it (rack-scoped placement should "
                f"make this unreachable)")
        self.inflight += 1
        task.submit_time = self.sim.now
        self._backlog_gauge.add(1)
        self.queue.put(task)

    @property
    def backlog(self) -> int:
        return len(self.queue) + sum(len(s) for s in self._stores)

    def _count_failure(self, kind: str, exc: BaseException) -> None:
        """Labeled failure counter so chaos triage can attribute task
        aborts to a node/kind/error without parsing tracebacks."""
        self.system.monitor.metrics.counter(
            "rt_task_failures", node=self.node_id, kind=kind,
            error=type(exc).__name__).inc()

    @property
    def idle(self) -> bool:
        return self.inflight == 0

    def _store_idx(self, vector_name: str, page_idx: int) -> int:
        return spawn_seed(0xBEEF, vector_name,
                          page_idx) % len(self._stores)

    # -- processes ---------------------------------------------------------------
    def _scheduler(self):
        while True:
            task = yield self.queue.get()
            if isinstance(task, BatchTask):
                shards: Dict[int, None] = {}
                for sub in task.tasks:
                    shards[self._store_idx(task.vector_name,
                                           sub.page_idx)] = None
                if task.kind is TaskKind.OBJ_READ and len(shards) > 1:
                    # Read-only object batches need no cross-FIFO
                    # barrier: a shard barrier would hold every
                    # involved worker FIFO until the last one drains
                    # (convoying a serving node's whole low-latency
                    # pool behind one slow page). Split the batch into
                    # independent per-FIFO parts instead — each part
                    # still sits in its pages' FIFO, so the per-page
                    # read-after-write guarantee is untouched.
                    self._split_obj_read_batch(task)
                    continue
                state = _BatchState(task, len(shards), self.sim)
                # All shard puts happen atomically (no yields), so two
                # batches sharing FIFOs enqueue in a consistent order
                # everywhere — shard barriers cannot deadlock.
                for idx in shards:
                    self._stores[idx].put(_BatchShard(state))
                continue
            idx = self._store_idx(task.vector_name, task.page_idx)
            self._stores[idx].put(task)

    def _split_obj_read_batch(self, batch: BatchTask) -> None:
        """Fan an OBJ_READ batch out as one independent single-shard
        part per worker FIFO and merge the part results back into the
        original task order once all parts complete."""
        groups: Dict[int, List[int]] = {}
        for pos, sub in enumerate(batch.tasks):
            groups.setdefault(
                self._store_idx(batch.vector_name, sub.page_idx),
                []).append(pos)
        parts = []
        for idx, positions in groups.items():
            part = BatchTask(
                kind=batch.kind, vector_name=batch.vector_name,
                client_node=batch.client_node,
                tasks=[batch.tasks[p] for p in positions])
            part.done = Event(self.sim)
            part.submit_time = batch.submit_time
            part.ctx = batch.ctx
            self._stores[idx].put(
                _BatchShard(_BatchState(part, 1, self.sim)))
            parts.append((positions, part))
        # The parent batch counted once at submit(); every part's
        # worker decrements, so account for the extras.
        self.inflight += len(parts) - 1
        self._backlog_gauge.add(len(parts) - 1)

        def merge():
            try:
                yield AllOf(self.sim, [p.done for _pos, p in parts])
            except BaseException as exc:  # noqa: BLE001 - re-raised to
                if batch.done is not None:  # the waiting client
                    batch.done.fail(exc)
                    return
                raise
            results = [None] * len(batch.tasks)
            for positions, part in parts:
                for pos, value in zip(positions, part.done.value):
                    results[pos] = value
            if batch.done is not None:
                batch.done.succeed(results)

        self.sim.process(
            merge(), name=f"rt{self.node_id}.objmerge")

    def _worker(self, store: Store):
        cfg = self.system.config
        tracer = self.system.tracer
        while True:
            task = yield store.get()
            if isinstance(task, _BatchShard):
                state = task.state
                state.arrived += 1
                if state.arrived < state.n_shards:
                    # Ordering barrier: hold this FIFO until the batch
                    # (serviced by the last-arriving shard's worker)
                    # completes, so later same-page tasks stay ordered.
                    yield state.complete
                    continue
                yield from self._run_batch(state, tracer, cfg)
                continue
            pool = self.low_cores \
                if task.nbytes < cfg.low_latency_threshold \
                else self.high_cores
            req = pool.request()
            yield req
            self._backlog_gauge.sub(1)
            # Queue wait: enqueue at the runtime until a CPU core of
            # the right pool picks the task up. ``cause`` links back to
            # the client-side submit span across the process boundary.
            causal = {"cause": task.ctx} if task.ctx is not None else {}
            if tracer.enabled:
                tracer.record(
                    f"wait:{task.kind.value}", "rt.queue",
                    self.node_id, task.submit_time, self.sim.now,
                    vector=task.vector_name, page=task.page_idx,
                    pool="low" if pool is self.low_cores else "high",
                    **causal)
            try:
                with tracer.span(f"exec:{task.kind.value}",
                                 "rt.service", node=self.node_id,
                                 vector=task.vector_name,
                                 page=task.page_idx,
                                 nbytes=task.nbytes, **causal):
                    result = yield from self.executor.execute(task)
                if task.done is not None:
                    task.done.succeed(result)
            except (GeneratorExit, KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                self._count_failure(task.kind.value, exc)
                if task.done is not None:
                    task.done.fail(exc)
                else:
                    raise
            finally:
                self.inflight -= 1
                pool.release(req)

    def _run_batch(self, state: _BatchState, tracer, cfg):
        """Service a whole BatchTask (runs on the worker that popped
        the batch's last shard; every involved FIFO has drained all
        earlier tasks for the batch's pages by now)."""
        batch = state.batch
        pool = self.low_cores \
            if batch.nbytes < cfg.low_latency_threshold \
            else self.high_cores
        req = pool.request()
        yield req
        self._backlog_gauge.sub(1)
        causal = {"cause": batch.ctx} if batch.ctx is not None else {}
        if tracer.enabled:
            tracer.record(
                f"wait:batch:{batch.kind.value}", "rt.queue",
                self.node_id, batch.submit_time, self.sim.now,
                vector=batch.vector_name, count=len(batch),
                pool="low" if pool is self.low_cores else "high",
                **causal)
        try:
            with tracer.span(f"exec:batch:{batch.kind.value}",
                             "rt.service", node=self.node_id,
                             vector=batch.vector_name,
                             count=len(batch), nbytes=batch.nbytes,
                             **causal):
                results = yield from self.executor.execute_batch(batch)
            if batch.done is not None:
                batch.done.succeed(results)
        except (GeneratorExit, KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            self._count_failure(f"batch:{batch.kind.value}", exc)
            if batch.done is not None:
                batch.done.fail(exc)
            else:
                raise
        finally:
            self.inflight -= 1
            pool.release(req)
            # Release the other shard workers only after the batch is
            # fully serviced (read-after-write for later tasks).
            state.complete.succeed()

    def _scaling_controller(self):
        """Grow the high-latency pool's core count under backlog and
        shrink it again on sustained low backlog (paper III-B,
        LabStor-style)."""
        cfg = self.system.config
        while True:
            yield self.sim.timeout(cfg.organizer_period)
            self._scale_tick()

    def _scale_tick(self, backlog=None) -> None:
        """One controller period: grow fast, shrink patiently.

        Growth triggers immediately when the backlog exceeds twice the
        pool; shrinking requires ``scale_down_periods`` *consecutive*
        low-backlog observations (``backlog < capacity``) — requiring a
        completely empty queue pinned the pool at ``workers_max``
        forever under any trickle of tasks.
        """
        cfg = self.system.config
        if backlog is None:
            backlog = self.backlog
        cap = self.high_cores.capacity
        if backlog > 2 * cap and cap < cfg.workers_max:
            self.high_cores.set_capacity(cap + 1)
            self._low_streak = 0
            self.system.monitor.count(f"rt{self.node_id}.scale_up")
            self.system.monitor.metrics.counter(
                "rt_scale", node=self.node_id, direction="up").inc()
        elif backlog < cap:
            self._low_streak += 1
            if (self._low_streak >= cfg.scale_down_periods
                    and cap > cfg.workers_min):
                self.high_cores.set_capacity(cap - 1)
                self._low_streak = 0
                self.system.monitor.count(f"rt{self.node_id}.scale_down")
                self.system.monitor.metrics.counter(
                    "rt_scale", node=self.node_id,
                    direction="down").inc()
        else:
            self._low_streak = 0

    # Backwards-compatible alias used by tests/stats.
    @property
    def cores(self) -> Resource:
        return self.high_cores
