"""Fig. 5: weak scaling, MegaMmap vs Spark/MPI, datasets in memory.

Paper setup (IV-B1, scaled GB -> MB, 48 -> 2 procs/node): per-node
datasets that fit entirely in DRAM; KMeans (2 MB/node, k=8, 4 iters)
and RF (128 KB/node, 1 tree, depth 10) against Spark; DBSCAN
(2 MB/node, eps=8, min_pts=64) and Gray-Scott (16 MB/node, no
checkpoints) against MPI. Expected shape: MegaMmap ≈ MPI, and up to
~2x faster than Spark, with Spark using 3-4x the DRAM.

Scale ladder overrides (so CI runs a small ladder while the 64-node
run stays reproducible from the CLI):

* ``MEGAMMAP_FIG5_NODES`` / ``--nodes`` — comma-separated node counts
  (default ``1,2,4``). Counts of :data:`SHARD_MIN` nodes and above run
  rack-decomposed on the sharded simulator (``racks = nodes/4``,
  workers bounded by the host's cores), MegaMmap KMeans + Gray-Scott
  only — the Spark/MPI baselines stay on the small scales the paper's
  figure spans.
* ``MEGAMMAP_FIG5_SCALE`` / ``--scale`` — multiplier on the per-node
  dataset sizes (default 1.0). Weak scaling is preserved at any value:
  the per-node workload is constant across the ladder.

``python benchmarks/bench_fig5_weak_scaling.py --nodes 1,4,16,64``
reproduces the full ladder standalone; per-scale critical-path
breakdowns ride along in ``BENCH_fig5.json`` whenever span tracing is
enabled (``MEGAMMAP_TRACE=1``).
"""

from __future__ import annotations

import os
import sys
import time

if __package__ in (None, ""):  # script mode: python benchmarks/bench_...
    _ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    sys.path.insert(0, _ROOT)
    sys.path.insert(0, os.path.join(_ROOT, "src"))

import numpy as np
import pytest

from repro.apps.datagen import POINT3D, write_gadget_like, \
    write_parquet_points
from repro.apps.dbscan import mm_dbscan, mpi_dbscan
from repro.apps.grayscott import mm_gray_scott, mpi_gray_scott
from repro.apps.kmeans import mm_kmeans, spark_kmeans
from repro.apps.rf import mm_random_forest
from repro.apps.rf.spark_rf import spark_random_forest
from benchmarks.common import critical_breakdown, emit_result, \
    export_trace, print_table, sharded_testbed, testbed, write_csv

NODE_COUNTS = [1, 2, 4]

#: Node counts at or above this run on the sharded simulator.
SHARD_MIN = 8
PROCS_PER_NODE = 2

#: Scaled per-node dataset sizes (records), before MEGAMMAP_FIG5_SCALE.
KMEANS_PER_NODE = 40_000      # ~0.5 MB/node of Point3D
DBSCAN_PER_NODE = 4_000
RF_PER_NODE = 4_000
GS_L_BASE = 48                # L grows with cube root of node count


def _node_counts():
    env = os.environ.get("MEGAMMAP_FIG5_NODES", "").strip()
    if not env:
        return list(NODE_COUNTS)
    counts = [int(tok) for tok in env.replace(",", " ").split()]
    if not counts or any(n < 1 for n in counts):
        raise ValueError(f"bad MEGAMMAP_FIG5_NODES: {env!r}")
    return counts


def _scale() -> float:
    return float(os.environ.get("MEGAMMAP_FIG5_SCALE", "") or 1.0)


def _per_node(base: int, scale: float, floor: int = 500) -> int:
    return max(floor, int(base * scale))


def _gs_l(n_nodes: int, scale: float = 1.0) -> int:
    """Grid edge for weak scaling: total cells grow with nodes x scale,
    clamped so every rank owns at least one plane."""
    raw = GS_L_BASE * (n_nodes * scale) ** (1 / 3)
    nprocs = n_nodes * PROCS_PER_NODE
    return max(int(round(raw / 4) * 4), -(-nprocs // 4) * 4)


def _shards_for(racks: int) -> int:
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        cores = os.cpu_count() or 1
    return max(1, min(racks, cores))


def run_weak_scaling(tmp_path):
    rows = []
    breakdowns = {}
    scale = _scale()
    for n in _node_counts():
        if n >= SHARD_MIN:
            rows.extend(_run_sharded_scale(tmp_path, n, scale))
            continue
        km_n = _per_node(KMEANS_PER_NODE, scale)
        db_n = _per_node(DBSCAN_PER_NODE, scale)
        rf_n = _per_node(RF_PER_NODE, scale)

        # --- KMeans: MegaMmap vs Spark ---
        path = tmp_path / f"km{n}.parquet"
        write_parquet_points(str(path), km_n * n, 8, seed=n)
        url = f"parquet://{path}"
        c = testbed(n_nodes=n)
        mm = c.run(mm_kmeans, url, 8, 4)
        if c.tracer.enabled:  # MEGAMMAP_TRACE=1 / testbed(trace=True)
            export_trace(c, f"fig5_kmeans_mm_{n}n")
            breakdowns[("KMeans", n)] = critical_breakdown(c)
        c2 = testbed(n_nodes=n)
        sp = c2.run_driver(spark_kmeans(c2, url, 8, 4))
        rows.append(dict(app="KMeans", nodes=n, procs=c.spec.nprocs,
                         racks=1, mm_s=mm.runtime, baseline="Spark",
                         baseline_s=sp.runtime,
                         mm_dram_mb=mm.peak_dram_total / 2**20,
                         baseline_dram_mb=sp.peak_dram_total / 2**20))

        # --- DBSCAN: MegaMmap vs MPI ---
        path = tmp_path / f"db{n}.parquet"
        write_parquet_points(str(path), db_n * n, 8, seed=n)
        url = f"parquet://{path}"
        c = testbed(n_nodes=n)
        mm = c.run(mm_dbscan, url, 8.0, 16)
        c2 = testbed(n_nodes=n)
        mpi = c2.run(mpi_dbscan, url, 8.0, 16)
        rows.append(dict(app="DBSCAN", nodes=n, procs=c.spec.nprocs,
                         racks=1, mm_s=mm.runtime, baseline="MPI",
                         baseline_s=mpi.runtime,
                         mm_dram_mb=mm.peak_dram_total / 2**20,
                         baseline_dram_mb=mpi.peak_dram_total / 2**20))

        # --- Random Forest: MegaMmap vs Spark ---
        snap = tmp_path / f"rf{n}.h5"
        labels = write_gadget_like(str(snap), rf_n * n, 8,
                                   seed=n)
        lab_path = tmp_path / f"rf{n}.labels"
        (labels + 1).astype(np.int32).tofile(lab_path)
        url, lurl = f"hdf5://{snap}:parttype0", f"posix://{lab_path}"
        c = testbed(n_nodes=n)
        mm = c.run(mm_random_forest, url, lurl, 1, 10, 4, 0,
                   128 * 1024)
        c2 = testbed(n_nodes=n)
        sp = c2.run_driver(spark_random_forest(
            c2, url, lurl, num_trees=1, max_depth=10, oob=4))
        rows.append(dict(app="RF", nodes=n, procs=c.spec.nprocs,
                         racks=1, mm_s=mm.runtime, baseline="Spark",
                         baseline_s=sp.runtime,
                         mm_dram_mb=mm.peak_dram_total / 2**20,
                         baseline_dram_mb=sp.peak_dram_total / 2**20))

        # --- Gray-Scott: MegaMmap vs MPI (plotgap=0, in memory) ---
        L = _gs_l(n, scale)
        c = testbed(n_nodes=n)
        mm = c.run(mm_gray_scott, L, 3, 0, 2 * 1024 * 1024)
        c2 = testbed(n_nodes=n)
        mpi = c2.run(mpi_gray_scott, L, 3)
        rows.append(dict(app="Gray-Scott", nodes=n, procs=c.spec.nprocs,
                         racks=1, mm_s=mm.runtime, baseline="MPI",
                         baseline_s=mpi.runtime,
                         mm_dram_mb=mm.peak_dram_total / 2**20,
                         baseline_dram_mb=mpi.peak_dram_total / 2**20))
    return rows, breakdowns


def _run_sharded_scale(tmp_path, n, scale):
    """One large rung of the ladder: MegaMmap KMeans + Gray-Scott on
    the rack-decomposed simulator (no Spark/MPI baselines — the paper's
    figure compares those at the small scales only)."""
    racks = n // 4
    if racks * 4 != n:
        raise ValueError(f"sharded scales must be multiples of 4: {n}")
    shards = _shards_for(racks)
    rows = []

    km_n = _per_node(KMEANS_PER_NODE, scale)
    path = tmp_path / f"km{n}.parquet"
    write_parquet_points(str(path), km_n * n, 8, seed=n)
    c = sharded_testbed(n, racks=racks)
    mm = c.run(mm_kmeans, f"parquet://{path}", 8, 4, shards=shards)
    rows.append(dict(app="KMeans", nodes=n, procs=c.spec.nprocs,
                     racks=racks, mm_s=mm.runtime, baseline=None,
                     baseline_s=None,
                     mm_dram_mb=mm.peak_dram_total / 2**20,
                     baseline_dram_mb=None))

    L = _gs_l(n, scale)
    c = sharded_testbed(n, racks=racks)
    mm = c.run(mm_gray_scott, L, 3, 0, 2 * 1024 * 1024, shards=shards)
    rows.append(dict(app="Gray-Scott", nodes=n, procs=c.spec.nprocs,
                     racks=racks, mm_s=mm.runtime, baseline=None,
                     baseline_s=None,
                     mm_dram_mb=mm.peak_dram_total / 2**20,
                     baseline_dram_mb=None))
    return rows


def _emit_rows(rows, breakdowns):
    scale = _scale()
    for r in rows:
        cfg = dict(nodes=r["nodes"], racks=r["racks"], scale=scale)
        key = r["app"].lower().replace("-", "")
        emit_result("fig5", f"{key}.mm_runtime", r["mm_s"], "sim_s",
                    cfg, breakdown=breakdowns.get((r["app"],
                                                   r["nodes"])))
        if r["baseline_s"] is not None:
            emit_result("fig5", f"{key}.speedup_vs_baseline",
                        r["baseline_s"] / max(r["mm_s"], 1e-9), "x",
                        dict(**cfg, baseline=r["baseline"]))


@pytest.mark.benchmark(group="fig5")
def test_fig5_weak_scaling(benchmark, tmp_path):
    rows, breakdowns = benchmark.pedantic(
        run_weak_scaling, args=(tmp_path,), rounds=1, iterations=1)
    print_table("Fig. 5 — weak scaling (simulated seconds)", rows)
    write_csv("fig5_weak_scaling", rows)
    _emit_rows(rows, breakdowns)
    by_app = {}
    for r in rows:
        by_app.setdefault(r["app"], []).append(r)
    # Shape claims of Fig. 5 (baseline rows only — the sharded rungs
    # carry no Spark/MPI runs):
    for r in rows:
        if r["baseline"] == "Spark":
            # MegaMmap beats Spark (paper: "as much as 2x faster").
            assert r["mm_s"] < r["baseline_s"], r
            # Spark uses several times the DRAM (paper: 3-4x).
            assert r["baseline_dram_mb"] > 1.5 * r["mm_dram_mb"], r
        elif r["baseline"] == "MPI":
            # MegaMmap performs competitively to MPI (within 2x at
            # this scale; the paper shows near-parity at 48 procs/node).
            assert r["mm_s"] < 2.0 * r["baseline_s"], r
    # Weak scaling: runtime grows sublinearly with node count for the
    # MegaMmap versions (no coherence blow-up).
    for app, app_rows in by_app.items():
        app_rows.sort(key=lambda r: r["nodes"])
        first, last = app_rows[0], app_rows[-1]
        factor = last["nodes"] / first["nodes"]
        assert last["mm_s"] < factor * max(first["mm_s"], 1e-9) * 2, app


# -- sharded-vs-single speedup (the scaling-smoke CI gate) ------------------
SCALING_NODES = 16
SCALING_RACKS = 4
SCALING_PER_NODE = 10_000


@pytest.mark.benchmark(group="fig5")
def test_fig5_shard_scaling(benchmark, tmp_path):
    """16-node KMeans, 4 racks: ``shards=1`` vs ``shards=4`` must be
    bit-for-bit identical, and on a multicore host the fork workers
    must at least double wall-clock throughput.  Emits the
    ``scaling.*`` metrics the scaling-smoke CI job gates on."""
    path = tmp_path / "km_scaling.parquet"
    write_parquet_points(str(path), SCALING_PER_NODE * SCALING_NODES,
                         8, seed=7)
    url = f"parquet://{path}"

    def once(shards):
        c = sharded_testbed(SCALING_NODES, racks=SCALING_RACKS)
        t0 = time.perf_counter()
        res = c.run(mm_kmeans, url, 8, 4, shards=shards)
        return res, time.perf_counter() - t0

    def run():
        return once(1), once(SCALING_RACKS)

    (res1, wall1), (res4, wall4) = benchmark.pedantic(
        run, rounds=1, iterations=1)
    # Bit-for-bit: sharding may only change wall-clock, never results.
    assert res1.runtime == res4.runtime
    for (ca, ia), (cb, ib) in zip(res1.values, res4.values):
        assert np.array_equal(ca, cb) and ia == ib
    assert res1.stats == res4.stats
    assert res1.stats.get("net.boundary_exports", 0) > 0

    events = res4.stats["kernel.fast_events"] \
        + res4.stats["kernel.heap_events"]
    speedup = wall1 / wall4
    events_per_sec = events / wall4
    rows = [dict(shards=1, wall_s=round(wall1, 2)),
            dict(shards=SCALING_RACKS, wall_s=round(wall4, 2),
                 speedup=round(speedup, 2),
                 events_per_sec=round(events_per_sec))]
    print_table(f"Shard scaling ({SCALING_NODES} nodes, "
                f"{SCALING_RACKS} racks)", rows)
    cfg = dict(nodes=SCALING_NODES, racks=SCALING_RACKS,
               shards=SCALING_RACKS, per_node=SCALING_PER_NODE)
    emit_result("scaling", "scaling.shard_speedup", speedup, "x", cfg)
    emit_result("scaling", "scaling.events_per_sec", events_per_sec,
                "events/s", cfg)
    cores = _shards_for(SCALING_RACKS)
    if cores >= 4:
        # The perf-floor claim, asserted here too so a local multicore
        # run fails fast; single-core hosts can only check overheads.
        assert speedup >= 2.0, rows
    else:
        assert speedup > 0.3, rows


def main(argv=None) -> int:
    import argparse
    import tempfile
    from pathlib import Path

    ap = argparse.ArgumentParser(
        description="Fig. 5 weak scaling, CLI-reproducible at any "
                    "ladder (e.g. --nodes 1,4,16,64)")
    ap.add_argument("--nodes", default=None,
                    help="comma-separated node counts "
                         "(default 1,2,4; >= 8 runs sharded)")
    ap.add_argument("--scale", type=float, default=None,
                    help="per-node dataset multiplier (default 1.0)")
    args = ap.parse_args(argv)
    if args.nodes is not None:
        os.environ["MEGAMMAP_FIG5_NODES"] = args.nodes
    if args.scale is not None:
        os.environ["MEGAMMAP_FIG5_SCALE"] = str(args.scale)
    with tempfile.TemporaryDirectory() as td:
        rows, breakdowns = run_weak_scaling(Path(td))
    print_table("Fig. 5 — weak scaling (simulated seconds)", rows)
    write_csv("fig5_weak_scaling", rows)
    _emit_rows(rows, breakdowns)
    return 0


if __name__ == "__main__":
    sys.exit(main())
