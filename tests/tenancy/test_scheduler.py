"""Colocation scheduler: determinism, admission control, row schema.

Determinism is the load-bearing property: the scheduler runs inside
the discrete-event simulator, every rng stream is keyed by tenant
name, and the decision log carries rounded floats only — so the same
seed and spec must produce *bit-identical* per-tenant rows and an
identical decision log, run after run.
"""

import pytest

from repro.pipeline import PipelineError, build_cluster
from repro.tenancy import (JobScheduler, JobSpec, load_colocation_spec,
                           run_colocation)

SPEC = """
name: Colocate-Test
cluster:
  n_nodes: 2
  procs_per_node: 1
  dram_mb: 8
  nvme_mb: 64
  seed: 11
tenancy:
  realloc: true
jobs:
  - name: kmA
    app:
      kind: mm_kmeans
      k: 4
      max_iter: 2
    dataset:
      kind: points
      n: 3000
      k: 4
      seed: 3
      path: pts_a.parquet
    procs: 2
    dram_quota_mb: 4
    min_dram_mb: 2
  - name: gsB
    app:
      kind: mm_gray_scott
      L: 16
      steps: 2
    procs: 2
    arrival: 0.05
    dram_quota_mb: 4
    min_dram_mb: 2
  - name: antag
    app:
      kind: mm_stream
      passes: 2
    dataset:
      kind: points
      n: 8000
      k: 4
      seed: 5
      path: pts_antag.parquet
    procs: 1
    arrival: 0.1
    dram_quota_mb: 2
    min_dram_mb: 1
"""


def test_same_seed_and_spec_is_bit_identical(tmp_path):
    # Same workdir on purpose: dataset URLs embed the absolute path
    # and feed bucket placement hashes, so "the same run" means the
    # same spec, seed, *and* dataset location. The second run reuses
    # the already-materialized datasets (same seed, same bytes).
    r1 = run_colocation(SPEC, workdir=str(tmp_path))
    r2 = run_colocation(SPEC, workdir=str(tmp_path))
    assert r1.rows == r2.rows
    assert r1.decisions == r2.decisions
    assert r1.makespan == r2.makespan
    names = [row["job"] for row in r1.rows]
    assert names == ["kmA", "gsB", "antag"]
    assert all(row["status"] == "ok" for row in r1.rows)


def test_decision_log_is_plain_rounded_dicts(tmp_path):
    res = run_colocation(SPEC, workdir=str(tmp_path))
    assert res.decisions, "campaign must log decisions"
    for entry in res.decisions:
        assert type(entry) is dict
        assert set(entry) >= {"t", "kind"}
        assert entry["kind"] in {"admit", "queue", "reject",
                                 "complete", "crash", "realloc"}
        # Rounded floats only: re-rounding must be the identity.
        for v in entry.values():
            if isinstance(v, float):
                assert v == round(v, 9)
    kinds = [e["kind"] for e in res.decisions]
    assert kinds.count("admit") == 3
    assert kinds.count("complete") == 3


def _cluster(dram_mb=8, seed=11):
    return build_cluster({"n_nodes": 2, "procs_per_node": 1,
                          "dram_mb": dram_mb, "nvme_mb": 64,
                          "seed": seed})


def _gs(name, arrival=0.0, min_dram_mb=0):
    return JobSpec(name=name,
                   app={"kind": "mm_gray_scott", "L": 16, "steps": 1},
                   procs=1, arrival=arrival,
                   min_dram=int(min_dram_mb * 2 ** 20))


def test_admission_rejects_a_job_that_can_never_fit():
    # 2 nodes x 8 MB DRAM = 16 MB capacity; a 1000 MB minimum can
    # never be committed.
    sched = JobScheduler(_cluster(), [_gs("big", min_dram_mb=1000)],
                         realloc=False)
    res = sched.run()
    assert res.rows[0]["status"] == "rejected"
    assert res.decisions[0]["kind"] == "reject"


def test_admission_queues_until_capacity_frees():
    # Two simultaneous jobs each committing 12 MB against 16 MB: the
    # second queues and starts only after the first completes.
    jobs = [_gs("first", min_dram_mb=12),
            _gs("second", min_dram_mb=12)]
    sched = JobScheduler(_cluster(), jobs, realloc=False)
    res = sched.run()
    rows = {r["job"]: r for r in res.rows}
    assert rows["first"]["status"] == "ok"
    assert rows["second"]["status"] == "ok"
    assert rows["second"]["start_s"] >= rows["first"]["finish_s"]
    kinds = [e["kind"] for e in res.decisions]
    assert "queue" in kinds
    # The queued job is admitted exactly once, after a completion.
    q = kinds.index("queue")
    assert "complete" in kinds[q:]


def test_duplicate_job_names_rejected():
    with pytest.raises(PipelineError):
        JobScheduler(_cluster(), [_gs("same"), _gs("same")])


def test_spec_loader_requires_jobs():
    with pytest.raises(PipelineError):
        load_colocation_spec("name: NoJobs\n")


def test_row_schema_and_csv_output(tmp_path):
    res = run_colocation(SPEC, workdir=str(tmp_path))
    expect = {"job", "kind", "procs", "status", "arrival_s", "start_s",
              "finish_s", "turnaround_s", "service_s", "task_p99_ms",
              "tasks", "hit_ratio", "dram_quota_mb"}
    for row in res.rows:
        assert set(row) == expect
    assert (tmp_path / "colocate_stats.csv").exists()


def test_multi_job_requires_tenancy(tmp_path):
    from repro.tenancy import QuotaExceededError
    spec = SPEC + "\n"  # copy
    spec = spec.replace("realloc: true",
                        "realloc: true\n  enabled: false")
    with pytest.raises(QuotaExceededError):
        run_colocation(spec, workdir=str(tmp_path))
    # Fail-fast: the bad spec must not have materialized datasets.
    assert not list(tmp_path.iterdir())
