"""The simulated-cluster harness: nodes, fabric, PFS, MegaMmap, MPI.

:class:`SimCluster` builds the paper's testbed in miniature — a
compute rack of nodes each with a DMSH, a storage rack of PFS servers,
the 40 Gb/s fabric between them, a deployed MegaMmap runtime, and an
MPI world — and launches SPMD applications written as generator
functions ``app(ctx, *args)`` where ``ctx`` is an
:class:`AppContext`. Runtime, resource usage, and OOM behaviour are
recorded per run (the role jarvis-cd + pymonitor play in the paper's
artifact).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.core.config import MegaMmapConfig
from repro.core.client import MegaMmapClient
from repro.core.system import MegaMmapSystem
from repro.mpi import Comm, MpiWorld
from repro.net.fabric import ETH_40G, LinkSpec, Network
from repro.sim import AllOf, Monitor, Simulator, rng_stream
from repro.sim.shard import (
    ShardBoundary,
    run_windows,
    run_windows_parallel,
)
from repro.storage.device import DeviceFullError, DeviceSpec
from repro.storage.dmsh import DMSH
from repro.storage.pfs import ParallelFS
from repro.storage.tiers import DRAM, HDD, MB, NVME, scaled


class OutOfMemoryError(RuntimeError):
    """A process exceeded its node's DRAM (the simulated OOM kill)."""


@dataclass
class ClusterSpec:
    """Shape of the simulated testbed.

    Defaults follow the paper's per-node hardware with capacities
    scaled GB -> MB (DESIGN.md, scaled units) and a modest process
    count for simulation tractability.
    """

    n_nodes: int = 4
    procs_per_node: int = 4
    #: Rack decomposition (DESIGN.md, sharded simulation): compute
    #: nodes split into ``racks`` equal racks, each with its own PFS
    #: server slice; page placement and runtime services are
    #: rack-scoped, and all cross-rack coupling is MPI traffic on the
    #: inter-rack link. ``racks > 1`` topologies run under
    #: :class:`ShardedCluster` (one simulator per rack).
    racks: int = 1
    tiers: Sequence[DeviceSpec] = field(default_factory=lambda: (
        scaled(DRAM, 48 * MB),
        scaled(NVME, 128 * MB),
    ))
    intra: LinkSpec = ETH_40G
    inter: Optional[LinkSpec] = None
    pfs_servers: int = 2
    pfs_spec: DeviceSpec = field(
        default_factory=lambda: scaled(HDD, 4096 * MB))
    pfs_stripe: int = MB
    config: MegaMmapConfig = field(default_factory=MegaMmapConfig)
    seed: int = 0
    #: Record latency spans (see :mod:`repro.sim.trace`); off by
    #: default — the tracer costs nothing when disabled.
    trace: bool = False

    @property
    def nprocs(self) -> int:
        return self.n_nodes * self.procs_per_node

    @property
    def rack_size(self) -> int:
        """Compute nodes per rack."""
        if self.racks < 1 or self.n_nodes % self.racks:
            raise ValueError(
                f"{self.racks} racks do not evenly partition "
                f"{self.n_nodes} nodes")
        return self.n_nodes // self.racks

    @property
    def lookahead(self) -> float:
        """Window-sync lookahead: the minimum cross-rack latency."""
        inter = self.inter or LinkSpec(self.intra.bandwidth,
                                       self.intra.latency * 2.5)
        return inter.latency


@dataclass
class RunResult:
    """Outcome of one application run."""

    values: List[Any]
    runtime: float
    oom: bool
    peak_dram_node: float     # max over nodes of peak DRAM bytes
    peak_dram_total: float    # sum over nodes of peak DRAM bytes
    stats: dict

    @property
    def crashed(self) -> bool:
        return self.oom


class AppContext:
    """Everything one application process sees."""

    def __init__(self, cluster: "SimCluster", rank: int, comm: Comm,
                 mm: MegaMmapClient, nprocs: Optional[int] = None,
                 rng=None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.rank = rank
        # Colocated jobs see their own world size and rng stream, not
        # the cluster's — the defaults keep plain runs bit-identical.
        self.nprocs = cluster.spec.nprocs if nprocs is None else nprocs
        self.comm = comm
        self.node = comm.node
        self.mm = mm
        self.rng = rng if rng is not None \
            else rng_stream(cluster.spec.seed, "proc", rank)
        self._allocs = 0

    # -- compute charging ------------------------------------------------------
    def compute_bytes(self, nbytes: float, factor: float = 1.0):
        """Charge compute time for touching ``nbytes`` of data
        (generator). ``factor`` scales per-byte cost (heavier kernels,
        JVM overheads...)."""
        bw = self.cluster.spec.config.compute_bw
        yield self.sim.timeout(factor * nbytes / bw)

    def compute_seconds(self, seconds: float):
        yield self.sim.timeout(seconds)

    # -- explicit memory accounting (baselines) -----------------------------------
    def alloc(self, nbytes: int) -> int:
        """Reserve working DRAM; raises :class:`OutOfMemoryError` when
        the node's memory is exhausted (the Linux OOM kill of paper
        IV-B2)."""
        dram = self.cluster.dmshs[self.node].tiers[0]
        try:
            dram.reserve(int(nbytes), strict=True)
        except DeviceFullError as exc:
            raise OutOfMemoryError(str(exc)) from exc
        self._allocs += int(nbytes)
        return int(nbytes)

    def free(self, nbytes: int) -> None:
        dram = self.cluster.dmshs[self.node].tiers[0]
        dram.unreserve(int(nbytes))
        self._allocs -= int(nbytes)

    def free_all(self) -> None:
        if self._allocs:
            self.free(self._allocs)

    def barrier(self):
        return self.comm.barrier()

    def same_rack(self, other_rank: int) -> bool:
        """Whether ``other_rank`` runs in this process's rack (always
        true in single-rack topologies). Rack-decomposed applications
        use this to pick MPI halo exchange over DSM reads at rack
        boundaries."""
        rs = self.cluster.rack_size
        return self.comm.node_of(other_rank) // rs == self.node // rs


class SimCluster:
    """One simulated deployment; reusable across several app runs."""

    def __init__(self, spec: Optional[ClusterSpec] = None,
                 rack_id: Optional[int] = None, **kwargs):
        if spec is None:
            spec = ClusterSpec(**kwargs)
        elif kwargs:
            raise TypeError("pass either a spec or keyword overrides")
        if spec.racks > 1 and rack_id is None:
            raise ValueError(
                "racks > 1 topologies run one simulator per rack — "
                "use ShardedCluster")
        if rack_id is not None and not 0 <= rack_id < spec.racks:
            raise ValueError(f"rack {rack_id} outside 0..{spec.racks})")
        self.spec = spec
        self.rack_id = rack_id
        self.rack_size = spec.rack_size
        self.sim = Simulator()
        self.monitor = Monitor(self.sim)
        # Every rack simulator carries the *global* node id space; the
        # structures of remote racks are inert mirrors (their NICs,
        # DMSHs and runtimes never see traffic — rack-scoped placement
        # keeps all scache/PFS paths inside the local rack, and the
        # only cross-rack coupling is MPI messages routed through the
        # shard boundary). That keeps node numbering identical across
        # racks and across shard counts.
        total_nodes = spec.n_nodes + spec.racks * spec.pfs_servers
        self.network = Network(
            self.sim, total_nodes, intra=spec.intra, inter=spec.inter,
            rack_size=spec.n_nodes if spec.racks == 1
            else self.rack_size,
            monitor=self.monitor)
        self.dmshs = [
            DMSH(self.sim, spec.tiers, node_id=i, monitor=self.monitor)
            for i in range(spec.n_nodes)
        ]
        if rack_id is None:
            self.local_nodes = list(range(spec.n_nodes))
            pfs_lo = spec.n_nodes
        else:
            self.local_nodes = list(range(
                rack_id * self.rack_size, (rack_id + 1) * self.rack_size))
            pfs_lo = spec.n_nodes + rack_id * spec.pfs_servers
        self.pfs = None
        if spec.pfs_servers > 0:
            self.pfs = ParallelFS(
                self.sim, self.network,
                server_nodes=list(range(pfs_lo,
                                        pfs_lo + spec.pfs_servers)),
                server_spec=spec.pfs_spec, stripe_size=spec.pfs_stripe,
                monitor=self.monitor)
        self.system = MegaMmapSystem(
            self.sim, self.network, self.dmshs, config=spec.config,
            pfs=self.pfs, monitor=self.monitor,
            local_nodes=None if rack_id is None else self.local_nodes,
            rack_size=self.rack_size)
        self.tracer = self.system.tracer
        self.tracer.enabled = spec.trace
        if spec.trace and spec.config.trace_sample_rate < 1.0:
            from repro.sim.rand import py_rng
            from repro.sim.trace import TraceSampler
            # A dedicated seeded stream: sampling draws never perturb
            # application or placement randomness.
            self.tracer.sampler = TraceSampler(
                py_rng(spec.seed, "trace-sample"),
                spec.config.trace_sample_rate,
                spec.config.trace_slow_factor)
        rank_to_node = [r // spec.procs_per_node
                        for r in range(spec.nprocs)]
        self.world = MpiWorld(self.sim, self.network, rank_to_node)
        if rack_id is not None and spec.racks > 1:
            self.network.boundary = ShardBoundary(
                rack_id, self.local_nodes[0], self.local_nodes[-1] + 1,
                self.rack_size)

    # -- running applications ------------------------------------------------------
    def local_ranks(self) -> List[int]:
        """Ranks hosted by this simulator (all of them outside sharded
        runs)."""
        lo, hi = self.local_nodes[0], self.local_nodes[-1] + 1
        return [r for r in range(self.spec.nprocs)
                if lo <= r // self.spec.procs_per_node < hi]

    def contexts(self) -> List[AppContext]:
        out = []
        for rank in self.local_ranks():
            comm = self.world.comm(rank)
            mm = self.system.client(rank, comm.node)
            out.append(AppContext(self, rank, comm, mm))
        return out

    def run(self, app: Callable, *args, allow_oom: bool = False,
            quiesce: bool = True) -> RunResult:
        """Launch ``app(ctx, *args)`` on every rank and run to
        completion."""
        ctxs = self.contexts()
        procs = [self.sim.process(app(ctx, *args), name=f"rank{ctx.rank}")
                 for ctx in ctxs]
        t0 = self.sim.now
        mark = {dev.name: dev.spec.kind == "dram" and dev.used
                for dmsh in self.dmshs for dev in dmsh}
        oom = False
        values: List[Any] = []
        try:
            values = self.sim.run(until=AllOf(self.sim, procs))
        except OutOfMemoryError:
            oom = True
            if not allow_oom:
                raise
        if not oom and quiesce:
            self.sim.run(until=self.sim.process(
                self.system.quiesce(), name="quiesce"))
        runtime = self.sim.now - t0
        peaks = [self.monitor.peak(f"{dmsh.tiers[0].name}.used")
                 for dmsh in self.dmshs]
        return RunResult(
            values=values, runtime=runtime, oom=oom,
            peak_dram_node=max(peaks, default=0.0),
            peak_dram_total=sum(peaks),
            stats=self.system.stats())

    def run_driver(self, gen, quiesce: bool = True) -> RunResult:
        """Run a single driver-style generator (Spark jobs) to
        completion."""
        t0 = self.sim.now
        proc = self.sim.process(gen, name="driver")
        value = self.sim.run(until=proc)
        if quiesce:
            self.sim.run(until=self.sim.process(
                self.system.quiesce(), name="quiesce"))
        peaks = [self.monitor.peak(f"{dmsh.tiers[0].name}.used")
                 for dmsh in self.dmshs]
        return RunResult(
            values=[value], runtime=self.sim.now - t0, oom=False,
            peak_dram_node=max(peaks, default=0.0),
            peak_dram_total=sum(peaks),
            stats=self.system.stats())

    def shutdown(self) -> None:
        """Drain and persist everything (end of the job)."""
        self.sim.run(until=self.sim.process(self.system.shutdown(),
                                            name="shutdown"))

    def export_trace(self, path: str) -> str:
        """Write recorded spans as Chrome-trace-format JSON (load in
        ``chrome://tracing`` / Perfetto); returns ``path``."""
        return self.tracer.export_chrome(path)

    # -- introspection --------------------------------------------------------------
    def hardware_cost(self) -> float:
        """$ of the per-node DMSH composition × node count (Fig. 7)."""
        return sum(d.hardware_cost() for d in self.dmshs)

    def describe_tiers(self) -> str:
        return self.dmshs[0].describe() if self.dmshs else ""


class RackHandle:
    """One rack's simulator, driven by the window-sync coordinator.

    Implements the handle protocol of :mod:`repro.sim.shard`
    (``peek``/``inject``/``run_window``/``drain_exports``/``done``/
    ``finish``). Constructed inside the owning worker process in
    parallel runs.
    """

    def __init__(self, spec: ClusterSpec, rack_id: int, app: Callable,
                 args: tuple):
        self.cluster = SimCluster(spec, rack_id=rack_id)
        self.rack_id = rack_id
        sim = self.cluster.sim
        ctxs = self.cluster.contexts()
        self._ranks = [ctx.rank for ctx in ctxs]
        procs = [sim.process(app(ctx, *args), name=f"rank{ctx.rank}")
                 for ctx in ctxs]
        self._allof = AllOf(sim, procs)
        self._values: Optional[List[Any]] = None
        self._error: Optional[BaseException] = None
        self.finished_at: Optional[float] = None
        # The callback both records completion and absorbs failures so
        # they surface at the next barrier instead of mid-window.
        self._allof.callbacks.append(self._record)

    def _record(self, evt) -> None:
        if evt._ok:
            self._values = evt._value
            self.finished_at = self.cluster.sim.now
        else:
            self._error = evt._value

    # -- handle protocol ---------------------------------------------------
    def peek(self) -> float:
        return self.cluster.sim.peek()

    def inject(self, msgs) -> None:
        """Schedule boundary messages at their delivery times, in the
        coordinator's canonical order (same-time deliveries then pop in
        injection order — the kernel's seq tiebreak)."""
        world = self.cluster.world
        sim = self.cluster.sim
        for m in msgs:
            sim.call_at(m.time,
                        lambda _evt, m=m:
                        world.mailbox(*m.key).deliver(m.payload))

    def run_window(self, horizon: float) -> int:
        count = self.cluster.sim.run_window(horizon)
        if self._error is not None:
            raise self._error
        return count

    def drain_exports(self):
        boundary = self.cluster.network.boundary
        return boundary.drain() if boundary is not None else []

    def done(self) -> bool:
        return self._values is not None

    def finish(self) -> dict:
        """Quiesce the rack and return its (picklable) share of the
        run result."""
        if self._error is not None:
            raise self._error
        cluster = self.cluster
        sim = cluster.sim
        sim.run(until=sim.process(cluster.system.quiesce(),
                                  name="quiesce"))
        boundary = cluster.network.boundary
        if boundary is not None and boundary.drain():
            raise RuntimeError(
                f"rack {self.rack_id} exported messages during "
                f"quiesce (boundary traffic after app completion)")
        peaks = [cluster.monitor.peak(f"{dmsh.tiers[0].name}.used")
                 for dmsh in cluster.dmshs]
        return {
            "rack": self.rack_id,
            "values": dict(zip(self._ranks, self._values or [])),
            "runtime": sim.now,
            "peaks": peaks,
            "stats": cluster.system.stats(),
        }


def merge_stats(per_rack: List[dict]) -> dict:
    """Combine per-rack stats dicts: counters add, peaks take the max.

    Deterministic in rack order, and independent of how racks were
    grouped onto workers — each rack's dict is identical at every
    shard count.
    """
    merged: dict = {}
    for stats in per_rack:
        for key, value in stats.items():
            if key in merged:
                if key.endswith((".peak", ".avg", ".max")):
                    merged[key] = max(merged[key], value)
                else:
                    merged[key] = merged[key] + value
            else:
                merged[key] = value
    return merged


class ShardedCluster:
    """A rack-decomposed deployment run as one simulator per rack.

    ``run(app, *args, shards=N)`` executes the identical window-sync
    protocol whatever ``shards`` is — ``shards=1`` drives every rack
    simulator round-robin in this process; ``shards>1`` forks workers
    and distributes the racks — so results are bit-for-bit identical
    across shard counts (the equivalence suite pins this).
    """

    def __init__(self, spec: Optional[ClusterSpec] = None, **kwargs):
        if spec is None:
            spec = ClusterSpec(**kwargs)
        elif kwargs:
            raise TypeError("pass either a spec or keyword overrides")
        spec.rack_size  # validates the rack decomposition
        self.spec = spec

    def run(self, app: Callable, *args, shards: int = 1) -> RunResult:
        spec = self.spec

        def build(rack_id: int) -> RackHandle:
            return RackHandle(spec, rack_id, app, args)

        if shards == 1:
            handles = {rid: build(rid) for rid in range(spec.racks)}
            results = run_windows(handles, spec.lookahead)
        else:
            results = run_windows_parallel(
                range(spec.racks), shards, build, spec.lookahead)
        per_rack = [results[rid] for rid in range(spec.racks)]
        values_by_rank: dict = {}
        for res in per_rack:
            values_by_rank.update(res["values"])
        peaks = [max(res["peaks"][node] for res in per_rack)
                 for node in range(spec.n_nodes)]
        return RunResult(
            values=[values_by_rank[r] for r in sorted(values_by_rank)],
            runtime=max(res["runtime"] for res in per_rack),
            oom=False,
            peak_dram_node=max(peaks, default=0.0),
            peak_dram_total=sum(peaks),
            stats=merge_stats([res["stats"] for res in per_rack]))
