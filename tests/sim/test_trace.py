"""Unit tests for the span tracer (repro.sim.trace)."""

import json

import pytest

from repro.sim import AllOf, Simulator
from repro.sim.trace import _NOOP_SPAN, NOOP_TRACER, Span, Tracer


@pytest.fixture
def sim():
    return Simulator()


def _run(sim, *gens):
    procs = [sim.process(g, name=f"p{i}") for i, g in enumerate(gens)]
    return sim.run(until=AllOf(sim, procs))


# -- disabled path ----------------------------------------------------------

def test_disabled_tracer_is_noop(sim):
    tr = Tracer(sim, enabled=False)

    def proc():
        with tr.span("fault", "pcache", node=0) as sp:
            sp["k"] = 1          # attribute set must not blow up
            yield sim.timeout(1.0)
        tr.record("wait", "rt.queue", 0, 0.0, 1.0)

    _run(sim, proc())
    assert tr.spans == []
    assert tr._durations == {}
    assert tr.latency_summary() == {}


def test_disabled_span_is_shared_singleton(sim):
    tr = Tracer(sim, enabled=False)
    assert tr.span("a", "x") is tr.span("b", "y")
    assert tr.span("a", "x") is _NOOP_SPAN


def test_noop_tracer_module_singleton():
    # Constructed with sim=None; must never crash while disabled.
    assert NOOP_TRACER.enabled is False
    with NOOP_TRACER.span("a", "x"):
        pass
    NOOP_TRACER.record("a", "x", 0, 0.0, 1.0)
    assert NOOP_TRACER.spans == []


# -- recording + nesting ----------------------------------------------------

def test_span_times_and_nesting_within_process(sim):
    tr = Tracer(sim, enabled=True)

    def proc():
        with tr.span("outer", "pcache", node=1, page=7) as outer:
            yield sim.timeout(1.0)
            with tr.span("inner", "net", node=1):
                yield sim.timeout(2.0)
            yield sim.timeout(0.5)
        assert outer.duration == pytest.approx(3.5)

    _run(sim, proc())
    assert len(tr.spans) == 2
    inner, outer = tr.spans  # inner closes first
    assert inner.name == "inner" and outer.name == "outer"
    assert outer.start == pytest.approx(0.0)
    assert outer.end == pytest.approx(3.5)
    assert inner.start == pytest.approx(1.0)
    assert inner.end == pytest.approx(3.0)
    # Nesting: inner's parent is outer, outer is a root.
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert outer.attrs["page"] == 7
    # Child interval is enclosed by the parent's.
    assert outer.start <= inner.start <= inner.end <= outer.end


def test_interleaved_processes_do_not_corrupt_parentage(sim):
    tr = Tracer(sim, enabled=True)

    def proc(delay):
        with tr.span("outer", "a"):
            yield sim.timeout(delay)
            with tr.span("inner", "b"):
                yield sim.timeout(delay)

    _run(sim, proc(1.0), proc(1.7))
    inners = [s for s in tr.spans if s.name == "inner"]
    outers = {s.track: s for s in tr.spans if s.name == "outer"}
    assert len(inners) == 2 and len(outers) == 2
    for inner in inners:
        # Each inner's parent is the outer on the SAME track, even
        # though the two processes interleave in simulated time.
        assert inner.parent_id == outers[inner.track].span_id
    assert {s.track for s in tr.spans} == {"p0", "p1"}


def test_record_pre_elapsed_interval(sim):
    tr = Tracer(sim, enabled=True)
    tr.record("wait", "rt.queue", 3, 1.0, 4.5, pool="low")
    (sp,) = tr.spans
    assert sp.start == 1.0 and sp.end == 4.5
    assert sp.duration == pytest.approx(3.5)
    assert sp.node == 3 and sp.attrs["pool"] == "low"


def test_enable_mid_run_records_only_while_enabled(sim):
    tr = Tracer(sim, enabled=False)

    def proc():
        with tr.span("before", "x"):
            yield sim.timeout(1.0)
        tr.enabled = True
        with tr.span("after", "x"):
            yield sim.timeout(1.0)

    _run(sim, proc())
    assert [s.name for s in tr.spans] == ["after"]


# -- statistics -------------------------------------------------------------

def test_percentiles_nearest_rank(sim):
    tr = Tracer(sim, enabled=True)
    for i in range(1, 101):  # durations 1..100
        tr.record("op", "cat", 0, 0.0, float(i))
    assert tr.percentile("cat", 50) == 50.0
    assert tr.percentile("cat", 95) == 95.0
    assert tr.percentile("cat", 99) == 99.0
    assert tr.percentile("cat", 100) == 100.0
    assert tr.percentile("missing", 50) == 0.0


def test_latency_summary_keys(sim):
    tr = Tracer(sim, enabled=True)
    for d in (1.0, 2.0, 3.0, 4.0):
        tr.record("op", "pcache", 0, 0.0, d)
    out = tr.latency_summary()
    assert out["trace.pcache.count"] == 4.0
    assert out["trace.pcache.total"] == pytest.approx(10.0)
    assert out["trace.pcache.mean"] == pytest.approx(2.5)
    assert out["trace.pcache.p50"] == 2.0
    assert out["trace.pcache.p95"] == 4.0
    assert out["trace.pcache.p99"] == 4.0
    assert "trace.dropped_spans" not in out


def test_max_spans_cap_counts_drops_keeps_percentiles(sim):
    tr = Tracer(sim, enabled=True, max_spans=3)
    for i in range(1, 11):
        tr.record("op", "cat", 0, 0.0, float(i))
    assert len(tr.spans) == 3
    assert tr.dropped == 7
    # Durations keep accumulating past the cap: percentiles stay exact.
    assert tr.percentile("cat", 100) == 10.0
    out = tr.latency_summary()
    assert out["trace.cat.count"] == 10.0
    assert out["trace.dropped_spans"] == 7.0


def test_reset(sim):
    tr = Tracer(sim, enabled=True, max_spans=1)
    tr.record("a", "x", 0, 0.0, 1.0)
    tr.record("b", "x", 0, 0.0, 2.0)
    assert tr.dropped == 1
    tr.reset()
    assert tr.spans == [] and tr.dropped == 0
    assert tr.latency_summary() == {}


# -- Chrome export ----------------------------------------------------------

def test_chrome_export(sim, tmp_path):
    tr = Tracer(sim, enabled=True)

    def proc():
        with tr.span("fault", "pcache", node=0, page=1):
            yield sim.timeout(0.25)
            with tr.span("transfer", "net", node=0, nbytes=4096):
                yield sim.timeout(0.5)

    _run(sim, proc())
    path = tr.export_chrome(str(tmp_path / "trace.json"))
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert len(xs) == 2
    # Timestamps are microseconds of simulated time.
    fault = next(e for e in xs if e["name"] == "fault")
    xfer = next(e for e in xs if e["name"] == "transfer")
    assert fault["ts"] == pytest.approx(0.0)
    assert fault["dur"] == pytest.approx(0.75e6)
    assert xfer["ts"] == pytest.approx(0.25e6)
    assert xfer["dur"] == pytest.approx(0.5e6)
    assert fault["cat"] == "pcache" and xfer["cat"] == "net"
    # Same pid (node) + tid (process track); integer tids.
    assert fault["pid"] == xfer["pid"] == 0
    assert isinstance(fault["tid"], int)
    assert fault["tid"] == xfer["tid"]
    # The child event carries its parent's span id.
    assert xfer["args"]["parent"] == fault["args"]["id"]
    # Metadata names the process and thread.
    assert any(m["name"] == "process_name" for m in metas)
    assert any(m["name"] == "thread_name"
               and m["args"]["name"] == "p0" for m in metas)
    assert doc["otherData"]["dropped_spans"] == 0


def test_span_setitem_attaches_attrs(sim):
    tr = Tracer(sim, enabled=True)

    def proc():
        with tr.span("fault", "pcache") as sp:
            yield sim.timeout(0.1)
            sp["miss_bytes"] = 123

    _run(sim, proc())
    assert tr.spans[0].attrs["miss_bytes"] == 123
