"""CLI: run pipeline workflow files against the simulated cluster.

    python -m repro run pipelines/mm_kmeans_mega.yaml [--workdir DIR]
    python -m repro trace pipelines/mm_kmeans_mega.yaml [--out T.json]

Mirrors the artifact's ``jarvis ppl run yaml /path/to/workflow.yaml``;
the ``trace`` subcommand additionally records latency spans and writes
a Chrome-trace-format JSON timeline (load in ``chrome://tracing`` or
Perfetto). The bare form ``python -m repro <file.yaml>`` is kept as an
alias for ``run``.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

from repro.pipeline import run_pipeline

_SUBCOMMANDS = ("run", "trace")


def _print_rows(rows) -> None:
    cols = list(rows[0])
    print("  ".join(cols))
    for row in rows:
        print("  ".join(
            f"{row[c]:.4f}" if isinstance(row[c], float) else str(row[c])
            for c in cols))


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `python -m repro file.yaml` means `run file.yaml`.
    if argv and argv[0] not in _SUBCOMMANDS \
            and argv[0] not in ("-h", "--help"):
        argv.insert(0, "run")
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a MegaMmap workflow pipeline (Jarvis-style).")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", help="execute a pipeline and print its stats rows")
    p_run.add_argument("pipeline", help="path to a workflow YAML file")
    p_run.add_argument("--workdir", default=None,
                       help="directory for datasets + stats_dict.csv "
                            "(default: a fresh temp directory)")

    p_trace = sub.add_parser(
        "trace",
        help="execute a pipeline with span tracing enabled and write "
             "a Chrome-trace-format JSON timeline")
    p_trace.add_argument("pipeline", help="path to a workflow YAML file")
    p_trace.add_argument("--workdir", default=None,
                         help="directory for datasets + stats (default: "
                              "a fresh temp directory)")
    p_trace.add_argument("--out", default=None,
                         help="trace JSON path (default: "
                              "<workdir>/trace.json)")

    args = parser.parse_args(argv)
    if not os.path.exists(args.pipeline):
        print(f"error: pipeline file not found: {args.pipeline}",
              file=sys.stderr)
        return 2
    workdir = args.workdir or tempfile.mkdtemp(prefix="megammap-ppl-")
    trace_path = None
    if args.command == "trace":
        trace_path = args.out or os.path.join(workdir, "trace.json")
        out_dir = os.path.dirname(os.path.abspath(trace_path))
        os.makedirs(out_dir, exist_ok=True)
    rows = run_pipeline(args.pipeline, workdir=workdir,
                        trace_path=trace_path)
    if not rows:
        print("pipeline produced no rows", file=sys.stderr)
        return 1
    _print_rows(rows)
    print(f"\nstats written to {workdir}/", flush=True)
    if trace_path:
        # Sweeps write one trace per variant (<out>.<i>.json); report
        # the paths actually written, not the requested one.
        written = [r["trace_file"] for r in rows if r.get("trace_file")]
        for p in dict.fromkeys(written):
            print(f"trace written to {p} "
                  f"(open in chrome://tracing or https://ui.perfetto.dev)",
                  flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
