"""Tests for the Jarvis-style pipeline runner and the CLI."""

import csv
import os

import numpy as np
import pytest

from repro.pipeline import (
    APP_REGISTRY,
    PipelineError,
    build_cluster,
    prepare_dataset,
    run_pipeline,
)

MINI_KMEANS = """
name: KMeans-Mini
cluster:
  n_nodes: 2
  procs_per_node: 2
  dram_mb: 16
  nvme_mb: 64
  page_size: 65536
dataset:
  kind: points
  n: 4000
  k: 4
  seed: 7
  path: pts.parquet
app:
  kind: mm_kmeans
  k: 4
  max_iter: 2
output: stats_dict.csv
"""


def test_run_pipeline_produces_stats_csv(tmp_path):
    rows = run_pipeline(MINI_KMEANS, workdir=str(tmp_path))
    assert len(rows) == 1
    row = rows[0]
    assert row["app"] == "KMeans-Mini"
    assert row["nprocs"] == 4
    assert row["runtime_s"] > 0
    assert not row["crashed"]
    out = tmp_path / "stats_dict.csv"
    assert out.exists()
    with open(out) as fh:
        parsed = list(csv.DictReader(fh))
    assert len(parsed) == 1
    assert float(parsed[0]["runtime_s"]) == pytest.approx(
        row["runtime_s"])


def test_pipeline_sweep_grid(tmp_path):
    spec = MINI_KMEANS + """
sweep:
  - key: cluster.dram_mb
    values:
      - 16
      - 8
"""
    rows = run_pipeline(spec, workdir=str(tmp_path))
    assert len(rows) == 2
    assert [r["cluster.dram_mb"] for r in rows] == [16, 8]
    # The DRAM cap really changed the deployment.
    assert rows[1]["peak_dram_node_mb"] <= 8.5


def test_pipeline_two_axis_sweep_is_cross_product(tmp_path):
    spec = MINI_KMEANS + """
sweep:
  - key: cluster.dram_mb
    values:
      - 16
      - 8
  - key: app.max_iter
    values:
      - 1
      - 2
"""
    rows = run_pipeline(spec, workdir=str(tmp_path))
    assert len(rows) == 4
    combos = {(r["cluster.dram_mb"], r["app.max_iter"]) for r in rows}
    assert combos == {(16, 1), (16, 2), (8, 1), (8, 2)}


def test_pipeline_from_file(tmp_path):
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    rows = run_pipeline(str(path), workdir=str(tmp_path))
    assert rows


def test_pipeline_gray_scott(tmp_path):
    spec = """
name: GS-Mini
cluster:
  n_nodes: 2
  procs_per_node: 2
  dram_mb: 16
  nvme_mb: 64
app:
  kind: mm_gray_scott
  L: 16
  steps: 2
"""
    rows = run_pipeline(spec, workdir=str(tmp_path))
    assert len(rows) == 1
    assert rows[0]["runtime_s"] > 0


def test_pipeline_unknown_app_rejected(tmp_path):
    with pytest.raises(PipelineError, match="unknown app"):
        run_pipeline("app:\n  kind: nope\n", workdir=str(tmp_path))


def test_pipeline_requires_app(tmp_path):
    with pytest.raises(PipelineError):
        run_pipeline("name: x\n", workdir=str(tmp_path))


def test_build_cluster_tiers_and_config():
    cluster = build_cluster({"n_nodes": 2, "dram_mb": 8, "nvme_mb": 16,
                             "ssd_mb": 32, "hdd_mb": 64,
                             "page_size": 4096})
    kinds = [d.spec.kind for d in cluster.dmshs[0]]
    assert kinds == ["dram", "nvme", "ssd", "hdd"]
    assert cluster.spec.config.page_size == 4096


def test_prepare_dataset_idempotent(tmp_path):
    section = {"kind": "points", "n": 100, "k": 2, "seed": 1,
               "path": "d.parquet"}
    prepare_dataset(section, str(tmp_path))
    first = (tmp_path / "d.parquet").read_bytes()
    prepare_dataset(section, str(tmp_path))
    assert (tmp_path / "d.parquet").read_bytes() == first


def test_prepare_dataset_gadget_writes_labels(tmp_path):
    prepare_dataset({"kind": "gadget", "n": 200, "k": 2,
                     "path": "snap.h5"}, str(tmp_path))
    assert (tmp_path / "snap.h5").exists()
    labels = np.fromfile(tmp_path / "snap.h5.labels", dtype=np.int32)
    assert len(labels) == 200


def test_registry_covers_all_eight_artifact_apps():
    # The AD appendix's 8 applications (2x KMeans, 2x DBSCAN, 2x RF,
    # 2x Gray-Scott) plus the colocation antagonist and the
    # object-path serving workload.
    assert set(APP_REGISTRY) == {
        "mm_kmeans", "spark_kmeans", "mm_dbscan", "mpi_dbscan",
        "mm_random_forest", "spark_random_forest", "mm_gray_scott",
        "mpi_gray_scott", "mm_stream", "mm_serving"}


def test_cli_main(tmp_path, capsys):
    from repro.__main__ import main
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    rc = main([str(path), "--workdir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "runtime_s" in out
    assert "stats written" in out


def test_cli_run_subcommand(tmp_path, capsys):
    from repro.__main__ import main
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    rc = main(["run", str(path), "--workdir", str(tmp_path)])
    assert rc == 0
    assert "runtime_s" in capsys.readouterr().out


def test_cli_trace_subcommand_writes_chrome_json(tmp_path, capsys):
    import json
    from repro.__main__ import main
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    out = tmp_path / "t.json"
    rc = main(["trace", str(path), "--workdir", str(tmp_path),
               "--out", str(out)])
    assert rc == 0
    assert "trace written to" in capsys.readouterr().out
    with open(out, encoding="utf-8") as fh:
        doc = json.load(fh)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert xs, "traced run produced no spans"
    assert {"pcache", "rt.service"} <= {e["cat"] for e in xs}


def test_run_pipeline_trace_path_per_sweep_variant(tmp_path):
    spec = MINI_KMEANS + """
sweep:
  - key: app.max_iter
    values:
      - 1
      - 2
"""
    trace = tmp_path / "sweep.json"
    rows = run_pipeline(spec, workdir=str(tmp_path),
                        trace_path=str(trace))
    assert len(rows) == 2
    assert (tmp_path / "sweep.0.json").exists()
    assert (tmp_path / "sweep.1.json").exists()


def test_repo_pipelines_parse(tmp_path):
    """The shipped pipeline files must at least parse and reference
    known apps."""
    import glob
    from repro.core.config import load_yaml_subset
    root = os.path.join(os.path.dirname(__file__), os.pardir,
                        "pipelines")
    files = glob.glob(os.path.join(root, "*.yaml"))
    assert len(files) >= 3
    for f in files:
        spec = load_yaml_subset(open(f, encoding="utf-8").read())
        if "jobs" in spec:  # colocation spec: one app per tenant job
            for job in spec["jobs"]:
                assert job["app"]["kind"] in APP_REGISTRY, (
                    f, job.get("name"))
        elif "slos" in spec:  # SLO spec: validated objectives
            from repro.obs import load_slos
            assert load_slos(f), f
        else:
            assert spec["app"]["kind"] in APP_REGISTRY, f


# -- crash-safe trace export (PR 4 regression) ------------------------------

BOOM_PIPELINE = """
name: Boom
cluster:
  n_nodes: 1
  procs_per_node: 1
  dram_mb: 16
app:
  kind: boom
"""


def _boom_app(cluster, spec, workdir):
    """An app that dies while a traced process still holds an open
    span — the shape of any real mid-run pipeline failure."""
    sim = cluster.system.sim
    tracer = cluster.tracer

    def stuck():
        with tracer.span("stuck", "pcache", node=0):
            yield sim.timeout(100.0)

    sim.process(stuck())
    sim.run(until=1.0)
    raise RuntimeError("boom")


def test_failing_pipeline_still_exports_trace(tmp_path, monkeypatch):
    import json
    monkeypatch.setitem(APP_REGISTRY, "boom", _boom_app)
    trace = tmp_path / "crash.json"
    with pytest.raises(RuntimeError, match="boom"):
        run_pipeline(BOOM_PIPELINE, workdir=str(tmp_path),
                     trace_path=str(trace))
    assert trace.exists(), "crash dropped the trace"
    with open(trace, encoding="utf-8") as fh:
        doc = json.load(fh)
    stuck = [e for e in doc["traceEvents"]
             if e.get("ph") == "X" and e["name"] == "stuck"]
    assert stuck, doc["traceEvents"]
    # The open span was closed at sim.now and marked unfinished.
    assert stuck[0]["args"].get("unfinished") is True
    assert stuck[0]["dur"] == pytest.approx(1.0 * 1e6)


def test_cli_trace_defaults_into_workdir(tmp_path, capsys,
                                         monkeypatch):
    """`repro trace` without --out must land in the workdir (never the
    CWD) and print the resolved absolute path."""
    import json
    from repro.__main__ import main
    cwd = tmp_path / "somewhere-else"
    cwd.mkdir()
    monkeypatch.chdir(cwd)
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    work = tmp_path / "work"
    rc = main(["trace", str(path), "--workdir", str(work)])
    assert rc == 0
    out = capsys.readouterr().out
    expected = work / "trace.json"
    assert expected.exists()
    assert str(expected) in out          # resolved path was printed
    assert not list(cwd.iterdir()), "trace leaked into the CWD"
    with open(expected, encoding="utf-8") as fh:
        assert json.load(fh)["traceEvents"]


# -- report / diff subcommands ----------------------------------------------

def test_cli_report_on_trace_file(tmp_path, capsys):
    from repro.__main__ import main
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    rc = main(["trace", str(path), "--workdir", str(tmp_path)])
    assert rc == 0
    capsys.readouterr()
    rc = main(["report", str(tmp_path / "trace.json")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "critical path total" in out
    assert "overlap ratio" in out


def test_cli_report_runs_pipeline_live(tmp_path, capsys):
    from repro.__main__ import main
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    rc = main(["report", str(path), "--workdir", str(tmp_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "critical path by category" in out
    # Live mode extras: the backlog-gauge leg of Little's law and the
    # occupancy timelines.
    assert "gauge L=" in out
    assert "tier occupancy" in out


def test_cli_report_json_and_out(tmp_path, capsys):
    import json
    import math
    from repro.__main__ import main
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    rc = main(["trace", str(path), "--workdir", str(tmp_path)])
    assert rc == 0
    capsys.readouterr()
    report_path = tmp_path / "rep.json"
    rc = main(["report", str(tmp_path / "trace.json"), "--json",
               "--out", str(report_path)])
    assert rc == 0
    printed = json.loads(capsys.readouterr().out)
    saved = json.loads(report_path.read_text())
    assert printed == saved
    assert math.isfinite(saved["critical_path"]["total"])
    assert abs(sum(saved["critical_path"]["by_category"].values())
               - saved["makespan"]) <= 0.01 * saved["makespan"]


REPORT_KEYS = {"t0", "t1", "makespan", "n_spans", "critical_path",
               "overlap_ratio", "top_spans", "queueing", "occupancy"}
CRITICAL_PATH_KEYS = {"total", "by_category", "by_node", "by_tier"}


def _check_report_schema(doc, live):
    """Golden schema for `repro report --json` consumers."""
    assert set(doc) == REPORT_KEYS
    assert set(doc["critical_path"]) == CRITICAL_PATH_KEYS
    assert doc["makespan"] > 0
    assert doc["n_spans"] > 0
    assert 0.0 <= doc["overlap_ratio"] <= 1.0
    # The tiling invariant: per-category (and per-node, per-tier)
    # durations sum to the critical-path total == makespan.
    cp = doc["critical_path"]
    for axis in ("by_category", "by_node", "by_tier"):
        assert sum(cp[axis].values()) == pytest.approx(cp["total"])
    assert abs(cp["total"] - doc["makespan"]) \
        <= 0.01 * doc["makespan"]
    for span in doc["top_spans"]:
        assert {"name", "category", "node", "start", "duration",
                "unfinished"} <= set(span)
    for q in doc["queueing"].values():
        assert {"arrival_rate", "mean_wait", "little_L"} <= set(q)
    if live:
        # Live mode folds in monitor-only extras: tier occupancy
        # timelines and the backlog-gauge leg of Little's law.
        assert doc["occupancy"]
        for occ in doc["occupancy"].values():
            assert {"peak", "avg", "timeline"} <= set(occ)
    else:
        assert doc["occupancy"] == {}


def test_cli_report_json_golden_schema_both_modes(tmp_path, capsys):
    import json
    from repro.__main__ import main
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    rc = main(["trace", str(path), "--workdir", str(tmp_path)])
    assert rc == 0
    capsys.readouterr()

    rc = main(["report", str(tmp_path / "trace.json"), "--json"])
    assert rc == 0
    _check_report_schema(json.loads(capsys.readouterr().out),
                         live=False)

    rc = main(["report", str(path), "--workdir", str(tmp_path),
               "--json"])
    assert rc == 0
    _check_report_schema(json.loads(capsys.readouterr().out),
                         live=True)


def test_cli_diff_two_traces(tmp_path, capsys):
    from repro.__main__ import main
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    for name, iters in (("a", 1), ("b", 2)):
        spec = tmp_path / f"{name}.yaml"
        spec.write_text(MINI_KMEANS.replace("max_iter: 2",
                                            f"max_iter: {iters}"))
        rc = main(["trace", str(spec), "--workdir", str(tmp_path),
                   "--out", str(tmp_path / f"{name}.json")])
        assert rc == 0
    capsys.readouterr()
    rc = main(["diff", str(tmp_path / "a.json"),
               str(tmp_path / "b.json")])
    assert rc == 0
    out = capsys.readouterr().out
    assert "critical-path delta by category" in out
    assert "makespan" in out


def test_cli_diff_rejects_non_json(tmp_path, capsys):
    from repro.__main__ import main
    path = tmp_path / "p.yaml"
    path.write_text(MINI_KMEANS)
    rc = main(["diff", str(path), str(path)])
    assert rc == 2
