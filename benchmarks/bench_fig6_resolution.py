"""Fig. 6: increasing Gray-Scott resolution through tiering.

Paper setup (IV-B2, scaled): sweep the grid edge L; the MPI version
(grid held in node DRAM) crashes with OOM past the memory boundary,
while MegaMmap (48 MB DRAM + 128 MB NVMe per node, scaled) keeps
running to the largest L — "producing 2x the simulation data" — and is
at least ~20% faster than the other tiered I/O systems (MPI over
OrangeFS / Assise / Hermes) below the crash point, because it places
data asynchronously during the first compute phase.
"""

from __future__ import annotations

import pytest

from repro.apps.grayscott import HermesIo, mm_gray_scott, mpi_gray_scott
from repro.storage.assise import AssiseFS
from repro.storage.tiers import MB, NVME, scaled
from benchmarks.common import emit_result, print_table, testbed, \
    write_csv

#: Scaled testbed: 4 nodes x 2 procs, 12 MB DRAM + 32 MB NVMe per node
#: (same DRAM:NVMe ratio as the paper's 48 GB / 128 GB).
N_NODES = 4
DRAM_MB = 12
NVME_MB = 32
STEPS = 3
PLOTGAP = 1

#: Grid edges: MPI needs 4*L^3*8/n_nodes bytes of DRAM per node, so
#: with 12 MB/node it dies between L=96 and L=112.
L_SWEEP = [64, 80, 96, 112, 128]


def _mpi_mem_per_node_mb(L: int) -> float:
    return 4 * L ** 3 * 8 / N_NODES / 2 ** 20


def run_resolution_sweep():
    rows = []
    for L in L_SWEEP:
        dataset_mb = L ** 3 * 16 / 2 ** 20
        for system, runner in [
            ("MegaMmap", None),
            ("MPI+OrangeFS", "pfs"),
            ("MPI+Assise", "assise"),
            ("MPI+Hermes", "hermes"),
        ]:
            cluster = testbed(n_nodes=N_NODES, dram_mb=DRAM_MB,
                              nvme_mb=NVME_MB, page_size=256 * 1024,
                              pcache=2 * 1024 * 1024)
            if system == "MegaMmap":
                res = cluster.run(mm_gray_scott, L, STEPS, PLOTGAP,
                                  2 * 1024 * 1024, allow_oom=True)
            else:
                if runner == "pfs":
                    io = cluster.pfs
                elif runner == "assise":
                    io = AssiseFS(cluster.sim, cluster.pfs,
                                  list(range(N_NODES)),
                                  nvm_spec=scaled(NVME, NVME_MB * MB))
                else:
                    io = HermesIo(cluster)
                res = cluster.run(mpi_gray_scott, L, STEPS, PLOTGAP, io,
                                  allow_oom=True)
            rows.append(dict(
                system=system, L=L, dataset_mb=round(dataset_mb, 1),
                runtime_s=(None if res.oom else round(res.runtime, 4)),
                crashed=res.oom,
                peak_dram_mb=round(res.peak_dram_total / 2 ** 20, 2)))
    return rows


@pytest.mark.benchmark(group="fig6")
def test_fig6_resolution(benchmark):
    rows = benchmark.pedantic(run_resolution_sweep, rounds=1,
                              iterations=1)
    print_table("Fig. 6 — Gray-Scott resolution sweep", rows)
    write_csv("fig6_resolution", rows)
    by = {(r["system"], r["L"]): r for r in rows}
    largest = max(L_SWEEP)
    # MegaMmap completes every resolution, including the largest.
    for L in L_SWEEP:
        assert not by[("MegaMmap", L)]["crashed"], L
    # Every MPI variant crashes past the DRAM boundary...
    for system in ("MPI+OrangeFS", "MPI+Assise", "MPI+Hermes"):
        assert by[(system, largest)]["crashed"], system
        # ...but completes at the smallest resolution.
        assert not by[(system, min(L_SWEEP))]["crashed"], system
    # The crash point sits where the slab memory crosses node DRAM.
    for L in L_SWEEP:
        should_crash = _mpi_mem_per_node_mb(L) > DRAM_MB
        assert by[("MPI+OrangeFS", L)]["crashed"] == should_crash, L
    # MegaMmap runs the largest grid: >= 2x the largest MPI dataset.
    mpi_max = max(L for L in L_SWEEP
                  if not by[("MPI+OrangeFS", L)]["crashed"])
    assert largest ** 3 >= 1.4 * mpi_max ** 3
    # Below the crash point MegaMmap beats the state-of-practice PFS
    # path decisively and stays within 30% of the best buffered
    # baseline. (The paper reports MegaMmap >= 20% faster than all
    # baselines at 48 procs/node, where per-node compute amortizes the
    # DSM's fixed costs far more than our 2 procs/node scale does —
    # see EXPERIMENTS.md.)
    for L in L_SWEEP:
        mm = by[("MegaMmap", L)]
        pfs_row = by[("MPI+OrangeFS", L)]
        if not pfs_row["crashed"]:
            assert mm["runtime_s"] < 0.5 * pfs_row["runtime_s"], L
        for system in ("MPI+Assise", "MPI+Hermes"):
            other = by[(system, L)]
            if not other["crashed"]:
                assert mm["runtime_s"] < 1.3 * other["runtime_s"], \
                    (L, system)
    emit_result("fig6", "resolution.max_over_mpi",
                largest ** 3 / mpi_max ** 3, "x",
                dict(n_nodes=N_NODES, dram_mb=DRAM_MB))
    emit_result("fig6", "resolution.speedup_vs_pfs",
                by[("MPI+OrangeFS", mpi_max)]["runtime_s"]
                / by[("MegaMmap", mpi_max)]["runtime_s"], "x",
                dict(L=mpi_max, n_nodes=N_NODES))
