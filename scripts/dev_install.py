#!/usr/bin/env python
"""Editable install that works offline.

``pip install -e .`` requires the ``wheel`` package (absent in fully
offline environments). This script achieves the same effect by writing
a ``.pth`` file pointing at ``src/`` into the active site-packages.
"""

import os
import site
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")


def main() -> int:
    for candidate in site.getsitepackages() + [site.getusersitepackages()]:
        if os.path.isdir(candidate) and os.access(candidate, os.W_OK):
            path = os.path.join(candidate, "repro-dev.pth")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(SRC + "\n")
            print(f"installed: {path} -> {SRC}")
            return 0
    print("no writable site-packages found", file=sys.stderr)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
