"""Fig. 4: application code volume, MegaMmap vs original baselines.

Paper: "MegaMmap code 45% - 2x smaller. In each case, all I/O
partitioning, I/O compatibility, and most messaging is removed."
We count our own applications the same way (cloc-style, comments and
blanks excluded). The MegaMmap side counts the ``mm_*`` implementation
files; the baseline side counts the Spark/MPI implementation files.
Shared algorithm kernels (stencil math, split statistics, clustering
math) are excluded from both sides, mirroring the paper's focus on the
application-orchestration code that MegaMmap shrinks.
"""

from __future__ import annotations

import os

import pytest

from repro.apps.loc import count_files
from benchmarks.common import emit_result, print_table, write_csv

APPS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src",
                        "repro", "apps")
SPARK_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "src",
                         "repro", "spark")


def _app(*parts) -> str:
    return os.path.abspath(os.path.join(APPS_DIR, *parts))


#: (app, MegaMmap implementation files, baseline implementation files)
COMPARISONS = [
    ("KMeans",
     [_app("kmeans", "mm_kmeans.py")],
     [_app("kmeans", "spark_kmeans.py"),
      os.path.abspath(os.path.join(SPARK_DIR, "mllib.py"))]),
    ("RF",
     [_app("rf", "mm_rf.py")],
     [_app("rf", "spark_rf.py"),
      os.path.abspath(os.path.join(SPARK_DIR, "mllib.py"))]),
    ("DBSCAN",
     [_app("dbscan", "mm_dbscan.py")],
     [_app("dbscan", "mpi_dbscan.py")]),
    ("Gray-Scott",
     [_app("grayscott", "mm_gs.py")],
     [_app("grayscott", "mpi_gs.py")]),
]


def collect_loc():
    rows = []
    for app, mm_files, base_files in COMPARISONS:
        mm = count_files(mm_files)
        base = count_files(base_files)
        rows.append({
            "app": app,
            "megammap_loc": mm,
            "original_loc": base,
            "ratio": round(base / mm, 2),
        })
    return rows


def test_fig4_loc(benchmark):
    rows = benchmark.pedantic(collect_loc, rounds=1, iterations=1)
    print_table("Fig. 4 — application LOC (cloc-style)", rows)
    write_csv("fig4_loc", rows)
    # Paper: MegaMmap implementations are smaller ("45% - 2x") because
    # I/O partitioning, I/O compatibility, and messaging disappear.
    # That holds per-app for the analytics codes; our Gray-Scott MM
    # version additionally implements plane streaming (true
    # out-of-core execution, which the in-memory MPI baseline simply
    # does not attempt), so the honest check there is the aggregate.
    for row in rows:
        if row["app"] in ("KMeans", "RF", "DBSCAN"):
            assert row["megammap_loc"] < row["original_loc"], row
    total_mm = sum(r["megammap_loc"] for r in rows)
    total_orig = sum(r["original_loc"] for r in rows)
    assert total_mm < total_orig
    emit_result("fig4", "loc.reduction_ratio", total_orig / total_mm,
                "x", dict(apps=[r["app"] for r in rows]))
