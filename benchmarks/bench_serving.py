"""Serving at high QPS: object-granular vs page-granular access path.

A DLRM-style embedding/KV lookup service (``repro.apps.serving``)
runs the same open-loop query schedule twice per grid cell — once
forced onto the page path (``read_range`` per lookup, threshold 0) and
once through the object path (``read_objects``/``write_object`` with
``object_threshold_bytes`` = the object size). The table is held at a
fixed 8 MB (≫ the 512 KB per-rank pcache) while the object size sweeps
64 B – 4 KB and the zipf skew sweeps 0.6 – 1.2, so the page path's hit
rate and the object path's batching advantage are both exercised
across their whole range.

Both paths must produce identical checksums (the property/equivalence
suites in ``tests/core/test_object_access.py`` pin the byte-level
agreement; this benchmark re-checks the end-to-end sum). The headline
claim — gated by ``serving.object_speedup`` in ``perf_floor.json`` —
is that at 64 B objects and zipf 1.2 the object path serves at least
1.5x the page path's QPS: one vectored round trip per query versus one
sequential page fault per lookup.

Run with ``MEGAMMAP_TRACE=1`` to also export Chrome traces of the
headline cell (categories ``object`` / ``object.batch`` carry the
object-path spans).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.common import critical_breakdown, emit_result, \
    export_trace, print_table, testbed, write_csv
from repro.apps.serving import mm_serving

PAGE = 64 * 1024
#: Table bytes are held constant across object sizes (n_keys scales
#: inversely) so every cell faults over the same 128-page footprint.
TABLE_BYTES = 8 << 20
SIZES = [64, 256, 1024, 4096]
ZIPFS = [0.6, 0.9, 1.2]
QUERIES = 96          # per rank
LOOKUPS = 16          # embedding rows gathered per query
#: The grid runs read-only so the page/object checksums must agree
#: *exactly* (with writes on, cross-rank read-vs-write timing differs
#: between the paths, and LOCAL coherence legitimately lets the two
#: runs observe different — equally valid — snapshots). A separate
#: headline-cell run exercises the write-through path.
WRITE_FRAC_RW = 0.05
#: Saturating arrival rate: every query is pending from t≈0, so
#: completed/runtime measures serving *capacity*, not the schedule.
QPS_OFFERED = 1e6
HEADLINE = (64, 1.2)
SPEEDUP_FLOOR = 1.5


def _run_cell(api: str, obj_bytes: int, zipf_s: float,
              trace=None, write_frac=0.0):
    """One serving run; returns (summary dict, cluster, RunResult)."""
    thr = obj_bytes if api == "object" else 0
    c = testbed(page_size=PAGE, object_threshold_bytes=thr,
                trace=trace)
    n_keys = TABLE_BYTES // obj_bytes
    res = c.run(mm_serving, n_keys, obj_bytes, QUERIES, LOOKUPS,
                zipf_s, write_frac, QPS_OFFERED, api)
    completed = sum(v[1] for v in res.values)
    summary = dict(
        api=api,
        checksum=round(sum(v[0] for v in res.values), 6),
        qps=completed / res.runtime,
        p50_ms=float(np.median([v[2] for v in res.values])),
        p99_ms=float(max(v[3] for v in res.values)),
        runtime_s=res.runtime,
        local_hit_frac=(res.stats.get("object.local_hit_bytes", 0.0)
                        / max(1.0, res.stats.get("object.read_bytes",
                                                 0.0))),
        remote_tasks=int(res.stats.get("object.remote_tasks",
                                       res.stats.get("pcache.faults",
                                                     0.0))),
    )
    return summary, c, res


def run_serving_grid():
    """Sweep the grid; returns (rows, headline record)."""
    rows = []
    headline = None
    for obj_bytes in SIZES:
        for zipf_s in ZIPFS:
            is_headline = (obj_bytes, zipf_s) == HEADLINE
            page, _, _ = _run_cell("page", obj_bytes, zipf_s)
            obj, cluster, _ = _run_cell(
                "object", obj_bytes, zipf_s,
                trace=None if is_headline else False)
            assert page["checksum"] == obj["checksum"], \
                (obj_bytes, zipf_s, page["checksum"], obj["checksum"])
            speedup = page["runtime_s"] / obj["runtime_s"]
            row = dict(
                obj_bytes=obj_bytes, zipf_s=zipf_s,
                page_qps=round(page["qps"], 1),
                obj_qps=round(obj["qps"], 1),
                speedup=round(speedup, 3),
                page_p99_ms=round(page["p99_ms"], 3),
                obj_p99_ms=round(obj["p99_ms"], 3),
                obj_local_hit=round(obj["local_hit_frac"], 3),
                page_faults=page["remote_tasks"],
                obj_remote=obj["remote_tasks"],
            )
            rows.append(row)
            if is_headline:
                if cluster.tracer.enabled:
                    export_trace(cluster, "serving_object")
                headline = dict(row=row, obj=obj, page=page,
                                breakdown=critical_breakdown(cluster))
    # One write-enabled headline run: the write-through path must be
    # exercised (and stay deterministic) even though its checksum is
    # not cross-path comparable.
    rw_a, _, rw_res = _run_cell("object", *HEADLINE, trace=False,
                                write_frac=WRITE_FRAC_RW)
    rw_b, _, _ = _run_cell("object", *HEADLINE, trace=False,
                           write_frac=WRITE_FRAC_RW)
    assert rw_a == rw_b, (rw_a, rw_b)
    assert rw_res.stats.get("object.writes", 0.0) > 0, rw_res.stats
    headline["rw"] = rw_a
    return rows, headline


@pytest.mark.benchmark(group="serving")
def test_serving_object_vs_page(benchmark):
    rows, headline = benchmark.pedantic(run_serving_grid, rounds=1,
                                        iterations=1)
    print_table(
        "Serving: page vs object path "
        f"({TABLE_BYTES >> 20} MB table, {QUERIES} q/rank x "
        f"{LOOKUPS} lookups, read-only grid)", rows)
    write_csv("serving", rows)
    assert headline is not None
    row = headline["row"]
    # The tentpole claim: >= 1.5x QPS at 64 B objects, zipf 1.2.
    assert row["speedup"] >= SPEEDUP_FLOOR, row
    # The object path actually served at object granularity...
    assert headline["obj"]["remote_tasks"] > 0, headline
    # ...and its extent cache caught a real share of the zipf head.
    assert headline["obj"]["local_hit_frac"] > 0.05, headline
    cfg = dict(table_bytes=TABLE_BYTES, obj_bytes=row["obj_bytes"],
               zipf_s=row["zipf_s"], queries=QUERIES, lookups=LOOKUPS,
               page=PAGE)
    emit_result("serving", "serving.qps", row["obj_qps"], "q/s", cfg,
                breakdown=headline["breakdown"])
    emit_result("serving", "serving.page_qps", row["page_qps"], "q/s",
                cfg)
    emit_result("serving", "serving.p99_ms", row["obj_p99_ms"], "ms",
                cfg)
    emit_result("serving", "serving.object_speedup", row["speedup"],
                "x", cfg)
