"""Unit tests for the MPI-like layer: p2p and collectives at many sizes."""

import numpy as np
import pytest

from repro.mpi import Comm, MpiWorld
from repro.net import Network
from repro.sim import Simulator


def make_world(nprocs, nodes=None):
    sim = Simulator()
    n_nodes = nodes or nprocs
    net = Network(sim, n_nodes)
    rank_to_node = [r % n_nodes for r in range(nprocs)]
    world = MpiWorld(sim, net, rank_to_node)
    return sim, world


def run_spmd(sim, world, fn):
    """Run fn(comm) on every rank; returns list of per-rank results."""
    procs = [sim.process(fn(world.comm(r)), name=f"rank{r}")
             for r in range(world.size)]
    sim.run()
    return [p.value for p in procs]


def test_send_recv_roundtrip():
    sim, world = make_world(2)

    def fn(comm):
        if comm.rank == 0:
            yield from comm.send({"a": 7}, dest=1, tag=11)
            return None
        data = yield from comm.recv(source=0, tag=11)
        return data

    res = run_spmd(sim, world, fn)
    assert res[1] == {"a": 7}


def test_send_copies_numpy_payload():
    sim, world = make_world(2)
    buf = np.arange(4, dtype=np.int64)

    def fn(comm):
        if comm.rank == 0:
            req = comm.isend(buf, dest=1)
            buf[:] = -1  # mutate after isend; receiver must see original
            yield req
            return None
        data = yield from comm.recv(source=0)
        return data

    res = run_spmd(sim, world, fn)
    assert np.array_equal(res[1], np.arange(4, dtype=np.int64))


def test_sendrecv_exchange_no_deadlock():
    sim, world = make_world(2)

    def fn(comm):
        other = 1 - comm.rank
        got = yield from comm.sendrecv(comm.rank, dest=other, source=other)
        return got

    assert run_spmd(sim, world, fn) == [1, 0]


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7, 8, 16])
def test_bcast_all_sizes(nprocs):
    sim, world = make_world(nprocs)

    def fn(comm):
        data = "payload" if comm.rank == 2 % nprocs else None
        out = yield from comm.bcast(data, root=2 % nprocs)
        return out

    assert run_spmd(sim, world, fn) == ["payload"] * nprocs


@pytest.mark.parametrize("nprocs", [1, 2, 3, 5, 8, 16])
def test_reduce_sum(nprocs):
    sim, world = make_world(nprocs)

    def fn(comm):
        out = yield from comm.reduce(comm.rank + 1, op=lambda a, b: a + b,
                                     root=0)
        return out

    res = run_spmd(sim, world, fn)
    assert res[0] == nprocs * (nprocs + 1) // 2
    assert all(r is None for r in res[1:])


@pytest.mark.parametrize("nprocs", [1, 2, 3, 6, 8])
def test_allreduce_max(nprocs):
    sim, world = make_world(nprocs)

    def fn(comm):
        out = yield from comm.allreduce(comm.rank, op=max)
        return out

    assert run_spmd(sim, world, fn) == [nprocs - 1] * nprocs


@pytest.mark.parametrize("nprocs", [2, 3, 4, 9])
def test_barrier_synchronizes(nprocs):
    sim, world = make_world(nprocs)
    arrive = []

    def fn(comm):
        yield comm.sim.timeout(float(comm.rank))
        arrive.append(comm.rank)
        yield from comm.barrier()
        return comm.sim.now

    res = run_spmd(sim, world, fn)
    # Nobody leaves the barrier before the slowest rank arrives.
    assert all(t >= nprocs - 1 for t in res)


@pytest.mark.parametrize("nprocs", [1, 2, 5, 8])
def test_gather_ordered_by_rank(nprocs):
    sim, world = make_world(nprocs)

    def fn(comm):
        out = yield from comm.gather(comm.rank * 10, root=0)
        return out

    res = run_spmd(sim, world, fn)
    assert res[0] == [r * 10 for r in range(nprocs)]
    assert all(r is None for r in res[1:])


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 8, 16])
def test_allgather_ring(nprocs):
    sim, world = make_world(nprocs)

    def fn(comm):
        out = yield from comm.allgather(comm.rank ** 2)
        return out

    expected = [r ** 2 for r in range(nprocs)]
    assert run_spmd(sim, world, fn) == [expected] * nprocs


@pytest.mark.parametrize("nprocs", [1, 2, 4, 5])
def test_scatter(nprocs):
    sim, world = make_world(nprocs)

    def fn(comm):
        values = [f"item{i}" for i in range(nprocs)] if comm.rank == 0 \
            else None
        out = yield from comm.scatter(values, root=0)
        return out

    assert run_spmd(sim, world, fn) == [f"item{i}" for i in range(nprocs)]


def test_scatter_wrong_length_rejected():
    sim, world = make_world(2)

    def fn(comm):
        if comm.rank == 0:
            yield from comm.scatter([1], root=0)
        else:
            yield from comm.scatter(None, root=0)

    with pytest.raises(ValueError):
        run_spmd(sim, world, fn)


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 8])
def test_alltoall(nprocs):
    sim, world = make_world(nprocs)

    def fn(comm):
        values = [(comm.rank, dst) for dst in range(nprocs)]
        out = yield from comm.alltoall(values)
        return out

    res = run_spmd(sim, world, fn)
    for rank, out in enumerate(res):
        assert out == [(src, rank) for src in range(nprocs)]


def test_consecutive_collectives_do_not_cross_talk():
    sim, world = make_world(4)

    def fn(comm):
        a = yield from comm.allreduce(1, op=lambda x, y: x + y)
        b = yield from comm.allreduce(10, op=lambda x, y: x + y)
        c = yield from comm.allgather(comm.rank)
        return a, b, c

    res = run_spmd(sim, world, fn)
    assert res == [(4, 40, [0, 1, 2, 3])] * 4


def test_comm_split_partitions():
    sim, world = make_world(6)

    def fn(comm):
        color = comm.rank % 2
        sub = yield from comm.split(color)
        total = yield from sub.allreduce(comm.rank, op=lambda a, b: a + b)
        return sub.size, sub.rank, total

    res = run_spmd(sim, world, fn)
    # Even ranks: 0+2+4=6; odd: 1+3+5=9.
    for r, (size, sub_rank, total) in enumerate(res):
        assert size == 3
        assert sub_rank == r // 2
        assert total == (6 if r % 2 == 0 else 9)


def test_comm_split_negative_color_excluded():
    sim, world = make_world(3)

    def fn(comm):
        color = -1 if comm.rank == 2 else 0
        sub = yield from comm.split(color)
        if sub is None:
            return None
        return sub.size

    res = run_spmd(sim, world, fn)
    assert res == [2, 2, None]


def test_bcast_time_scales_logarithmically():
    """Tree fan-out: bcast to 8 ranks should take ~3 serial hops,
    not 7 (the point of the Collective access pattern in III-C)."""
    payload = np.zeros(1_000_000, dtype=np.uint8)

    def run_for(nprocs):
        sim, world = make_world(nprocs)

        def fn(comm):
            out = yield from comm.bcast(
                payload if comm.rank == 0 else None, root=0)
            assert out is not None
            yield from comm.barrier()

        run_spmd(sim, world, fn)
        return sim.now

    t8 = run_for(8)
    t2 = run_for(2)
    assert t8 < 4 * t2  # linear would be ~7x


def test_ranks_packed_on_same_node_use_loopback():
    sim, world = make_world(4, nodes=2)  # ranks 0,2 on node0; 1,3 on node1
    comm = world.comm(0)
    assert comm.node_of(0) == comm.node_of(2)
    assert comm.node_of(0) != comm.node_of(1)


def test_rank_outside_comm_rejected():
    sim, world = make_world(2)
    with pytest.raises(ValueError):
        Comm(world, comm_id=0, rank=5, members=[0, 1])
