"""Unit + property tests for URL parsing and the format backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import BackendError, open_backend, parse_url
from repro.storage.formats.hdf5sim import Hdf5SimBackend
from repro.storage.formats.parquetsim import ParquetSimBackend


# -- URL parsing -------------------------------------------------------------

def test_parse_simple_posix():
    u = parse_url("posix:///data/points.bin")
    assert (u.scheme, u.path, u.params) == ("posix", "/data/points.bin", "")


def test_parse_hdf5_with_group_params():
    u = parse_url("hdf5:///path/to/df.h5:mygroup")
    assert u.scheme == "hdf5"
    assert u.path == "/path/to/df.h5"
    assert u.params == "mygroup"


def test_parse_colon_inside_directory_is_not_params():
    u = parse_url("file:///odd:dir/data.bin")
    assert u.path == "/odd:dir/data.bin"
    assert u.params == ""


def test_parse_wildcard_is_multi():
    u = parse_url("file:///path/to/dataset.parquet*")
    assert u.is_multi


def test_parse_rejects_non_url():
    with pytest.raises(BackendError):
        parse_url("/just/a/path")


def test_parse_rejects_empty_scheme():
    with pytest.raises(BackendError):
        parse_url("://x")


def test_unknown_scheme_rejected(tmp_path):
    with pytest.raises(BackendError, match="unknown scheme"):
        open_backend(f"ftp://{tmp_path}/x")


def test_scheme_is_case_insensitive():
    assert parse_url("HDF5:///a/b.h5:g").scheme == "hdf5"


# -- posix backend -----------------------------------------------------------

def test_posix_create_write_read(tmp_path):
    be = open_backend(f"posix://{tmp_path}/a.bin", create=True)
    be.ensure_size(100)
    be.write_range(10, b"hello")
    assert be.size() == 100
    assert be.read_range(10, 5) == b"hello"
    assert be.read_range(0, 10) == b"\0" * 10


def test_posix_missing_file_rejected(tmp_path):
    with pytest.raises(BackendError):
        open_backend(f"posix://{tmp_path}/nope.bin")


def test_posix_write_past_end_grows(tmp_path):
    be = open_backend(f"posix://{tmp_path}/a.bin", create=True)
    be.write_range(5, b"xy")
    assert be.size() == 7
    assert be.read_range(0, 7) == b"\0" * 5 + b"xy"


def test_posix_read_past_end_rejected(tmp_path):
    be = open_backend(f"posix://{tmp_path}/a.bin", create=True)
    be.ensure_size(10)
    with pytest.raises(BackendError):
        be.read_range(5, 10)


def test_posix_destroy(tmp_path):
    be = open_backend(f"posix://{tmp_path}/a.bin", create=True)
    assert be.exists()
    be.destroy()
    assert not be.exists()


# -- hdf5sim backend ----------------------------------------------------------

def test_hdf5_group_roundtrip(tmp_path):
    path = f"{tmp_path}/sim.h5"
    be = open_backend(f"hdf5://{path}:pos", dtype=np.float32, create=True)
    data = np.arange(12, dtype=np.float32)
    be.write_group("pos", data)
    be2 = open_backend(f"hdf5://{path}:pos")
    assert np.array_equal(be2.read_group("pos"), data)
    assert be2.group_dtype() == np.float32


def test_hdf5_multiple_groups_independent(tmp_path):
    path = f"{tmp_path}/sim.h5"
    be = Hdf5SimBackend(parse_url(f"hdf5://{path}:a"), create=True)
    be.write_group("a", np.arange(4, dtype=np.int32))
    be.write_group("b", np.arange(8, dtype=np.float64))
    assert np.array_equal(be.read_group("a"), np.arange(4, dtype=np.int32))
    assert np.array_equal(be.read_group("b"), np.arange(8, dtype=np.float64))
    assert be.groups() == ["a", "b"]


def test_hdf5_flat_image_range_io(tmp_path):
    path = f"{tmp_path}/sim.h5"
    be = open_backend(f"hdf5://{path}:g", create=True)
    be.ensure_size(64)
    be.write_range(8, b"ABCD")
    assert be.size() == 64
    assert be.read_range(8, 4) == b"ABCD"
    assert be.read_range(0, 8) == b"\0" * 8


def test_hdf5_grow_preserves_content(tmp_path):
    path = f"{tmp_path}/sim.h5"
    be = open_backend(f"hdf5://{path}:g", create=True)
    be.ensure_size(16)
    be.write_range(0, b"0123456789abcdef")
    be.ensure_size(64)
    assert be.read_range(0, 16) == b"0123456789abcdef"
    assert be.read_range(16, 48) == b"\0" * 48


def test_hdf5_grow_non_tail_group(tmp_path):
    path = f"{tmp_path}/sim.h5"
    be = Hdf5SimBackend(parse_url(f"hdf5://{path}:g1"), create=True)
    be.write_group("g1", np.arange(4, dtype=np.uint8))
    be.write_group("g2", np.arange(10, 14, dtype=np.uint8))
    be.ensure_size(8)  # g1 is no longer last -> relocation path
    assert be.read_range(0, 4) == bytes([0, 1, 2, 3])
    assert np.array_equal(be.read_group("g2"),
                          np.arange(10, 14, dtype=np.uint8))


def test_hdf5_missing_group_rejected(tmp_path):
    path = f"{tmp_path}/sim.h5"
    Hdf5SimBackend(parse_url(f"hdf5://{path}:g"), create=True)
    with pytest.raises(BackendError, match="no group"):
        open_backend(f"hdf5://{path}:other").size()


def test_hdf5_bad_magic_rejected(tmp_path):
    path = tmp_path / "fake.h5"
    path.write_bytes(b"NOTHDF5" + b"\0" * 100)
    with pytest.raises(BackendError, match="not an hdf5sim"):
        open_backend(f"hdf5://{path}:g")


# -- parquetsim backend --------------------------------------------------------

POINT3D = np.dtype([("x", "<f4"), ("y", "<f4"), ("z", "<f4")])


def _points(n, seed=0):
    rng = np.random.default_rng(seed)
    pts = np.zeros(n, dtype=POINT3D)
    for f in POINT3D.names:
        pts[f] = rng.normal(size=n).astype(np.float32)
    return pts


def test_parquet_append_and_read_records(tmp_path):
    be = open_backend(f"parquet://{tmp_path}/d.parquet", dtype=POINT3D,
                      create=True)
    pts = _points(100)
    be.append_records(pts)
    out = be.read_records(0, 100)
    assert np.array_equal(out, pts)


def test_parquet_read_spanning_row_groups(tmp_path):
    be = open_backend(f"parquet://{tmp_path}/d.parquet", dtype=POINT3D,
                      create=True)
    a, b = _points(50, 1), _points(30, 2)
    be.append_records(a)
    be.append_records(b)
    out = be.read_records(40, 60)
    assert np.array_equal(out[:10], a[40:])
    assert np.array_equal(out[10:], b[:10])


def test_parquet_flat_image_roundtrip(tmp_path):
    be = open_backend(f"parquet://{tmp_path}/d.parquet", dtype=POINT3D,
                      create=True)
    pts = _points(64)
    be.append_records(pts)
    assert be.size() == 64 * POINT3D.itemsize
    raw = be.read_range(0, be.size())
    assert raw == pts.tobytes()


def test_parquet_unaligned_byte_range(tmp_path):
    be = open_backend(f"parquet://{tmp_path}/d.parquet", dtype=POINT3D,
                      create=True)
    pts = _points(16)
    be.append_records(pts)
    full = pts.tobytes()
    # A range that starts and ends mid-record.
    assert be.read_range(5, 17) == full[5:22]


def test_parquet_write_range_read_modify_write(tmp_path):
    be = open_backend(f"parquet://{tmp_path}/d.parquet", dtype=POINT3D,
                      create=True)
    pts = _points(16)
    be.append_records(pts)
    patch = b"\x01\x02\x03\x04\x05"
    be.write_range(7, patch)
    expected = bytearray(pts.tobytes())
    expected[7:12] = patch
    assert be.read_range(0, be.size()) == bytes(expected)


def test_parquet_ensure_size_appends_zero_records(tmp_path):
    be = open_backend(f"parquet://{tmp_path}/d.parquet", dtype=POINT3D,
                      create=True)
    be.ensure_size(10 * POINT3D.itemsize + 1)  # rounds up to 11 records
    assert be.n_records == 11
    assert be.read_range(0, POINT3D.itemsize) == b"\0" * POINT3D.itemsize


def test_parquet_scalar_dtype_wrapped(tmp_path):
    be = open_backend(f"parquet://{tmp_path}/d.parquet", dtype=np.float64,
                      create=True)
    be.append_records(np.arange(10, dtype=np.float64).view(be.dtype))
    raw = be.read_range(0, 80)
    assert np.array_equal(np.frombuffer(raw, dtype=np.float64),
                          np.arange(10, dtype=np.float64))


def test_parquet_dtype_mismatch_rejected(tmp_path):
    url = f"parquet://{tmp_path}/d.parquet"
    open_backend(url, dtype=POINT3D, create=True)
    with pytest.raises(BackendError, match="dtype mismatch"):
        open_backend(url, dtype=np.float64)


def test_parquet_create_without_dtype_rejected(tmp_path):
    with pytest.raises(BackendError, match="requires a dtype"):
        open_backend(f"parquet://{tmp_path}/d.parquet", create=True)


# -- multi-file (wildcard) backend ----------------------------------------------

def test_multifile_concatenates_sorted(tmp_path):
    for i in range(3):
        be = open_backend(f"posix://{tmp_path}/part{i}.bin", create=True)
        be.write_range(0, bytes([i]) * 4)
    multi = open_backend(f"file://{tmp_path}/part*.bin")
    assert multi.size() == 12
    assert multi.read_range(0, 12) == b"\0" * 4 + b"\x01" * 4 + b"\x02" * 4
    assert multi.read_range(3, 2) == b"\0\x01"


def test_multifile_is_read_only(tmp_path):
    be = open_backend(f"posix://{tmp_path}/p0.bin", create=True)
    be.write_range(0, b"abcd")
    multi = open_backend(f"file://{tmp_path}/p*.bin")
    with pytest.raises(BackendError, match="read-only"):
        multi.write_range(0, b"x")


def test_multifile_no_match_rejected(tmp_path):
    with pytest.raises(BackendError, match="matched no files"):
        open_backend(f"file://{tmp_path}/zzz*.bin")


# -- property-based round trips --------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(st.binary(min_size=1, max_size=512),
       st.data())
def test_posix_range_io_matches_bytearray_model(tmp_path_factory, data, data2):
    base = tmp_path_factory.mktemp("prop")
    be = open_backend(f"posix://{base}/m.bin", create=True)
    be.ensure_size(len(data))
    be.write_range(0, data)
    model = bytearray(data)
    for _ in range(5):
        off = data2.draw(st.integers(0, len(data) - 1))
        n = data2.draw(st.integers(0, len(data) - off))
        patch = data2.draw(st.binary(min_size=n, max_size=n))
        be.write_range(off, patch)
        model[off:off + n] = patch
        assert be.read_range(0, len(data)) == bytes(model)


@settings(max_examples=25, deadline=None)
@given(st.integers(1, 200), st.data())
def test_parquet_range_io_matches_bytearray_model(tmp_path_factory, n, data):
    base = tmp_path_factory.mktemp("prop")
    be = open_backend(f"parquet://{base}/m.parquet", dtype=POINT3D,
                      create=True)
    pts = _points(n, seed=n)
    be.append_records(pts)
    model = bytearray(pts.tobytes())
    for _ in range(4):
        off = data.draw(st.integers(0, len(model) - 1))
        k = data.draw(st.integers(0, min(40, len(model) - off)))
        patch = bytes(data.draw(st.binary(min_size=k, max_size=k)))
        be.write_range(off, patch)
        model[off:off + k] = patch
    assert be.read_range(0, len(model)) == bytes(model)
