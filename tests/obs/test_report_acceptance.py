"""Acceptance tests for the critical-path analyzer (ISSUE PR 4).

* On the fixed-seed two-node KMeans pipeline, `repro report` produces
  a critical path whose category durations sum to the makespan within
  1%.
* `repro diff` of batching-on vs batching-off attributes the majority
  of the runtime delta to the rpc/net categories.
"""

import math

import numpy as np
import pytest

from benchmarks.common import testbed
from repro.core import MM_READ_WRITE, MM_WRITE_ONLY, SeqTx
from repro.obs import SpanGraph, analyze, diff_analyses, load_trace, \
    render_diff, render_report
from repro.pipeline import run_pipeline

KMEANS_2N = """
name: KMeans-2n
cluster:
  n_nodes: 2
  procs_per_node: 2
  dram_mb: 16
  nvme_mb: 64
  page_size: 65536
  seed: 0
dataset:
  kind: points
  n: 4000
  k: 4
  seed: 7
  path: pts.parquet
app:
  kind: mm_kmeans
  k: 4
  max_iter: 2
  seed: 0
"""

PAGE = 64 * 1024
EXCHANGE_PAGES = 16


def test_kmeans_report_categories_sum_to_makespan(tmp_path):
    trace = tmp_path / "km.json"
    rows = run_pipeline(KMEANS_2N, workdir=str(tmp_path),
                        trace_path=str(trace))
    assert len(rows) == 1 and not rows[0]["crashed"]
    graph = load_trace(str(trace))
    assert len(graph) > 0
    analysis = analyze(graph)
    cp = analysis["critical_path"]
    makespan = analysis["makespan"]
    assert makespan > 0
    # The acceptance bound: per-category durations tile the makespan.
    assert abs(sum(cp["by_category"].values()) - makespan) \
        <= 0.01 * makespan
    assert abs(cp["total"] - makespan) <= 0.01 * makespan
    # Overlap ratio is present and finite.
    assert math.isfinite(analysis["overlap_ratio"])
    assert 0.0 <= analysis["overlap_ratio"] <= 1.0
    # Queueing stats cover the runtime queues seen in the trace.
    assert analysis["queueing"], "no rt.queue spans analyzed"
    for q in analysis["queueing"].values():
        assert q["little_L"] == pytest.approx(
            q["arrival_rate"] * q["mean_wait"])
    # The text renderer covers the whole analysis without crashing.
    text = render_report(analysis, title="km")
    assert "critical path by category" in text
    assert "overlap ratio" in text


def _exchange(ctx, n_pages):
    half = n_pages * PAGE
    vec = yield from ctx.mm.vector("diffbench", dtype=np.uint8,
                                   size=2 * half)
    lo = ctx.rank * half
    data = ((np.arange(half) + ctx.rank) % 199).astype(np.uint8)
    yield from vec.tx_begin(SeqTx(lo, half, MM_WRITE_ONLY))
    yield from vec.write_range(lo, data)
    yield from vec.tx_end()
    yield from vec.flush(wait=True)
    yield from ctx.barrier()
    other = (1 - ctx.rank) * half
    yield from vec.tx_begin(SeqTx(other, half, MM_READ_WRITE))
    out = yield from vec.read_range(other, half)
    yield from vec.tx_end()
    yield from ctx.mm.drain()
    return out


def _run_exchange(batching: bool):
    c = testbed(n_nodes=2, procs_per_node=1,
                pcache=(EXCHANGE_PAGES + 4) * PAGE,
                batching_enabled=batching, prefetch_enabled=False,
                trace=True)
    res = c.run(_exchange, EXCHANGE_PAGES)
    graph = SpanGraph.from_tracer(c.tracer)
    return analyze(graph, monitor=c.monitor), res


def test_diff_attributes_batching_delta_to_rpc_and_net():
    a_on, res_on = _run_exchange(batching=True)
    a_off, res_off = _run_exchange(batching=False)
    # Batching must actually have been faster for the diff to mean
    # anything.
    assert res_on.runtime < res_off.runtime
    diff = diff_analyses(a_on, a_off)
    assert diff["makespan_delta"] > 0
    wire = [d for d in diff["by_category"]
            if d["category"].startswith(("rpc", "net"))]
    # The acceptance bound: rpc/net categories carry the majority of
    # the total per-category change.
    assert sum(d["share"] for d in wire) > 0.5, diff["by_category"]
    # And they moved in the right direction (per-page costs more).
    assert sum(d["delta"] for d in wire) > 0
    text = render_diff(diff, label_a="batched", label_b="per-page")
    assert "critical-path delta by category" in text


def _repair_workload(ctx):
    """Write + replicate, then sabotage one replica so the background
    repair loop has real under-replication to fix."""
    system = ctx.mm.system
    vec = yield from ctx.mm.vector("repaired", dtype=np.uint8,
                                   size=4 * PAGE)
    if ctx.rank == 0:
        yield from vec.tx_begin(SeqTx(0, 4 * PAGE, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.ones(4 * PAGE, np.uint8))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        yield system.sim.timeout(0.5)  # let replication land
        info = next(i for i in system.hermes.mdm
                    .list_bucket("repaired") if i.replicas)
        node, tier = info.replicas.pop(0)
        dev = system.dmshs[node].tier(tier)
        if ("repaired", info.key) in dev:
            dev.delete(("repaired", info.key))
        # Sleep past several repair periods (4 * organizer_period).
        yield system.sim.timeout(1.0)
    yield from ctx.barrier()


def test_repair_loop_emits_labeled_metric_and_chaos_span():
    """The repair loop is observable: each top-up increments the
    labeled ``reliability_repairs{reason=under_replicated}`` counter,
    the flat repairs counter, and opens a ``chaos``-category span —
    the signals the chaos campaign's triage reports key off."""
    c = testbed(n_nodes=3, procs_per_node=1, page_size=PAGE,
                trace=True, replication_factor=2)
    c.run(_repair_workload)
    labeled = c.monitor.metrics.counter("reliability_repairs",
                                        reason="under_replicated")
    assert labeled.value > 0
    assert c.monitor.counter("reliability.repairs") > 0
    repair_spans = [s for s in c.tracer.spans
                    if s.name == "repair" and s.category == "chaos"]
    assert repair_spans, "repair ran without a chaos-category span"


def test_live_analysis_includes_gauge_leg_and_occupancy():
    analysis, _ = _run_exchange(batching=True)
    # Live mode (monitor passed) adds the independent Little's-law leg
    # and tier occupancy timelines; trace-file mode cannot.
    assert any("gauge_L" in q for q in analysis["queueing"].values())
    for q in analysis["queueing"].values():
        if "gauge_L" in q:
            assert "consistent" in q
    assert analysis["occupancy"]
    for occ in analysis["occupancy"].values():
        assert occ["peak"] >= occ["avg"] >= 0
