"""Batched page operations: wire-cost win of the vectored pipeline.

A two-node exchange workload (each rank writes its half of a volatile
vector, then sequentially reads the other rank's half) runs twice —
with ``batching_enabled`` on and off. The results must be
byte-identical; the batched run must cut both the number of network
transfers and the number of rpc operations (envelopes shipped) by at
least 2x: fault coalescing turns per-page round trips into one
vectored RPC per owner node, and the scache answers a batch with one
vectored hermes fetch per source node.

Run with ``MEGAMMAP_TRACE=1`` to also export Chrome traces of both
modes (categories ``rpc.batch`` / ``scache.batch`` carry the batched
spans).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MM_READ_WRITE, MM_WRITE_ONLY, SeqTx
from benchmarks.common import critical_breakdown, emit_result, \
    export_trace, print_table, testbed, write_csv

PAGE = 64 * 1024
PAGES_PER_RANK = 32


def _pipeline(ctx, n_pages):
    """Write my half, barrier, sequentially read the peer's half."""
    half = n_pages * PAGE
    vec = yield from ctx.mm.vector("batchbench", dtype=np.uint8,
                                   size=2 * half)
    lo = ctx.rank * half
    data = ((np.arange(half) + ctx.rank) % 199).astype(np.uint8)
    yield from vec.tx_begin(SeqTx(lo, half, MM_WRITE_ONLY))
    yield from vec.write_range(lo, data)
    yield from vec.tx_end()
    yield from vec.flush(wait=True)
    yield from ctx.barrier()
    other = (1 - ctx.rank) * half
    yield from vec.tx_begin(SeqTx(other, half, MM_READ_WRITE))
    out = yield from vec.read_range(other, half)
    yield from vec.tx_end()
    yield from ctx.mm.drain()
    return out


def _run_mode(batching: bool):
    # prefetch_enabled=False isolates the demand data path: score
    # shipping on every tx advance is identical wire traffic in both
    # modes and would only dilute the measured batching ratio. The
    # pcache holds one rank's half (+ slack) so capacity-pressure
    # eviction writebacks — an inherently per-page LRU trickle, also
    # identical in both modes — stay off the measured path too.
    c = testbed(n_nodes=2, procs_per_node=1,
                pcache=(PAGES_PER_RANK + 4) * PAGE,
                batching_enabled=batching, prefetch_enabled=False)
    res = c.run(_pipeline, PAGES_PER_RANK)
    mon = c.monitor
    row = dict(
        mode="batched" if batching else "per-page",
        net_transfers=int(mon.counter("net.transfers")),
        net_mb=mon.counter("net.bytes") / 2**20,
        rpc_ops=int(mon.counter("rpc.submits")
                    + mon.counter("rpc.batches")),
        batches=int(mon.counter("rpc.batches")),
        batched_tasks=int(mon.counter("rpc.batched_tasks")),
        vectored_gets=int(mon.counter("hermes.vectored_gets")),
        runtime_s=res.runtime,
    )
    if c.tracer.enabled:
        export_trace(c, f"batching_{row['mode']}")
    return row, res.values, critical_breakdown(c)


def run_batching():
    row_on, values_on, bd_on = _run_mode(True)
    row_off, values_off, bd_off = _run_mode(False)
    rows = [row_off, row_on]
    rows.append(dict(
        mode="ratio",
        net_transfers=round(row_off["net_transfers"]
                            / max(1, row_on["net_transfers"]), 2),
        net_mb=round(row_off["net_mb"] / max(1e-9, row_on["net_mb"]),
                     2),
        rpc_ops=round(row_off["rpc_ops"]
                      / max(1, row_on["rpc_ops"]), 2),
        batches="", batched_tasks="", vectored_gets="",
        runtime_s=round(row_off["runtime_s"]
                        / max(1e-9, row_on["runtime_s"]), 2),
    ))
    return rows, (values_on, values_off), (bd_on, bd_off)


@pytest.mark.benchmark(group="batching")
def test_batching_pipeline_win(benchmark):
    (rows, (values_on, values_off), (bd_on, bd_off)) = benchmark.pedantic(
        run_batching, rounds=1, iterations=1)
    print_table("Batched vs per-page pipeline (2 nodes, "
                f"{PAGES_PER_RANK} pages/rank exchange)", rows)
    write_csv("batching", rows)
    row_off, row_on = rows[0], rows[1]
    # Byte-for-byte equivalence: both modes, both ranks.
    for got_on, got_off in zip(values_on, values_off):
        assert np.array_equal(got_on, got_off)
    expect = [((np.arange(PAGES_PER_RANK * PAGE) + 1 - r) % 199)
              .astype(np.uint8) for r in range(2)]
    for got, want in zip(values_on, expect):
        assert np.array_equal(got, want)
    # The tentpole claim: >= 2x fewer transfers and rpc operations.
    assert row_on["net_transfers"] * 2 <= row_off["net_transfers"], \
        rows
    assert row_on["rpc_ops"] * 2 <= row_off["rpc_ops"], rows
    # The batched run actually used the vectored paths.
    assert row_on["batches"] > 0
    assert row_on["vectored_gets"] > 0
    assert row_off["batches"] == 0
    cfg = dict(n_nodes=2, pages_per_rank=PAGES_PER_RANK, page=PAGE)
    emit_result("batching", "batching.net_transfer_ratio",
                row_off["net_transfers"]
                / max(1, row_on["net_transfers"]), "x", cfg)
    emit_result("batching", "batching.rpc_ratio",
                row_off["rpc_ops"] / max(1, row_on["rpc_ops"]), "x", cfg)
    emit_result("batching", "batching.net_mb", row_on["net_mb"], "MB",
                cfg)
    # Traced runs (MEGAMMAP_TRACE=1) also record where the time went.
    if bd_on is not None:
        emit_result("batching", "batching.runtime_batched",
                    row_on["runtime_s"], "s", cfg, breakdown=bd_on)
    if bd_off is not None:
        emit_result("batching", "batching.runtime_perpage",
                    row_off["runtime_s"], "s", cfg, breakdown=bd_off)
