"""Gadget-like synthetic particle dataset generator.

The paper's datasets are Gadget-4 cosmology outputs (3-D particle
positions + velocities with halo structure) analyzed by KMeans/DBSCAN/
RF to locate halos. Its AD appendix notes the artifact ships an
"internal kmeans dataset generator ... which outputs data in a similar
format to Gadget and can be used to accelerate reproducibility" — this
module is that generator: ``k`` gravitationally bound halos with
Gaussian radial profiles plus a uniform background, positions and
velocities correlated per halo, written to the hdf5sim container the
way Gadget writes HDF5 snapshots.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.sim.rand import rng_stream
from repro.storage.backend import parse_url
from repro.storage.formats.hdf5sim import Hdf5SimBackend
from repro.storage.formats.parquetsim import ParquetSimBackend

#: Packed 3-D point record (the applications' Point3D).
POINT3D = np.dtype([("x", "<f4"), ("y", "<f4"), ("z", "<f4")])

#: Position+velocity record (what Gadget snapshots carry per particle).
PARTICLE = np.dtype([("x", "<f4"), ("y", "<f4"), ("z", "<f4"),
                     ("vx", "<f4"), ("vy", "<f4"), ("vz", "<f4")])

BOX_SIZE = 100.0          # comoving box edge, arbitrary units
BACKGROUND_FRACTION = 0.1  # particles not bound to any halo


def generate_points(n: int, k: int, seed: int = 0,
                    spread: float = 2.0,
                    with_velocity: bool = False,
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Synthesize ``n`` particles clustered into ``k`` halos.

    Returns ``(particles, labels)`` where labels give the generating
    halo (-1 for background). ``particles`` has dtype
    :data:`POINT3D` or :data:`PARTICLE`.
    """
    if n < 1 or k < 1:
        raise ValueError(f"need n >= 1 and k >= 1, got n={n} k={k}")
    rng = rng_stream(seed, "gadget", n, k)
    centers = rng.uniform(0.15 * BOX_SIZE, 0.85 * BOX_SIZE, size=(k, 3))
    halo_v = rng.normal(0.0, 50.0, size=(k, 3))
    n_bg = int(n * BACKGROUND_FRACTION)
    n_halo = n - n_bg
    counts = np.full(k, n_halo // k)
    counts[: n_halo % k] += 1
    dtype = PARTICLE if with_velocity else POINT3D
    out = np.zeros(n, dtype=dtype)
    labels = np.full(n, -1, dtype=np.int32)
    pos = np.empty((n, 3), dtype=np.float64)
    vel = np.empty((n, 3), dtype=np.float64)
    i = 0
    for h in range(k):
        c = counts[h]
        pos[i:i + c] = centers[h] + rng.normal(0.0, spread, size=(c, 3))
        vel[i:i + c] = halo_v[h] + rng.normal(0.0, 10.0, size=(c, 3))
        labels[i:i + c] = h
        i += c
    pos[i:] = rng.uniform(0.0, BOX_SIZE, size=(n - i, 3))
    vel[i:] = rng.normal(0.0, 80.0, size=(n - i, 3))
    # Shuffle so partitions are unbiased (as a real snapshot is).
    order = rng.permutation(n)
    pos, vel, labels = pos[order], vel[order], labels[order]
    for j, f in enumerate(("x", "y", "z")):
        out[f] = pos[:, j].astype(np.float32)
    if with_velocity:
        for j, f in enumerate(("vx", "vy", "vz")):
            out[f] = vel[:, j].astype(np.float32)
    return out, labels


def write_gadget_like(path: str, n: int, k: int, seed: int = 0,
                      with_velocity: bool = True) -> np.ndarray:
    """Write a Gadget-like hdf5sim snapshot; returns the labels.

    Layout mirrors a Gadget HDF5 snapshot: group ``parttype0`` holds
    the packed particle records (and ``labels`` holds ground truth for
    verification, which a real snapshot of course lacks).
    """
    particles, labels = generate_points(n, k, seed,
                                        with_velocity=with_velocity)
    be = Hdf5SimBackend(parse_url(f"hdf5://{path}:parttype0"), create=True)
    be.write_group("parttype0", particles)
    be.write_group("labels", labels)
    return labels


def write_parquet_points(path: str, n: int, k: int,
                         seed: int = 0) -> np.ndarray:
    """Write a parquetsim points file (Listing 1's ``points.parquet``);
    returns the labels."""
    points, labels = generate_points(n, k, seed, with_velocity=False)
    be = ParquetSimBackend(parse_url(f"parquet://{path}"), dtype=POINT3D,
                           create=True)
    be.append_records(points)
    return labels


def as_xyz(records: np.ndarray) -> np.ndarray:
    """View packed POINT3D/PARTICLE records as an (n, 3) float array."""
    return np.column_stack([records["x"], records["y"], records["z"]]) \
        .astype(np.float64)
