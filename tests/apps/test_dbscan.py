"""DBSCAN: unit tests for the pieces + integration for both versions."""

import numpy as np
import pytest

from repro.apps.datagen import as_xyz, generate_points, \
    write_parquet_points
from repro.apps.dbscan.common import (
    UnionFind,
    encode_gid,
    local_dbscan,
    merge_labels,
    reference_dbscan,
    resolve,
)
from repro.apps.dbscan.mm_dbscan import mm_dbscan
from repro.apps.dbscan.mpi_dbscan import mpi_dbscan
from repro.apps.kmeans.common import match_accuracy
from tests.apps.conftest import make_cluster


def two_blobs(n=200, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal([0, 0, 0], 0.5, size=(n // 2, 3))
    b = rng.normal([10, 10, 10], 0.5, size=(n // 2, 3))
    return np.vstack([a, b])


def test_local_dbscan_separates_blobs():
    xyz = two_blobs()
    labels, is_core = local_dbscan(xyz, eps=2.0, min_pts=5)
    assert len(np.unique(labels[labels >= 0])) == 2
    assert (labels[:100] == labels[0]).all()
    assert (labels[100:] == labels[100]).all()
    assert labels[0] != labels[100]
    assert is_core.sum() > 0


def test_local_dbscan_flags_noise():
    xyz = np.vstack([two_blobs(), [[100.0, 100, 100]]])
    labels, _ = local_dbscan(xyz, eps=2.0, min_pts=5)
    assert labels[-1] == -1


def test_local_dbscan_empty():
    labels, core = local_dbscan(np.empty((0, 3)), 1.0, 3)
    assert len(labels) == 0 and len(core) == 0


def test_union_find_transitivity():
    uf = UnionFind()
    uf.union(1, 2)
    uf.union(2, 3)
    uf.union(10, 11)
    assert uf.find(3) == uf.find(1)
    assert uf.find(10) != uf.find(1)


def test_encode_gid_preserves_noise():
    labels = np.array([-1, 0, 3])
    gids = encode_gid(2, labels)
    assert gids[0] == -1
    assert gids[1] == 2 * (1 << 32)
    assert gids[2] == 2 * (1 << 32) + 3


def test_merge_labels_joins_across_processes():
    # Two halves of one blob assigned to different "processes".
    xyz = two_blobs()
    half_a, half_b = xyz[:100], xyz[100:]
    # Same spatial cluster split across ranks: points near each other.
    cut = xyz[:100]
    ga = encode_gid(0, np.zeros(50, dtype=np.int64))
    gb = encode_gid(1, np.zeros(50, dtype=np.int64))
    parent = merge_labels(
        [cut[:50], cut[50:]], [ga, gb],
        [np.ones(50, bool), np.ones(50, bool)], eps=2.0)
    assert resolve(parent, int(ga[0])) == resolve(parent, int(gb[0]))


def test_reference_dbscan_recovers_halos():
    pts, truth = generate_points(2000, 4, seed=3, spread=0.8)
    xyz = as_xyz(pts)
    labels = reference_dbscan(xyz, eps=2.0, min_pts=8)
    assert match_accuracy(labels, truth) > 0.9


@pytest.fixture(scope="module")
def db_dataset(tmp_path_factory):
    base = tmp_path_factory.mktemp("dbscan")
    path = base / "pts.parquet"
    truth = write_parquet_points(str(path), 3000, 4, seed=13)
    pts, _ = generate_points(3000, 4, seed=13)
    xyz = as_xyz(pts)
    ref = reference_dbscan(xyz, eps=2.5, min_pts=8)
    return f"parquet://{path}", truth, xyz, ref


def _assemble(values, n):
    labels = np.full(n, -2, dtype=np.int64)
    for orig, lab in values:
        labels[orig] = lab
    assert (labels != -2).all()  # every point assigned exactly once
    return labels


def test_mm_dbscan_matches_reference(db_dataset):
    url, truth, xyz, ref = db_dataset
    cluster = make_cluster()
    res = cluster.run(mm_dbscan, url, 2.5, 8)
    labels = _assemble(res.values, 3000)
    # Same clustering as the single-process oracle (cluster ids
    # differ; compare by matching) and good halo recovery.
    assert match_accuracy(labels, ref) > 0.95
    assert match_accuracy(labels, truth) > 0.85


def test_mm_dbscan_cluster_count(db_dataset):
    url, _, _, ref = db_dataset
    cluster = make_cluster()
    res = cluster.run(mm_dbscan, url, 2.5, 8)
    labels = _assemble(res.values, 3000)
    n_ref = len(np.unique(ref[ref >= 0]))
    n_got = len(np.unique(labels[labels >= 0]))
    assert abs(n_got - n_ref) <= 1


def test_mpi_dbscan_matches_reference(db_dataset):
    url, truth, xyz, ref = db_dataset
    cluster = make_cluster()
    res = cluster.run(mpi_dbscan, url, 2.5, 8)
    labels = _assemble(res.values, 3000)
    assert match_accuracy(labels, ref) > 0.95


def test_mm_and_mpi_dbscan_agree(db_dataset):
    url, _, _, _ = db_dataset
    c1 = make_cluster()
    mm_labels = _assemble(c1.run(mm_dbscan, url, 2.5, 8).values, 3000)
    c2 = make_cluster()
    mpi_labels = _assemble(c2.run(mpi_dbscan, url, 2.5, 8).values, 3000)
    assert match_accuracy(mm_labels, mpi_labels) > 0.98


def test_mm_dbscan_performs_close_to_mpi(db_dataset):
    """Fig. 5 claim: MegaMmap performs similarly to the MPI-based
    implementation (within a modest factor at small scale)."""
    url, _, _, _ = db_dataset
    c1 = make_cluster()
    mm_t = c1.run(mm_dbscan, url, 2.5, 8).runtime
    c2 = make_cluster()
    mpi_t = c2.run(mpi_dbscan, url, 2.5, 8).runtime
    assert mm_t < 2.0 * mpi_t


def test_mm_dbscan_persists_assignments(db_dataset, tmp_path):
    url, truth, _, _ = db_dataset
    cluster = make_cluster()
    out_url = f"posix://{tmp_path}/labels.bin"
    res = cluster.run(mm_dbscan, url, 2.5, 8, 0, None, out_url)
    cluster.shutdown()
    on_disk = np.fromfile(tmp_path / "labels.bin", dtype=np.int64)
    assert len(on_disk) == 3000
    assert match_accuracy(on_disk, truth) > 0.85
