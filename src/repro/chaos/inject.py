"""The fault-injection plane: applies a :class:`ChaosPlan` to a live
:class:`~repro.core.system.MegaMmapSystem`.

One :class:`ChaosInjector` installs itself as the ``chaos`` hook of
the network fabric and every device, then runs a driver process that
walks the plan's timed faults (crashes/restarts/corruption) and sweeps
the conservation invariants after each one. Window faults
(partition/delay/drop/stall) are consulted by the hooks at transfer
time.

Crashes are **safe by default**: a node is only failed once every
at-risk page it primaries (volatile or unpersisted-dirty) has a live
replica elsewhere — otherwise the crash is deferred and retried, and
eventually skipped. This keeps seeded campaigns meaningful: the point
is to exercise recovery, not to certify that losing the only copy of
a page loses data.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.chaos.checker import HistoryRecorder, check_conservation
from repro.chaos.plan import ChaosPlan, Fault
from repro.net.message import RETRY_HEADER
from repro.sim.rand import py_rng

#: Bounded retransmission attempts under the drop fault.
MAX_SEND_ATTEMPTS = 3
#: How many times a deferred (unsafe) crash is retried before skipping.
CRASH_RETRIES = 8


class ChaosInjector:
    """Applies one plan; exposes the network/device chaos hooks."""

    def __init__(self, system, plan: ChaosPlan,
                 recorder: Optional[HistoryRecorder] = None):
        self.system = system
        self.plan = plan
        self.recorder = recorder
        self.rng = py_rng(plan.seed, "chaos-inject")
        self.applied: List[Tuple[str, float, str]] = []
        self.skipped: List[Tuple[Fault, str]] = []
        self.conservation_problems: List[str] = []
        self._windows = {
            kind: [f for f in plan.faults if f.kind == kind]
            for kind in ("partition", "delay", "drop", "stall")}
        self._proc = None

    # -- installation ----------------------------------------------------
    def install(self) -> "ChaosInjector":
        self.system.network.chaos = self
        for dmsh in self.system.dmshs:
            for dev in dmsh:
                dev.chaos = self
        if self.plan.perturb:
            self.system.sim.enable_perturbation(
                py_rng(self.plan.seed, "perturb").getrandbits(63))
        self._proc = self.system.sim.process(self._driver(),
                                             name="chaos-driver")
        return self

    # -- window lookup ---------------------------------------------------
    def _active(self, kind: str, now: float) -> Optional[Fault]:
        for f in self._windows[kind]:
            if f.time <= now < f.end:
                return f
        return None

    def _partition_heal(self, src: int, dst: int,
                        now: float) -> Optional[float]:
        heal = None
        for f in self._windows["partition"]:
            if f.time <= now < f.end \
                    and (src in f.nodes) != (dst in f.nodes):
                heal = f.end if heal is None else max(heal, f.end)
        return heal

    # -- network hook (Network.transfer yields through this) -------------
    def on_transfer(self, net, src: int, dst: int, nbytes: int, link):
        sim = self.system.sim
        if src == dst:
            return
        while True:
            heal = self._partition_heal(src, dst, sim.now)
            if heal is None:
                break
            net.monitor and net.monitor.count("chaos.partition_stalls")
            yield sim.timeout(heal - sim.now)
        f = self._active("delay", sim.now)
        if f is not None:
            jitter = f.param * self.rng.random()
            if jitter > 0.0:
                net.monitor and net.monitor.count("chaos.delays")
                yield sim.timeout(jitter)
        f = self._active("drop", sim.now)
        if f is not None:
            attempts = 1
            while attempts < MAX_SEND_ATTEMPTS \
                    and self.rng.random() < f.param:
                attempts += 1
            if attempts > 1:
                # Each lost attempt re-pays the payload plus the loss
                # signal at link speed. net.bytes stays goodput; the
                # overhead lands on its own counter.
                extra = (attempts - 1) * (nbytes + RETRY_HEADER)
                if net.monitor is not None:
                    net.monitor.count("chaos.retransmits",
                                      attempts - 1)
                    net.monitor.count("chaos.retrans_bytes", extra)
                for _ in range(attempts - 1):
                    yield sim.timeout(
                        link.xfer_time(nbytes + RETRY_HEADER))

    # -- device hook (Device._xfer adds this to its service time) --------
    def stall_time(self, device, nbytes: int, write: bool) -> float:
        f = self._active("stall", self.system.sim.now)
        if f is None or device.spec.kind == "dram":
            return 0.0
        if device.monitor is not None:
            device.monitor.count("chaos.stalls")
        return f.param * device.spec.xfer_time(nbytes, write)

    # -- the timed-fault driver ------------------------------------------
    def _driver(self):
        sim = self.system.sim
        events = []
        for i, f in enumerate(self.plan.faults):
            events.append((f.time, i, "start", f))
            if f.kind == "crash":
                events.append((f.end, i, "restart", f))
        events.sort(key=lambda e: (e[0], e[1], e[2]))
        for t, _i, phase, f in events:
            if t > sim.now:
                yield sim.timeout(t - sim.now)
            if phase == "restart":
                self._apply_restart(f)
            elif f.kind == "crash":
                yield from self._apply_crash(f)
            elif f.kind == "corrupt":
                self._apply_corrupt(f)
            else:
                # Window faults need no application step — the hooks
                # consult the schedule — but the invariant sweep below
                # still runs at every fault boundary.
                self._record(f.kind, f.node)
            self._sweep()

    def _record(self, kind: str, *fields) -> None:
        self.applied.append((kind, float(self.system.sim.now),
                             ",".join(str(f) for f in fields)))
        if self.recorder is not None:
            self.recorder.on_chaos(kind, *fields)

    def _sweep(self) -> None:
        if self.recorder is not None:
            problems = self.recorder.check_conservation()
        else:
            problems = check_conservation(self.system)
        self.conservation_problems.extend(problems)

    # -- crash / restart -------------------------------------------------
    def _crash_safe(self, node: int) -> bool:
        rel = self.system.reliability
        dur = self.system.durability
        if node in rel.failed_nodes:
            return False
        live = [n for n in range(len(self.system.dmshs))
                if n != node and n not in rel.failed_nodes]
        if not live:
            return False
        for info in self.system.hermes.mdm.all_blobs():
            if info.node != node:
                continue
            vec = self.system.vectors.get(info.bucket)
            if vec is None or vec.destroyed:
                continue
            at_risk = vec.volatile or info.key in vec.dirty_pages
            if not at_risk:
                continue  # clean nonvolatile: the backend has it
            if any(rn in live for rn, _t in info.replicas):
                continue
            # Durable mode: a barrier-committed WAL copy of the
            # latest shipped bytes makes the crash recoverable even
            # with no replica — exercising exactly that path is the
            # point of the durability campaigns.
            if dur.covers_clean(info.bucket, info.key):
                continue
            return False
        return True

    def _apply_crash(self, f: Fault):
        sim = self.system.sim
        rel = self.system.reliability
        retry = max(f.duration / (2 * CRASH_RETRIES),
                    self.plan.horizon / 200.0)
        for _attempt in range(CRASH_RETRIES):
            if self._crash_safe(f.node):
                lost = rel.fail_node(f.node)
                self.system.monitor.count("chaos.crashes")
                self._record("crash", f.node, lost)
                return
            yield sim.timeout(retry)
            if sim.now >= f.end:
                break
        self.skipped.append((f, "unsafe_crash"))
        self.system.monitor.count("chaos.crashes_skipped")

    def _apply_restart(self, f: Fault) -> None:
        rel = self.system.reliability
        if f.node in rel.failed_nodes:
            rel.restore_node(f.node)
            self.system.monitor.count("chaos.restarts")
            self._record("restart", f.node)

    # -- corruption ------------------------------------------------------
    def _eligible_corruption_victims(self):
        rel = self.system.reliability
        victims = []
        for info in self.system.hermes.mdm.all_blobs():
            if info.node < 0 or info.node in rel.failed_nodes:
                continue
            vec = self.system.vectors.get(info.bucket)
            if vec is None or vec.destroyed:
                continue
            if (info.bucket, info.key) not in rel.checksums:
                continue  # no baseline: the flip would be undetectable
            dev = self.system.dmshs[info.node].tier(info.tier)
            if (info.bucket, info.key) not in dev:
                continue
            live_replica = any(
                rn not in rel.failed_nodes and rn != info.node
                for rn, _t in info.replicas)
            recoverable = live_replica or (
                not vec.volatile and info.key not in vec.dirty_pages)
            if recoverable:
                victims.append((info.bucket, info.key))
        victims.sort(key=lambda v: (v[0], str(v[1])))
        return victims

    def _apply_corrupt(self, f: Fault) -> None:
        from repro.core.reliability import corrupt_page
        victims = self._eligible_corruption_victims()
        if not victims:
            self.skipped.append((f, "no_eligible_page"))
            self.system.monitor.count("chaos.corruptions_skipped")
            return
        name, key = victims[f.pick % len(victims)]
        if corrupt_page(self.system, name, key,
                        byte_offset=int(f.param)):
            self.system.monitor.count("chaos.corruptions")
            self._record("corrupt", name, key)
        else:
            self.skipped.append((f, "blob_vanished"))
