"""Triage reports over a :class:`~repro.obs.graph.SpanGraph`.

:func:`analyze` distills a graph (plus, in live mode, the run's
:class:`~repro.sim.monitor.Monitor`) into one JSON-serializable dict;
:func:`render_report` pretty-prints it; :func:`diff_analyses` /
:func:`render_diff` align two runs by span category and report which
categories account for the runtime delta.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from repro.obs.graph import SpanGraph

__all__ = ["analyze", "render_report", "diff_analyses", "render_diff"]

#: Relative tolerance for the Little's-law cross-check between the
#: span-derived L and the independently sampled backlog gauge. Loose on
#: purpose: the gauge measures queue+dispatch residency over the whole
#: run while the spans measure completed waits.
LITTLE_RTOL = 0.5

_SPARK = " .:-=+*#%@"


def _sparkline(series, t0: float, t1: float, width: int = 40) -> str:
    """Render a step-function TimeSeries as a fixed-width occupancy
    strip (each cell is the time-average level over its bucket)."""
    samples = series.samples
    if not samples or t1 <= t0:
        return ""
    peak = max(v for _, v in samples) or 1.0
    cells = []
    step = (t1 - t0) / width
    idx = 0
    value = 0.0
    for b in range(width):
        lo, hi = t0 + b * step, t0 + (b + 1) * step
        area = 0.0
        t = lo
        while idx < len(samples) and samples[idx][0] <= hi:
            st, sv = samples[idx]
            if st > t:
                area += value * (st - t)
                t = st
            value = sv
            idx += 1
        area += value * (hi - t)
        level = (area / step) / peak
        cells.append(_SPARK[min(len(_SPARK) - 1,
                                int(level * (len(_SPARK) - 1) + 0.5))])
    return "".join(cells)


def analyze(graph: SpanGraph, monitor=None,
            top_k: int = 10) -> Dict[str, Any]:
    """Distill a span graph into the report dict.

    ``monitor`` (live mode only — unavailable when analyzing a trace
    file) adds per-tier occupancy timelines from the ``*.used`` gauges
    and the independent backlog-gauge leg of the Little's-law check.
    """
    t0, t1 = graph.window
    breakdown = graph.critical_breakdown()
    queueing = graph.queueing_stats()
    if monitor is not None:
        for (name, labels), g in monitor.metrics.gauges.items():
            if name != "rt_backlog":
                continue
            node = dict(labels).get("node")
            key = f"node{node}"
            if key in queueing:
                q = queueing[key]
                gauge_l = g.time_average()
                q["gauge_L"] = gauge_l
                # Both legs near zero is trivially consistent.
                scale = max(q["little_L"], gauge_l, 1e-12)
                q["consistent"] = bool(
                    abs(q["little_L"] - gauge_l) / scale <= LITTLE_RTOL
                    or max(q["little_L"], gauge_l) < 0.05)
    occupancy: Dict[str, Dict[str, Any]] = {}
    if monitor is not None:
        for name, gauge in sorted(monitor.gauges.items()):
            if not name.endswith(".used") \
                    or not name.startswith("node"):
                continue
            occupancy[name[:-len(".used")]] = {
                "peak": gauge.peak,
                "avg": gauge.time_average(),
                "timeline": _sparkline(gauge.series, t0, t1),
            }
    return {
        "t0": t0,
        "t1": t1,
        "makespan": graph.makespan,
        "n_spans": len(graph),
        "critical_path": breakdown,
        "overlap_ratio": graph.overlap_ratio(),
        "top_spans": [
            {"name": s.name, "category": s.category, "node": s.node,
             "start": s.start, "duration": s.duration,
             "unfinished": s.unfinished}
            for s in graph.top_spans(top_k)],
        "queueing": queueing,
        "occupancy": occupancy,
    }


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def _bar(frac: float, width: int = 28) -> str:
    n = int(round(max(0.0, min(1.0, frac)) * width))
    return "#" * n + "-" * (width - n)


def render_report(analysis: Dict[str, Any],
                  title: str = "run") -> str:
    """Human-readable triage report for one analyzed run."""
    lines: List[str] = []
    mk = analysis["makespan"]
    cp = analysis["critical_path"]
    lines.append(f"== repro report: {title} ==")
    lines.append(f"makespan            {_fmt_s(mk)}   "
                 f"({analysis['n_spans']} spans)")
    lines.append(f"critical path total {_fmt_s(cp['total'])}")
    lines.append(f"overlap ratio       "
                 f"{analysis['overlap_ratio'] * 100:.1f}%  "
                 f"(I/O time shadowed by compute)")
    lines.append("")
    lines.append("critical path by category:")
    total = max(cp["total"], 1e-30)
    for cat, dur in sorted(cp["by_category"].items(),
                           key=lambda kv: -kv[1]):
        lines.append(f"  {cat:<16} {_fmt_s(dur):>10}  "
                     f"{dur / total * 100:5.1f}%  "
                     f"{_bar(dur / total)}")
    if cp.get("by_node"):
        lines.append("critical path by node:")
        for node, dur in sorted(cp["by_node"].items(),
                                key=lambda kv: -kv[1]):
            lines.append(f"  {node:<16} {_fmt_s(dur):>10}  "
                         f"{dur / total * 100:5.1f}%")
    tiers = {t: d for t, d in (cp.get("by_tier") or {}).items()
             if t != "-"}
    if tiers:
        lines.append("critical path by tier:")
        for tier, dur in sorted(tiers.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {tier:<16} {_fmt_s(dur):>10}  "
                         f"{dur / total * 100:5.1f}%")
    lines.append("")
    lines.append(f"top {len(analysis['top_spans'])} spans:")
    for s in analysis["top_spans"]:
        mark = "  [unfinished]" if s.get("unfinished") else ""
        lines.append(f"  {_fmt_s(s['duration']):>10}  "
                     f"{s['category']}:{s['name']}  node={s['node']}  "
                     f"@{s['start']:.4f}{mark}")
    if analysis.get("queueing"):
        lines.append("")
        lines.append("runtime queueing (Little's law: L = lambda*W):")
        for node, q in sorted(analysis["queueing"].items()):
            extra = ""
            if "gauge_L" in q:
                verdict = "ok" if q.get("consistent") else "MISMATCH"
                extra = (f"  gauge L={q['gauge_L']:.3f} "
                         f"[{verdict}]")
            lines.append(
                f"  {node}: n={int(q['count'])} "
                f"lambda={q['arrival_rate']:.1f}/s "
                f"W={_fmt_s(q['mean_wait'])} "
                f"L={q['little_L']:.3f}{extra}")
    if analysis.get("occupancy"):
        lines.append("")
        lines.append("tier occupancy (time ->):")
        for dev, occ in sorted(analysis["occupancy"].items()):
            lines.append(
                f"  {dev:<14} |{occ['timeline']}| "
                f"peak={occ['peak'] / 2 ** 20:.1f}MB "
                f"avg={occ['avg'] / 2 ** 20:.1f}MB")
    return "\n".join(lines)


def diff_analyses(a: Dict[str, Any], b: Dict[str, Any]
                  ) -> Dict[str, Any]:
    """Align two analyzed runs by critical-path category and report
    which categories account for the makespan delta (B - A)."""
    cat_a = a["critical_path"]["by_category"]
    cat_b = b["critical_path"]["by_category"]
    cats = sorted(set(cat_a) | set(cat_b))
    deltas = []
    for cat in cats:
        da, db = cat_a.get(cat, 0.0), cat_b.get(cat, 0.0)
        deltas.append({"category": cat, "a": da, "b": db,
                       "delta": db - da})
    deltas.sort(key=lambda d: -abs(d["delta"]))
    total_delta = b["makespan"] - a["makespan"]
    abs_sum = sum(abs(d["delta"]) for d in deltas) or 1e-30
    for d in deltas:
        d["share"] = abs(d["delta"]) / abs_sum
    return {
        "makespan_a": a["makespan"],
        "makespan_b": b["makespan"],
        "makespan_delta": total_delta,
        "overlap_ratio_a": a.get("overlap_ratio"),
        "overlap_ratio_b": b.get("overlap_ratio"),
        "by_category": deltas,
    }


def render_diff(diff: Dict[str, Any], label_a: str = "A",
                label_b: str = "B") -> str:
    lines: List[str] = []
    lines.append(f"== repro diff: {label_a} vs {label_b} ==")
    lines.append(f"makespan {label_a}={_fmt_s(diff['makespan_a'])}  "
                 f"{label_b}={_fmt_s(diff['makespan_b'])}  "
                 f"delta={diff['makespan_delta']:+.6f}s")
    if diff.get("overlap_ratio_a") is not None:
        lines.append(
            f"overlap ratio {label_a}="
            f"{diff['overlap_ratio_a'] * 100:.1f}%  {label_b}="
            f"{diff['overlap_ratio_b'] * 100:.1f}%")
    lines.append("")
    lines.append(f"critical-path delta by category ({label_b} - "
                 f"{label_a}, largest first):")
    for d in diff["by_category"]:
        if math.isclose(d["delta"], 0.0, abs_tol=1e-12):
            continue
        lines.append(
            f"  {d['category']:<16} {d['delta']:+.6f}s  "
            f"({d['share'] * 100:5.1f}% of total change)  "
            f"[{_fmt_s(d['a'])} -> {_fmt_s(d['b'])}]")
    return "\n".join(lines)


def analysis_summary(analysis: Dict[str, Any]) -> Dict[str, Any]:
    """Compact slice of an analysis for embedding in BENCH_*.json
    records (`benchmarks.common.emit_result` breakdown field)."""
    return {
        "total": analysis["critical_path"]["total"],
        "by_category": analysis["critical_path"]["by_category"],
        "overlap_ratio": analysis["overlap_ratio"],
        "makespan": analysis["makespan"],
    }


def queueing_is_consistent(analysis: Dict[str, Any]) -> Optional[bool]:
    """True/False when the gauge leg of the Little's-law check was
    available on every queue; None for trace-file analyses."""
    qs = analysis.get("queueing") or {}
    flags = [q["consistent"] for q in qs.values() if "consistent" in q]
    if not flags:
        return None
    return all(flags)
