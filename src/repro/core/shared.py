"""Cluster-global shared vector metadata.

One :class:`SharedVector` exists per vector key per deployment; every
process's :class:`~repro.core.vector.Vector` handle references it.
Processes "connect to the shared vector using a semantic, user-defined
key common to all processes" (paper III-A).
"""

from __future__ import annotations

from typing import Optional, Set

import numpy as np

from repro.core.coherence import CoherencePolicy
from repro.core.errors import VectorError
from repro.sim.rand import spawn_seed
from repro.storage.backend import Backend, open_backend


class SharedVector:
    """Metadata + scache bookkeeping for one shared vector."""

    def __init__(self, name: str, dtype, page_size: int,
                 length: int = 0, volatile: bool = True,
                 n_nodes: int = 1, rack_size: Optional[int] = None):
        self.name = name
        self.dtype = np.dtype(dtype)
        self.itemsize = self.dtype.itemsize
        if page_size < self.itemsize:
            raise VectorError(
                f"page size {page_size} smaller than element size "
                f"{self.itemsize}")
        if page_size % self.itemsize:
            raise VectorError(
                f"page size {page_size} not a multiple of element size "
                f"{self.itemsize}")
        self.page_size = page_size
        self.elems_per_page = page_size // self.itemsize
        self.length = length
        self.volatile = volatile
        self.n_nodes = n_nodes
        # Placement domain: GLOBAL hashing stays inside the client's
        # rack so scache traffic never crosses a shard boundary (the
        # rack-decomposed topology; DESIGN.md, sharded simulation).
        # Defaults to the whole cluster — one rack.
        self.rack_size = n_nodes if rack_size is None else rack_size
        if self.rack_size < 1 or n_nodes % self.rack_size:
            raise VectorError(
                f"rack size {rack_size} does not partition "
                f"{n_nodes} nodes")
        self.policy: CoherencePolicy = CoherencePolicy.READ_WRITE_GLOBAL
        #: Incremented on every policy change; clients compare against
        #: their last-seen epoch to invalidate private caches exactly
        #: once per phase change (SPMD processes all observe it).
        self.policy_epoch = 0
        self.backend: Optional[Backend] = None
        #: scache pages modified since the last stage-out.
        self.dirty_pages: Set[int] = set()
        #: pages with at least one replica (fast phase-change sweep).
        self.replicated_pages: Set[int] = set()
        self.destroyed = False
        # Deterministic per-vector salt for page->node hashing.
        self._salt = spawn_seed(0xC0FFEE, name)

    # -- geometry ---------------------------------------------------------
    @property
    def n_pages(self) -> int:
        return -(-self.length // self.elems_per_page) if self.length else 0

    @property
    def nbytes(self) -> int:
        return self.length * self.itemsize

    def page_nbytes(self, page_idx: int) -> int:
        """Bytes held by this page (the final page may be partial)."""
        if page_idx < 0 or page_idx >= self.n_pages:
            raise VectorError(
                f"page {page_idx} outside vector of {self.n_pages} pages")
        last = self.n_pages - 1
        if page_idx < last:
            return self.page_size
        rem = self.nbytes - last * self.page_size
        return rem

    def page_of(self, elem_idx: int) -> int:
        return elem_idx // self.elems_per_page

    def owner_node(self, page_idx: int, client_node: int) -> int:
        """Runtime node whose workers serialize this page's tasks.

        LOCAL affinity keeps pages on the producing node; GLOBAL
        policies hash so all processes agree (strong consistency via
        same-worker scheduling, paper III-B).
        """
        if self.policy.local_affinity:
            return client_node
        rack_lo = (client_node // self.rack_size) * self.rack_size
        return rack_lo + spawn_seed(self._salt, page_idx) % self.rack_size

    @property
    def coordinator_node(self) -> int:
        """Node that arbitrates appends/resizes for this vector."""
        return self._salt % self.n_nodes

    def coordinator_for(self, client_node: int) -> int:
        """Rack-local coordinator: the arbitration point as seen from
        ``client_node``'s rack (equals :attr:`coordinator_node` in the
        single-rack topology)."""
        rack_lo = (client_node // self.rack_size) * self.rack_size
        return rack_lo + self._salt % self.rack_size

    # -- backend ----------------------------------------------------------
    def ensure_backend(self, create: bool = True) -> Backend:
        if self.volatile:
            raise VectorError(
                f"volatile vector {self.name!r} has no backend")
        if self.backend is None:
            self.backend = open_backend(self.name, dtype=self.dtype,
                                        create=create)
        return self.backend

    def grow(self, new_length: int) -> None:
        if new_length < self.length:
            raise VectorError("vectors cannot shrink (destroy instead)")
        self.length = new_length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<SharedVector {self.name!r} len={self.length} "
                f"dtype={self.dtype} pages={self.n_pages} "
                f"policy={self.policy.value}>")
