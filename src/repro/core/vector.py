"""The client-side shared vector: pcache, transactions, element access.

This is the application-facing API of MegaMmap (paper Listing 1). Each
process holds its own :class:`Vector` handle over the cluster-global
:class:`~repro.core.shared.SharedVector`; reads and writes go through
the process-private **pcache** with copy-on-write dirty-interval
tracking, faulting pages from the distributed **scache** through
MemoryTasks, with the :class:`~repro.core.prefetcher.Prefetcher`
(Algorithm 1) driving eviction/read-ahead at transaction
acknowledgment points.

All potentially blocking methods are generators:
``chunk = yield from vec.next_chunk()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.coherence import CoherencePolicy, policy_for
from repro.core.errors import TransactionError, VectorError
from repro.core.intervals import IntervalSet
from repro.core.memtask import MemoryTask, TaskKind
from repro.core.prefetcher import Prefetcher
from repro.core.transaction import Transaction, TxFlags


class Frame:
    """One pcache page frame: private data + validity/dirty intervals."""

    __slots__ = ("data", "valid", "dirty", "last_use", "pending",
                 "pending_span")

    def __init__(self, nbytes: int):
        self.data = np.zeros(nbytes, dtype=np.uint8)
        self.valid = IntervalSet()
        self.dirty = IntervalSet()
        self.last_use = 0
        self.pending = None  # in-flight fill event, if any
        # Span id of the in-flight fill's prefetch span (tracing only):
        # a fault that blocks on ``pending`` records it as ``wait_on``
        # so the prefetch-issue -> install causal edge survives export.
        self.pending_span = None


@dataclass
class Chunk:
    """A page-run of elements handed to the application.

    ``data`` aliases the pcache frame: mutations hit the cache
    directly (and the run was pre-marked dirty for writing
    transactions).
    """

    start: int          # element index of data[0]
    data: np.ndarray

    def __len__(self) -> int:
        return len(self.data)


class Vector:
    """Per-process handle on a shared MegaMmap vector."""

    def __init__(self, client, shared):
        self.client = client
        self.shared = shared
        self.pcache_budget = client.system.config.pcache_size
        self.frames: Dict[int, Frame] = {}
        self.tx: Optional[Transaction] = None
        self.prefetcher = Prefetcher(self)
        self._use_seq = 0
        self._reserved = 0
        # Last-page fast path (paper III-E, Minimizing Indexing
        # Overhead): the page last accessed is checked before any
        # lookup. ``index_ops`` counts the extra integer/conditional
        # work for the §III-E overhead benchmark.
        self._last_page: Tuple[int, Optional[Frame]] = (-1, None)
        self.index_ops = 0
        self._policy_epoch_seen = shared.policy_epoch
        # Labeled-metric handles, fetched once (hot path pays only the
        # attribute add); the flat dotted counters stay for back-compat.
        _m = client.system.monitor.metrics
        self._m_faults = _m.counter(
            "pcache_faults", node=client.node, vector=shared.name)
        self._m_prefetches = _m.counter(
            "pcache_prefetches", node=client.node, vector=shared.name)
        self._m_evict_dirty = _m.counter(
            "pcache_evictions", node=client.node, kind="dirty")
        self._m_evict_clean = _m.counter(
            "pcache_evictions", node=client.node, kind="clean")
        # Object-path metric handles are created lazily on the first
        # *enabled* object operation: a run with the path disabled
        # (``object_threshold_bytes=0``) must not grow new metric
        # series, or it would no longer be bit-identical to a run that
        # never heard of objects.
        self._m_obj_reads = None
        self._m_obj_writes = None

    # -- geometry / identity ---------------------------------------------------
    @property
    def dtype(self) -> np.dtype:
        return self.shared.dtype

    @property
    def itemsize(self) -> int:
        return self.shared.itemsize

    @property
    def elems_per_page(self) -> int:
        return self.shared.elems_per_page

    @property
    def size(self) -> int:
        """Current element count (paper: "acquiring current size")."""
        return self.shared.length

    @property
    def pcache_used(self) -> int:
        """Actual pcache bytes held by frames.

        Counts real frame sizes (``_reserved``), not
        ``len(frames) * page_size``: tail pages and frames cached
        before an ``append`` grew the vector are smaller than a
        nominal page, and nominal accounting both starved the
        prefetcher of budget it actually had and evicted frames that
        fit.
        """
        return self._reserved

    # -- resource control (paper III-A) -----------------------------------------
    def bound_memory(self, nbytes: int) -> None:
        """Cap this vector's pcache DRAM (Listing 1's ``BoundMemory``)."""
        if nbytes < self.shared.page_size:
            raise VectorError(
                f"pcache bound {nbytes} below one page "
                f"({self.shared.page_size})")
        self.pcache_budget = nbytes

    def pgas(self, rank: int, nprocs: int) -> None:
        """Partition elements evenly among processes (Listing 1's
        ``Pgas``)."""
        if not 0 <= rank < nprocs:
            raise VectorError(f"bad rank {rank} of {nprocs}")
        self._rank, self._nprocs = rank, nprocs

    def local_off(self) -> int:
        rank, nprocs = self._pgas()
        base, rem = divmod(self.shared.length, nprocs)
        return rank * base + min(rank, rem)

    def local_size(self) -> int:
        rank, nprocs = self._pgas()
        base, rem = divmod(self.shared.length, nprocs)
        return base + (1 if rank < rem else 0)

    def _pgas(self):
        try:
            return self._rank, self._nprocs
        except AttributeError:
            raise VectorError("call pgas(rank, nprocs) first") from None

    # -- transactions ---------------------------------------------------------------
    def tx_begin(self, tx: Transaction):
        """Open a transaction (generator; returns ``tx``)."""
        if self.tx is not None:
            raise TransactionError(
                "a transaction is already active on this vector")
        tx.bind(self)
        new_policy = policy_for(tx)
        if new_policy is not self.shared.policy:
            yield from self._change_phase(new_policy)
        if self._policy_epoch_seen != self.shared.policy_epoch:
            # Another phase began since our last transaction: private
            # frames may be stale relative to peers' committed writes.
            yield from self.invalidate_clean_frames()
            self._policy_epoch_seen = self.shared.policy_epoch
        self.tx = tx
        # Initial acknowledgment primes prefetching before first access.
        yield from self.prefetcher.on_advance(tx)
        return tx

    def tx_end(self):
        """Commit the active transaction (generator).

        Dirty pcache data is shipped to the scache as writer
        MemoryTasks. Under asynchronous-writeback policies
        (write/append-only, local) the tasks complete in the
        background; otherwise visibility is immediate once a peer's
        read reaches the same page worker (task ordering).
        """
        if self.tx is None:
            raise TransactionError("no active transaction")
        tx, self.tx = self.tx, None
        yield from self.flush(wait=False)

    def invalidate_range(self, elem_off: int, count: int):
        """Drop pcache frames overlapping an element range (generator).

        The explicit *acquire* of a region another process may have
        modified under a LOCAL policy — e.g. ghost planes in a stencil
        exchange: invalidate, then read_range refaults fresh data from
        the scache. Dirty local bytes in the dropped frames are shipped
        first (evict semantics).
        """
        epp = self.elems_per_page
        first = elem_off // epp
        last = (elem_off + max(count, 1) - 1) // epp
        for page_idx in range(first, last + 1):
            if page_idx in self.frames:
                yield from self.evict_page(page_idx)

    def invalidate_clean_frames(self):
        """Drop pcache frames that hold no local modifications (their
        content may be stale after a phase change); dirty frames are
        flushed first, then dropped. Generator."""
        for page_idx in list(self.frames):
            yield from self.evict_page(page_idx)
        h = self.client.system.history
        if h is not None:
            # Freshness horizon: from now on this client's reads of
            # the vector refault from the scache, so they must observe
            # versions committed no earlier than this instant.
            h.on_invalidate(self)

    def _change_phase(self, new_policy: CoherencePolicy):
        """Switch coherence policy; leaving READ_ONLY invalidates every
        replica (paper III-C, Changing Phases)."""
        old = self.shared.policy
        self.shared.policy = new_policy
        self.shared.policy_epoch += 1
        if (old is CoherencePolicy.READ_ONLY_GLOBAL
                and new_policy is not CoherencePolicy.READ_ONLY_GLOBAL):
            for page_idx in sorted(self.shared.replicated_pages):
                yield from self.client.system.hermes.invalidate_replicas(
                    self.client.node, self.shared.name, page_idx)
            self.shared.replicated_pages.clear()
        self.client.system.monitor.count("coherence.phase_changes")

    # -- chunk iteration (the predicted access stream) ---------------------------------
    def next_chunk(self, max_elems: Optional[int] = None):
        """Next page-run of the active transaction (generator).

        Returns a :class:`Chunk` aliasing pcache memory, or ``None``
        when the transaction's declared accesses are exhausted. For
        writing transactions the chunk is pre-marked fully dirty; use
        element ``set`` for byte-precise dirty tracking instead.
        """
        tx = self._require_tx()
        h = self.client.system.history
        t0 = self.client.system.sim.now if h is not None else 0.0
        if tx.remaining == 0:
            # Final acknowledgment: evict/score the tail of the stream.
            if tx.tail > tx.head:
                yield from self.prefetcher.on_advance(tx)
            return None
        # Acknowledgment point: pages touched by *previous* chunks are
        # complete now — run Algorithm 1 before faulting the next page
        # (evicting the page we are about to hand out would lose the
        # caller's writes).
        if tx.tail > tx.head:
            yield from self.prefetcher.on_advance(tx)
        want = tx.remaining if max_elems is None \
            else min(max_elems, tx.remaining)
        want = min(want, self.elems_per_page)
        regions = tx.get_pages(tx.tail, want)
        region = regions[0]
        write_only = tx.writes and not tx.flags & TxFlags.READ
        frame = yield from self._fault(
            region.page_idx, (region.off, region.size),
            allocate_only=write_only)
        n_elems = region.size // self.itemsize
        tx.advance(n_elems)
        if tx.writes:
            frame.dirty.add(region.off, region.off + region.size)
            frame.valid.add(region.off, region.off + region.size)
        view = frame.data[region.off:region.off + region.size] \
            .view(self.dtype)
        start = region.page_idx * self.elems_per_page \
            + region.off // self.itemsize
        if h is not None and not tx.writes:
            # Read-only chunks are checked like read_range results.
            # Writing chunks are captured at the commit boundary
            # instead (flush/evict fragments), where the final bytes
            # are known.
            h.on_read(self, start, view, t0)
        return Chunk(start=start, data=view)

    def chunks(self):
        """Convenience driver: ``yield from vec.chunks()`` is not
        possible across chunk boundaries in generator style, so apps
        loop::

            while True:
                chunk = yield from vec.next_chunk()
                if chunk is None:
                    break
        """
        raise TransactionError(
            "use `while True: chunk = yield from vec.next_chunk()`")

    def _require_tx(self) -> Transaction:
        if self.tx is None:
            raise TransactionError(
                "memory access outside a transaction (call tx_begin)")
        return self.tx

    # -- element access (out-of-band within the tx region) --------------------------------
    def get(self, elem_idx: int):
        """Read one element (generator)."""
        self._require_tx()
        raw = yield from self.read_range(elem_idx, 1)
        return raw[0]

    def set(self, elem_idx: int, value):
        """Write one element with byte-precise dirty tracking
        (generator)."""
        tx = self._require_tx()
        if not tx.writes:
            raise TransactionError("write under a read-only transaction")
        arr = np.asarray([value], dtype=self.dtype) if not (
            isinstance(value, np.ndarray) and value.shape == (1,)) \
            else value.astype(self.dtype)
        yield from self.write_range(elem_idx, arr)

    def read_range(self, elem_off: int, count: int):
        """Read ``count`` elements starting at ``elem_off`` (generator;
        returns a private copy).

        Multi-page reads coalesce their page faults: the missing
        regions of a wave of pages ship as one batched submission
        (fault coalescing), paying one vectored RPC per owner node
        instead of one round trip per page. Collective reads and
        ``batching_enabled=False`` keep the per-page path.
        """
        self._check_range(elem_off, count)
        h = self.client.system.history
        t0 = self.client.system.sim.now if h is not None else 0.0
        out = np.empty(count, dtype=self.dtype)
        spans = list(self._page_spans(elem_off, count))
        cfg = self.client.system.config
        collective = (self.tx is not None and self.tx.is_collective
                      and not self.tx.writes)
        if not cfg.batching_enabled or len(spans) == 1 or collective:
            for page_idx, poff, n, doff in spans:
                byte_off = poff * self.itemsize
                nbytes = n * self.itemsize
                frame = yield from self._fault(page_idx,
                                               (byte_off, nbytes))
                out[doff:doff + n] = frame.data[
                    byte_off:byte_off + nbytes].view(self.dtype)
            if h is not None:
                h.on_read(self, elem_off, out, t0)
            return out
        # Wave size: the batch cap, and never more pages than fit the
        # pcache budget at once (frames of the current wave are exempt
        # from eviction, so an unbounded wave could overcommit).
        budget_pages = max(1, self.pcache_budget
                           // self.shared.page_size)
        wave_cap = max(1, min(cfg.batch_max_pages, budget_pages))
        for lo in range(0, len(spans), wave_cap):
            wave = spans[lo:lo + wave_cap]
            frames = yield from self._fault_wave(
                [(p, poff * self.itemsize, n * self.itemsize)
                 for p, poff, n, _ in wave])
            # Copy out before the next wave may evict these frames.
            for page_idx, poff, n, doff in wave:
                byte_off = poff * self.itemsize
                nbytes = n * self.itemsize
                out[doff:doff + n] = frames[page_idx].data[
                    byte_off:byte_off + nbytes].view(self.dtype)
        if h is not None:
            h.on_read(self, elem_off, out, t0)
        return out

    def write_range(self, elem_off: int, array: np.ndarray):
        """Write elements starting at ``elem_off`` (generator)."""
        array = np.ascontiguousarray(array, dtype=self.dtype).ravel()
        self._check_range(elem_off, len(array))
        for page_idx, poff, n, soff in self._page_spans(elem_off,
                                                        len(array)):
            byte_off = poff * self.itemsize
            nbytes = n * self.itemsize
            covers_all = True  # write-allocate: no read needed
            frame = yield from self._fault(page_idx, (byte_off, nbytes),
                                           allocate_only=covers_all)
            # Assign the source slice's uint8 view directly — the frame
            # assignment is the one copy; a tobytes()/frombuffer round
            # trip would materialize the bytes twice per span.
            frame.data[byte_off:byte_off + nbytes] = \
                array[soff:soff + n].view(np.uint8)
            frame.dirty.add(byte_off, byte_off + nbytes)
            frame.valid.add(byte_off, byte_off + nbytes)
        h = self.client.system.history
        if h is not None:
            h.on_write(self, elem_off, array)

    def append(self, array: np.ndarray):
        """Append elements; returns their start index (generator).

        Offset allocation is an atomic fetch-add at the vector's
        coordinator node (one small RPC round trip).
        """
        array = np.ascontiguousarray(array, dtype=self.dtype).ravel()
        # Reserve before yielding: the fetch-add is atomic.
        start = self.shared.length
        self.shared.grow(start + len(array))
        h = self.client.system.history
        if h is not None:
            h.on_append(self, start, len(array))
        coord = self.shared.coordinator_for(self.client.node)
        net = self.client.system.network
        yield from net.transfer(self.client.node, coord, 64)
        yield from net.transfer(coord, self.client.node, 64)
        yield from self.write_range(start, array)
        return start

    # -- object-granular access (DOLMA-style, sub-page objects) ------------------
    #
    # ``read_object``/``write_object`` serve small objects straight
    # from the owner node's scache as extent-sized RPCs, without ever
    # faulting a whole page. The path is gated by
    # ``object_threshold_bytes``: requests larger than the threshold —
    # and every request when the threshold is 0 — take the plain page
    # path via ``read_range``/``write_range``, bit-for-bit.
    #
    # Fetched extents are installed into pcache frames as *valid*
    # (never dirty) bytes, so the pcache doubles as an object cache at
    # extent granularity: the zipf head of a serving workload is served
    # locally after the first touch, while the misses of a whole
    # ``read_objects`` call — identical extents deduplicated — batch
    # into one vectored round trip per owner node instead of one
    # sequential page fault per lookup.
    #
    # Coherence rule (read-your-writes):
    #   * reads serve bytes that are valid in a resident pcache frame
    #     from that frame (dirty ⊆ valid, so the rank's own uncommitted
    #     page-path writes are always honoured), wait out any in-flight
    #     frame install first, and fetch only the missing extents;
    #   * fetched extents install with ``_install`` — exactly like a
    #     page fault's, preserving locally dirty bytes — never whole
    #     pages;
    #   * writes are write-through — the OBJ_WRITE ack means the owner
    #     applied (and, under replication, replicated) the bytes — and
    #     additionally patch any resident frame in place so the rank's
    #     later page-path reads see its own object writes.

    def read_object(self, elem_off: int, count: int):
        """Read one small object (``count`` elements) at object
        granularity (generator; returns a private copy).

        Above the threshold (or with the path disabled) this *is*
        ``read_range``.
        """
        nbytes = count * self.itemsize
        cfg = self.client.system.config
        if not 0 < nbytes <= cfg.object_threshold_bytes:
            return (yield from self.read_range(elem_off, count))
        self._check_range(elem_off, count)
        h = self.client.system.history
        t0 = self.client.system.sim.now if h is not None else 0.0
        out = np.empty(count, dtype=self.dtype)
        tasks: list = []
        dests: list = []
        seen: dict = {}
        exclude = tuple(p for p, _, _, _ in self._page_spans(elem_off,
                                                             count))
        tracer = self.client.system.tracer
        with tracer.span("read_object", "object", node=self.client.node,
                         vector=self.shared.name, nbytes=nbytes):
            local = yield from self._object_plan(
                elem_off, count, out.view(np.uint8), tasks, dests, seen,
                exclude)
            if tasks:
                raws = yield from self.client.submit_batch(tasks,
                                                           wait=True)
                self._object_fill(dests, raws)
            self._count_object_reads(1, nbytes, len(tasks), local)
        if h is not None:
            h.on_read(self, elem_off, out, t0)
        return out

    def read_objects(self, requests):
        """Read several small objects with one vectored submission
        (generator; returns arrays in request order).

        ``requests`` is ``[(elem_off, count), ...]``. The missing
        extents of every gated request ship as a single batched
        OBJ_READ submission — one envelope per owner node — instead of
        one round trip per object. Requests above the threshold fall
        back to ``read_range`` individually.
        """
        requests = list(requests)
        thr = self.client.system.config.object_threshold_bytes
        h = self.client.system.history
        t0 = self.client.system.sim.now if h is not None else 0.0
        outs: list = [None] * len(requests)
        tasks: list = []
        dests: list = []
        seen: dict = {}
        gated = []
        for i, (elem_off, count) in enumerate(requests):
            nbytes = count * self.itemsize
            if not 0 < nbytes <= thr:
                outs[i] = yield from self.read_range(elem_off, count)
                continue
            self._check_range(elem_off, count)
            gated.append(i)
        # Frames of one vectored read protect each other from eviction
        # while the wave is being planned (same rule as _fault_wave).
        exclude = tuple({p for i in gated
                         for p, _, _, _ in self._page_spans(*requests[i])})
        total = 0
        local = 0
        for i in gated:
            elem_off, count = requests[i]
            out = np.empty(count, dtype=self.dtype)
            outs[i] = out
            total += count * self.itemsize
            local += yield from self._object_plan(
                elem_off, count, out.view(np.uint8), tasks, dests, seen,
                exclude)
        if gated:
            tracer = self.client.system.tracer
            with tracer.span("read_objects", "object",
                             node=self.client.node,
                             vector=self.shared.name, count=len(gated),
                             nbytes=total):
                if tasks:
                    raws = yield from self.client.submit_batch(
                        tasks, wait=True)
                    self._object_fill(dests, raws)
                self._count_object_reads(len(gated), total, len(tasks),
                                         local)
            if h is not None:
                for i in gated:
                    h.on_read(self, requests[i][0], outs[i], t0)
        return outs

    def write_object(self, elem_off: int, array: np.ndarray):
        """Write one small object through to the owner's scache
        (generator).

        The ack makes the bytes globally visible (and replicated, when
        replication is on) — no dirty pcache state is left behind.
        Above the threshold (or disabled) this *is* ``write_range``.
        """
        array = np.ascontiguousarray(array, dtype=self.dtype).ravel()
        nbytes = array.nbytes
        cfg = self.client.system.config
        if not 0 < nbytes <= cfg.object_threshold_bytes:
            return (yield from self.write_range(elem_off, array))
        self._check_range(elem_off, len(array))
        h = self.client.system.history
        if h is not None:
            # Record the pending version *before* shipping: the bytes
            # may become visible to peers the moment the owner applies
            # them, and the checker must already know the version.
            h.on_write(self, elem_off, array)
        src = array.view(np.uint8)
        tasks: list = []
        tracer = self.client.system.tracer
        with tracer.span("write_object", "object",
                         node=self.client.node,
                         vector=self.shared.name, nbytes=nbytes):
            for page_idx, poff, n, soff in self._page_spans(
                    elem_off, len(array)):
                byte_off = poff * self.itemsize
                span_nbytes = n * self.itemsize
                sbase = soff * self.itemsize
                chunk = src[sbase:sbase + span_nbytes]
                frame = self._lookup(page_idx)
                if frame is not None:
                    if frame.pending is not None \
                            and not frame.pending.processed:
                        # An in-flight install would clobber the patch
                        # (_install only preserves *dirty* bytes):
                        # wait it out first.
                        yield frame.pending
                    frame.data[byte_off:byte_off + span_nbytes] = chunk
                    frame.valid.add(byte_off, byte_off + span_nbytes)
                    # Deliberately NOT marked dirty: the write-through
                    # ships the bytes now; dirty would ship them again
                    # at commit. Ranges already dirty simply carry the
                    # new value to their commit — same final bytes.
                tasks.append(MemoryTask(
                    kind=TaskKind.OBJ_WRITE,
                    vector_name=self.shared.name, page_idx=page_idx,
                    client_node=self.client.node,
                    fragments=[(byte_off, chunk.tobytes())]))
            yield from self.client.submit_batch(tasks, wait=True)
            self._count_object_writes(1, nbytes, len(tasks))
        if h is not None:
            # The ack globally orders the bytes (the owner — and under
            # replication its replica — applied them): promote exactly
            # this range in the coherence model.
            h.on_promote(self, elem_off, nbytes)

    def _object_plan(self, elem_off: int, count: int,
                     out_u8: np.ndarray, tasks: list, dests: list,
                     seen: dict, exclude=()):
        """Plan one object read: copy locally-valid bytes from pcache
        frames into ``out_u8`` and append OBJ_READ tasks + fill
        destinations for the missing extents. ``seen`` dedups identical
        extents across one vectored submission (zipf-hot keys repeat
        within a query). Generator (may allocate frames / wait on
        in-flight installs); returns the locally-served byte count."""
        local = 0
        for page_idx, poff, n, doff in self._page_spans(elem_off,
                                                        count):
            byte_off = poff * self.itemsize
            nbytes = n * self.itemsize
            dbase = doff * self.itemsize
            # Allocate (and LRU-touch) the frame like a fault would —
            # the fetched extent is installed on arrival, so the hot
            # set ends up cached without ever faulting a whole page.
            frame = yield from self._ensure_frame(
                page_idx, self.shared.page_nbytes(page_idx),
                exclude=exclude)
            if frame.pending is not None \
                    and not frame.pending.processed:
                # Read-your-writes vs in-flight page installs:
                # settle the frame before deciding what is local.
                yield frame.pending
            missing = self._missing(frame, byte_off, byte_off + nbytes)
            out_u8[dbase:dbase + nbytes] = \
                frame.data[byte_off:byte_off + nbytes]
            local += nbytes - sum(e - s for s, e in missing)
            for m_start, m_end in missing:
                dst = dbase + (m_start - byte_off)
                key = (page_idx, m_start, m_end)
                pos = seen.get(key)
                if pos is None:
                    pos = len(tasks)
                    seen[key] = pos
                    tasks.append(MemoryTask(
                        kind=TaskKind.OBJ_READ,
                        vector_name=self.shared.name, page_idx=page_idx,
                        client_node=self.client.node,
                        region=(m_start, m_end - m_start)))
                    # Only the first occurrence installs the extent.
                    dests.append((pos, out_u8, dst, m_end - m_start,
                                  frame, m_start))
                else:
                    self.client.system.monitor.count("object.dedup_hits")
                    dests.append((pos, out_u8, dst, m_end - m_start,
                                  None, 0))
        return local

    def _object_fill(self, dests, raws) -> None:
        """Install fetched extents into their frames (valid, never
        dirty — ``_install`` preserves local dirty bytes) and copy them
        into the output slots."""
        for pos, buf, dst, size, frame, m_start in dests:
            raw = raws[pos]
            data = raw if isinstance(raw, np.ndarray) \
                else np.frombuffer(raw, dtype=np.uint8)
            if frame is not None:
                # Harmless if the frame was evicted mid-flight: the
                # orphaned buffer is garbage-collected with the frame.
                self._install(frame, m_start, data)
            buf[dst:dst + size] = data

    def _object_metrics(self):
        if self._m_obj_reads is None:
            _m = self.client.system.monitor.metrics
            self._m_obj_reads = _m.counter(
                "object_ops", node=self.client.node, kind="read")
            self._m_obj_writes = _m.counter(
                "object_ops", node=self.client.node, kind="write")
        return self._m_obj_reads, self._m_obj_writes

    def _count_object_reads(self, n: int, nbytes: int, remote: int,
                            local: int) -> None:
        mon = self.client.system.monitor
        mon.count("object.reads", n)
        mon.count("object.read_bytes", nbytes)
        if remote:
            mon.count("object.remote_tasks", remote)
        if local:
            mon.count("object.local_hit_bytes", local)
        self._object_metrics()[0].inc(n)

    def _count_object_writes(self, n: int, nbytes: int,
                             remote: int) -> None:
        mon = self.client.system.monitor
        mon.count("object.writes", n)
        mon.count("object.write_bytes", nbytes)
        if remote:
            mon.count("object.remote_tasks", remote)
        self._object_metrics()[1].inc(n)

    def _check_range(self, elem_off: int, count: int) -> None:
        if elem_off < 0 or count < 0 \
                or elem_off + count > self.shared.length:
            raise VectorError(
                f"element range [{elem_off}, {elem_off + count}) outside "
                f"vector of {self.shared.length}")

    def _page_spans(self, elem_off: int, count: int):
        """Split an element range into (page, in-page elem off, n,
        dest off) spans."""
        epp = self.elems_per_page
        done = 0
        while done < count:
            elem = elem_off + done
            page_idx = elem // epp
            poff = elem - page_idx * epp
            n = min(count - done, epp - poff)
            yield page_idx, poff, n, done
            done += n

    # -- fault / evict / prefetch -------------------------------------------------------
    def _touch(self, page_idx: int, frame: Frame) -> None:
        self._use_seq += 1
        frame.last_use = self._use_seq
        self._last_page = (page_idx, frame)

    def _lookup(self, page_idx: int) -> Optional[Frame]:
        # Last-page fast path first (III-E): two integer ops + branch.
        self.index_ops += 2
        last_idx, last_frame = self._last_page
        if last_idx == page_idx:
            return last_frame
        return self.frames.get(page_idx)

    def _fault(self, page_idx: int, region: Tuple[int, int],
               allocate_only: bool = False, score: float = 1.0):
        """Ensure ``region`` of ``page_idx`` is valid in the pcache.

        Generator; returns the Frame. ``allocate_only`` skips the
        scache read (write-allocate for fully overwritten ranges).
        """
        off, size = region
        page_nbytes = self.shared.page_nbytes(page_idx)
        if off < 0 or off + size > page_nbytes:
            raise VectorError(
                f"region [{off}, {off + size}) outside page of "
                f"{page_nbytes} bytes")
        tracer = self.client.system.tracer
        with tracer.span("fault", "pcache", node=self.client.node,
                         vector=self.shared.name, page=page_idx,
                         nbytes=size) as sp:
            frame = yield from self._fault_timed(
                page_idx, off, size, page_nbytes, allocate_only, sp)
        return frame

    def _ensure_frame(self, page_idx: int, page_nbytes: int,
                      exclude: Tuple[int, ...] = ()):
        """Allocate (or grow) the pcache frame for ``page_idx``,
        evicting LRU frames as needed. Generator; returns the Frame."""
        frame = self._lookup(page_idx)
        if frame is None:
            yield from self._make_room(page_nbytes, exclude=exclude)
            frame = Frame(page_nbytes)
            self.frames[page_idx] = frame
            self.client.reserve_pcache(page_nbytes)
            self._reserved += page_nbytes
        elif len(frame.data) < page_nbytes:
            # The vector grew (append): extend the cached frame —
            # making room for the delta first, exactly like a fresh
            # allocation (the growing frame itself is exempt from
            # eviction).
            delta = page_nbytes - len(frame.data)
            yield from self._make_room(
                delta, exclude=(page_idx,) + tuple(exclude))
            grown = np.zeros(page_nbytes, dtype=np.uint8)
            grown[:len(frame.data)] = frame.data
            frame.data = grown
            self.client.reserve_pcache(delta)
            self._reserved += delta
        self._touch(page_idx, frame)
        return frame

    def _fault_timed(self, page_idx: int, off: int, size: int,
                     page_nbytes: int, allocate_only: bool, sp):
        frame = yield from self._ensure_frame(page_idx, page_nbytes)
        if frame.pending is not None and not frame.pending.processed:
            yield frame.pending
            if frame.pending_span is not None \
                    and self.client.system.tracer.enabled:
                # The fault blocked on an in-flight prefetch install;
                # read the fill's span id only *after* the wait (the
                # fill process assigns it when its span opens).
                sp.attrs.setdefault("wait_on", []).append(
                    frame.pending_span)
        if allocate_only:
            return frame
        missing = self._missing(frame, off, off + size)
        if missing:
            sp["miss_bytes"] = sum(e - s for s, e in missing)
        collective = (self.tx is not None and self.tx.is_collective
                      and not self.tx.writes)
        for m_start, m_end in missing:
            self.client.system.monitor.count("pcache.faults")
            self._m_faults.inc()
            task = MemoryTask(
                kind=TaskKind.READ, vector_name=self.shared.name,
                page_idx=page_idx, client_node=self.client.node,
                region=(m_start, m_end - m_start))
            if collective and (m_start, m_end) == (0, page_nbytes):
                # Tree-based fan-out: one scache fetch, forwarded
                # process-to-process (paper III-C, Collective).
                raw = yield from self.client.system.collective_read(
                    self.shared, page_idx, (m_start, m_end),
                    self.client.node,
                    lambda t=task: self.client.submit(t, wait=True))
            else:
                raw = yield from self.client.submit(task, wait=True)
            # Do not clobber locally dirty bytes with stale data.
            self._install(frame, m_start, raw)
        return frame

    def _missing(self, frame: Frame, start: int, end: int):
        missing = IntervalSet([(start, end)])
        for v_start, v_end in frame.valid:
            missing.remove(v_start, v_end)
        return list(missing)

    def _install(self, frame: Frame, start: int, raw) -> None:
        """Copy fetched bytes into a frame (the ownership boundary).

        ``raw`` may be ``bytes``, a ``memoryview``, or a uint8 ndarray
        view — the data plane ships views; the frame install here is
        where the one real copy happens.
        """
        data = raw if isinstance(raw, np.ndarray) \
            else np.frombuffer(raw, dtype=np.uint8)
        end = start + len(data)
        # Locally dirty bytes are newer than anything the scache holds:
        # save and restore them around the install (matters when an
        # async prefetch completes after local writes to the frame).
        saved = [(s, e, frame.data[s:e].copy())
                 for s, e in frame.dirty.intersect(start, end)]
        frame.data[start:end] = data
        for s, e, buf in saved:
            frame.data[s:e] = buf
        frame.valid.add(start, end)
        self.client.system.monitor.count("bytes.copied", len(data))

    def _fault_wave(self, regions):
        """Fault one wave of page regions with a single batched READ
        submission (generator; returns {page_idx: Frame}).

        ``regions`` is [(page_idx, byte_off, nbytes), ...]. Frames of
        the wave are protected from evicting each other; the caller
        must copy data out before starting another wave.
        """
        exclude = tuple(p for p, _, _ in regions)
        frames: Dict[int, Frame] = {}
        tasks = []
        installs = []
        tracer = self.client.system.tracer
        for page_idx, off, size in regions:
            page_nbytes = self.shared.page_nbytes(page_idx)
            if off < 0 or off + size > page_nbytes:
                raise VectorError(
                    f"region [{off}, {off + size}) outside page of "
                    f"{page_nbytes} bytes")
            frame = yield from self._ensure_frame(page_idx, page_nbytes,
                                                  exclude=exclude)
            if frame.pending is not None and not frame.pending.processed:
                with tracer.span("wait_install", "pcache",
                                 node=self.client.node,
                                 vector=self.shared.name,
                                 page=page_idx) as wsp:
                    yield frame.pending
                    if frame.pending_span is not None \
                            and tracer.enabled:
                        wsp.attrs.setdefault("wait_on", []).append(
                            frame.pending_span)
            frames[page_idx] = frame
            for m_start, m_end in self._missing(frame, off, off + size):
                self.client.system.monitor.count("pcache.faults")
                self._m_faults.inc()
                tasks.append(MemoryTask(
                    kind=TaskKind.READ, vector_name=self.shared.name,
                    page_idx=page_idx, client_node=self.client.node,
                    region=(m_start, m_end - m_start)))
                installs.append((frame, m_start))
        if tasks:
            with tracer.span("fault_batch", "pcache",
                             node=self.client.node,
                             vector=self.shared.name, count=len(tasks),
                             nbytes=sum(t.region[1] for t in tasks)):
                raws = yield from self.client.submit_batch(tasks,
                                                           wait=True)
            for (frame, m_start), raw in zip(installs, raws):
                # Do not clobber locally dirty bytes with stale data.
                self._install(frame, m_start, raw)
        return frames

    def _make_room(self, nbytes: Optional[int] = None,
                   exclude: Tuple[int, ...] = ()):
        """Evict LRU frames until ``nbytes`` more fit the budget.

        ``nbytes`` defaults to a nominal page. ``exclude`` protects
        frames from eviction (the frame currently being grown must not
        be its own victim). Generator.
        """
        if nbytes is None:
            nbytes = self.shared.page_size
        # A tenant over its cluster-wide pcache quota self-evicts down
        # toward it (soft enforcement: other handles' frames are out of
        # reach, so the loop stops when this handle has nothing left).
        while (self.pcache_used + nbytes > self.pcache_budget
               or self.client.pcache_over_quota(nbytes)):
            candidates = [p for p in self.frames if p not in exclude]
            if not candidates:
                break
            victim = min(candidates,
                         key=lambda p: self.frames[p].last_use)
            yield from self.evict_page(victim)

    def evict_page(self, page_idx: int):
        """Drop a pcache frame, shipping dirty fragments to the scache.

        The application only pays the memory-copy cost; the writer
        MemoryTask runs asynchronously (paper III-B, Lifecycle of
        Modified Data). Generator.
        """
        frame = self.frames.pop(page_idx, None)
        if frame is None:
            return
        if self._last_page[0] == page_idx:
            self._last_page = (-1, None)
        tracer = self.client.system.tracer
        with tracer.span("evict", "pcache", node=self.client.node,
                         vector=self.shared.name, page=page_idx,
                         dirty_bytes=frame.dirty.total) as esp:
            if frame.pending is not None and not frame.pending.processed:
                yield frame.pending
                if frame.pending_span is not None and tracer.enabled:
                    esp.attrs.setdefault("wait_on", []).append(
                        frame.pending_span)
            if frame.dirty:
                # The frame was popped from self.frames above, so the
                # WRITE task owns it exclusively: ship ndarray views of
                # the dirty ranges instead of bytes copies. (The
                # simulated memcpy cost below is unchanged — only the
                # host-side copy disappears.)
                fragments = [
                    (start, frame.data[start:end])
                    for start, end in frame.dirty
                ]
                h = self.client.system.history
                if h is not None:
                    h.on_commit(self, page_idx, fragments)
                nbytes = sum(len(d) for _, d in fragments)
                # Cost of the copy out of the pcache.
                yield self.client.system.sim.timeout(
                    nbytes / self.client.system.memcpy_bw)
                task = MemoryTask(
                    kind=TaskKind.WRITE, vector_name=self.shared.name,
                    page_idx=page_idx, client_node=self.client.node,
                    fragments=fragments)
                yield from self.client.submit(task, wait=False)
                self.client.system.monitor.count("pcache.evictions_dirty")
                self._m_evict_dirty.inc()
            else:
                self.client.system.monitor.count("pcache.evictions_clean")
                self._m_evict_clean.inc()
        self.client.unreserve_pcache(len(frame.data))
        self._reserved -= len(frame.data)

    def prefetch_page(self, page_idx: int) -> None:
        """Start an asynchronous pcache fill (non-blocking)."""
        self.prefetch_pages([page_idx])

    def prefetch_pages(self, pages) -> None:
        """Start asynchronous pcache fills for several pages
        (non-blocking).

        Admission is per page — already-resident, out-of-range, and
        over-budget pages are skipped. With batching enabled the
        admitted pages ship as one batched READ submission (one fill
        process, one vectored RPC per owner); otherwise each page gets
        its own fill process, as before.
        """
        admitted = []
        for page_idx in pages:
            if page_idx >= self.shared.n_pages \
                    or page_idx in self.frames:
                continue
            # Budget-check the bytes this page actually occupies: the
            # tail page is smaller than a nominal page, and testing
            # with ``page_size`` both refused prefetches that fit and
            # (were a frame ever larger) would over-commit the budget.
            page_nbytes = self.shared.page_nbytes(page_idx)
            if self.pcache_used + page_nbytes > self.pcache_budget \
                    or self.client.pcache_over_quota(page_nbytes):
                continue
            frame = Frame(page_nbytes)
            self.frames[page_idx] = frame
            self.client.reserve_pcache(page_nbytes)
            self._reserved += page_nbytes
            self._touch(page_idx, frame)
            task = MemoryTask(
                kind=TaskKind.READ, vector_name=self.shared.name,
                page_idx=page_idx, client_node=self.client.node,
                region=(0, page_nbytes))
            admitted.append((page_idx, frame, task, page_nbytes))
        if not admitted:
            return
        cfg = self.client.system.config
        # Causal edge: the fill span (which runs in its own process)
        # names the span that *issued* the read-ahead as its cause.
        issue_ctx = self.client.system.tracer.current_span_id()
        if not cfg.batching_enabled or len(admitted) == 1:
            for page_idx, frame, task, page_nbytes in admitted:
                self._spawn_fill(page_idx, frame, task, page_nbytes,
                                 issue_ctx)
            return

        def fill_batch():
            tracer = self.client.system.tracer
            causal = {"cause": issue_ctx} if issue_ctx is not None \
                else {}
            with tracer.span("prefetch_batch", "pcache",
                             node=self.client.node,
                             vector=self.shared.name,
                             count=len(admitted),
                             nbytes=sum(n for _, _, _, n in admitted),
                             **causal) as bsp:
                if tracer.enabled:
                    for _p, fr, _t, _n in admitted:
                        fr.pending_span = bsp.span_id
                raws = yield from self.client.submit_batch(
                    [t for _, _, t, _ in admitted], wait=True)
                for (page_idx, frame, _t, _n), raw in zip(admitted,
                                                          raws):
                    if self.frames.get(page_idx) is frame:
                        self._install(frame, 0, raw)
                    frame.pending = None
                    self.client.system.monitor.count("pcache.prefetches")
                    self._m_prefetches.inc()

        proc = self.client.system.sim.process(
            fill_batch(),
            name=f"prefetch {self.shared.name}x{len(admitted)}")
        for _page_idx, frame, _task, _nbytes in admitted:
            frame.pending = proc

    def _spawn_fill(self, page_idx: int, frame: Frame,
                    task: MemoryTask, page_nbytes: int,
                    issue_ctx: Optional[int] = None) -> None:
        def fill():
            tracer = self.client.system.tracer
            causal = {"cause": issue_ctx} if issue_ctx is not None \
                else {}
            with tracer.span("prefetch", "pcache",
                             node=self.client.node,
                             vector=self.shared.name, page=page_idx,
                             nbytes=page_nbytes, **causal) as fsp:
                if tracer.enabled:
                    frame.pending_span = fsp.span_id
                raw = yield from self.client.submit(task, wait=True)
                if page_idx in self.frames \
                        and self.frames[page_idx] is frame:
                    self._install(frame, 0, raw)
                frame.pending = None
                self.client.system.monitor.count("pcache.prefetches")
                self._m_prefetches.inc()

        frame.pending = self.client.system.sim.process(
            fill(), name=f"prefetch {self.shared.name}[{page_idx}]")

    # -- flushing / persistence -------------------------------------------------------
    def flush(self, wait: bool = True):
        """Ship all dirty pcache fragments to the scache (generator).

        ``wait=True`` additionally blocks until the writer tasks have
        executed (visibility to every process guaranteed regardless of
        worker queueing).
        """
        tasks = []
        h = self.client.system.history
        for page_idx in sorted(self.frames):
            frame = self.frames[page_idx]
            if not frame.dirty:
                continue
            # Unlike evict_page, the frame stays resident and writable
            # after a flush: the fragments MUST be copies, or the app
            # could mutate them before the async WRITE task runs.
            fragments = [
                (start, frame.data[start:end].tobytes())
                for start, end in frame.dirty
            ]
            if h is not None:
                h.on_commit(self, page_idx, fragments)
            nbytes = sum(len(d) for _, d in fragments)
            self.client.system.monitor.count("bytes.copied", nbytes)
            yield self.client.system.sim.timeout(
                nbytes / self.client.system.memcpy_bw)
            tasks.append(MemoryTask(
                kind=TaskKind.WRITE, vector_name=self.shared.name,
                page_idx=page_idx, client_node=self.client.node,
                fragments=fragments))
            frame.dirty.clear()
        if tasks:
            # One batched submission per owner node (degrades to
            # per-task submits when batching is disabled).
            yield from self.client.submit_batch(tasks, wait=False)
        dur = self.client.system.durability
        if wait or dur.enabled:
            yield from self.client.drain()
        if dur.enabled:
            # The flush is the transaction barrier: the bytes it
            # promotes to globally-visible become durable here, before
            # the commit point is recorded.
            yield from dur.commit_barrier()
        if h is not None:
            # Commit point: everything this client has shipped so far
            # (including earlier async evictions) is ordered ahead of
            # any later read at the page workers.
            h.on_flush(self)

    def persist(self):
        """Flush pcache + stage every dirty scache page to the backend
        (generator). The real backing file is bit-exact afterwards."""
        yield from self.flush(wait=True)
        yield from self.client.system.stager.persist(
            self.shared, self.client.node)

    def destroy(self, drop: bool = False):
        """Explicitly destroy the shared vector (paper III-A: vectors
        outlive their handles; destruction is explicit). Nonvolatile
        data is persisted first unless ``drop``. Generator."""
        if not drop and not self.shared.volatile:
            yield from self.persist()
        else:
            yield from self.flush(wait=True)
        for page_idx in list(self.frames):
            frame = self.frames.pop(page_idx)
            self.client.unreserve_pcache(len(frame.data))
            self._reserved -= len(frame.data)
        self._last_page = (-1, None)
        for info in list(self.client.system.hermes.mdm.list_bucket(
                self.shared.name)):
            task = MemoryTask(
                kind=TaskKind.DELETE, vector_name=self.shared.name,
                page_idx=info.key, client_node=self.client.node)
            yield from self.client.submit(task, wait=True)
        self.shared.destroyed = True
        self.client.system.vectors.pop(self.shared.name, None)
