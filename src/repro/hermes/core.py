"""The Hermes facade: timed blob put/get/move over the cluster DMSH."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.hermes.blob import BlobInfo, BlobNotFound
from repro.hermes.dpe import MinimizeIoTime, PlacementError, PlacementPolicy
from repro.hermes.mdm import MetadataManager
from repro.net.fabric import Network
from repro.sim import Lock, Monitor, Simulator
from repro.sim.trace import NOOP_TRACER
from repro.storage.device import Device
from repro.storage.dmsh import DMSH


def _as_payload(data):
    """Normalize a put payload to a zero-copy bytes-like object.

    ``bytes``/``memoryview`` pass through untouched and ndarrays become
    flat uint8 views (so ``len()`` equals the byte count) — the single
    persist copy happens in the destination :class:`Device`, not here.
    Callers passing a view or ndarray hand over ownership: the buffer
    must not be mutated while the put is in flight (the pcache
    guarantees this by only shipping views of frames it has dropped).
    A ``bytearray`` is defensively copied, as before, since it carries
    no such ownership contract.
    """
    if isinstance(data, np.ndarray):
        if data.dtype == np.uint8 and data.ndim == 1:
            return data
        return np.ascontiguousarray(data).reshape(-1).view(np.uint8)
    if isinstance(data, bytearray):
        return bytes(data)
    return data


class Hermes:
    """Hierarchical buffering over one DMSH per node.

    All data-path methods are generators (timed). Blob content is real:
    what goes in comes out bit-exact, wherever the organizer has moved
    it meanwhile.
    """

    def __init__(self, sim: Simulator, network: Network, dmshs: List[DMSH],
                 policy: Optional[PlacementPolicy] = None,
                 monitor: Optional[Monitor] = None):
        if len(dmshs) > network.n_nodes:
            raise ValueError("more DMSHs than network nodes")
        self.sim = sim
        self.network = network
        self.dmshs = dmshs
        self.policy = policy or MinimizeIoTime()
        self.monitor = monitor
        #: Span tracer; the embedding system installs its own.
        self.tracer = NOOP_TRACER
        self.mdm = MetadataManager(sim, network, len(dmshs))
        # Per-blob locks serialize mutations (move vs move, move vs
        # partial update); reads take them too so a get never observes
        # a blob mid-relocation.
        self._locks: dict = {}
        #: Optional generator callback ``evictor(node, nbytes) -> bool``
        #: installed by the embedding system: drop clean (persisted)
        #: blobs to free capacity, like the OS page cache dropping
        #: clean pages. Consulted as placement's last resort.
        self.evictor = None
        #: Tenancy hooks (all optional, installed by a QuotaManager).
        #: ``accountant(bucket, node, tier, delta_bytes)`` — untimed
        #: callback fired when the authoritative copy of a blob is
        #: created (+), destroyed (−) or relocated (−old, +new), so an
        #: external owner map can keep per-tenant byte ledgers.
        #: Replicas are deliberately unaccounted: they are redundant
        #: copies the system may drop at any time.
        self.accountant = None
        #: ``admission(node, bucket, nbytes) -> int`` — minimum tier
        #: index new placements of ``bucket`` may use on ``node``. A
        #: tenant over its fast-memory quota gets floor 1: its blobs
        #: spill to the next tier instead of demoting other tenants'
        #: hot pages out of DRAM.
        self.admission = None
        #: ``read_hook(bucket, tier, nbytes)`` — untimed callback per
        #: authoritative-copy read, for per-tenant tier hit ratios.
        self.read_hook = None

    def _account(self, bucket, node, tier, delta) -> None:
        if self.accountant is not None:
            self.accountant(bucket, node, tier, delta)

    def _admission_floor(self, node: int, bucket, nbytes: int) -> int:
        if self.admission is None or bucket is None:
            return 0
        return self.admission(node, bucket, nbytes)

    def _lock(self, bucket: str, key) -> Lock:
        lk = self._locks.get((bucket, key))
        if lk is None:
            lk = self._locks[(bucket, key)] = Lock(self.sim)
        return lk

    # -- placement helpers ---------------------------------------------------
    def _device(self, node: int, tier: str) -> Device:
        return self.dmshs[node].tier(tier)

    def _place(self, node: int, nbytes: int, score: float,
               exclude: Optional[set] = None, bucket=None):
        """Choose a device for a new blob. Generator.

        Order of attempts (paper III-D): (1) the policy's ideal tier if
        it has room; (2) demote strictly colder residents out of the
        ideal tier; (3) the next deeper tier with room; (4) demotion
        cascade anywhere; else :class:`PlacementError`. Devices named
        in ``exclude`` are skipped (capacity-race victims). The
        tenancy ``admission`` hook may raise the starting tier index —
        tiers above the floor are never attempted (and never demoted
        against), so an over-quota tenant spills instead of evicting.
        """
        exclude = exclude or set()
        dmsh = self.dmshs[node]
        idx = self.policy.ideal_index(dmsh, nbytes, score)
        floor = self._admission_floor(node, bucket, nbytes)
        if floor > idx:
            idx = min(floor, len(dmsh.tiers) - 1)
        ideal = dmsh.tiers[idx]
        if ideal.name not in exclude:
            if ideal.fits(nbytes):
                return ideal
            freed = yield from self._demote_colder(node, idx, nbytes,
                                                   score)
            if freed:
                return ideal
        for dev in dmsh.tiers[idx + 1:]:
            if dev.name not in exclude and dev.fits(nbytes):
                return dev
        # Last resort: cascade demotions from the ideal tier downward.
        for j in range(idx, len(dmsh.tiers)):
            if dmsh.tiers[j].name in exclude:
                continue
            freed = yield from self._demote_colder(node, j, nbytes, score)
            if freed:
                return dmsh.tiers[j]
        # Very last resort: drop clean (already persisted) blobs.
        if self.evictor is not None:
            freed = yield from self.evictor(node, nbytes)
            if freed:
                if floor > 0:
                    dev = None
                    for cand in dmsh.tiers[floor:]:
                        if cand.fits(nbytes):
                            dev = cand
                            break
                else:
                    dev = dmsh.fastest_with_room(nbytes)
                if dev is not None and dev.name not in exclude:
                    return dev
        raise PlacementError(
            f"node {node}: no tier with {nbytes} bytes free "
            f"(composition {dmsh.describe()})")

    def _put_with_retry(self, node: int, key, data, score: float,
                        bucket=None):
        """Place and store, retrying when a concurrent writer consumed
        the chosen tier's capacity while our transfer was queued. A
        tier that loses twice is excluded (a churning near-full tier
        must not starve the put when deeper tiers have room).
        Generator; returns the device that accepted the blob."""
        from repro.storage.device import DeviceFullError
        losses: dict = {}
        exclude: set = set()
        for _ in range(4 * len(self.dmshs[node].tiers) + 4):
            dev = yield from self._place(node, len(data), score,
                                         exclude=exclude, bucket=bucket)
            try:
                yield from dev.put(key, data)
                return dev
            except DeviceFullError:
                losses[dev.name] = losses.get(dev.name, 0) + 1
                if losses[dev.name] >= 2:
                    exclude.add(dev.name)
                continue
        raise PlacementError(
            f"node {node}: placement kept losing capacity races for "
            f"{len(data)} bytes")

    def _demote_colder(self, node: int, tier_idx: int, nbytes: int,
                       score: float):
        """Demote strictly colder blobs out of tier ``tier_idx`` until
        ``nbytes`` fit there. Generator; returns True on success."""
        dmsh = self.dmshs[node]
        dev = dmsh.tiers[tier_idx]
        residents = sorted(
            (info for info in self.mdm.all_blobs()
             if info.node == node and info.tier == dev.spec.kind
             and info.score < score),
            key=lambda i: i.score)
        if dev.free + sum(i.nbytes for i in residents) < nbytes:
            return False
        from repro.storage.device import DeviceFullError
        for info in residents:
            if dev.fits(nbytes):
                break
            lower = dmsh.slower_than(dev)
            while lower is not None and not lower.fits(info.nbytes):
                lower = dmsh.slower_than(lower)
            if lower is None:
                break
            try:
                yield from self.move(info.bucket, info.key, node,
                                     lower.spec.kind)
            except (BlobNotFound, DeviceFullError):
                continue  # blob vanished or lost a race; try the next
        return dev.fits(nbytes)

    # -- data path --------------------------------------------------------------
    def put(self, client_node: int, bucket: str, key, data,
            score: float = 1.0, target_node: Optional[int] = None):
        """Store/replace a blob; returns its :class:`BlobInfo`."""
        data = _as_payload(data)
        node = client_node if target_node is None else target_node
        lock = self._lock(bucket, key)
        yield lock.acquire()
        try:
            return (yield from self._put(client_node, bucket, key, data,
                                         score, node))
        finally:
            lock.release()

    def _put(self, client_node, bucket, key, data, score, node):
        info = yield from self.mdm.try_get(client_node, bucket, key)
        yield from self.network.transfer(client_node, node, len(data))
        if info is not None and info.node == node \
                and info.nbytes == len(data):
            # In-place update of the authoritative copy.
            dev = self._device(info.node, info.tier)
            yield from dev.put((bucket, key), data)
            info.score = max(info.score, score)
            return info
        if info is not None:
            # Remove the stale entry entirely so concurrent placement
            # sweeps cannot pick it as a demotion candidate.
            yield from self.mdm.delete(client_node, bucket, key)
            yield from self._drop_all_copies(info)
        dev = yield from self._put_with_retry(node, (bucket, key), data,
                                              score, bucket=bucket)
        info = BlobInfo(bucket=bucket, key=key, node=node,
                        tier=dev.spec.kind, nbytes=len(data), score=score)
        self._account(bucket, node, dev.spec.kind, len(data))
        yield from self.mdm.put(client_node, info)
        if self.monitor is not None:
            self.monitor.count("hermes.puts")
            self.monitor.metrics.counter(
                "hermes_puts", node=node, tier=dev.spec.kind).inc()
        return info

    def restore_blob(self, node: int, bucket: str, key, data,
                     score: float = 0.5):
        """Crash-recovery re-registration of a replayed blob.

        Generator; returns True when ``data`` was installed and the
        MDM entry re-registered, False when a *live* copy already
        exists (replica promotion beat us, or a concurrent
        ``recover_page`` / second recovery pass already restored it) —
        the idempotence that makes crash-during-recovery safe. The
        liveness re-check runs under the per-blob lock so recovery
        never clobbers a write that landed after the restart.
        """
        data = _as_payload(data)
        lock = self._lock(bucket, key)
        yield lock.acquire()
        try:
            info = yield from self.mdm.try_get(node, bucket, key)
            if info is not None and info.node >= 0:
                dev = self._device(info.node, info.tier)
                if (bucket, key) in dev:
                    return False  # a live copy exists; keep it
            if info is not None:
                # Dead entry (primary lost with no promoted replica):
                # clear it and any stale copies before re-placing.
                yield from self.mdm.delete(node, bucket, key)
                yield from self._drop_all_copies(info)
            dev = yield from self._put_with_retry(node, (bucket, key),
                                                  data, score,
                                                  bucket=bucket)
            info = BlobInfo(bucket=bucket, key=key, node=node,
                            tier=dev.spec.kind, nbytes=len(data),
                            score=score)
            self._account(bucket, node, dev.spec.kind, len(data))
            yield from self.mdm.put(node, info)
        finally:
            lock.release()
        if self.monitor is not None:
            self.monitor.count("hermes.restores")
            self.monitor.metrics.counter(
                "hermes_restores", node=node, tier=dev.spec.kind).inc()
        return True

    def put_many(self, client_node: int, bucket: str, items,
                 score: float = 1.0):
        """Vectored whole-blob store (the batched write path's data
        plane).

        ``items`` is an iterable of ``(key, data, target_node)``. Each
        blob is placed on its device individually (the device time is
        real either way), but the payloads cross the network in **one
        transfer per destination node** and the metadata lookups and
        publishes go out as one batched RPC per owner shard instead of
        one round trip per blob. Generator; returns ``{key: BlobInfo}``.
        """
        items = [(key, _as_payload(data), node)
                 for key, data, node in items]
        if not items:
            return {}
        # One vectored metadata lookup round for the whole batch; the
        # authoritative per-blob re-checks under the locks below are
        # untimed — their wire cost is folded into this round.
        yield from self.mdm.try_get_many(client_node, bucket,
                                         [k for k, _, _ in items])
        by_dst: dict = {}
        for _key, data, node in items:
            by_dst[node] = by_dst.get(node, 0) + len(data)
        for node, nbytes in by_dst.items():
            yield from self.network.transfer(client_node, node, nbytes)
        out = {}
        new_infos = []
        for key, data, node in items:
            lock = self._lock(bucket, key)
            yield lock.acquire()
            try:
                info = self.mdm.peek(bucket, key)
                if info is not None and info.node == node \
                        and info.nbytes == len(data):
                    # In-place update of the authoritative copy.
                    dev = self._device(info.node, info.tier)
                    yield from dev.put((bucket, key), data)
                    info.score = max(info.score, score)
                    out[key] = info
                    continue
                if info is not None:
                    yield from self.mdm.delete(client_node, bucket, key)
                    yield from self._drop_all_copies(info)
                dev = yield from self._put_with_retry(
                    node, (bucket, key), data, score, bucket=bucket)
                info = BlobInfo(bucket=bucket, key=key, node=node,
                                tier=dev.spec.kind, nbytes=len(data),
                                score=score)
                self._account(bucket, node, dev.spec.kind, len(data))
                new_infos.append(info)
                out[key] = info
                if self.monitor is not None:
                    self.monitor.count("hermes.puts")
                    self.monitor.metrics.counter(
                        "hermes_puts", node=node,
                        tier=dev.spec.kind).inc()
            finally:
                lock.release()
        if new_infos:
            yield from self.mdm.put_many(client_node, new_infos)
        if self.monitor is not None:
            self.monitor.count("hermes.vectored_puts")
        return out

    def put_partial(self, client_node: int, bucket: str, key,
                    offset: int, data):
        """Update a byte range inside an existing blob (partial paging:
        only the modified fragment crosses the network)."""
        data = _as_payload(data)
        lock = self._lock(bucket, key)
        yield lock.acquire()
        try:
            return (yield from self._put_partial(client_node, bucket, key,
                                                 offset, data))
        finally:
            lock.release()

    def _put_partial(self, client_node, bucket, key, offset, data):
        info = yield from self.mdm.get(client_node, bucket, key)
        yield from self.network.transfer(client_node, info.node, len(data))
        dev = self._device(info.node, info.tier)
        yield from dev.put_range((bucket, key), offset, data)
        # Replicas are stale now; partial writes invalidate them.
        yield from self.invalidate_replicas(client_node, bucket, key)
        return info

    def get(self, client_node: int, bucket: str, key):
        """Fetch a whole blob, preferring a same-node copy."""
        lock = self._lock(bucket, key)
        yield lock.acquire()
        try:
            return (yield from self._get(client_node, bucket, key))
        finally:
            lock.release()

    def _get(self, client_node, bucket, key):
        info = yield from self.mdm.get(client_node, bucket, key)
        node, tier = self._live_copy(info, client_node)
        dev = self._device(node, tier)
        raw = yield from dev.get((bucket, key))
        yield from self.network.transfer(node, client_node, len(raw))
        if self.read_hook is not None:
            self.read_hook(bucket, tier, len(raw))
        if self.monitor is not None:
            self.monitor.count("hermes.gets")
            self.monitor.metrics.counter(
                "hermes_gets", node=node, tier=tier).inc()
        return raw

    def get_many(self, client_node: int, bucket: str, keys):
        """Vectored whole-blob fetch (the batched read path's data
        plane).

        Each blob is read from its device individually (the device
        time is real either way), but the payloads travel to
        ``client_node`` in **one network transfer per source node**
        instead of one per blob — the transfer batching that makes
        multi-page scache reads cheap. Generator; returns
        ``{key: bytes}``.
        """
        keys = list(keys)
        # Warm the client's metadata cache with one batched RPC per
        # owner shard; the per-key lookups below then hit the cache.
        yield from self.mdm.try_get_many(client_node, bucket, keys)
        out = {}
        by_src: dict = {}
        for key in keys:
            lock = self._lock(bucket, key)
            yield lock.acquire()
            try:
                info = yield from self.mdm.get(client_node, bucket, key)
                node, tier = self._live_copy(info, client_node)
                dev = self._device(node, tier)
                raw = yield from dev.get((bucket, key))
            finally:
                lock.release()
            out[key] = raw
            by_src[node] = by_src.get(node, 0) + len(raw)
            if self.read_hook is not None:
                self.read_hook(bucket, tier, len(raw))
            if self.monitor is not None:
                self.monitor.count("hermes.gets")
                self.monitor.metrics.counter(
                    "hermes_gets", node=node, tier=tier).inc()
        for node, nbytes in by_src.items():
            yield from self.network.transfer(node, client_node, nbytes)
        if self.monitor is not None and out:
            self.monitor.count("hermes.vectored_gets")
        return out

    def get_partial(self, client_node: int, bucket: str, key,
                    offset: int, nbytes: int):
        lock = self._lock(bucket, key)
        yield lock.acquire()
        try:
            return (yield from self._get_partial(client_node, bucket, key,
                                                 offset, nbytes))
        finally:
            lock.release()

    def _get_partial(self, client_node, bucket, key, offset, nbytes):
        info = yield from self.mdm.get(client_node, bucket, key)
        node, tier = self._live_copy(info, client_node)
        dev = self._device(node, tier)
        raw = yield from dev.get_range((bucket, key), offset, nbytes)
        yield from self.network.transfer(node, client_node, len(raw))
        if self.read_hook is not None:
            self.read_hook(bucket, tier, len(raw))
        return raw

    def _nearest_copy(self, info: BlobInfo, client_node: int):
        for node, tier in info.placements:
            if node == client_node:
                return node, tier
        return info.node, info.tier

    def _live_copy(self, info: BlobInfo, client_node: int):
        """A placement whose device holds the blob *right now*.

        Metadata resolution and the device access are separated by
        simulated time (locks, RPCs, device queues); a node crash in
        that window deletes the blob from its devices. Re-checking
        presence here turns that race into a :class:`BlobNotFound`
        the read paths can recover from, instead of a bare KeyError.
        Prefers a client-local copy, then the primary, then replicas.
        """
        key = (info.bucket, info.key)
        best = None
        for node, tier in info.placements:
            if node < 0:
                continue
            if key not in self._device(node, tier):
                continue
            if node == client_node:
                return node, tier
            if best is None:
                best = (node, tier)
        if best is None:
            raise BlobNotFound(key)
        return best

    # -- replication (read-only global coherence) ---------------------------------
    def replicate(self, client_node: int, bucket: str, key):
        """Copy a blob onto the client's node for read availability.

        No-op when a local copy already exists or local tiers are full.
        Returns the fetched bytes either way (callers replicate on the
        read path).
        """
        lock = self._lock(bucket, key)
        yield lock.acquire()
        try:
            return (yield from self._replicate(client_node, bucket, key))
        finally:
            lock.release()

    def _replicate(self, client_node: int, bucket: str, key):
        info = yield from self.mdm.get(client_node, bucket, key)
        raw = None
        if all(node != client_node for node, _ in info.placements):
            src_node, src_tier = self._live_copy(info, client_node)
            src_dev = self._device(src_node, src_tier)
            raw = yield from src_dev.get((bucket, key))
            yield from self.network.transfer(src_node, client_node,
                                             len(raw))
            if self.read_hook is not None:
                self.read_hook(bucket, src_tier, len(raw))
            # Replicas obey the same admission floor as primaries: an
            # over-quota tenant must not backfill DRAM via the
            # replication side door.
            floor = self._admission_floor(client_node, bucket, len(raw))
            if floor > 0:
                local = None
                for cand in self.dmshs[client_node].tiers[floor:]:
                    if cand.fits(len(raw)):
                        local = cand
                        break
            else:
                local = self.dmshs[client_node].fastest_with_room(
                    len(raw))
            if local is not None:
                from repro.storage.device import DeviceFullError
                try:
                    yield from local.put((bucket, key), raw)
                except DeviceFullError:
                    pass  # lost a capacity race; serve remotely
                else:
                    info.replicas.append((client_node, local.spec.kind))
                    if self.monitor is not None:
                        self.monitor.count("hermes.replications")
        else:
            raw = yield from self._get(client_node, bucket, key)
        return raw

    def invalidate_replicas(self, client_node: int, bucket: str, key):
        """Drop every replica, keeping the authoritative copy (phase
        change read-only -> writable, paper III-C)."""
        info = yield from self.mdm.try_get(client_node, bucket, key)
        if info is None:
            return 0
        dropped = 0
        for node, tier in info.replicas:
            dev = self._device(node, tier)
            if (bucket, key) in dev:
                dev.delete((bucket, key))
                dropped += 1
        info.replicas.clear()
        return dropped

    # -- management ------------------------------------------------------------------
    def move(self, bucket: str, key, node: int, to_tier: str):
        """Relocate the authoritative copy to another node/tier
        (the organizer's demote/promote primitive)."""
        lock = self._lock(bucket, key)
        yield lock.acquire()
        try:
            return (yield from self._move(bucket, key, node, to_tier))
        finally:
            lock.release()

    def _move(self, bucket, key, node, to_tier):
        info = self.mdm.peek(bucket, key)
        if info is None:
            raise BlobNotFound((bucket, key))
        if info.tier == to_tier and info.node == node:
            return info
        from_tier = info.tier
        with self.tracer.span("move", "hermes", node=info.node,
                              bucket=bucket, key=key,
                              src_tier=info.tier, dst_node=node,
                              dst_tier=to_tier, nbytes=info.nbytes):
            src = self._device(info.node, info.tier)
            dst = self._device(node, to_tier)
            # A replica on the destination would collide with the
            # primary's device key: absorb it (the put below refreshes
            # content).
            if (node, to_tier) in info.replicas:
                info.replicas.remove((node, to_tier))
            raw = yield from src.get((bucket, key))
            if info.node != node:
                yield from self.network.transfer(info.node, node,
                                                 len(raw))
            yield from dst.put((bucket, key), raw)
            src.delete((bucket, key))
            self._account(bucket, info.node, info.tier, -info.nbytes)
            self._account(bucket, node, to_tier, info.nbytes)
            info.node, info.tier = node, to_tier
        if self.monitor is not None:
            self.monitor.count("hermes.moves")
            self.monitor.metrics.counter(
                "hermes_moves", node=node, src_tier=from_tier,
                dst_tier=to_tier).inc()
        return info

    def delete(self, client_node: int, bucket: str, key):
        lock = self._lock(bucket, key)
        yield lock.acquire()
        try:
            info = yield from self.mdm.delete(client_node, bucket, key)
            yield from self._drop_all_copies(info)
            return info
        finally:
            lock.release()
            self._locks.pop((bucket, key), None)

    def _drop_all_copies(self, info: BlobInfo):
        for node, tier in info.placements:
            dev = self._device(node, tier)
            if (info.bucket, info.key) in dev:
                dev.delete((info.bucket, info.key))
        # Debit the blob's OWNER via the bucket ledger, regardless of
        # which tenant's activity triggered the drop — the credit
        # happened at creation, so the debit must mirror it even when
        # the primary device no longer holds the bytes (crash paths).
        self._account(info.bucket, info.node, info.tier, -info.nbytes)
        if False:  # pragma: no cover - keeps this a generator
            yield

    def set_score(self, bucket: str, key, score: float) -> None:
        """Untimed score update on the metadata entry."""
        info = self.mdm.peek(bucket, key)
        if info is not None:
            info.score = score
