"""Focused unit tests for Vector internals: partial paging, frames,
spans, the last-page fast path, and invalidation semantics."""

import numpy as np
import pytest

from repro.core import (
    MM_READ_ONLY,
    MM_READ_WRITE,
    MM_WRITE_ONLY,
    SeqTx,
    StrideTx,
    VectorError,
)
from repro.core.intervals import IntervalSet
from tests.core.conftest import build_system, run_procs

PAGE = 4096  # fixture page size (bytes)


def make_vec(sim, system, name="v", dtype=np.int32, size=4096):
    client = system.client(rank=0, node=0)
    holder = {}

    def app():
        holder["vec"] = yield from client.vector(name, dtype=dtype,
                                                 size=size)

    run_procs(sim, app())
    return holder["vec"], client


def test_page_spans_cover_range_exactly(dsm):
    sim, system = dsm
    vec, _ = make_vec(sim, system)
    spans = list(vec._page_spans(1000, 500))
    # 1024 int32/page: 1000..1023 in page 0, 1024..1499 in page 1.
    assert spans == [(0, 1000, 24, 0), (1, 0, 476, 24)]
    assert sum(n for _, _, n, _ in spans) == 500


def test_partial_page_fault_fetches_only_missing_bytes(dsm):
    """Partial paging (III-C): a small read moves a fragment, not the
    page."""
    sim, system = dsm
    c0 = system.client(rank=0, node=0)
    c1 = system.client(rank=1, node=1)
    ready = sim.event()

    def writer():
        vec = yield from c0.vector("p", dtype=np.uint8, size=PAGE)
        yield from vec.tx_begin(SeqTx(0, PAGE, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.arange(PAGE) % 251)
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        ready.succeed()

    def reader():
        vec = yield from c1.vector("p", dtype=np.uint8, size=PAGE)
        yield ready
        before = system.network.bytes_moved
        # Use READ_WRITE so the read-only replication fast path (which
        # moves whole pages by design) is not taken.
        yield from vec.tx_begin(SeqTx(0, PAGE, MM_READ_WRITE))
        out = yield from vec.read_range(100, 16)
        yield from vec.tx_end()
        moved = system.network.bytes_moved - before
        return out, moved

    _, (out, moved) = run_procs(sim, writer(), reader())
    assert np.array_equal(out, (np.arange(100, 116) % 251))
    # Task envelope + fragment + metadata: far below one page.
    assert moved < PAGE


def test_frame_valid_intervals_accumulate(dsm):
    sim, system = dsm
    vec, client = make_vec(sim, system, dtype=np.uint8, size=PAGE)

    def app():
        yield from vec.tx_begin(SeqTx(0, PAGE, MM_READ_WRITE))
        yield from vec.read_range(0, 10)
        frame = vec.frames[0]
        v1 = frame.valid.total
        yield from vec.read_range(2000, 50)
        v2 = frame.valid.total
        yield from vec.tx_end()
        return v1, v2

    ((v1, v2),) = run_procs(sim, app())
    assert v1 == 10
    assert v2 == 60  # disjoint fragments both valid, nothing else


def test_write_marks_exact_dirty_bytes(dsm):
    sim, system = dsm
    vec, client = make_vec(sim, system, dtype=np.int32, size=2048)

    def app():
        yield from vec.tx_begin(SeqTx(0, 2048, MM_READ_WRITE))
        yield from vec.set(3, 7)
        yield from vec.set(100, 9)
        frame = vec.frames[0]
        return list(frame.dirty)

    (dirty,) = run_procs(sim, app())
    assert dirty == [(12, 16), (400, 404)]


def test_last_page_fast_path_hits(dsm):
    sim, system = dsm
    vec, client = make_vec(sim, system, dtype=np.int32, size=4096)

    def app():
        yield from vec.tx_begin(SeqTx(0, 4096, MM_READ_WRITE))
        yield from vec.set(0, 1)
        ops0 = vec.index_ops
        for i in range(1, 20):
            yield from vec.set(i, i)  # all in the cached last page
        return vec.index_ops - ops0

    (extra,) = run_procs(sim, app())
    # Exactly 2 ops per lookup, one lookup per access.
    assert extra == 2 * 19
    assert vec._last_page[0] == 0


def test_evict_clean_page_no_write_task(dsm):
    sim, system = dsm
    vec, client = make_vec(sim, system, dtype=np.int32, size=1024)

    def app():
        yield from vec.tx_begin(SeqTx(0, 1024, MM_READ_ONLY))
        yield from vec.read_range(0, 10)
        before = system.monitor.counter("scache.writes")
        yield from vec.evict_page(0)
        yield from client.drain()
        return system.monitor.counter("scache.writes") - before

    (writes,) = run_procs(sim, app())
    assert writes == 0
    assert not vec.frames


def test_invalidate_range_drops_only_overlapping_frames(dsm):
    sim, system = dsm
    vec, client = make_vec(sim, system, dtype=np.int32, size=4096)

    def app():
        yield from vec.tx_begin(SeqTx(0, 4096, MM_READ_WRITE))
        yield from vec.read_range(0, 1)        # page 0
        yield from vec.read_range(1024, 1)     # page 1
        yield from vec.read_range(2048, 1)     # page 2
        yield from vec.invalidate_range(1024, 1024)  # page 1 only
        return sorted(vec.frames)

    (pages,) = run_procs(sim, app())
    assert pages == [0, 2]


def test_bound_memory_below_page_rejected(dsm):
    sim, system = dsm
    vec, _ = make_vec(sim, system)
    with pytest.raises(VectorError):
        vec.bound_memory(100)


def test_pgas_requires_call_before_local_off(dsm):
    sim, system = dsm
    vec, _ = make_vec(sim, system)
    with pytest.raises(VectorError):
        vec.local_off()
    with pytest.raises(VectorError):
        vec.pgas(5, 2)


def test_pgas_partitions_cover_everything(dsm):
    sim, system = dsm
    vec, _ = make_vec(sim, system, size=1000)
    seen = []
    for rank in range(7):
        vec.pgas(rank, 7)
        seen.append((vec.local_off(), vec.local_size()))
    total = sum(n for _, n in seen)
    assert total == 1000
    # Contiguous, ordered, non-overlapping.
    pos = 0
    for off, n in seen:
        assert off == pos
        pos += n


def test_stride_tx_element_access_faults_fragments(dsm):
    sim, system = dsm
    c0 = system.client(rank=0, node=0)

    def app():
        vec = yield from c0.vector("s", dtype=np.float64, size=8192)
        yield from vec.tx_begin(SeqTx(0, 8192, MM_WRITE_ONLY))
        yield from vec.write_range(
            0, np.arange(8192, dtype=np.float64))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        for p in list(vec.frames):
            yield from vec.evict_page(p)
        yield from c0.drain()
        yield from vec.tx_begin(
            StrideTx(0, 16, 512, MM_READ_WRITE))
        total = 0.0
        for i in range(16):
            v = yield from vec.get(i * 512)
            total += float(v)
        yield from vec.tx_end()
        return total

    (total,) = run_procs(sim, app())
    assert total == sum(i * 512 for i in range(16))


def test_frame_growth_preserves_intervals(dsm):
    sim, system = dsm
    c0 = system.client(rank=0, node=0)

    def app():
        vec = yield from c0.vector("g", dtype=np.int64, size=0)
        yield from vec.tx_begin(SeqTx(0, 0, MM_READ_WRITE))
        yield from vec.append(np.asarray([11], dtype=np.int64))
        frame_before = vec.frames[0]
        yield from vec.append(np.asarray([22, 33], dtype=np.int64))
        yield from vec.tx_end()
        yield from vec.flush(wait=True)
        yield from vec.tx_begin(SeqTx(0, 3, MM_READ_ONLY))
        out = yield from vec.read_range(0, 3)
        yield from vec.tx_end()
        return out

    (out,) = run_procs(sim, app())
    assert list(out) == [11, 22, 33]


def test_chunk_aliases_cache_until_eviction(dsm):
    sim, system = dsm
    c0 = system.client(rank=0, node=0)

    def app():
        vec = yield from c0.vector("a", dtype=np.int32, size=1024)
        yield from vec.tx_begin(SeqTx(0, 1024, MM_WRITE_ONLY))
        chunk = yield from vec.next_chunk()
        chunk.data[:] = 5
        # The frame sees the mutation (aliasing, not a copy).
        frame = vec.frames[0]
        got = frame.data[:4].view(np.int32)[0]
        yield from vec.tx_end()
        return int(got)

    (got,) = run_procs(sim, app())
    assert got == 5
