"""MegaMmap KMeans‖ (the paper's Listing-1 application, complete).

Each process maps the dataset as a shared read-only vector, takes its
PGAS partition, and streams it through sequential read-only
transactions: KMeans‖ oversampling rounds to seed centroids, then
Lloyd iterations, then a persisted file-backed assignment vector —
"The assignments are persisted automatically using a file-backed
MegaMmap" (IV-A2).
"""

from __future__ import annotations

import numpy as np

from repro.apps.datagen import POINT3D, as_xyz
from repro.apps.kmeans.common import assign, weighted_kmeans
from repro.core import MM_READ_ONLY, MM_WRITE_ONLY, SeqTx
from repro.sim.rand import rng_stream


def mm_kmeans(ctx, url, k, max_iter=4, seed=0, pcache=None,
              init_rounds=3, assign_url=None):
    """Returns (centroids, inertia) on every rank."""
    pts = yield from ctx.mm.vector(url, dtype=POINT3D)
    if pcache:
        pts.bound_memory(pcache)
    pts.pgas(ctx.rank, ctx.nprocs)
    rng = rng_stream(seed, "kmeans", ctx.rank)

    def scan(fn):
        tx = yield from pts.tx_begin(SeqTx(pts.local_off(),
                                           pts.local_size(),
                                           MM_READ_ONLY))
        while True:
            chunk = yield from pts.next_chunk()
            if chunk is None:
                break
            yield from ctx.compute_bytes(chunk.data.nbytes, factor=4.0)
            fn(as_xyz(chunk.data), chunk.start)
        yield from pts.tx_end()

    # --- KMeans|| initialization: oversample by distance ---
    first = None
    if ctx.rank == 0:
        i = int(rng.integers(pts.size))
        yield from pts.tx_begin(SeqTx(i, 1, MM_READ_ONLY))
        rec = yield from pts.read_range(i, 1)
        yield from pts.tx_end()
        first = as_xyz(rec)[0]
    first = yield from ctx.comm.bcast(first, root=0)
    candidates = np.asarray([first])
    ell = 2 * k  # oversampling factor per round
    for _ in range(init_rounds):
        cost_and_picks = [0.0, []]

        def sample(xyz, _start, acc=cost_and_picks, cand=candidates):
            _, d2 = assign(xyz, cand)
            acc[0] += float(d2.sum())
            phi = max(d2.sum(), 1e-12)
            take = rng.random(len(xyz)) < np.minimum(
                1.0, ell * d2 / phi)
            acc[1].append(xyz[take])

        yield from scan(sample)
        picks = np.vstack(cost_and_picks[1]) if cost_and_picks[1] \
            else np.empty((0, 3))
        gathered = yield from ctx.comm.allgather(picks)
        new = np.vstack([g for g in gathered if len(g)])
        if len(new):
            candidates = np.vstack([candidates, new])

    # Weight candidates by attraction and recluster on rank 0.
    weights = np.zeros(len(candidates))

    def weigh(xyz, _start, cand=candidates, w=weights):
        labels, _ = assign(xyz, cand)
        np.add.at(w, labels, 1.0)

    yield from scan(weigh)
    weights = yield from ctx.comm.allreduce(weights, op=lambda a, b: a + b)
    if ctx.rank == 0:
        centroids = weighted_kmeans(candidates, weights, k, seed)
    else:
        centroids = None
    centroids = yield from ctx.comm.bcast(centroids, root=0)

    # --- Lloyd iterations ---
    inertia = 0.0
    for _ in range(max_iter):
        acc = [np.zeros((k, 3)), np.zeros(k), 0.0]

        def step(xyz, _start, acc=acc, cent=centroids):
            labels, d2 = assign(xyz, cent)
            np.add.at(acc[0], labels, xyz)
            np.add.at(acc[1], labels, 1.0)
            acc[2] += float(d2.sum())

        yield from scan(step)
        sums = yield from ctx.comm.allreduce(acc[0],
                                             op=lambda a, b: a + b)
        counts = yield from ctx.comm.allreduce(acc[1],
                                               op=lambda a, b: a + b)
        inertia = yield from ctx.comm.allreduce(acc[2],
                                                op=lambda a, b: a + b)
        nonzero = counts > 0
        centroids = centroids.copy()
        centroids[nonzero] = sums[nonzero] / counts[nonzero, None]

    # --- persist assignments through a file-backed vector ---
    if assign_url is not None:
        out = yield from ctx.mm.vector(assign_url, dtype=np.int32,
                                       size=pts.size, volatile=False)
        out.pgas(ctx.rank, ctx.nprocs)
        tx = yield from out.tx_begin(SeqTx(out.local_off(),
                                           out.local_size(),
                                           MM_WRITE_ONLY))
        tx2 = yield from pts.tx_begin(SeqTx(pts.local_off(),
                                            pts.local_size(),
                                            MM_READ_ONLY))
        while True:
            chunk = yield from pts.next_chunk()
            if chunk is None:
                break
            labels, _ = assign(as_xyz(chunk.data), centroids)
            yield from out.write_range(chunk.start,
                                       labels.astype(np.int32))
        yield from pts.tx_end()
        yield from out.tx_end()
        yield from out.persist()
    return centroids, inertia
