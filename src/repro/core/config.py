"""MegaMmap configuration plus a tiny YAML-subset loader.

Paper III-A: "Applications can specify the maximum amount of DRAM and
high-performance storage to use for caching using either the native
C++ API or the MegaMmap configuration YAML file, which additionally
contains settings regarding the nodes to deploy MegaMmap on, port
numbers, etc."

The YAML loader supports the subset those config files actually use —
nested mappings by indentation, block lists with ``- ``, scalars
(int/float/bool/null/string), inline comments — with no external
dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

KB = 1024
MB = 1024 ** 2


@dataclass
class MegaMmapConfig:
    """Tunables of the MegaMmap runtime (one instance per deployment).

    Attributes
    ----------
    page_size:
        Default page size in bytes for new vectors (III-C: "Users can
        choose a custom page size for a particular MegaMmap vector").
    pcache_size:
        Default per-process private cache budget in bytes
        (overridden per vector by ``Vector.bound_memory``).
    min_score:
        Prefetcher cutoff (Algorithm 1's ``MinScore``).
    organizer_period:
        Seconds between Data Organizer sweeps (III-D: "Periodically
        (configurable by the user) the Data Organizer interprets the
        scores").
    score_window:
        Seconds within which the organizer takes the max of scores set
        by different processes for the same page.
    low_latency_threshold:
        MemoryTask byte size below which tasks go to the low-latency
        worker pool (III-B: 16 KB).
    low_latency_workers / high_latency_workers:
        Worker counts per pool per node runtime.
    workers_min / workers_max:
        Dynamic worker scaling bounds (LabStor-style core adjustment).
    flush_period:
        Seconds between active stager flushes of dirty nonvolatile
        pages (III-B: "MegaMmap actively flushes modified data to
        storage during periods of computation").
    prefetch_enabled / organizer_enabled:
        Ablation switches.
    batching_enabled:
        Coalesce contiguous page operations into batched MemoryTasks
        shipped with one envelope per owner node (vectored RPCs); off
        reverts to the one-task-per-page path (ablation/debug switch —
        results are bit-identical either way).
    batch_max_pages:
        Cap on the number of pages a single batched task may carry
        (bounds per-batch latency and worker monopolization).
    scale_down_periods:
        Consecutive low-backlog controller periods required before the
        high-latency worker pool gives back a core (a trickle of tasks
        must not pin the pool at ``workers_max`` forever).
    compute_bw:
        Simulated per-process compute throughput (bytes/s) used by
        ``ctx.compute_bytes`` when applications charge compute time.
    """

    page_size: int = 64 * KB
    pcache_size: int = 4 * MB
    min_score: float = 0.25
    organizer_period: float = 0.05
    score_window: float = 0.2
    low_latency_threshold: int = 16 * KB
    low_latency_workers: int = 2
    high_latency_workers: int = 2
    workers_min: int = 1
    workers_max: int = 4
    flush_period: float = 0.25
    prefetch_enabled: bool = True
    organizer_enabled: bool = True
    batching_enabled: bool = True
    batch_max_pages: int = 64
    scale_down_periods: int = 3
    compute_bw: float = 2e9
    #: Stage-in granularity: a page fault on a cold nonvolatile vector
    #: stages a whole backend extent (amortizing the PFS request
    #: latency across pages, as the bulk stager does).
    stage_extent: int = 256 * KB
    #: Durability copies per scache page (paper §V extension): 1 = no
    #: replication (the paper's deployed configuration); k > 1 places
    #: k-1 asynchronous copies on other nodes, surviving node failure.
    replication_factor: int = 1
    #: Verify per-page CRC32 checksums on full-page reads (§V Memory
    #: Corruption extension); mismatches recover from replica/backend.
    integrity_checks: bool = False
    #: Durable scache mode: host a write-ahead intent log on each
    #: node's fastest durable tier, commit it at transaction barriers
    #: (``Vector.flush``), and replay it on crash+restart. Off by
    #: default — non-durable runs stay bit-for-bit identical.
    durability: bool = False
    #: Fold the intent log into a failure-atomic snapshot every this
    #: many barriers (bounds recovery time: RTO scales with
    #: ``snapshot + tail-of-log``, not with history).
    wal_snapshot_every: int = 8
    #: Seconds between MaxMem-style fast-memory reallocation sweeps in
    #: a colocated run (only consulted when a tenancy scheduler enables
    #: the loop; single-tenant runs never start it).
    realloc_period: float = 0.25
    #: Bytes of DRAM-tier quota moved from donor to receiver per sweep.
    realloc_step: int = 2 * MB
    #: Receiver reuse density must exceed donor density by this factor
    #: before quota moves (hysteresis against thrash between tenants
    #: with similar miss profiles).
    realloc_hysteresis: float = 1.5
    #: Cap on blob demotions+promotions enforced per sweep (bounds the
    #: data movement a single reallocation decision can trigger).
    realloc_max_moves: int = 32
    #: Simulated seconds per windowed-observability rollup interval
    #: (:mod:`repro.obs.live`): each tick closes one fixed window of
    #: counter deltas / gauge samples / latency sketches.
    obs_window: float = 0.01
    #: Closed windows retained per series — the windowed store's ring
    #: size. Memory is O(retention) per series regardless of run
    #: length.
    obs_retention: int = 120
    #: Head-sampling probability for span retention when tracing is on
    #: (:mod:`repro.sim.trace` tail-based sampler). 1.0 keeps every
    #: span (classic full tracing, the default); below 1.0 spans are
    #: head-sampled per trace but *always* kept when slow (per-category
    #: dynamic thresholds from the windowed quantiles), error/repair,
    #: or inside a firing-alert window. Percentile statistics stay
    #: exact either way.
    trace_sample_rate: float = 1.0
    #: A finished span is "slow" — and tail-promoted into the kept
    #: sample — when its duration exceeds ``trace_slow_factor`` x the
    #: recent windowed p99 of its category.
    trace_slow_factor: float = 4.0
    #: Object-granular access gate (DOLMA-style object vs page
    #: disaggregation): ``Vector.read_object``/``write_object`` requests
    #: of at most this many bytes bypass the pcache page fault and go
    #: straight to the owner node as extent-sized object RPCs. 0 (the
    #: default) disables the path entirely — object calls degrade to
    #: the plain page path bit-for-bit.
    object_threshold_bytes: int = 0

    def validated(self) -> "MegaMmapConfig":
        if self.page_size <= 0:
            raise ValueError(f"page_size must be positive, got "
                             f"{self.page_size}")
        if not 0.0 <= self.min_score <= 1.0:
            raise ValueError(f"min_score must be in [0,1], got "
                             f"{self.min_score}")
        if self.low_latency_workers < 1 or self.high_latency_workers < 1:
            raise ValueError("each worker pool needs at least one worker")
        if self.workers_min > self.workers_max:
            raise ValueError("workers_min exceeds workers_max")
        if self.batch_max_pages < 1:
            raise ValueError(f"batch_max_pages must be at least 1, got "
                             f"{self.batch_max_pages}")
        if self.scale_down_periods < 1:
            raise ValueError(f"scale_down_periods must be at least 1, "
                             f"got {self.scale_down_periods}")
        if self.wal_snapshot_every < 1:
            raise ValueError(f"wal_snapshot_every must be at least 1, "
                             f"got {self.wal_snapshot_every}")
        if self.realloc_period <= 0:
            raise ValueError(f"realloc_period must be positive, got "
                             f"{self.realloc_period}")
        if self.realloc_step < 1:
            raise ValueError(f"realloc_step must be at least 1, got "
                             f"{self.realloc_step}")
        if self.realloc_hysteresis < 1.0:
            raise ValueError(f"realloc_hysteresis must be >= 1, got "
                             f"{self.realloc_hysteresis}")
        if self.realloc_max_moves < 1:
            raise ValueError(f"realloc_max_moves must be at least 1, "
                             f"got {self.realloc_max_moves}")
        if self.obs_window <= 0:
            raise ValueError(f"obs_window must be positive, got "
                             f"{self.obs_window}")
        if self.obs_retention < 2:
            raise ValueError(f"obs_retention must be at least 2, got "
                             f"{self.obs_retention}")
        if not 0.0 < self.trace_sample_rate <= 1.0:
            raise ValueError(f"trace_sample_rate must be in (0,1], got "
                             f"{self.trace_sample_rate}")
        if self.trace_slow_factor < 1.0:
            raise ValueError(f"trace_slow_factor must be >= 1, got "
                             f"{self.trace_slow_factor}")
        if self.object_threshold_bytes < 0:
            raise ValueError(f"object_threshold_bytes must be >= 0, "
                             f"got {self.object_threshold_bytes}")
        return self

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MegaMmapConfig":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        return cls(**data).validated()

    @classmethod
    def from_yaml(cls, text: str) -> "MegaMmapConfig":
        data = load_yaml_subset(text)
        if not isinstance(data, dict):
            raise ValueError("config YAML must be a mapping")
        return cls.from_dict(data)


# --------------------------------------------------------------------------
# Minimal YAML-subset parser
# --------------------------------------------------------------------------

def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if text in ("null", "~", ""):
        return None
    if text in ("true", "True"):
        return True
    if text in ("false", "False"):
        return False
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    try:
        return int(text, 0)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _strip_comment(line: str) -> str:
    # A '#' starts a comment unless inside quotes.
    out = []
    quote = None
    for ch in line:
        if quote:
            out.append(ch)
            if ch == quote:
                quote = None
        elif ch in "'\"":
            quote = ch
            out.append(ch)
        elif ch == "#":
            break
        else:
            out.append(ch)
    return "".join(out).rstrip()


def load_yaml_subset(text: str) -> Any:
    """Parse the YAML subset used by MegaMmap config files.

    Supports nested mappings (2+-space indentation), block sequences
    (``- item`` including ``- key: value`` object lists), scalars, and
    comments. Raises ``ValueError`` on anything outside the subset
    (flow style, anchors, multi-line strings).
    """
    lines: List[Tuple[int, str]] = []
    for raw in text.splitlines():
        stripped = _strip_comment(raw)
        if not stripped.strip():
            continue
        if "\t" in raw[:len(raw) - len(raw.lstrip())]:
            raise ValueError("tabs are not allowed in indentation")
        indent = len(stripped) - len(stripped.lstrip())
        lines.append((indent, stripped.strip()))
    value, pos = _parse_block(lines, 0, indent=None)
    if pos != len(lines):
        raise ValueError(f"trailing content at line entry {pos}")
    return value


def _parse_block(lines: List[Tuple[int, str]], pos: int,
                 indent: Optional[int]) -> Tuple[Any, int]:
    if pos >= len(lines):
        return None, pos
    block_indent = lines[pos][0] if indent is None else indent
    if lines[pos][1].startswith("- "):
        return _parse_sequence(lines, pos, block_indent)
    return _parse_mapping(lines, pos, block_indent)


def _parse_sequence(lines, pos, indent):
    items: List[Any] = []
    while pos < len(lines):
        line_indent, content = lines[pos]
        if line_indent < indent:
            break
        if line_indent > indent:
            raise ValueError(f"bad indentation at {content!r}")
        if not content.startswith("- "):
            break
        inner = content[2:].strip()
        if ":" in inner and not inner.startswith(("'", '"')):
            # '- key: value' opens an inline mapping item; subsequent
            # deeper lines continue it.
            key, _, rest = inner.partition(":")
            item: Dict[str, Any] = {}
            if rest.strip():
                item[key.strip()] = _parse_scalar(rest)
                pos += 1
            else:
                sub, pos = _parse_block(lines, pos + 1, indent=None) \
                    if pos + 1 < len(lines) and lines[pos + 1][0] > indent \
                    else (None, pos + 1)
                item[key.strip()] = sub
            while pos < len(lines) and lines[pos][0] > indent \
                    and not lines[pos][1].startswith("- "):
                sub_map, pos = _parse_mapping(lines, pos, lines[pos][0])
                item.update(sub_map)
            items.append(item)
        else:
            items.append(_parse_scalar(inner))
            pos += 1
    return items, pos


def _parse_mapping(lines, pos, indent):
    mapping: Dict[str, Any] = {}
    while pos < len(lines):
        line_indent, content = lines[pos]
        if line_indent < indent or content.startswith("- "):
            break
        if line_indent > indent:
            raise ValueError(f"bad indentation at {content!r}")
        if ":" not in content:
            raise ValueError(f"expected 'key: value', got {content!r}")
        key, _, rest = content.partition(":")
        key = key.strip()
        if key in mapping:
            raise ValueError(f"duplicate key {key!r}")
        rest = rest.strip()
        if rest:
            mapping[key] = _parse_scalar(rest)
            pos += 1
        else:
            if pos + 1 < len(lines) and (lines[pos + 1][0] > indent
                                         or lines[pos + 1][1].startswith("- ")
                                         and lines[pos + 1][0] >= indent):
                child_indent = lines[pos + 1][0]
                if lines[pos + 1][1].startswith("- ") \
                        and child_indent == indent:
                    value, pos = _parse_sequence(lines, pos + 1, indent)
                else:
                    value, pos = _parse_block(lines, pos + 1, child_indent)
                mapping[key] = value
            else:
                mapping[key] = None
                pos += 1
    return mapping, pos
