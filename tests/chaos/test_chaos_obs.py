"""Chaos x observability: injected faults must surface as obs
signals (anomaly events / SLO alert fires) with bounded detection
latency, and attaching the obs plane must not perturb the fault
schedule or the execution it observes."""

import os

import pytest

from repro.chaos import run_case
from repro.chaos.campaign import detection_stats, measure_horizon
from repro.obs import SLOSpec

SMALL_KMEANS = """
name: chaos-obs-small
cluster:
  n_nodes: 2
  procs_per_node: 2
  dram_mb: 16
  nvme_mb: 64
  page_size: 65536
  replication_factor: 2
  integrity_checks: true
dataset:
  kind: points
  n: 4000
  k: 4
  seed: 7
  path: points.parquet
app:
  kind: mm_kmeans
  k: 4
  max_iter: 2
"""


# Blob placement hashes bucket URLs, and those embed the workdir
# string verbatim — so every run here chdirs into a scratch dir and
# uses the same *relative* workdir, making placement (and therefore
# fault impact and detection timing) identical across invocations.
WORKDIR = "wd"


@pytest.fixture(scope="module")
def horizon(tmp_path_factory):
    scratch = tmp_path_factory.mktemp("probe")
    old = os.getcwd()
    os.chdir(scratch)
    try:
        return measure_horizon(SMALL_KMEANS, workdir=WORKDIR)
    finally:
        os.chdir(old)


def test_every_fault_class_detected_with_bounded_latency(
        tmp_path, monkeypatch, horizon):
    """The acceptance shape: across a few seeds, every injected fault
    class produces an obs signal, and the detection latency (onset to
    first anomaly/alert at or after it) stays within the horizon."""
    monkeypatch.chdir(tmp_path)
    results = [run_case(SMALL_KMEANS, seed, horizon=horizon,
                        workdir=WORKDIR, obs=True)
               for seed in range(3)]
    for res in results:
        assert res.ok, (res.error, res.violations[:3])
        assert res.detections, "obs=True must fill detections"
        assert res.obs_anomalies > 0
    stats = detection_stats(results)
    assert stats, "campaign applied no faults"
    for kind, row in sorted(stats.items()):
        assert row["detected"] == row["faults"], (kind, row)
        assert row["max_s"] <= horizon, (kind, row)


def test_slo_alert_fires_during_injected_faults(tmp_path, monkeypatch,
                                                horizon):
    """An availability SLO on the injector's own fault counters burns
    its budget the moment a network fault bites: the alert lifecycle
    runs under chaos, and alert fires count as detection signals."""
    monkeypatch.chdir(tmp_path)
    window = horizon / 256.0
    slo = SLOSpec(name="no-injected-delays", objective="availability",
                  bad_metric="chaos.delays",
                  target=0.999, fast_window_s=4 * window,
                  slow_window_s=16 * window, min_count=1.0)
    # Seed 6 with the network-fault mix lands delay windows on live
    # transfers (chaos.delays increments), so the SLO has bad events.
    res = run_case(SMALL_KMEANS, 6, horizon=horizon,
                   workdir=WORKDIR, obs=True, slos=[slo],
                   kinds=("delay", "drop", "stall", "partition"),
                   obs_window=window)
    assert res.ok, (res.error, res.violations[:3])
    assert res.faults_applied > 0
    assert res.obs_alerts > 0, "availability SLO never fired"
    assert any(d["signal"] and d["signal"].startswith("alert:")
               for d in res.detections), res.detections


def test_obs_plane_does_not_perturb_chaos_execution(
        tmp_path, monkeypatch, horizon):
    """Scrape-at-tick under fault injection: the same seed with and
    without the obs plane must apply the same faults and produce the
    identical client-boundary history hash."""
    monkeypatch.chdir(tmp_path)
    wd = WORKDIR
    plain = run_case(SMALL_KMEANS, 5, horizon=horizon, workdir=wd)
    observed = run_case(SMALL_KMEANS, 5, horizon=horizon, workdir=wd,
                        obs=True)
    assert plain.ok and observed.ok
    assert observed.trace_hash == plain.trace_hash
    assert observed.events == plain.events
    assert observed.faults_applied == plain.faults_applied
    assert observed.plan.faults == plain.plan.faults
    # And the obs run is itself deterministic.
    again = run_case(SMALL_KMEANS, 5, horizon=horizon, workdir=wd,
                     obs=True)
    assert again.detections == observed.detections
    assert again.obs_anomalies == observed.obs_anomalies
