"""Shared benchmark harness: scaled testbed builders, CSV, tables.

Scaling convention (DESIGN.md): the paper's testbed quantities are kept
in *ratio* but divided by 1024 (GB -> MB) and node/process counts are
reduced (48 procs/node -> 2). Every simulated cost is bytes/bandwidth,
so relative results — who wins, by what factor, where the knees sit —
are invariant; absolute seconds are not comparable to the paper's.

Each ``bench_*.py`` regenerates one table/figure: it sweeps the same
parameters the paper sweeps, prints rows in the paper's shape, writes
``benchmarks/results/<name>.csv`` (the artifact's ``stats_dict.csv``
role), and asserts the figure's qualitative claims.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, List, Optional, Sequence

from repro.cluster import ClusterSpec, ShardedCluster, SimCluster
from repro.core.config import MegaMmapConfig
from repro.storage.device import DeviceSpec
from repro.storage.tiers import (DRAM, HDD, MB, NVME, PMEM, SATA_SSD,
                                 scaled)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Scaled testbed per-node tiers (paper IV-A1, GB -> MB).
NODE_DRAM_MB = 48
NODE_NVME_MB = 128
NODE_SSD_MB = 256
NODE_HDD_MB = 1024


def testbed(n_nodes=4, procs_per_node=2, dram_mb=NODE_DRAM_MB,
            pmem_mb=0, nvme_mb=NODE_NVME_MB, ssd_mb=0, hdd_mb=0,
            page_size=64 * 1024, pcache=512 * 1024,
            pfs_spec=None, pfs_servers=2, seed=0,
            trace=None, **cfg) -> SimCluster:
    """A scaled replica of the paper's cluster.

    ``trace=True`` enables span tracing on the cluster (see
    :mod:`repro.sim.trace`); the default defers to the
    ``MEGAMMAP_TRACE`` environment variable so any benchmark can be
    rerun with tracing without editing it. ``MEGAMMAP_TRACE=sample``
    enables the always-on sampled mode instead: tail-based retention
    at a 10% head rate (unless the benchmark already pins
    ``trace_sample_rate``).
    """
    tiers = [scaled(DRAM, dram_mb * MB)]
    if pmem_mb:
        tiers.append(scaled(PMEM, pmem_mb * MB))
    if nvme_mb:
        tiers.append(scaled(NVME, nvme_mb * MB))
    if ssd_mb:
        tiers.append(scaled(SATA_SSD, ssd_mb * MB))
    if hdd_mb:
        tiers.append(scaled(HDD, hdd_mb * MB))
    env_trace = os.environ.get("MEGAMMAP_TRACE", "")
    if env_trace == "sample" and "trace_sample_rate" not in cfg:
        cfg["trace_sample_rate"] = 0.1
    if trace is None:
        trace = env_trace not in ("", "0")
    return SimCluster(
        n_nodes=n_nodes, procs_per_node=procs_per_node,
        tiers=tuple(tiers),
        pfs_servers=pfs_servers,
        pfs_spec=pfs_spec or scaled(HDD, 16 * 1024 * MB),
        config=MegaMmapConfig(page_size=page_size, pcache_size=pcache,
                              **cfg),
        seed=seed,
        trace=bool(trace),
    )


testbed.__test__ = False  # a helper whose name pytest would collect


def sharded_testbed(n_nodes, racks, procs_per_node=2,
                    dram_mb=NODE_DRAM_MB, nvme_mb=NODE_NVME_MB,
                    page_size=64 * 1024, pcache=512 * 1024,
                    pfs_spec=None, pfs_servers=2, seed=0,
                    **cfg) -> ShardedCluster:
    """The scaled testbed in its rack-decomposed form.

    ``racks`` splits the compute nodes into equal racks, each modeled
    by its own simulator; ``run(app, *args, shards=N)`` distributes
    the rack simulators over N worker processes (results identical at
    every N). The per-node hardware matches :func:`testbed`.
    """
    tiers = [scaled(DRAM, dram_mb * MB)]
    if nvme_mb:
        tiers.append(scaled(NVME, nvme_mb * MB))
    return ShardedCluster(
        n_nodes=n_nodes, procs_per_node=procs_per_node, racks=racks,
        tiers=tuple(tiers),
        pfs_servers=pfs_servers,
        pfs_spec=pfs_spec or scaled(HDD, 16 * 1024 * MB),
        config=MegaMmapConfig(page_size=page_size, pcache_size=pcache,
                              **cfg),
        seed=seed,
    )


sharded_testbed.__test__ = False


def export_trace(cluster: SimCluster, name: str) -> str:
    """Write a cluster's recorded spans to
    ``benchmarks/results/<name>.trace.json`` (Chrome trace format);
    returns the path. A no-op empty trace is written when the cluster
    ran without tracing."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.trace.json")
    return cluster.export_trace(path)


def critical_breakdown(cluster: SimCluster) -> Optional[Dict]:
    """Critical-path summary of a traced cluster run, in the compact
    shape BENCH_*.json records carry (``emit_result(breakdown=...)``).

    Returns None when the cluster ran without tracing (the usual
    perf-benchmark mode) or recorded no spans — callers can pass the
    result straight through unconditionally.
    """
    if not getattr(cluster.tracer, "enabled", False):
        return None
    from repro.obs import SpanGraph, analyze
    from repro.obs.report import analysis_summary
    graph = SpanGraph.from_tracer(cluster.tracer)
    if not len(graph):
        return None
    return analysis_summary(analyze(graph, top_k=0))


def emit_result(name: str, metric: str, value: float, unit: str,
                sim_config: Optional[Dict] = None,
                breakdown: Optional[Dict] = None) -> str:
    """Append one standardized record to the perf trajectory.

    Records accumulate in ``benchmarks/results/BENCH_<name>.json`` as a
    JSON list of ``{name, metric, value, unit, sim_config}`` objects —
    one file per benchmark, one record per (re)run and metric, so CI
    can diff throughput across commits. Returns the file path.

    ``breakdown`` (see :func:`critical_breakdown`) attaches a
    ``critical_path`` field — per-category durations plus the overlap
    ratio — so the trajectory records *where* the time went, not just
    how much there was. Old records without the field stay valid.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    records: List[Dict] = []
    if os.path.exists(path):
        try:
            with open(path, encoding="utf-8") as fh:
                records = json.load(fh)
            if not isinstance(records, list):
                records = []
        except (OSError, ValueError):
            records = []
    record = {
        "name": name,
        "metric": metric,
        "value": float(value),
        "unit": unit,
        "sim_config": dict(sim_config or {}),
    }
    if breakdown is not None:
        record["critical_path"] = breakdown
    records.append(record)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(records, fh, indent=2)
        fh.write("\n")
    return path


def read_results(name: str) -> List[Dict]:
    """Load the records previously emitted for ``name`` (empty list
    when the benchmark has not run yet)."""
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    if not os.path.exists(path):
        return []
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def write_csv(name: str, rows: List[Dict]) -> str:
    """Persist rows as benchmarks/results/<name>.csv; returns path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.csv")
    if rows:
        keys = list(rows[0].keys())
        with open(path, "w", newline="", encoding="utf-8") as fh:
            writer = csv.DictWriter(fh, fieldnames=keys)
            writer.writeheader()
            writer.writerows(rows)
    return path


def print_table(title: str, rows: List[Dict],
                columns: Sequence[str] = ()) -> None:
    """Render rows as a fixed-width table on stdout."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    cols = list(columns) or list(rows[0].keys())
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows))
              for c in cols}
    header = "  ".join(c.ljust(widths[c]) for c in cols)
    print(header)
    print("-" * len(header))
    for r in rows:
        print("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in cols))


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 100 or float(v).is_integer():
            return f"{v:.1f}"
        return f"{v:.4g}"
    return str(v)
