"""Chaos coverage for the object-granular serving path.

The serving workload reads sub-page objects through
``Vector.read_objects``; every one of those reads is recorded in the
coherence checker's history exactly like a page-path access. These
cases pin that object reads survive crash and partition faults
without a ``stale_or_lost_read`` — the OBJ_READ executor falls over
to replicas on a failed primary, and corrupted pages are detected by
the integrity check on the object read path too.

The checked campaigns run read-only: cached object extents are
LOCAL-coherent (a rank may legally serve its private copy until
eviction), and the checker's byte model keeps exactly one promotion
generation, so repeated remote write-through generations against a
long-lived reader cache are outside the checked envelope. The
write-through path itself is checker-pinned below with fresh readers
(``test_write_through_promotes_in_the_checker_model``).
"""

import os

import numpy as np

from repro.chaos import run_campaign, run_case
from repro.chaos.campaign import measure_horizon

from benchmarks.common import testbed

PIPELINE = os.path.join(os.path.dirname(__file__), "..", "..",
                        "pipelines", "chaos_serving_2n.yaml")

SMALL_SERVING = """
name: chaos-serving-small
cluster:
  n_nodes: 2
  procs_per_node: 2
  dram_mb: 16
  nvme_mb: 64
  page_size: 65536
  replication_factor: 2
  integrity_checks: true
  object_threshold_bytes: 4096
app:
  kind: mm_serving
  n_keys: 4096
  obj_bytes: 64
  queries: 24
  lookups: 8
  zipf_s: 1.2
  write_frac: 0
  qps: 5000
  api: object
"""


def _checked_run(app, *args):
    """Run an app on a 2-node testbed with the chaos machinery armed
    on an empty fault plan; returns (RunResult, checker)."""
    from repro.chaos import ChaosInjector, ChaosPlan, \
        CoherenceChecker, HistoryRecorder

    c = testbed(n_nodes=2, procs_per_node=2,
                object_threshold_bytes=4096)
    plan = ChaosPlan(seed=0, n_nodes=2, horizon=1.0, faults=[])
    checker = CoherenceChecker()
    recorder = HistoryRecorder(c.system, checker)
    c.system.history = recorder
    ChaosInjector(c.system, plan, recorder).install()
    res = c.run(app, *args)
    checker.finalize(c.system)
    return res, checker


def test_object_reads_are_checked_on_a_clean_run():
    """The checker really observes the object path: a fault-free run
    with the recorder installed checks every object read and finds
    nothing wrong."""
    from repro.apps.serving import mm_serving

    res, checker = _checked_run(mm_serving, 4096, 64, 24, 8, 1.2,
                                0.0, 5000.0, "object")
    assert res.stats.get("object.reads", 0) > 0
    assert checker.checked_reads > 0
    assert checker.violations == []


def test_write_through_promotes_in_the_checker_model():
    """OBJ_WRITE acks globally order the bytes: a fresh reader (no
    cached copy) after two write-through generations must see the
    latest value, and the checker — fed by ``on_promote`` — agrees."""
    def app(ctx):
        vec = yield from ctx.mm.vector("kv:rw", dtype=np.uint8,
                                       size=1 << 16)
        if ctx.rank == 0:
            yield from vec.write_object(128, np.full(64, 7, np.uint8))
            yield from vec.write_object(128, np.full(64, 9, np.uint8))
        yield from ctx.barrier()
        out = yield from vec.read_object(128, 64)
        return int(out[0])

    res, checker = _checked_run(app)
    # Rank 0 reads its own write back; everyone else fetched fresh.
    assert all(v == 9 for v in res.values), res.values
    assert checker.checked_reads > 0
    assert checker.violations == []


def test_serving_seed_is_deterministic(tmp_path):
    wd = str(tmp_path)
    horizon = measure_horizon(SMALL_SERVING, workdir=wd)
    a = run_case(SMALL_SERVING, 3, horizon=horizon, workdir=wd)
    b = run_case(SMALL_SERVING, 3, horizon=horizon, workdir=wd)
    assert a.ok and b.ok
    assert a.trace_hash == b.trace_hash
    assert a.plan.faults == b.plan.faults


def test_serving_campaign_crash_partition_corrupt(tmp_path):
    """Satellite acceptance: seeded campaigns over the 2-node serving
    pipeline pass the coherence checker with crashes, partitions, and
    corruption enabled — no stale_or_lost_read on the object path."""
    results = run_campaign(PIPELINE, range(6),
                           kinds=("crash", "partition", "corrupt"),
                           workdir=str(tmp_path))
    bad = [r.summary() for r in results if not r.ok]
    assert not bad, bad
    assert all(r.checked_reads > 0 for r in results)
    # The campaign genuinely injected faults, not just clean runs.
    assert sum(r.faults_applied for r in results) > 0
