"""Ablation: Algorithm 1 (prefetch + informed eviction) on/off.

DESIGN.md calls out the prefetcher as the mechanism behind Fig. 8's
flat region: with the pcache far smaller than the working set, a
sequential scan must overlap upcoming-page fetches with compute.
Disabling the prefetcher forces synchronous page faults on every miss.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.datagen import write_parquet_points
from repro.apps.kmeans import mm_kmeans
from benchmarks.common import emit_result, print_table, testbed, \
    write_csv

N_POINTS = 160_000


def run_ablation(tmp_path):
    path = tmp_path / "pts.parquet"
    write_parquet_points(str(path), N_POINTS, 8, seed=5)
    url = f"parquet://{path}"
    rows = []
    for prefetch in (True, False):
        cluster = testbed(n_nodes=2, dram_mb=48,
                          prefetch_enabled=prefetch)
        res = cluster.run(mm_kmeans, url, 8, 4, 0, 256 * 1024)
        rows.append(dict(
            prefetch=prefetch,
            runtime_s=round(res.runtime, 4),
            faults=int(res.stats.get("pcache.faults", 0)),
            prefetches=int(res.stats.get("pcache.prefetches", 0))))
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_prefetcher(benchmark, tmp_path):
    rows = benchmark.pedantic(run_ablation, args=(tmp_path,),
                              rounds=1, iterations=1)
    print_table("Ablation — prefetcher on/off", rows)
    write_csv("ablation_prefetcher", rows)
    on = next(r for r in rows if r["prefetch"])
    off = next(r for r in rows if not r["prefetch"])
    # Prefetching converts synchronous faults into async fills...
    assert on["faults"] < off["faults"]
    assert on["prefetches"] > 0 and off["prefetches"] == 0
    # ...and improves end-to-end runtime.
    assert on["runtime_s"] < off["runtime_s"]
    emit_result("ablation_prefetcher", "prefetcher.speedup",
                off["runtime_s"] / max(on["runtime_s"], 1e-9), "x",
                dict(n_nodes=2, points=N_POINTS))
