"""Observability analysis layer: causal span graph, critical path,
overlap ratio, and the `repro report` / `repro diff` triage tooling.

The tracer (:mod:`repro.sim.trace`) records *what happened*; this
package answers *where the time went*: it links spans into a causal
graph (hierarchy parents plus the cross-process ``cause``/``wait_on``
edges the instrumentation sites emit), walks the end-to-end critical
path of a run, and attributes its length per category/node/tier —
including the overlap ratio that quantifies the paper's central claim
(compute time shadowed by in-flight I/O).
"""

from repro.obs.graph import (IO_CATEGORIES, SpanGraph, SpanNode,
                             load_trace)
from repro.obs.report import analyze, diff_analyses, render_diff, \
    render_report
from repro.obs.live import LiveObs, QuantileSketch, WindowedStore
from repro.obs.slo import SLOMonitor, SLOSpec, load_slos
from repro.obs.anomaly import EwmaMadDetector, attach_detectors, \
    standard_detectors

__all__ = [
    "IO_CATEGORIES", "SpanGraph", "SpanNode", "load_trace",
    "analyze", "diff_analyses", "render_diff", "render_report",
    "LiveObs", "QuantileSketch", "WindowedStore",
    "SLOMonitor", "SLOSpec", "load_slos",
    "EwmaMadDetector", "attach_detectors", "standard_detectors",
]
