"""Unit tests for the dataset generator and the LOC counter."""

import numpy as np
import pytest

from repro.apps.datagen import (
    PARTICLE,
    POINT3D,
    as_xyz,
    generate_points,
    write_gadget_like,
    write_parquet_points,
)
from repro.apps.loc import count_loc
from repro.storage import open_backend


def test_generate_points_shapes_and_labels():
    pts, labels = generate_points(1000, 8, seed=1)
    assert pts.dtype == POINT3D
    assert len(pts) == len(labels) == 1000
    assert set(np.unique(labels)) <= set(range(-1, 8))
    # Roughly 10% background.
    assert 50 <= (labels == -1).sum() <= 150


def test_generate_points_deterministic():
    a, la = generate_points(500, 4, seed=7)
    b, lb = generate_points(500, 4, seed=7)
    assert np.array_equal(a, b)
    assert np.array_equal(la, lb)


def test_generate_points_halos_are_tight():
    pts, labels = generate_points(2000, 4, seed=2, spread=1.0)
    xyz = as_xyz(pts)
    for h in range(4):
        cluster = xyz[labels == h]
        spread = cluster.std(axis=0).mean()
        assert spread < 3.0  # clustered, not uniform


def test_generate_with_velocity():
    pts, _ = generate_points(100, 2, seed=0, with_velocity=True)
    assert pts.dtype == PARTICLE


def test_generate_invalid_args():
    with pytest.raises(ValueError):
        generate_points(0, 1)
    with pytest.raises(ValueError):
        generate_points(10, 0)


def test_write_gadget_like_roundtrip(tmp_path):
    path = f"{tmp_path}/snap.h5"
    labels = write_gadget_like(path, 300, 3, seed=5)
    be = open_backend(f"hdf5://{path}:parttype0")
    recs = np.frombuffer(be.read_range(0, be.size()), dtype=PARTICLE)
    expect, _ = generate_points(300, 3, seed=5, with_velocity=True)
    assert np.array_equal(recs, expect)
    assert len(labels) == 300


def test_write_parquet_points_roundtrip(tmp_path):
    path = f"{tmp_path}/pts.parquet"
    write_parquet_points(path, 200, 2, seed=3)
    be = open_backend(f"parquet://{path}", dtype=POINT3D)
    assert be.size() == 200 * POINT3D.itemsize
    recs = np.frombuffer(be.read_range(0, be.size()), dtype=POINT3D)
    expect, _ = generate_points(200, 2, seed=3)
    assert np.array_equal(recs, expect)


def test_count_loc_ignores_blanks_comments_docstrings():
    src = '''
"""Module docstring."""

# a comment
import os


def f(x):
    """Doc."""
    # inline comment explains
    return x + 1  # trailing
'''
    assert count_loc(src) == 3  # import, def, return


def test_count_loc_multiline_statement():
    src = "x = [1,\n     2,\n     3]\n"
    assert count_loc(src) == 3


def test_count_loc_garbage_fallback():
    assert count_loc("def broken(:\n  x\n# c\n") >= 1
