"""ChaosPlan: deterministic generation, projection, replay files."""

import pytest

from repro.chaos import ChaosPlan, Fault
from repro.chaos.plan import FAULT_KINDS


def test_build_is_a_pure_function_of_its_arguments():
    a = ChaosPlan.build(42, n_nodes=4, horizon=2.0)
    b = ChaosPlan.build(42, n_nodes=4, horizon=2.0)
    assert a.faults == b.faults
    assert a.faults, "seed 42 drew an empty schedule"


def test_different_seeds_draw_different_schedules():
    a = ChaosPlan.build(1, n_nodes=4, horizon=2.0)
    b = ChaosPlan.build(2, n_nodes=4, horizon=2.0)
    assert a.faults != b.faults


def test_faults_respect_window_kinds_and_order():
    plan = ChaosPlan.build(7, n_nodes=3, horizon=10.0,
                           kinds=("crash", "corrupt"))
    assert plan.faults
    for f in plan.faults:
        assert f.kind in ("crash", "corrupt")
        assert 0.15 * 10.0 <= f.time <= 0.85 * 10.0
        if f.kind == "crash":
            assert 0 <= f.node < 3
            assert f.duration > 0
    times = [f.time for f in plan.faults]
    assert times == sorted(times)


def test_single_node_cluster_draws_no_crashes_or_partitions():
    plan = ChaosPlan.build(3, n_nodes=1, horizon=1.0)
    assert all(f.kind not in ("crash", "partition")
               for f in plan.faults)


def test_build_rejects_unknown_kind_and_bad_horizon():
    with pytest.raises(ValueError):
        ChaosPlan.build(0, n_nodes=2, horizon=1.0, kinds=("meteor",))
    with pytest.raises(ValueError):
        ChaosPlan.build(0, n_nodes=2, horizon=0.0)


def test_subset_projects_and_keeps_seed():
    plan = ChaosPlan.build(9, n_nodes=4, horizon=5.0)
    assert len(plan.faults) >= 3
    sub = plan.subset([2, 0, 2])
    assert sub.seed == plan.seed
    assert sub.faults == [plan.faults[0], plan.faults[2]]
    assert plan.subset(range(len(plan.faults))).faults == plan.faults


def test_json_roundtrip_via_text_and_path(tmp_path):
    plan = ChaosPlan.build(11, n_nodes=3, horizon=4.0, perturb=True)
    assert ChaosPlan.from_json(plan.to_json()) == plan
    path = tmp_path / "replay.json"
    plan.to_json(str(path))
    assert ChaosPlan.from_json(str(path)) == plan
    back = ChaosPlan.from_json(str(path))
    assert all(isinstance(f, Fault) for f in back.faults)
    assert all(isinstance(f.nodes, tuple) for f in back.faults)


def test_roundtrip_keeps_nondefault_kinds_and_intensity(tmp_path):
    """Replaying a campaign that ran with a kinds subset and a scaled
    intensity must rebuild the *same* plan object — the regression was
    to_dict() dropping both fields, so a replayed plan compared (and
    rebuilt) as if run with the defaults."""
    plan = ChaosPlan.build(13, n_nodes=4, horizon=3.0,
                           kinds=("crash", "stall"), intensity=2.5)
    back = ChaosPlan.from_json(plan.to_json())
    assert back == plan
    assert back.kinds == ("crash", "stall")
    assert back.intensity == 2.5
    path = tmp_path / "replay.json"
    plan.to_json(str(path))
    assert ChaosPlan.from_json(str(path)) == plan
    # Rebuilding from the carried parameters reproduces the schedule.
    rebuilt = ChaosPlan.build(back.seed, n_nodes=back.n_nodes,
                              horizon=back.horizon, kinds=back.kinds,
                              intensity=back.intensity,
                              perturb=back.perturb)
    assert rebuilt == plan


def test_from_dict_defaults_legacy_files_without_new_fields():
    plan = ChaosPlan.build(11, n_nodes=3, horizon=4.0)
    doc = plan.to_dict()
    del doc["kinds"], doc["intensity"]
    back = ChaosPlan.from_dict(doc)
    assert back.kinds == FAULT_KINDS
    assert back.intensity == 1.0
    assert back.faults == plan.faults


def test_subset_carries_generation_parameters():
    plan = ChaosPlan.build(9, n_nodes=4, horizon=5.0, intensity=2.0)
    sub = plan.subset([0])
    assert sub.kinds == plan.kinds
    assert sub.intensity == plan.intensity


def test_intensity_scales_fault_count():
    lo = ChaosPlan.build(5, n_nodes=4, horizon=2.0, intensity=0.0)
    hi = ChaosPlan.build(5, n_nodes=4, horizon=2.0, intensity=4.0)
    assert len(lo.faults) == 0
    assert len(hi.faults) > len(
        ChaosPlan.build(5, n_nodes=4, horizon=2.0).faults)
    assert set(FAULT_KINDS) >= {f.kind for f in hi.faults}
