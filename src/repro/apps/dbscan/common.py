"""Shared DBSCAN machinery: local clustering, boundary merge, oracle."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
from scipy.spatial import cKDTree


def local_dbscan(xyz: np.ndarray, eps: float, min_pts: int
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Classic DBSCAN on one process's points.

    Returns (labels, is_core); labels are local ids starting at 0, -1
    is noise.
    """
    n = len(xyz)
    labels = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return labels, np.zeros(0, dtype=bool)
    tree = cKDTree(xyz)
    neighbor_counts = tree.query_ball_point(xyz, eps,
                                            return_length=True)
    is_core = neighbor_counts >= min_pts
    cluster = 0
    for i in range(n):
        if labels[i] != -1 or not is_core[i]:
            continue
        # BFS flood fill from this core point.
        frontier = [i]
        labels[i] = cluster
        while frontier:
            j = frontier.pop()
            if not is_core[j]:
                continue
            for nb in tree.query_ball_point(xyz[j], eps):
                if labels[nb] == -1:
                    labels[nb] = cluster
                    if is_core[nb]:
                        frontier.append(nb)
        cluster += 1
    return labels, is_core


class UnionFind:
    """Path-compressed union-find over hashable ids."""

    def __init__(self):
        self.parent: Dict = {}

    def find(self, x):
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a, b):
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def merge_labels(boundary_xyz: List[np.ndarray],
                 boundary_ids: List[np.ndarray],
                 boundary_core: List[np.ndarray],
                 eps: float) -> Dict:
    """Union µcluster ids whose core points from different processes
    lie within eps. ``boundary_ids`` carries (rank, local_label) pairs
    encoded as rank * 2^32 + label. Returns the union-find parent map.
    """
    uf = UnionFind()
    pts = [p for p in boundary_xyz if len(p)]
    if not pts:
        return uf.parent
    all_xyz = np.vstack(pts)
    all_ids = np.concatenate([i for i in boundary_ids if len(i)])
    all_core = np.concatenate([c for c in boundary_core if len(c)])
    for gid in all_ids:
        uf.find(int(gid))
    tree = cKDTree(all_xyz)
    pairs = tree.query_pairs(eps, output_type="ndarray")
    for a, b in pairs:
        if all_ids[a] == all_ids[b]:
            continue
        # Merge when at least one side is core (border points attach
        # to the core's cluster; two cores always merge).
        if all_core[a] or all_core[b]:
            uf.union(int(all_ids[a]), int(all_ids[b]))
    return uf.parent


def encode_gid(rank: int, label: np.ndarray) -> np.ndarray:
    """(rank, local label) -> global µcluster id; noise stays -1."""
    gid = rank * (1 << 32) + label
    return np.where(label < 0, -1, gid)


def resolve(parent: Dict, gid: int) -> int:
    while parent.get(gid, gid) != gid:
        gid = parent[gid]
    return gid


def reference_dbscan(xyz: np.ndarray, eps: float,
                     min_pts: int) -> np.ndarray:
    """Single-process oracle (same algorithm, no partitioning)."""
    labels, _ = local_dbscan(xyz, eps, min_pts)
    return labels
