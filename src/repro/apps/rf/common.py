"""Shared Random-Forest machinery: binned Gini splits, prediction.

Distributed tree construction needs *mergeable* split statistics, so —
like Spark MLlib — features are binned against globally agreed edges
and per-partition class histograms are summed; the driver (or an
allreduce) then picks the split maximizing Gini gain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Gadget particle features: position + velocity (6 floats).
FEATURE6 = np.dtype([("x", "<f4"), ("y", "<f4"), ("z", "<f4"),
                     ("vx", "<f4"), ("vy", "<f4"), ("vz", "<f4")])

N_BINS = 16
MAX_CLASSES = 64


def to_features(records: np.ndarray) -> np.ndarray:
    """Packed records -> (n, f) float64 feature matrix."""
    return np.column_stack([records[f].astype(np.float64)
                            for f in records.dtype.names])


def minmax_stats(X: np.ndarray, subset: Sequence[int]
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-feature (min, max) over the subset; identity-safe for empty
    partitions."""
    if len(X) == 0:
        k = len(subset)
        return (np.full(k, np.inf), np.full(k, -np.inf))
    sub = X[:, list(subset)]
    return sub.min(axis=0), sub.max(axis=0)


def merge_minmax(a, b):
    return np.minimum(a[0], b[0]), np.maximum(a[1], b[1])


def edges_from_minmax(mins: np.ndarray, maxs: np.ndarray
                      ) -> List[np.ndarray]:
    """N_BINS-1 interior candidate thresholds per feature."""
    out = []
    for lo, hi in zip(mins, maxs):
        if not np.isfinite(lo) or not np.isfinite(hi) or hi <= lo:
            out.append(np.asarray([0.0]))
        else:
            out.append(np.linspace(lo, hi, N_BINS + 1)[1:-1])
    return out


def hist_stats(X: np.ndarray, y: np.ndarray, subset: Sequence[int],
               edges: List[np.ndarray]) -> List[np.ndarray]:
    """Per feature: class histogram per bin, shape (n_bins, n_classes).
    Mergeable by elementwise sum."""
    out = []
    for j, f in enumerate(subset):
        e = edges[j]
        hist = np.zeros((len(e) + 1, MAX_CLASSES))
        if len(X):
            bins = np.searchsorted(e, X[:, f], side="right")
            np.add.at(hist, (bins, np.clip(y, 0, MAX_CLASSES - 1)), 1.0)
        out.append(hist)
    return out


def merge_hists(a: List[np.ndarray], b: List[np.ndarray]):
    return [x + y for x, y in zip(a, b)]


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts / total
    return float(1.0 - (p * p).sum())


def best_split(subset: Sequence[int], edges: List[np.ndarray],
               hists: List[np.ndarray]
               ) -> Tuple[Optional[int], float, float]:
    """Pick the (feature, threshold) maximizing Gini gain.

    Returns (feature index in the full matrix, threshold, gain);
    feature is None when no split improves impurity.
    """
    best = (None, 0.0, 0.0)
    for j, f in enumerate(subset):
        hist = hists[j]
        total = hist.sum(axis=0)
        n = total.sum()
        if n <= 0:
            continue
        parent = _gini(total)
        left = np.cumsum(hist, axis=0)
        for b in range(len(edges[j])):
            lc = left[b]
            rc = total - lc
            nl, nr = lc.sum(), rc.sum()
            if nl == 0 or nr == 0:
                continue
            gain = parent - (nl / n) * _gini(lc) - (nr / n) * _gini(rc)
            if gain > best[2]:
                best = (int(f), float(edges[j][b]), float(gain))
    return best


def leaf_label(counts: np.ndarray) -> int:
    return int(np.argmax(counts))


def class_counts(y: np.ndarray) -> np.ndarray:
    return np.bincount(np.clip(y, 0, MAX_CLASSES - 1),
                       minlength=MAX_CLASSES).astype(float)


def predict_tree(tree: Dict, X: np.ndarray) -> np.ndarray:
    """Vectorized single-tree prediction."""
    out = np.zeros(len(X), dtype=np.int64)
    idx = np.arange(len(X))

    def walk(node, rows):
        if not len(rows):
            return
        if "leaf" in node:
            out[rows] = node["leaf"]
            return
        mask = X[rows, node["feature"]] <= node["threshold"]
        walk(node["left"], rows[mask])
        walk(node["right"], rows[~mask])

    walk(tree, idx)
    return out


def rf_predict(trees: List[Dict], X: np.ndarray) -> np.ndarray:
    """Majority vote across trees."""
    votes = np.stack([predict_tree(t, X) for t in trees])
    out = np.empty(len(X), dtype=np.int64)
    for i in range(len(X)):
        vals, counts = np.unique(votes[:, i], return_counts=True)
        out[i] = vals[np.argmax(counts)]
    return out


def accuracy(pred: np.ndarray, truth: np.ndarray) -> float:
    return float((pred == truth).mean()) if len(truth) else 0.0


def reference_tree(X: np.ndarray, y: np.ndarray, max_depth: int,
                   rng: np.random.Generator, depth: int = 0) -> Dict:
    """Single-process greedy tree (verification reference)."""
    counts = class_counts(y)
    if depth >= max_depth or len(y) < 8 or (counts > 0).sum() <= 1:
        return {"leaf": leaf_label(counts)}
    n_features = X.shape[1]
    subset = sorted(rng.choice(n_features,
                               size=max(1, int(np.sqrt(n_features))),
                               replace=False))
    mins, maxs = minmax_stats(X, subset)
    edges = edges_from_minmax(mins, maxs)
    hists = hist_stats(X, y, subset, edges)
    f, th, gain = best_split(subset, edges, hists)
    if f is None or gain <= 1e-9:
        return {"leaf": leaf_label(counts)}
    mask = X[:, f] <= th
    return {"feature": f, "threshold": th,
            "left": reference_tree(X[mask], y[mask], max_depth, rng,
                                   depth + 1),
            "right": reference_tree(X[~mask], y[~mask], max_depth, rng,
                                    depth + 1)}
