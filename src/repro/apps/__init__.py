"""Applications: the paper's four workloads in MegaMmap and baseline form.

* KMeans‖ — MegaMmap vs the Spark-MLlib-style baseline;
* µDBSCAN — MegaMmap vs the MPI baseline;
* Random Forest — MegaMmap vs the Spark-MLlib-style baseline;
* Gray-Scott — MegaMmap vs MPI over {OrangeFS, Assise, Hermes} I/O.

Plus the Gadget-like synthetic dataset generator (`datagen`), a
cloc-like line counter (`loc`) used by the Fig. 4 benchmark, and the
latency-sensitive serving workload (`serving`) exercising the
object-granular access path.
"""

from repro.apps.datagen import POINT3D, generate_points, write_gadget_like

__all__ = ["POINT3D", "generate_points", "write_gadget_like"]
