"""Shared-cache executor: how runtime workers act on MemoryTasks.

The scache is the distributed, tiered, coherent page store (paper
III-B). Pages are Hermes blobs in the bucket named after the vector;
this module implements the read / write / score / flush / delete task
semantics on top of Hermes + the Data Stager, honouring the vector's
coherence policy (replication for READ_ONLY_GLOBAL, partial-fragment
updates, replica invalidation on writes).
"""

from __future__ import annotations

import numpy as np

from repro.core.coherence import CoherencePolicy
from repro.core.errors import MegaMmapError
from repro.core.memtask import MemoryTask, TaskKind
from repro.core.shared import SharedVector
from repro.hermes.blob import BlobNotFound


class ScacheExecutor:
    """Executes MemoryTasks on behalf of one node's runtime workers."""

    def __init__(self, system, node_id: int):
        self.system = system
        self.node_id = node_id
        self.sim = system.sim

    def execute(self, task: MemoryTask):
        """Dispatch one task. Generator; returns the READ payload or
        None."""
        vec = self.system.vectors.get(task.vector_name)
        if vec is None or vec.destroyed:
            raise MegaMmapError(
                f"task for unknown/destroyed vector {task.vector_name!r}")
        tracer = self.system.tracer
        if task.kind is TaskKind.READ:
            with tracer.span("read", "scache", node=self.node_id,
                             vector=vec.name, page=task.page_idx):
                return (yield from self._read(vec, task))
        if task.kind is TaskKind.WRITE:
            with tracer.span("write", "scache", node=self.node_id,
                             vector=vec.name, page=task.page_idx,
                             nbytes=task.nbytes):
                return (yield from self._write(vec, task))
        if task.kind is TaskKind.SCORE:
            self.system.organizer.ingest(vec, task.scores)
            return None
        if task.kind is TaskKind.FLUSH:
            yield from self.system.stager.stage_out(
                vec, task.page_idx, self.node_id)
            return None
        if task.kind is TaskKind.DELETE:
            yield from self._delete(vec, task)
            return None
        raise MegaMmapError(f"unknown task kind {task.kind}")

    # -- page materialization ------------------------------------------------
    def ensure_page(self, vec: SharedVector, page_idx: int,
                    client_node: int, score: float = 1.0):
        """Materialize the page blob in the scache if absent.

        Missing nonvolatile pages stage in from the backend; missing
        volatile pages are zero-filled. Generator; returns BlobInfo.
        """
        hermes = self.system.hermes
        info = yield from hermes.mdm.try_get(self.node_id, vec.name,
                                             page_idx)
        want = vec.page_nbytes(page_idx)
        if info is not None:
            if info.nbytes < want:
                # The vector grew (append): extend the blob in place.
                raw = yield from hermes.get(self.node_id, vec.name,
                                            page_idx)
                raw = raw + bytes(want - len(raw))
                info = yield from hermes.put(
                    self.node_id, vec.name, page_idx, raw,
                    score=info.score, target_node=info.node)
            return info
        lock = self.system.stager.extent_lock(vec, page_idx)
        yield lock.acquire()
        try:
            # Re-check under the lock: a concurrent fault may have
            # created the page (replacing it would lose its writes).
            info = yield from hermes.mdm.try_get(self.node_id, vec.name,
                                                 page_idx)
            if info is not None:
                return info
            with self.system.tracer.span(
                    "stage_in", "scache", node=self.node_id,
                    vector=vec.name, page=page_idx):
                staged = yield from self.system.stager.stage_in_extent(
                    vec, page_idx, self.node_id)
                for p, raw in staged:
                    if p != page_idx and hermes.mdm.peek(vec.name, p) \
                            is not None:
                        continue
                    owner = vec.owner_node(p, client_node)
                    put_info = yield from hermes.put(
                        self.node_id, vec.name, p, raw, score=score,
                        target_node=owner)
                    if p == page_idx:
                        info = put_info
        finally:
            lock.release()
        if info is None:
            # A concurrent fault published our page while we waited.
            info = yield from hermes.mdm.try_get(self.node_id, vec.name,
                                                 page_idx)
        return info

    # -- reads ----------------------------------------------------------------
    def _read(self, vec: SharedVector, task: MemoryTask):
        hermes = self.system.hermes
        rel = self.system.reliability
        # Failure handling (§V extension): a lost primary recovers from
        # a surviving replica or the persistent backend.
        info = hermes.mdm.peek(vec.name, task.page_idx)
        if info is not None and (info.node < 0
                                 or info.node in rel.failed_nodes):
            raw = yield from rel.recover_page(vec, task.page_idx,
                                              task.client_node)
            if task.region is None:
                return raw
            off, size = task.region
            return raw[off:off + size]
        yield from self.ensure_page(vec, task.page_idx, task.client_node)
        replicate = (vec.policy is CoherencePolicy.READ_ONLY_GLOBAL
                     and task.client_node != self.node_id)
        if replicate and (task.region is None
                          or task.region[1] >= vec.page_nbytes(
                              task.page_idx)):
            raw = yield from hermes.replicate(task.client_node, vec.name,
                                              task.page_idx)
            if self.system.config.integrity_checks \
                    and not rel.verify(vec.name, task.page_idx, raw):
                self.system.monitor.count("reliability.corruptions")
                # Recover a verified copy (tries every placement,
                # promotes the good one, drops the corrupted copy).
                raw = yield from rel.recover_page(vec, task.page_idx,
                                                  task.client_node)
            info = hermes.mdm.peek(vec.name, task.page_idx)
            if info is not None and info.replicas:
                vec.replicated_pages.add(task.page_idx)
            self.system.monitor.count("scache.reads")
            if task.region is None:
                return raw
            off, size = task.region
            return raw[off:off + size]
        self.system.monitor.count("scache.reads")
        page_nbytes = vec.page_nbytes(task.page_idx)
        whole = task.region is None or task.region == (0, page_nbytes)
        if whole:
            raw = yield from hermes.get(task.client_node, vec.name,
                                        task.page_idx)
            if self.system.config.integrity_checks \
                    and not rel.verify(vec.name, task.page_idx, raw):
                # Bit flip detected (§V): recover a good copy.
                self.system.monitor.count("reliability.corruptions")
                raw = yield from rel.recover_page(vec, task.page_idx,
                                                  task.client_node)
            if task.region is None:
                return raw
            return raw[:task.region[1]]
        off, size = task.region
        return (yield from hermes.get_partial(
            task.client_node, vec.name, task.page_idx, off, size))

    # -- writes ----------------------------------------------------------------
    def _write(self, vec: SharedVector, task: MemoryTask):
        hermes = self.system.hermes
        page_nbytes = vec.page_nbytes(task.page_idx)
        whole_page = (len(task.fragments) == 1
                      and task.fragments[0][0] == 0
                      and len(task.fragments[0][1]) == page_nbytes)
        # Pages of write/append-only phases are not read back soon:
        # a lower score lets hotter (about-to-be-read) pages keep the
        # fast tiers.
        score = 0.5 if vec.policy in (
            CoherencePolicy.WRITE_ONLY_GLOBAL,
            CoherencePolicy.APPEND_ONLY_GLOBAL) else 1.0
        info = yield from hermes.mdm.try_get(self.node_id, vec.name,
                                             task.page_idx)
        if info is None and whole_page:
            # Write-allocate: no need to stage in data we fully replace.
            owner = vec.owner_node(task.page_idx, task.client_node)
            yield from hermes.put(self.node_id, vec.name, task.page_idx,
                                  task.fragments[0][1], score=score,
                                  target_node=owner)
        else:
            yield from self.ensure_page(vec, task.page_idx,
                                        task.client_node, score=score)
            for off, data in task.fragments:
                if off < 0 or off + len(data) > page_nbytes:
                    raise MegaMmapError(
                        f"fragment [{off}, {off + len(data)}) outside page "
                        f"of {page_nbytes} bytes")
                yield from hermes.put_partial(
                    self.node_id, vec.name, task.page_idx, off, data)
        vec.dirty_pages.add(task.page_idx)
        vec.replicated_pages.discard(task.page_idx)
        self.system.monitor.count("scache.writes")
        rel = self.system.reliability
        if self.system.config.integrity_checks or rel.enabled:
            info = hermes.mdm.peek(vec.name, task.page_idx)
            if info is not None and info.node >= 0:
                dev = self.system.dmshs[info.node].tier(info.tier)
                if (vec.name, task.page_idx) in dev:
                    rel.record(vec.name, task.page_idx,
                               dev.peek((vec.name, task.page_idx)))
        if rel.enabled:
            # Durability copies ship asynchronously (off the write's
            # critical path, like the paper's async eviction).
            self.sim.process(
                rel.replicate_page(vec, task.page_idx),
                name=f"replicate {vec.name}[{task.page_idx}]")
        return None

    def _delete(self, vec: SharedVector, task: MemoryTask):
        try:
            yield from self.system.hermes.delete(
                self.node_id, vec.name, task.page_idx)
        except BlobNotFound:
            pass
        vec.dirty_pages.discard(task.page_idx)
