"""Deterministic chaos engine + coherence model-checker.

The paper concedes (§V) that MegaMmap "assumes that the nodes are
reliable"; `repro.core.reliability` implements the replication/ECC
extension it sketches, and this package adversarially exercises it:

* :mod:`repro.chaos.plan` — :class:`ChaosPlan`, a seed-replayable
  schedule of node crashes/restarts, network partitions/delay
  jitter/drop-with-retry, device stalls, page corruption, and
  event-schedule perturbation.
* :mod:`repro.chaos.inject` — :class:`ChaosInjector`, the simulation
  process that applies a plan through the ``chaos`` hooks in
  `net.fabric`, `storage.device`, `core.reliability`, and
  `sim.engine`, checking conservation invariants after every fault.
* :mod:`repro.chaos.checker` — :class:`HistoryRecorder` +
  :class:`CoherenceChecker`, the client-boundary history log and the
  per-:class:`~repro.core.coherence.CoherencePolicy` consistency
  model-checker.
* :mod:`repro.chaos.campaign` — seeded campaign driver behind
  ``python -m repro chaos``, with ddmin fault-set shrinking and
  replay files.
"""

from repro.chaos.plan import ChaosPlan, Fault
from repro.chaos.checker import CoherenceChecker, HistoryRecorder
from repro.chaos.inject import ChaosInjector
from repro.chaos.campaign import CaseResult, run_campaign, run_case, \
    shrink_faults

__all__ = [
    "ChaosPlan", "Fault", "CoherenceChecker", "HistoryRecorder",
    "ChaosInjector", "CaseResult", "run_campaign", "run_case",
    "shrink_faults",
]
