"""Fast-path kernel edge cases: microqueue, trampoline, slow-mode parity.

Every behavioral test here runs under both kernels (``fast`` fixture);
the contract (DESIGN.md "Kernel fast paths") is that simulated
results, event ordering, and final scheduler state are bit-for-bit
identical — only wall-clock and the ``kernel.*`` counters may differ.
"""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)


@pytest.fixture(params=[True, False], ids=["fast", "slow"])
def fast(request):
    return request.param


# -- empty-schedule guard ---------------------------------------------------
def test_step_empty_schedule_raises(fast):
    sim = Simulator(fast=fast)
    with pytest.raises(SimulationError, match="empty schedule"):
        sim.step()


def test_step_empty_after_drain_raises(fast):
    sim = Simulator(fast=fast)
    sim.timeout(1.0)
    sim.run()
    with pytest.raises(SimulationError, match="empty schedule"):
        sim.step()


# -- conditions over already-triggered events -------------------------------
def test_any_of_over_already_triggered_events(fast):
    sim = Simulator(fast=fast)

    def proc():
        a = Event(sim).succeed("a")
        b = Event(sim).succeed("b")
        v = yield AnyOf(sim, [a, b])
        return v

    p = sim.process(proc())
    sim.run()
    assert p.value == "a"


def test_all_of_over_already_triggered_events(fast):
    sim = Simulator(fast=fast)

    def proc():
        a = Event(sim).succeed("a")
        b = Event(sim).succeed("b")
        v = yield AllOf(sim, [a, b])
        return v

    p = sim.process(proc())
    sim.run()
    assert p.value == ["a", "b"]


def test_all_of_over_processed_events(fast):
    # Constituents that were *processed* (not just scheduled) before
    # the condition is built take the synchronous _check path.
    sim = Simulator(fast=fast)
    a = Event(sim).succeed("a")
    b = Event(sim).succeed("b")
    sim.run()
    assert a.processed and b.processed

    def proc():
        v = yield AllOf(sim, [a, b])
        return v

    p = sim.process(proc())
    sim.run()
    assert p.value == ["a", "b"]


def test_any_of_mixed_triggered_and_pending(fast):
    sim = Simulator(fast=fast)
    pending = Event(sim)

    def proc():
        fired = Event(sim).succeed("now")
        v = yield AnyOf(sim, [pending, fired])
        return v

    p = sim.process(proc())
    sim.run()
    assert p.value == "now"
    assert not pending.triggered


# -- interrupts vs the microqueue -------------------------------------------
def test_interrupt_process_blocked_on_immediate_event(fast):
    # The interrupt must detach the victim from an event already
    # sitting in the microqueue; the event itself still gets processed.
    sim = Simulator(fast=fast)
    trace = []
    imm = Event(sim)

    def victim():
        try:
            yield imm
            trace.append("value")
        except Interrupt as exc:
            trace.append(("interrupted", exc.cause))

    def attacker(p):
        imm.succeed("v")
        p.interrupt("bang")
        return
        yield

    p = sim.process(victim())
    sim.process(attacker(p))
    sim.run()
    assert trace == [("interrupted", "bang")]
    assert imm.processed


# -- FIFO ordering across the microqueue/heap boundary ----------------------
def test_fifo_across_microqueue_and_heap(fast):
    # At time 1.0 the heap holds b's timeout (earlier seq) while a's
    # immediate event (later seq) sits in the microqueue: the heap
    # entry must win, exactly as the heap-only kernel orders them.
    sim = Simulator(fast=fast)
    trace = []

    def a():
        yield sim.timeout(1.0)
        trace.append("a1")
        e = Event(sim)
        e.succeed()
        yield e
        trace.append("a2")

    def b():
        yield sim.timeout(1.0)
        trace.append("b1")

    sim.process(a())
    sim.process(b())
    sim.run()
    assert trace == ["a1", "b1", "a2"]


def test_urgent_microqueue_beats_normal(fast):
    # URGENT immediate events (process completions) are consumed before
    # earlier-seq NORMAL immediates never — priority dominates seq.
    sim = Simulator(fast=fast)
    trace = []

    def child():
        trace.append("child")
        return "cv"
        yield

    def parent():
        e = Event(sim)
        e.succeed(priority=1)  # NORMAL, scheduled first
        p = sim.process(child())
        v = yield p            # URGENT completion, scheduled second
        trace.append(("joined", v))
        yield e
        trace.append("normal")

    sim.process(parent())
    sim.run()
    assert trace == ["child", ("joined", "cv"), "normal"]


def test_zero_delay_timeout_orders_with_immediates(fast):
    # timeout(0) and Event.succeed land in the same timestamp; FIFO
    # (seq) order must hold between them in both kernels.
    sim = Simulator(fast=fast)
    trace = []

    def w(name, evt):
        yield evt
        trace.append(name)

    t1 = sim.timeout(0.0)
    e = Event(sim).succeed()
    t2 = sim.timeout(0.0)
    sim.process(w("t1", t1))
    sim.process(w("e", e))
    sim.process(w("t2", t2))
    sim.run()
    assert trace == ["t1", "e", "t2"]


# -- trampoline correctness -------------------------------------------------
def test_trampoline_runs_other_callbacks_first(fast):
    # When a chain-consumed event has other waiters, they must observe
    # it exactly as if step() had popped it (callbacks before resume).
    sim = Simulator(fast=fast)
    trace = []
    shared = Event(sim)

    def watcher():
        v = yield shared
        trace.append(("watcher", v))

    def chainer():
        shared.succeed("s")
        yield shared
        trace.append("chainer")

    sim.process(watcher())
    sim.process(chainer())
    sim.run()
    assert trace == [("watcher", "s"), "chainer"]


def test_immediate_chain_matches_slow_kernel():
    def workload(sim):
        trace = []

        def side(evt):
            yield evt
            trace.append("side")

        def chain():
            for i in range(3):
                e = Event(sim)
                e.succeed(i)
                if i == 1:
                    sim.process(side(e))
                v = yield e
                trace.append(v)
            yield sim.timeout(1.0)
            trace.append("t1")

        sim.process(chain())
        sim.run()
        return trace, sim.now

    fast_trace = workload(Simulator(fast=True))
    slow_trace = workload(Simulator(fast=False))
    assert fast_trace == slow_trace


def test_run_until_event_stops_inline_chains(fast):
    # A process resumed by the `until` event must not run further
    # ahead than the heap-only kernel: pending immediates stay pending.
    sim = Simulator(fast=fast)
    trace = []
    stop = Event(sim)

    def waiter():
        v = yield stop
        trace.append(("resumed", v))
        e = Event(sim)
        e.succeed()
        yield e
        trace.append("inline")

    def trigger():
        yield sim.timeout(1.0)
        stop.succeed("x")

    sim.process(waiter())
    sim.process(trigger())
    assert sim.run(until=stop) == "x"
    assert trace == [("resumed", "x")]
    # The rest of the chain resumes when run() is called again.
    sim.run()
    assert trace == [("resumed", "x"), "inline"]


def test_run_until_already_queued_stop(fast):
    # The stop event is consumed mid-chain by the process itself.
    sim = Simulator(fast=fast)
    trace = []
    stop = Event(sim)

    def proc():
        stop.succeed("sv")
        v = yield stop
        trace.append(("got", v))
        e = Event(sim)
        e.succeed()
        yield e
        trace.append("past-stop")

    sim.process(proc())
    assert sim.run(until=stop) == "sv"
    assert trace == [("got", "sv")]
    sim.run()
    assert trace == [("got", "sv"), "past-stop"]


# -- counters ---------------------------------------------------------------
def _churn(sim, n=200):
    def proc():
        for _ in range(n):
            e = Event(sim)
            e.succeed()
            yield e

    sim.process(proc())
    sim.run()


def test_fast_kernel_counts_fast_events_and_trampolines():
    sim = Simulator(fast=True)
    _churn(sim)
    assert sim.fast_events > 0
    assert sim.trampolines > 0
    assert sim.fast_events + sim.heap_events == sim._seq


def test_slow_kernel_never_uses_fast_paths():
    sim = Simulator(fast=False)
    _churn(sim)
    assert sim.fast_events == 0
    assert sim.trampolines == 0
    assert sim.heap_events == sim._seq


def test_env_var_selects_kernel(monkeypatch):
    monkeypatch.setenv("MEGAMMAP_SLOW_KERNEL", "1")
    assert not Simulator()._fast
    monkeypatch.setenv("MEGAMMAP_SLOW_KERNEL", "0")
    assert Simulator()._fast
    monkeypatch.delenv("MEGAMMAP_SLOW_KERNEL")
    assert Simulator()._fast
