"""Discrete-event simulation kernel.

A small, SimPy-flavoured discrete-event engine. Simulated entities
(application ranks, runtime workers, device queues, NICs) are Python
generators that ``yield`` :class:`~repro.sim.engine.Event` objects to
suspend until the event fires. The engine is the substrate on which the
whole MegaMmap reproduction runs: it supplies virtual time, so the
performance figures of the paper can be regenerated with device and
network cost models instead of real tiered hardware, while all data
movement remains functionally real.

Public surface::

    sim = Simulator()
    def proc(sim):
        yield sim.timeout(5.0)
        return 42
    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 42
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.monitor import Gauge, Monitor, TimeSeries
from repro.sim.rand import rng_stream, spawn_seed
from repro.sim.resources import Request, Resource, Store
from repro.sim.shard import (
    BoundaryMsg,
    ShardBoundary,
    ShardWorkerError,
    partition_nodes,
    run_windows,
    run_windows_parallel,
)
from repro.sim.sync import Barrier, Condition, Lock
from repro.sim.trace import NOOP_TRACER, Span, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Barrier",
    "BoundaryMsg",
    "Condition",
    "Event",
    "Gauge",
    "Interrupt",
    "Lock",
    "Monitor",
    "NOOP_TRACER",
    "Process",
    "Request",
    "Resource",
    "ShardBoundary",
    "ShardWorkerError",
    "SimulationError",
    "Simulator",
    "Span",
    "Store",
    "TimeSeries",
    "Timeout",
    "Tracer",
    "partition_nodes",
    "rng_stream",
    "run_windows",
    "run_windows_parallel",
    "spawn_seed",
]
