"""Shared-cache executor: how runtime workers act on MemoryTasks.

The scache is the distributed, tiered, coherent page store (paper
III-B). Pages are Hermes blobs in the bucket named after the vector;
this module implements the read / write / score / flush / delete task
semantics on top of Hermes + the Data Stager, honouring the vector's
coherence policy (replication for READ_ONLY_GLOBAL, partial-fragment
updates, replica invalidation on writes).
"""

from __future__ import annotations

import numpy as np

from repro.core.coherence import CoherencePolicy
from repro.core.errors import MegaMmapError
from repro.core.memtask import BatchTask, MemoryTask, TaskKind
from repro.core.shared import SharedVector
from repro.hermes.blob import BlobNotFound


class ScacheExecutor:
    """Executes MemoryTasks on behalf of one node's runtime workers."""

    def __init__(self, system, node_id: int):
        self.system = system
        self.node_id = node_id
        self.sim = system.sim
        # Cached labeled-metric handles (the flat dotted counters stay
        # for back-compat; these add the node/kind dimensions).
        _m = system.monitor.metrics
        self._m_reads = _m.counter("scache_ops", node=node_id,
                                   kind="read")
        self._m_writes = _m.counter("scache_ops", node=node_id,
                                    kind="write")
        self._m_obj_reads = _m.counter("scache_ops", node=node_id,
                                       kind="obj_read")
        self._m_obj_writes = _m.counter("scache_ops", node=node_id,
                                        kind="obj_write")

    def execute(self, task: MemoryTask):
        """Dispatch one task. Generator; returns the READ payload or
        None."""
        vec = self.system.vectors.get(task.vector_name)
        if vec is None or vec.destroyed:
            raise MegaMmapError(
                f"task for unknown/destroyed vector {task.vector_name!r}")
        tenancy = self.system.tenancy
        if tenancy is not None:
            tenancy.note_scache_op(vec.name, task.kind.value)
        tracer = self.system.tracer
        if task.kind is TaskKind.READ:
            with tracer.span("read", "scache", node=self.node_id,
                             vector=vec.name, page=task.page_idx):
                return (yield from self._read(vec, task))
        if task.kind is TaskKind.WRITE:
            with tracer.span("write", "scache", node=self.node_id,
                             vector=vec.name, page=task.page_idx,
                             nbytes=task.nbytes):
                return (yield from self._write(vec, task))
        if task.kind is TaskKind.OBJ_READ:
            # Object-granular extent read (DOLMA regime): same scache
            # semantics as a partial READ — crash failover, integrity
            # verification — but attributed to the "object" category so
            # ``repro report`` can tell the access paths apart.
            with tracer.span("obj_read", "object", node=self.node_id,
                             vector=vec.name, page=task.page_idx,
                             nbytes=task.nbytes):
                self.system.monitor.count("object.scache_reads")
                self._m_obj_reads.inc()
                return (yield from self._read(vec, task))
        if task.kind is TaskKind.OBJ_WRITE:
            # Write-through: once the ack reaches the client, the bytes
            # must survive a primary crash — so durability copies ship
            # *before* the ack, not asynchronously after it.
            with tracer.span("obj_write", "object", node=self.node_id,
                             vector=vec.name, page=task.page_idx,
                             nbytes=task.nbytes):
                self.system.monitor.count("object.scache_writes")
                self._m_obj_writes.inc()
                return (yield from self._write(vec, task,
                                               sync_replicate=True))
        if task.kind is TaskKind.SCORE:
            self.system.organizer.ingest(vec, task.scores)
            return None
        if task.kind is TaskKind.FLUSH:
            yield from self.system.stager.stage_out(
                vec, task.page_idx, self.node_id)
            return None
        if task.kind is TaskKind.DELETE:
            yield from self._delete(vec, task)
            return None
        raise MegaMmapError(f"unknown task kind {task.kind}")

    def execute_batch(self, batch: BatchTask):
        """Service a whole BatchTask in one scache round where the
        kind allows it. Generator; returns per-task results in
        ``batch.tasks`` order."""
        vec = self.system.vectors.get(batch.vector_name)
        if vec is None or vec.destroyed:
            raise MegaMmapError(
                f"batch for unknown/destroyed vector "
                f"{batch.vector_name!r}")
        tenancy = self.system.tenancy
        if tenancy is not None:
            tenancy.note_scache_op(vec.name, batch.kind.value,
                                   len(batch))
        tracer = self.system.tracer
        if batch.kind is TaskKind.READ:
            with tracer.span("read_batch", "scache.batch",
                             node=self.node_id, vector=vec.name,
                             count=len(batch)):
                return (yield from self._read_batch(vec, batch))
        if batch.kind is TaskKind.WRITE:
            with tracer.span("write_batch", "scache.batch",
                             node=self.node_id, vector=vec.name,
                             count=len(batch), nbytes=batch.nbytes):
                return (yield from self._write_batch(vec, batch))
        if batch.kind is TaskKind.OBJ_READ:
            with tracer.span("obj_read_batch", "object.batch",
                             node=self.node_id, vector=vec.name,
                             count=len(batch), nbytes=batch.nbytes):
                self.system.monitor.count("object.scache_reads",
                                          len(batch))
                self._m_obj_reads.inc(len(batch))
                return (yield from self._obj_read_batch(vec, batch))
        results = []
        for task in batch.tasks:
            results.append((yield from self.execute(task)))
        return results

    # -- page materialization ------------------------------------------------
    def ensure_page(self, vec: SharedVector, page_idx: int,
                    client_node: int, score: float = 1.0):
        """Materialize the page blob in the scache if absent.

        Missing nonvolatile pages stage in from the backend; missing
        volatile pages are zero-filled. Generator; returns BlobInfo.
        """
        hermes = self.system.hermes
        info = yield from hermes.mdm.try_get(self.node_id, vec.name,
                                             page_idx)
        want = vec.page_nbytes(page_idx)
        if info is not None:
            if info.nbytes < want:
                # The vector grew (append): extend the blob in place.
                raw = yield from self._get_page(vec, page_idx,
                                                self.node_id)
                raw = raw + bytes(want - len(raw))
                info = yield from hermes.put(
                    self.node_id, vec.name, page_idx, raw,
                    score=info.score, target_node=info.node)
            return info
        lock = self.system.stager.extent_lock(vec, page_idx)
        yield lock.acquire()
        try:
            # Re-check under the lock: a concurrent fault may have
            # created the page (replacing it would lose its writes).
            info = yield from hermes.mdm.try_get(self.node_id, vec.name,
                                                 page_idx)
            if info is not None:
                return info
            with self.system.tracer.span(
                    "stage_in", "scache", node=self.node_id,
                    vector=vec.name, page=page_idx):
                staged = yield from self.system.stager.stage_in_extent(
                    vec, page_idx, self.node_id)
                for p, raw in staged:
                    if p != page_idx and hermes.mdm.peek(vec.name, p) \
                            is not None:
                        continue
                    owner = vec.owner_node(p, client_node)
                    put_info = yield from hermes.put(
                        self.node_id, vec.name, p, raw, score=score,
                        target_node=owner)
                    if self.system.config.integrity_checks:
                        # Without a baseline CRC at materialization,
                        # corruption of a staged-in page that is never
                        # rewritten would pass verification.
                        self.system.reliability.record(vec.name, p, raw)
                    if p == page_idx:
                        info = put_info
        finally:
            lock.release()
        if info is None:
            # A concurrent fault published our page while we waited.
            info = yield from hermes.mdm.try_get(self.node_id, vec.name,
                                                 page_idx)
        return info

    def ensure_pages(self, vec: SharedVector, pages, client_node: int,
                     score: float = 1.0):
        """Materialize several pages with one stage-in round per
        touched extent (generator; returns {page_idx: BlobInfo}).

        The batched counterpart of :meth:`ensure_page`: missing pages
        are grouped by stage-in extent, and each extent pays a single
        lock acquisition + backend read for all of its missing pages.
        """
        hermes = self.system.hermes
        infos = {}
        missing = []
        lookup = yield from hermes.mdm.try_get_many(
            self.node_id, vec.name, dict.fromkeys(pages))
        for p, info in lookup.items():
            want = vec.page_nbytes(p)
            if info is not None and self._extent_restageable(vec, p,
                                                             info):
                missing.append(p)
            elif info is not None:
                if info.nbytes < want:
                    raw = yield from self._get_page(vec, p,
                                                    self.node_id)
                    raw = raw + bytes(want - len(raw))
                    info = yield from hermes.put(
                        self.node_id, vec.name, p, raw,
                        score=info.score, target_node=info.node)
                infos[p] = info
            else:
                missing.append(p)
        if not missing:
            return infos
        extent = max(self.system.config.stage_extent, vec.page_size)
        per_extent = max(1, extent // vec.page_size)
        by_extent: dict = {}
        for p in missing:
            by_extent.setdefault((p // per_extent) * per_extent,
                                 []).append(p)
        for group in by_extent.values():
            lock = self.system.stager.extent_lock(vec, group[0])
            yield lock.acquire()
            try:
                # Re-check under the lock: a concurrent fault may have
                # created some pages (replacing them would lose writes).
                todo = []
                relook = yield from hermes.mdm.try_get_many(
                    self.node_id, vec.name, group)
                for p in group:
                    info = relook[p]
                    if info is None:
                        todo.append(p)
                    elif self._extent_restageable(vec, p, info):
                        # A crash mid-batch left a dead placement in
                        # this extent. Drop the stale entry so the
                        # extent's stage-in (which skips pages with
                        # live metadata) rebuilds it alongside its
                        # missing neighbours — without this the batch
                        # hands back a partially-restaged extent.
                        yield from hermes.delete(self.node_id,
                                                 vec.name, p)
                        self.system.monitor.count(
                            "reliability.extent_restages")
                        todo.append(p)
                    else:
                        infos[p] = info
                if not todo:
                    continue
                with self.system.tracer.span(
                        "stage_in_batch", "scache.batch",
                        node=self.node_id, vector=vec.name,
                        page=todo[0], count=len(todo)):
                    if vec.volatile:
                        staged = [(p, bytes(vec.page_nbytes(p)))
                                  for p in todo]
                    else:
                        staged = yield from \
                            self.system.stager.stage_in_extent(
                                vec, todo[0], self.node_id)
                    want_pages = set(todo)
                    to_put = []
                    for p, raw in staged:
                        if p not in want_pages and hermes.mdm.peek(
                                vec.name, p) is not None:
                            continue
                        to_put.append(
                            (p, raw, vec.owner_node(p, client_node)))
                    put_infos = yield from hermes.put_many(
                        self.node_id, vec.name, to_put, score=score)
                    if self.system.config.integrity_checks:
                        for p, raw, _owner in to_put:
                            self.system.reliability.record(vec.name, p,
                                                           raw)
                    for p in want_pages:
                        if p in put_infos:
                            infos[p] = put_infos[p]
            finally:
                lock.release()
            for p in group:
                if p not in infos:
                    # A concurrent fault published the page meanwhile.
                    infos[p] = yield from hermes.mdm.try_get(
                        self.node_id, vec.name, p)
        return infos

    def _extent_restageable(self, vec: SharedVector, page_idx: int,
                            info) -> bool:
        """A dead placement (crashed primary, no surviving replica)
        that is safe to rebuild from the persistent backend with the
        extent's shared stage-in. Volatile or dirty pages are excluded:
        their only copy is gone and :meth:`ReliabilityManager.
        recover_page` must report the loss, not mask it."""
        rel = self.system.reliability
        dead = info.node < 0 or info.node in rel.failed_nodes
        return (dead and not info.replicas and not vec.volatile
                and page_idx not in vec.dirty_pages)

    # -- reads ----------------------------------------------------------------
    def _get_page(self, vec: SharedVector, page_idx: int,
                  client_node: int):
        """Whole-page fetch with crash failover.

        A primary can vanish between placement lookup and the device
        read (a node crash mid-request); hermes reports that as
        :class:`BlobNotFound`, and the recovery path (replica, then
        persistent backend) serves the read instead.
        """
        try:
            return (yield from self.system.hermes.get(
                client_node, vec.name, page_idx))
        except BlobNotFound:
            self.system.monitor.count("reliability.read_failovers")
            return (yield from self.system.reliability.recover_page(
                vec, page_idx, client_node))

    def _read(self, vec: SharedVector, task: MemoryTask):
        hermes = self.system.hermes
        rel = self.system.reliability
        # Failure handling (§V extension): a lost primary recovers from
        # a surviving replica or the persistent backend.
        info = hermes.mdm.peek(vec.name, task.page_idx)
        if info is not None and (info.node < 0
                                 or info.node in rel.failed_nodes):
            raw = yield from rel.recover_page(vec, task.page_idx,
                                              task.client_node)
            if task.region is None:
                return raw
            off, size = task.region
            return raw[off:off + size]
        yield from self.ensure_page(vec, task.page_idx, task.client_node)
        page_nbytes = vec.page_nbytes(task.page_idx)
        # Replicate only for reads covering exactly [0, page_nbytes):
        # the old predicate (``region[1] >= page_nbytes``) also fired
        # for offset regions, returning a slice from offset 0 — a
        # short/shifted result for the caller's [off, off+size) ask.
        whole = task.region is None or task.region == (0, page_nbytes)
        replicate = (vec.policy is CoherencePolicy.READ_ONLY_GLOBAL
                     and task.client_node != self.node_id and whole)
        if replicate:
            try:
                raw = yield from hermes.replicate(
                    task.client_node, vec.name, task.page_idx)
            except BlobNotFound:
                self.system.monitor.count("reliability.read_failovers")
                raw = yield from rel.recover_page(vec, task.page_idx,
                                                  task.client_node)
            if self.system.config.integrity_checks \
                    and not rel.verify(vec.name, task.page_idx, raw):
                self.system.monitor.count("reliability.corruptions")
                # Recover a verified copy (tries every placement,
                # promotes the good one, drops the corrupted copy).
                raw = yield from rel.recover_page(vec, task.page_idx,
                                                  task.client_node)
            info = hermes.mdm.peek(vec.name, task.page_idx)
            if info is not None and info.replicas:
                vec.replicated_pages.add(task.page_idx)
            self.system.monitor.count("scache.reads")
            self._m_reads.inc()
            if task.region is None:
                return raw
            off, size = task.region
            return raw[off:off + size]
        self.system.monitor.count("scache.reads")
        self._m_reads.inc()
        if whole:
            raw = yield from self._get_page(vec, task.page_idx,
                                            task.client_node)
            if self.system.config.integrity_checks \
                    and not rel.verify(vec.name, task.page_idx, raw):
                # Bit flip detected (§V): recover a good copy.
                self.system.monitor.count("reliability.corruptions")
                raw = yield from rel.recover_page(vec, task.page_idx,
                                                  task.client_node)
            if task.region is None:
                return raw
            return raw[:task.region[1]]
        off, size = task.region
        if self.system.config.integrity_checks:
            # The partial fast path used to bypass the CRC check,
            # silently returning corrupted bytes for pages only ever
            # read in fragments (e.g. partition-boundary pages of a
            # PGAS scan). Verification needs the whole page, so fetch
            # it, verify, and slice.
            raw = yield from self._get_page(vec, task.page_idx,
                                            task.client_node)
            if not rel.verify(vec.name, task.page_idx, raw):
                self.system.monitor.count("reliability.corruptions")
                raw = yield from rel.recover_page(vec, task.page_idx,
                                                  task.client_node)
            return raw[off:off + size]
        try:
            return (yield from hermes.get_partial(
                task.client_node, vec.name, task.page_idx, off, size))
        except BlobNotFound:
            self.system.monitor.count("reliability.read_failovers")
            raw = yield from rel.recover_page(vec, task.page_idx,
                                              task.client_node)
            return raw[off:off + size]

    def _read_batch(self, vec: SharedVector, batch: BatchTask):
        """Serve a READ batch: healthy whole-page reads share one
        extent-granular stage-in round and one vectored hermes get;
        the special cases (failed primaries, replication, partial
        regions) fall back to the per-task path, which already handles
        them — results are identical either way."""
        hermes = self.system.hermes
        rel = self.system.reliability
        results: list = [None] * len(batch.tasks)
        bulk = []
        for i, task in enumerate(batch.tasks):
            info = hermes.mdm.peek(vec.name, task.page_idx)
            failed = info is not None and (
                info.node < 0 or info.node in rel.failed_nodes)
            page_nbytes = vec.page_nbytes(task.page_idx)
            whole = (task.region is None
                     or task.region == (0, page_nbytes))
            replicate = (vec.policy is CoherencePolicy.READ_ONLY_GLOBAL
                         and task.client_node != self.node_id and whole)
            if failed or replicate or not whole:
                results[i] = yield from self._read(vec, task)
            else:
                bulk.append(i)
        if not bulk:
            return results
        pages = list(dict.fromkeys(
            batch.tasks[i].page_idx for i in bulk))
        infos = yield from self.ensure_pages(vec, pages,
                                             batch.client_node)
        # A fault racing the shared stage-in (fail_node mid-batch) can
        # hand back a partially-restaged extent: some pages resolved to
        # live placements, others to dead or missing entries. The bulk
        # fetch must not see the unhealthy ones — route them through
        # the per-task path (replica failover / backend restage), which
        # re-checks residency page by page.
        healthy = []
        for i in bulk:
            task = batch.tasks[i]
            info = infos.get(task.page_idx)
            if info is None or info.node < 0 \
                    or info.node in rel.failed_nodes:
                self.system.monitor.count("reliability.read_failovers")
                results[i] = yield from self._read(vec, task)
            else:
                healthy.append(i)
        bulk = healthy
        if not bulk:
            return results
        pages = list(dict.fromkeys(
            batch.tasks[i].page_idx for i in bulk))
        try:
            raws = yield from hermes.get_many(batch.client_node,
                                              vec.name, pages)
        except BlobNotFound:
            # A node crashed under the vectored fetch. Fall back to
            # the per-task path, which recovers page by page.
            self.system.monitor.count("reliability.read_failovers")
            for i in bulk:
                results[i] = yield from self._read(vec, batch.tasks[i])
            return results
        for i in bulk:
            task = batch.tasks[i]
            raw = raws[task.page_idx]
            if self.system.config.integrity_checks \
                    and not rel.verify(vec.name, task.page_idx, raw):
                self.system.monitor.count("reliability.corruptions")
                raw = yield from rel.recover_page(vec, task.page_idx,
                                                  task.client_node)
            self.system.monitor.count("scache.reads")
            self._m_reads.inc()
            if task.region is None:
                results[i] = raw
            else:
                results[i] = raw[:task.region[1]]
        return results

    def _obj_read_batch(self, vec: SharedVector, batch: BatchTask):
        """Serve an OBJ_READ batch: all tasks are extent reads, so the
        batch pays one metadata/stage-in round for its distinct pages
        and then one partial fetch per object. Unhealthy placements
        (crashed primary, lost replica) fall back to the per-task read
        path, which recovers page by page."""
        hermes = self.system.hermes
        rel = self.system.reliability
        results: list = [None] * len(batch.tasks)
        pending = []
        for i, task in enumerate(batch.tasks):
            info = hermes.mdm.peek(vec.name, task.page_idx)
            if info is not None and (info.node < 0
                                     or info.node in rel.failed_nodes):
                results[i] = yield from self._read(vec, task)
            else:
                pending.append(i)
        if not pending:
            return results
        pages = list(dict.fromkeys(
            batch.tasks[i].page_idx for i in pending))
        infos = yield from self.ensure_pages(vec, pages,
                                             batch.client_node)
        for i in pending:
            task = batch.tasks[i]
            info = infos.get(task.page_idx)
            if info is None or info.node < 0 \
                    or info.node in rel.failed_nodes:
                self.system.monitor.count("reliability.read_failovers")
                results[i] = yield from self._read(vec, task)
                continue
            off, size = task.region
            self.system.monitor.count("scache.reads")
            self._m_reads.inc()
            if self.system.config.integrity_checks:
                # Verification needs the whole page (see _read).
                raw = yield from self._get_page(vec, task.page_idx,
                                                task.client_node)
                if not rel.verify(vec.name, task.page_idx, raw):
                    self.system.monitor.count("reliability.corruptions")
                    raw = yield from rel.recover_page(
                        vec, task.page_idx, task.client_node)
                results[i] = raw[off:off + size]
                continue
            try:
                results[i] = yield from hermes.get_partial(
                    task.client_node, vec.name, task.page_idx, off,
                    size)
            except BlobNotFound:
                self.system.monitor.count("reliability.read_failovers")
                raw = yield from rel.recover_page(vec, task.page_idx,
                                                  task.client_node)
                results[i] = raw[off:off + size]
        return results

    # -- writes ----------------------------------------------------------------
    def _write(self, vec: SharedVector, task: MemoryTask,
               sync_replicate: bool = False):
        hermes = self.system.hermes
        page_nbytes = vec.page_nbytes(task.page_idx)
        whole_page = (len(task.fragments) == 1
                      and task.fragments[0][0] == 0
                      and len(task.fragments[0][1]) == page_nbytes)
        # Pages of write/append-only phases are not read back soon:
        # a lower score lets hotter (about-to-be-read) pages keep the
        # fast tiers.
        score = 0.5 if vec.policy in (
            CoherencePolicy.WRITE_ONLY_GLOBAL,
            CoherencePolicy.APPEND_ONLY_GLOBAL) else 1.0
        info = yield from hermes.mdm.try_get(self.node_id, vec.name,
                                             task.page_idx)
        if info is None and whole_page:
            # Write-allocate: no need to stage in data we fully replace.
            owner = vec.owner_node(task.page_idx, task.client_node)
            yield from hermes.put(self.node_id, vec.name, task.page_idx,
                                  task.fragments[0][1], score=score,
                                  target_node=owner)
        else:
            yield from self.ensure_page(vec, task.page_idx,
                                        task.client_node, score=score)
            for off, data in task.fragments:
                if off < 0 or off + len(data) > page_nbytes:
                    raise MegaMmapError(
                        f"fragment [{off}, {off + len(data)}) outside page "
                        f"of {page_nbytes} bytes")
                yield from hermes.put_partial(
                    self.node_id, vec.name, task.page_idx, off, data)
        self._post_write(vec, task, async_replicate=not sync_replicate)
        if sync_replicate and self.system.reliability.enabled:
            yield from self.system.reliability.replicate_page(
                vec, task.page_idx)
        return None

    def _post_write(self, vec: SharedVector, task: MemoryTask,
                    async_replicate: bool = True) -> None:
        """Bookkeeping shared by the per-task and batched write paths:
        dirty/replica tracking, integrity records, durability copies."""
        vec.dirty_pages.add(task.page_idx)
        vec.replicated_pages.discard(task.page_idx)
        self.system.monitor.count("scache.writes")
        self._m_writes.inc()
        rel = self.system.reliability
        dur = self.system.durability
        if dur.enabled or self.system.config.integrity_checks \
                or rel.enabled:
            info = self.system.hermes.mdm.peek(vec.name, task.page_idx)
            if info is not None and info.node >= 0:
                dev = self.system.dmshs[info.node].tier(info.tier)
                if (vec.name, task.page_idx) in dev:
                    raw = dev.peek((vec.name, task.page_idx))
                    if self.system.config.integrity_checks \
                            or rel.enabled:
                        rel.record(vec.name, task.page_idx, raw)
                    # Intent for the next transaction barrier: the
                    # page's latest bytes on its primary node's log.
                    dur.stage(vec.name, task.page_idx, info.node, raw)
        if rel.enabled and async_replicate:
            # Durability copies ship asynchronously (off the write's
            # critical path, like the paper's async eviction). Object
            # writes instead replicate synchronously before the ack
            # (the caller passes ``async_replicate=False``).
            self.sim.process(
                rel.replicate_page(vec, task.page_idx),
                name=f"replicate {vec.name}[{task.page_idx}]")

    def _write_batch(self, vec: SharedVector, batch: BatchTask):
        """Serve a WRITE batch.

        Fresh whole-page writes (write-allocate) go out as **one**
        vectored hermes put — one payload transfer per destination
        node, one metadata round per owner shard. Pages needing
        read-modify-write are materialized with one stage-in round per
        extent up front, then each such task applies its fragments
        exactly as the per-task path would (same dirty/replica
        bookkeeping, same final bytes)."""
        hermes = self.system.hermes
        score = 0.5 if vec.policy in (
            CoherencePolicy.WRITE_ONLY_GLOBAL,
            CoherencePolicy.APPEND_ONLY_GLOBAL) else 1.0
        pages = [task.page_idx for task in batch.tasks]
        if len(set(pages)) != len(pages):
            # Two tasks touch one page: apply strictly in task order
            # via the per-task path so later fragments win.
            results = []
            for task in batch.tasks:
                results.append((yield from self._write(vec, task)))
            return results
        lookup = yield from hermes.mdm.try_get_many(
            self.node_id, vec.name, pages)
        bulk, rest, need = [], [], []
        for task in batch.tasks:
            page_nbytes = vec.page_nbytes(task.page_idx)
            whole_page = (len(task.fragments) == 1
                          and task.fragments[0][0] == 0
                          and len(task.fragments[0][1]) == page_nbytes)
            if whole_page and lookup.get(task.page_idx) is None:
                bulk.append(task)
            else:
                rest.append(task)
                if not whole_page:
                    need.append(task.page_idx)
        if need:
            yield from self.ensure_pages(vec, need, batch.client_node,
                                         score=score)
        if bulk:
            items = [(task.page_idx, task.fragments[0][1],
                      vec.owner_node(task.page_idx, task.client_node))
                     for task in bulk]
            yield from hermes.put_many(self.node_id, vec.name, items,
                                       score=score)
            for task in bulk:
                self._post_write(vec, task)
        for task in rest:
            yield from self._write(vec, task)
        return [None] * len(batch.tasks)

    def _delete(self, vec: SharedVector, task: MemoryTask):
        try:
            yield from self.system.hermes.delete(
                self.node_id, vec.name, task.page_idx)
        except BlobNotFound:
            pass
        vec.dirty_pages.discard(task.page_idx)
