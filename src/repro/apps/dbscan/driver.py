"""The distributed µDBSCAN driver: space partitioning + merge.

Shared by the MegaMmap and MPI implementations (they differ in how
points are loaded and results stored). Steps:

1. recursive median splits — each round estimates the highest-variance
   axis and its median from an allgathered subsample, splits the
   process group in two (``comm.split``), and alltoalls points to the
   owning side (the paper's kd-tree construction, IV-A2);
2. local DBSCAN in each process's cell;
3. boundary merge — points within eps of the cell's bounding box are
   allgathered with their µcluster ids and core flags; a union-find
   over eps-close pairs merges µclusters into global clusters.
"""

from __future__ import annotations

import numpy as np

from repro.apps.dbscan.common import (
    encode_gid,
    local_dbscan,
    merge_labels,
    resolve,
)
from repro.sim.rand import rng_stream

SAMPLE = 64  # per-process subsample for median estimation


def partition_points(ctx, pts: np.ndarray, seed: int = 0):
    """Recursively redistribute (n, 4) [x, y, z, orig_idx] rows so each
    process owns one spatial cell. Generator; returns the local cell's
    rows."""
    group = ctx.comm
    level = 0
    while group.size > 1:
        rng = rng_stream(seed, "dbscan-split", level, group.members[0])
        k = min(SAMPLE, len(pts))
        sample = pts[rng.choice(len(pts), size=k, replace=False), :3] \
            if k else np.empty((0, 3))
        pools = yield from group.allgather(sample)
        pool = np.vstack([p for p in pools if len(p)]) \
            if any(len(p) for p in pools) else np.zeros((1, 3))
        yield from ctx.compute_bytes(pool.nbytes, factor=2.0)
        axis = int(np.argmax(pool.var(axis=0)))
        median = float(np.median(pool[:, axis]))
        half = group.size // 2
        go_left = pts[:, axis] <= median
        left_pts, right_pts = pts[go_left], pts[~go_left]
        # Deal each side's points round-robin to that side's ranks.
        outgoing = []
        for dst in range(group.size):
            if dst < half:
                outgoing.append(left_pts[dst::half])
            else:
                outgoing.append(right_pts[dst - half::group.size - half])
        incoming = yield from group.alltoall(outgoing)
        pts = np.vstack([p for p in incoming if len(p)]) \
            if any(len(p) for p in incoming) else np.empty((0, 4))
        color = 0 if group.rank < half else 1
        group = yield from group.split(color)
        level += 1
    return pts


def cluster_cell(ctx, pts: np.ndarray, eps: float, min_pts: int):
    """Local DBSCAN + global boundary merge. Generator; returns
    (orig_indices, global_labels) for the points this process owns."""
    xyz = pts[:, :3]
    yield from ctx.compute_bytes(xyz.nbytes, factor=16.0)
    labels, is_core = local_dbscan(xyz, eps, min_pts)
    gids = encode_gid(ctx.rank, labels)
    # Boundary points: within eps of the local cell's bounding box.
    if len(xyz):
        lo, hi = xyz.min(axis=0), xyz.max(axis=0)
        near = ((xyz - lo <= eps) | (hi - xyz <= eps)).any(axis=1)
        near &= labels >= 0
    else:
        near = np.zeros(0, dtype=bool)
    b_xyz = yield from ctx.comm.allgather(xyz[near])
    b_gid = yield from ctx.comm.allgather(gids[near])
    b_core = yield from ctx.comm.allgather(is_core[near])
    yield from ctx.compute_bytes(
        sum(b.nbytes for b in b_xyz if len(b)) + 1, factor=8.0)
    parent = merge_labels(b_xyz, b_gid, b_core, eps)
    merged = np.asarray([resolve(parent, int(g)) if g >= 0 else -1
                         for g in gids], dtype=np.int64)
    return pts[:, 3].astype(np.int64), merged
