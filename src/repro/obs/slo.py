"""Declarative SLOs with multi-window burn-rate alerting.

The colocation roadmap (PR 7's MaxMem-style reallocation loop) frames
tenant health as objectives — "95% of km1's tasks complete under
120 ms", "90% of its reads hit fast memory" — and the operator
question is not "what is the p99 right now" but "am I burning error
budget fast enough to care". This module implements the standard
answer: each SLO consumes *bad fraction* series from the windowed
store (:mod:`repro.obs.live`) and fires when the **burn rate**
(bad fraction / error budget) exceeds a threshold over both a fast
window (catch it quickly) and a slow window (don't page on blips) —
the multi-window multi-burn-rate policy of the SRE workbook, run on
simulated time.

Objectives:

``latency_p99``
    Bad = task latency above ``threshold_ms``; the fraction comes from
    the windowed sketch over ``tenant_task_latency{tenant=}``
    (``metric`` overrides the series name).
``hit_ratio``
    Bad = bytes read from slow tiers; the fraction is
    ``slow / (fast + slow)`` over the windowed
    ``tenant_read_bytes{tenant=,speed=}`` deltas.
``availability``
    Bad = ``bad_metric`` counter increments vs ``good_metric`` —
    generic enough for repair-vs-task or error-vs-request ratios.

Alert lifecycle: firing alerts are recorded as ``alert.*`` spans (the
tail sampler always keeps them) and ``slo_alerts{slo=,event=}``
labeled metrics; ``report()`` computes exact full-run compliance from
the registry (the un-windowed histograms/counters), so the CLI's exit
code never depends on sketch approximation.
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional

from repro.core.config import load_yaml_subset

__all__ = ["SLOSpec", "Alert", "SLOMonitor", "load_slos"]

_OBJECTIVES = ("latency_p99", "hit_ratio", "availability")


class SLOSpec:
    """One declarative objective (parsed from YAML or a colocation
    job's ``slo:`` block)."""

    __slots__ = ("name", "tenant", "objective", "metric",
                 "threshold_ms", "target", "fast_window_s",
                 "slow_window_s", "fast_burn", "slow_burn",
                 "good_metric", "bad_metric", "min_count")

    def __init__(self, name: str, objective: str,
                 tenant: Optional[str] = None,
                 metric: Optional[str] = None,
                 threshold_ms: float = 0.0,
                 target: float = 0.95,
                 fast_window_s: float = 0.05,
                 slow_window_s: Optional[float] = None,
                 fast_burn: float = 2.0,
                 slow_burn: float = 1.0,
                 good_metric: Optional[str] = None,
                 bad_metric: Optional[str] = None,
                 min_count: float = 1.0):
        if objective not in _OBJECTIVES:
            raise ValueError(f"unknown objective {objective!r}; "
                             f"expected one of {_OBJECTIVES}")
        if not 0.0 < target < 1.0:
            raise ValueError(f"target must be in (0,1), got {target}")
        if objective == "latency_p99" and threshold_ms <= 0:
            raise ValueError("latency_p99 SLOs need threshold_ms > 0")
        if objective == "availability" and not bad_metric:
            raise ValueError("availability SLOs need bad_metric")
        self.name = name
        self.tenant = tenant
        self.objective = objective
        self.metric = metric or ("tenant_task_latency"
                                 if objective == "latency_p99"
                                 else "tenant_read_bytes")
        self.threshold_ms = float(threshold_ms)
        self.target = float(target)
        self.fast_window_s = float(fast_window_s)
        self.slow_window_s = (float(slow_window_s)
                              if slow_window_s is not None
                              else 5.0 * self.fast_window_s)
        if self.slow_window_s < self.fast_window_s:
            raise ValueError("slow_window_s must be >= fast_window_s")
        self.fast_burn = float(fast_burn)
        self.slow_burn = float(slow_burn)
        self.good_metric = good_metric
        self.bad_metric = bad_metric
        self.min_count = float(min_count)

    @property
    def budget(self) -> float:
        """Error budget: the tolerated bad fraction."""
        return 1.0 - self.target

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SLOSpec":
        known = set(cls.__slots__)
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SLO keys: {sorted(unknown)}")
        if "name" not in data or "objective" not in data:
            raise ValueError("an SLO needs at least name and objective")
        return cls(**data)

    def _labels(self) -> Dict[str, str]:
        return {"tenant": self.tenant} if self.tenant else {}

    # -- windowed bad fraction --------------------------------------------
    def bad_fraction(self, store, window_s: float):
        """``(bad_fraction, sample_mass)`` over the trailing window."""
        if self.objective == "latency_p99":
            return store.frac_above(self.metric,
                                    self.threshold_ms / 1e3,
                                    self._labels(), window_s)
        if self.objective == "hit_ratio":
            labels = self._labels()
            fast = store.delta(self.metric, {**labels, "speed": "fast"},
                               window_s)
            slow = store.delta(self.metric, {**labels, "speed": "slow"},
                               window_s)
            total = fast + slow
            return (slow / total if total else 0.0), total
        bad = store.delta(self.bad_metric, self._labels(), window_s)
        good = store.delta(self.good_metric, self._labels(),
                           window_s) if self.good_metric else 0.0
        total = good + bad
        return (bad / total if total else 0.0), total

    # -- exact full-run compliance ----------------------------------------
    def compliance(self, monitor) -> Dict[str, Any]:
        """Whole-run good fraction from the registry's exact series
        (no sketches): the CLI's pass/fail basis."""
        metrics = monitor.metrics
        if self.objective == "latency_p99":
            hist = metrics.histograms.get(
                (self.metric, tuple(sorted(
                    (k, str(v)) for k, v in self._labels().items()))))
            obs = hist.observations if hist is not None else []
            bad = sum(1 for v in obs if v > self.threshold_ms / 1e3)
            total = float(len(obs))
        elif self.objective == "hit_ratio":
            labels = self._labels()
            def counter_value(speed):
                key = (self.metric, tuple(sorted(
                    [(k, str(v)) for k, v in labels.items()]
                    + [("speed", speed)])))
                c = metrics.counters.get(key)
                return c.value if c is not None else 0.0
            bad = counter_value("slow")
            total = bad + counter_value("fast")
        else:
            def flat_or_labeled(name):
                if name is None:
                    return 0.0
                key = (name, tuple(sorted(
                    (k, str(v)) for k, v in self._labels().items())))
                c = metrics.counters.get(key)
                if c is not None:
                    return c.value
                return monitor.counters.get(name, 0.0)
            bad = flat_or_labeled(self.bad_metric)
            total = bad + flat_or_labeled(self.good_metric)
        good_frac = 1.0 - (bad / total) if total else 1.0
        return {"name": self.name, "tenant": self.tenant,
                "objective": self.objective, "target": self.target,
                "compliance": good_frac, "samples": total,
                "ok": good_frac >= self.target or not total}


class Alert:
    """One firing/resolved episode of one SLO."""

    __slots__ = ("slo", "fired_at", "resolved_at", "fast_burn",
                 "slow_burn")

    def __init__(self, slo: str, fired_at: float, fast_burn: float,
                 slow_burn: float):
        self.slo = slo
        self.fired_at = fired_at
        self.resolved_at: Optional[float] = None
        self.fast_burn = fast_burn
        self.slow_burn = slow_burn

    @property
    def firing(self) -> bool:
        return self.resolved_at is None

    def to_dict(self) -> Dict[str, Any]:
        return {"slo": self.slo, "fired_at": self.fired_at,
                "resolved_at": self.resolved_at,
                "fast_burn": self.fast_burn,
                "slow_burn": self.slow_burn}


class SLOMonitor:
    """Evaluates a set of :class:`SLOSpec` against the windowed store
    once per obs tick; owns the alert lifecycle.

    Fire when *both* the fast- and slow-window burn rates exceed their
    thresholds (and the fast window actually saw samples); resolve
    when both drop back below. Alerts land in three places: the
    ``history`` list (chaos detection-latency assertions), ``alert.*``
    spans on the tracer (kept by the tail sampler, visible in
    Perfetto), and ``slo_alerts{slo=,event=}`` metrics.
    """

    def __init__(self, obs, specs: List[SLOSpec]):
        self.obs = obs
        self.store = obs.store
        self.monitor = obs.monitor
        self.specs = list(specs)
        self.firing: Dict[str, Alert] = {}
        self.history: List[Alert] = []
        obs.slo = self

    def evaluate(self, now: float) -> None:
        store = self.store
        metrics = self.monitor.metrics
        tracer = store.tracer
        for spec in self.specs:
            fast_frac, fast_n = spec.bad_fraction(store,
                                                  spec.fast_window_s)
            slow_frac, _slow_n = spec.bad_fraction(store,
                                                   spec.slow_window_s)
            budget = spec.budget
            fast_burn = fast_frac / budget
            slow_burn = slow_frac / budget
            metrics.gauge("slo_burn", slo=spec.name,
                          window="fast").set(fast_burn)
            metrics.gauge("slo_burn", slo=spec.name,
                          window="slow").set(slow_burn)
            alert = self.firing.get(spec.name)
            if alert is None:
                if fast_burn >= spec.fast_burn \
                        and slow_burn >= spec.slow_burn \
                        and fast_n >= spec.min_count:
                    alert = Alert(spec.name, now, fast_burn, slow_burn)
                    self.firing[spec.name] = alert
                    self.history.append(alert)
                    metrics.counter("slo_alerts", slo=spec.name,
                                    event="fire").inc()
                    if tracer is not None and tracer.enabled:
                        tracer.record(spec.name, "alert", -1, now, now,
                                      event="fire", slo=spec.name,
                                      fast_burn=round(fast_burn, 3),
                                      slow_burn=round(slow_burn, 3))
            elif fast_burn < spec.fast_burn \
                    and slow_burn < spec.slow_burn:
                alert.resolved_at = now
                del self.firing[spec.name]
                metrics.counter("slo_alerts", slo=spec.name,
                                event="resolve").inc()
                if tracer is not None and tracer.enabled:
                    tracer.record(spec.name, "alert", -1,
                                  alert.fired_at, now, event="episode",
                                  slo=spec.name)

    # -- reporting ---------------------------------------------------------
    def report(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Compliance + alert timeline, JSON-shaped like ``repro
        report`` (flat keys, ``violations`` drives the exit code)."""
        slos = [spec.compliance(self.monitor) for spec in self.specs]
        by_name = {s["name"]: s for s in slos}
        for alert in self.history:
            by_name[alert.slo].setdefault("alerts", []).append(
                alert.to_dict())
        for s in slos:
            s.setdefault("alerts", [])
        return {
            "slos": slos,
            "alerts": [a.to_dict() for a in self.history],
            "firing": sorted(self.firing),
            "violations": sum(1 for s in slos if not s["ok"]),
            "t": self.store.last_tick if now is None else now,
        }


def load_slos(text_or_path: str) -> List[SLOSpec]:
    """Parse an SLO spec document (YAML text or a path to one).

    Accepts either a top-level ``slos:`` list or a bare list of SLO
    mappings.
    """
    text = text_or_path
    if "\n" not in text_or_path and os.path.exists(text_or_path):
        with open(text_or_path, "r", encoding="utf-8") as fh:
            text = fh.read()
    data = load_yaml_subset(text)
    if isinstance(data, dict):
        data = data.get("slos", [])
    if not isinstance(data, list):
        raise ValueError("SLO spec must be a list or have a "
                         "'slos:' list")
    return [SLOSpec.from_dict(d) for d in data]
