"""Unit tests for Monitor/Gauge/TimeSeries and the RNG streams."""

import numpy as np
import pytest

from repro.sim import Gauge, Monitor, Simulator, TimeSeries, rng_stream, spawn_seed


def test_timeseries_peak_and_last():
    ts = TimeSeries()
    ts.record(0.0, 5.0)
    ts.record(1.0, 10.0)
    ts.record(2.0, 3.0)
    assert ts.peak == 10.0
    assert ts.last == 3.0
    assert ts.minimum == 3.0


def test_timeseries_rejects_out_of_order():
    ts = TimeSeries()
    ts.record(5.0, 1.0)
    with pytest.raises(ValueError):
        ts.record(4.0, 1.0)


def test_timeseries_time_average_step_function():
    ts = TimeSeries()
    ts.record(0.0, 0.0)
    ts.record(1.0, 10.0)  # value 0 for [0,1), 10 for [1,2)
    assert ts.time_average(until=2.0) == pytest.approx(5.0)


def test_gauge_tracks_peak_through_adds():
    sim = Simulator()
    mon = Monitor(sim)
    g = mon.gauge("node0.dram")
    g.add(100)
    g.add(50)
    g.sub(120)
    assert g.value == 30
    assert g.peak == 150


def test_monitor_counters_and_summary():
    sim = Simulator()
    mon = Monitor(sim)
    mon.count("faults")
    mon.count("faults")
    mon.count("bytes", 4096)
    g = mon.gauge("mem")
    g.set(7)
    s = mon.summary()
    assert s["faults"] == 2
    assert s["bytes"] == 4096
    assert s["mem.peak"] == 7


def test_monitor_gauge_is_memoized():
    sim = Simulator()
    mon = Monitor(sim)
    assert mon.gauge("a") is mon.gauge("a")


def test_spawn_seed_deterministic_and_distinct():
    s1 = spawn_seed(42, "node", 0)
    s2 = spawn_seed(42, "node", 0)
    s3 = spawn_seed(42, "node", 1)
    s4 = spawn_seed(43, "node", 0)
    assert s1 == s2
    assert len({s1, s3, s4}) == 3


def test_rng_stream_reproducible():
    a = rng_stream(7, "data").normal(size=10)
    b = rng_stream(7, "data").normal(size=10)
    assert np.array_equal(a, b)


def test_rng_stream_independent_keys():
    a = rng_stream(7, "x").normal(size=10)
    b = rng_stream(7, "y").normal(size=10)
    assert not np.array_equal(a, b)


def test_spawn_seed_handles_bytes_keys():
    assert spawn_seed(1, b"raw") == spawn_seed(1, b"raw")
    assert spawn_seed(1, b"raw") != spawn_seed(1, "raw")
