"""MegaMmap µDBSCAN: the dataset is just a shared vector.

Loading is a PGAS partition of the points vector streamed through a
sequential read-only transaction; cluster assignments persist through
a file-backed vector (no explicit I/O partitioning or staging code —
the Fig. 4 point).
"""

from __future__ import annotations

import numpy as np

from repro.apps.datagen import POINT3D, as_xyz
from repro.apps.dbscan.driver import cluster_cell, partition_points
from repro.core import MM_READ_ONLY, MM_WRITE_ONLY, SeqTx


def mm_dbscan(ctx, url, eps, min_pts, seed=0, pcache=None,
              assign_url=None):
    """Returns (orig_indices, global_labels) for this rank's cell."""
    pts_vec = yield from ctx.mm.vector(url, dtype=POINT3D)
    if pcache:
        pts_vec.bound_memory(pcache)
    pts_vec.pgas(ctx.rank, ctx.nprocs)
    rows = []
    tx = yield from pts_vec.tx_begin(SeqTx(pts_vec.local_off(),
                                           pts_vec.local_size(),
                                           MM_READ_ONLY))
    while True:
        chunk = yield from pts_vec.next_chunk()
        if chunk is None:
            break
        yield from ctx.compute_bytes(chunk.data.nbytes, factor=2.0)
        xyz = as_xyz(chunk.data)
        idx = np.arange(chunk.start, chunk.start + len(chunk),
                        dtype=np.float64)
        rows.append(np.column_stack([xyz, idx]))
    yield from pts_vec.tx_end()
    pts = np.vstack(rows) if rows else np.empty((0, 4))

    cell = yield from partition_points(ctx, pts, seed=seed)
    orig, labels = yield from cluster_cell(ctx, cell, eps, min_pts)

    if assign_url is not None:
        out = yield from ctx.mm.vector(assign_url, dtype=np.int64,
                                       size=pts_vec.size, volatile=False)
        yield from out.tx_begin(SeqTx(0, 0, MM_WRITE_ONLY))
        order = np.argsort(orig)
        for i in order:
            yield from out.write_range(
                int(orig[i]), np.asarray([labels[i]], dtype=np.int64))
        yield from out.tx_end()
        yield from out.persist()
    return orig, labels
