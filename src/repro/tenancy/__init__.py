"""Multi-tenant colocation: quotas, admission control, reallocation.

See DESIGN.md "Multi-tenancy". Entry point:
``python -m repro colocate <spec.yaml>`` /
:func:`repro.tenancy.run_colocation`.
"""

from repro.tenancy.quota import (QuotaExceededError, QuotaManager,
                                 TenantQuota)
from repro.tenancy.realloc import ReallocLoop
from repro.tenancy.scheduler import (ColocationResult, JobScheduler,
                                     JobSpec, collect_slos,
                                     load_colocation_spec,
                                     run_colocation)

__all__ = [
    "ColocationResult",
    "collect_slos",
    "JobScheduler",
    "JobSpec",
    "QuotaExceededError",
    "QuotaManager",
    "ReallocLoop",
    "TenantQuota",
    "load_colocation_spec",
    "run_colocation",
]
