"""Operator surfaces: ``repro top`` / ``repro slo`` and the SLO
attachment path through ``run_colocation`` (spec-level ``slos:``
lists, per-job ``slo:`` blocks, and the ``slos=`` override)."""

import json

import pytest

from repro.__main__ import main
from repro.obs import SLOSpec
from repro.pipeline import PipelineError
from repro.tenancy import collect_slos, run_colocation
from repro.tenancy.scheduler import load_colocation_spec

SPEC = """
name: Colocate-CLI-Test
cluster:
  n_nodes: 2
  procs_per_node: 1
  dram_mb: 8
  nvme_mb: 64
  seed: 11
tenancy:
  realloc: true
jobs:
  - name: kmA
    app:
      kind: mm_kmeans
      k: 4
      max_iter: 2
    dataset:
      kind: points
      n: 3000
      k: 4
      seed: 3
      path: pts_a.parquet
    procs: 2
    dram_quota_mb: 4
    min_dram_mb: 2
    slo:
      objective: hit_ratio
      target: 0.05
  - name: gsB
    app:
      kind: mm_gray_scott
      L: 16
      steps: 2
    procs: 2
    arrival: 0.05
    dram_quota_mb: 4
    min_dram_mb: 2
"""

SLOS_YAML = """
slos:
  - name: km-latency
    tenant: kmA
    objective: latency_p99
    threshold_ms: 1000.0
    target: 0.5
"""

MINI_PIPELINE = """
name: obs-cli-mini
cluster:
  n_nodes: 2
  procs_per_node: 2
  dram_mb: 16
  nvme_mb: 64
dataset:
  kind: points
  n: 4000
  k: 4
  seed: 7
  path: points.parquet
app:
  kind: mm_kmeans
  k: 4
  max_iter: 2
"""


# -- collect_slos ------------------------------------------------------------

def test_collect_slos_merges_spec_jobs_and_extra():
    spec = load_colocation_spec(SPEC)
    jobs = spec["_jobs"] if "_jobs" in spec else None
    from repro.tenancy import JobSpec
    jobs = [JobSpec.from_dict(j) for j in spec["jobs"]]
    extra = [SLOSpec(name="extra", objective="availability",
                     bad_metric="chaos.crashes")]
    specs = collect_slos(spec, jobs, extra=extra)
    names = [s.name for s in specs]
    assert names == ["extra", "kmA-hit_ratio"]
    # The job-embedded block defaults tenant and name from the job.
    embedded = specs[-1]
    assert embedded.tenant == "kmA"
    assert embedded.objective == "hit_ratio"


def test_collect_slos_rejects_duplicate_names():
    spec = load_colocation_spec(SPEC)
    from repro.tenancy import JobSpec
    jobs = [JobSpec.from_dict(j) for j in spec["jobs"]]
    dup = [SLOSpec(name="kmA-hit_ratio", objective="availability",
                   bad_metric="x")]
    with pytest.raises(PipelineError, match="duplicate"):
        collect_slos(spec, jobs, extra=dup)


# -- run_colocation SLO attachment ------------------------------------------

def test_run_colocation_attaches_job_embedded_slos(tmp_path):
    res = run_colocation(SPEC, workdir=str(tmp_path))
    assert res.slo is not None
    assert [s["name"] for s in res.slo["slos"]] == ["kmA-hit_ratio"]
    # target 0.05 is below any real hit ratio: compliant.
    assert res.slo["violations"] == 0
    assert isinstance(res.obs_events, list)


def test_run_colocation_slos_do_not_change_results(tmp_path):
    spec_no_slo = SPEC.replace("    slo:\n"
                               "      objective: hit_ratio\n"
                               "      target: 0.05\n", "")
    assert "slo:" not in spec_no_slo
    plain = run_colocation(spec_no_slo, workdir=str(tmp_path))
    observed = run_colocation(
        spec_no_slo, workdir=str(tmp_path),
        slos=[SLOSpec(name="km-hit", tenant="kmA",
                      objective="hit_ratio", target=0.05)])
    assert plain.slo is None
    assert observed.slo is not None
    assert observed.rows == plain.rows
    assert observed.makespan == plain.makespan
    assert observed.decisions == plain.decisions


# -- CLI: repro top ----------------------------------------------------------

def test_cli_top_json_on_colocation_spec(tmp_path, capsys):
    path = tmp_path / "coloc.yaml"
    path.write_text(SPEC)
    rc = main(["top", str(path), "--workdir", str(tmp_path / "wd"),
               "--json"])
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ticks"] > 0
    assert {"t", "window_s", "retention", "counters", "gauges",
            "histograms", "anomalies", "alerts"} <= set(doc)
    # Tenant task latencies are the operator's first stop.
    assert any(k.startswith("tenant_task_latency")
               for k in doc["histograms"])
    assert any(k.startswith("tenant_read_bytes")
               for k in doc["counters"])


def test_cli_top_human_output_on_pipeline(tmp_path, capsys):
    path = tmp_path / "mini.yaml"
    path.write_text(MINI_PIPELINE)
    rc = main(["top", str(path), "--workdir", str(tmp_path / "wd"),
               "--window", "0.0002"])  # mini makespan << default tick
    assert rc == 0
    out = capsys.readouterr().out
    assert "== top:" in out
    assert "-- counters (retained window) --" in out
    assert "-- gauges (last sample) --" in out


# -- CLI: repro slo ----------------------------------------------------------

def test_cli_slo_exit_codes_and_json(tmp_path, capsys):
    spec_path = tmp_path / "coloc.yaml"
    spec_path.write_text(SPEC)
    slos_path = tmp_path / "slos.yaml"
    slos_path.write_text(SLOS_YAML)

    rc = main(["slo", str(spec_path), "--slos", str(slos_path),
               "--workdir", str(tmp_path / "wd"), "--json"])
    out = capsys.readouterr().out
    assert rc == 0  # both SLOs comfortably met
    doc = json.loads(out)
    assert {"slos", "alerts", "firing", "violations", "t"} <= set(doc)
    assert [s["name"] for s in doc["slos"]] \
        == ["km-latency", "kmA-hit_ratio"]
    assert doc["violations"] == 0

    # An unmeetable target flips the exit code to 1.
    bad = tmp_path / "bad.yaml"
    bad.write_text(SLOS_YAML.replace("threshold_ms: 1000.0",
                                     "threshold_ms: 0.00001"))
    rc = main(["slo", str(spec_path), "--slos", str(bad),
               "--workdir", str(tmp_path / "wd2")])
    capsys.readouterr()
    assert rc == 1


def test_cli_slo_pipeline_target_requires_slos(tmp_path, capsys):
    path = tmp_path / "mini.yaml"
    path.write_text(MINI_PIPELINE)
    rc = main(["slo", str(path), "--workdir", str(tmp_path / "wd")])
    err = capsys.readouterr().err
    assert rc == 2
    assert "--slos" in err


def test_repo_colocate_slo_spec_parses():
    """The shipped SLO file for colocate_mixed stays loadable and
    names only objectives the monitor implements."""
    import os
    from repro.obs import load_slos
    path = os.path.join(os.path.dirname(__file__), "..", "..",
                        "pipelines", "colocate_slos.yaml")
    specs = load_slos(path)
    assert len(specs) == 5
    assert {s.objective for s in specs} \
        == {"hit_ratio", "latency_p99"}
    assert {s.tenant for s in specs if s.objective == "hit_ratio"} \
        == {"km1", "km2", "km3", "km4"}
