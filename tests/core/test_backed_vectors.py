"""Integration tests: every backend URL form served through the DSM."""

import numpy as np
import pytest

from repro.apps.datagen import POINT3D, generate_points
from repro.core import MM_READ_ONLY, MM_WRITE_ONLY, SeqTx, VectorError
from repro.storage.backend import BackendError
from repro.storage.formats.hdf5sim import Hdf5SimBackend
from repro.storage.backend import parse_url
from tests.core.conftest import build_system, run_procs


def read_all(system, url, dtype, rank=0, node=0):
    client = system.client(rank=rank, node=node)
    out = {}

    def app():
        vec = yield from client.vector(url, dtype=dtype)
        yield from vec.tx_begin(SeqTx(0, vec.size, MM_READ_ONLY))
        out["data"] = yield from vec.read_range(0, vec.size)
        yield from vec.tx_end()

    return app, out


def test_wildcard_multifile_vector(tmp_path):
    """The paper's file-per-process mapping: file:///...parquet* maps
    several files as one uniform vector."""
    parts = []
    for i in range(3):
        arr = np.arange(i * 100, i * 100 + 100, dtype=np.float32)
        (tmp_path / f"part{i}.bin").write_bytes(arr.tobytes())
        parts.append(arr)
    expected = np.concatenate(parts)
    sim, system = build_system()
    app, out = read_all(system, f"file://{tmp_path}/part*.bin",
                        np.float32)
    run_procs(sim, app())
    assert np.array_equal(out["data"], expected)


def test_wildcard_vector_rejects_writes(tmp_path):
    (tmp_path / "p0.bin").write_bytes(b"\0" * 4096)
    sim, system = build_system()
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector(f"file://{tmp_path}/p*.bin",
                                       dtype=np.uint8)
        yield from vec.tx_begin(SeqTx(0, vec.size, MM_WRITE_ONLY))
        yield from vec.write_range(0, np.ones(10, dtype=np.uint8))
        yield from vec.tx_end()
        yield from vec.persist()

    with pytest.raises(BackendError, match="read-only"):
        run_procs(sim, app())


def test_hdf5_group_vector(tmp_path):
    """hdf5:///path:group addresses one group of a container."""
    path = tmp_path / "snap.h5"
    be = Hdf5SimBackend(parse_url(f"hdf5://{path}:a"), create=True)
    a = np.arange(500, dtype=np.float64)
    b = np.arange(300, dtype=np.int32)
    be.write_group("a", a)
    be.write_group("b", b)
    sim, system = build_system()
    app_a, out_a = read_all(system, f"hdf5://{path}:a", np.float64)
    run_procs(sim, app_a())
    assert np.array_equal(out_a["data"], a)
    app_b, out_b = read_all(system, f"hdf5://{path}:b", np.int32)
    run_procs(sim, app_b())
    assert np.array_equal(out_b["data"], b)


def test_parquet_structured_records_vector(tmp_path):
    from repro.apps.datagen import write_parquet_points
    path = tmp_path / "pts.parquet"
    write_parquet_points(str(path), 777, 3, seed=5)
    pts, _ = generate_points(777, 3, seed=5)
    sim, system = build_system()
    app, out = read_all(system, f"parquet://{path}", POINT3D)
    run_procs(sim, app())
    assert np.array_equal(out["data"], pts)


def test_writeback_through_hdf5_group(tmp_path):
    """Nonvolatile DSM writes persist into the hdf5sim group."""
    path = tmp_path / "out.h5"
    sim, system = build_system()
    client = system.client(rank=0, node=0)
    data = np.linspace(0, 1, 1000)

    def app():
        vec = yield from client.vector(f"hdf5://{path}:result",
                                       dtype=np.float64, size=1000)
        yield from vec.tx_begin(SeqTx(0, 1000, MM_WRITE_ONLY))
        yield from vec.write_range(0, data)
        yield from vec.tx_end()
        yield from vec.persist()

    run_procs(sim, app())
    be = Hdf5SimBackend(parse_url(f"hdf5://{path}:result"))
    got = np.frombuffer(be.read_range(0, 8000), dtype=np.float64)
    assert np.array_equal(got, data)


def test_vector_key_without_url_is_volatile(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector("plain-key", dtype=np.int32,
                                       size=10)
        return vec.shared.volatile

    (volatile,) = run_procs(sim, app())
    assert volatile


def test_vector_url_key_is_nonvolatile(tmp_path, dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        vec = yield from client.vector(f"posix://{tmp_path}/x.bin",
                                       dtype=np.int32, size=10)
        return vec.shared.volatile

    (volatile,) = run_procs(sim, app())
    assert not volatile


def test_unknown_scheme_url_fails_cleanly(dsm):
    sim, system = dsm
    client = system.client(rank=0, node=0)

    def app():
        yield from client.vector("s3://bucket/pts", dtype=np.int32,
                                 size=10)

    with pytest.raises(BackendError, match="unknown scheme"):
        run_procs(sim, app())
